#!/usr/bin/env python3
"""Walkthrough of the ELPC dynamic program on the small Fig. 3 / Fig. 4 instance.

The paper illustrates ELPC on a 5-module / 6-node problem (Fig. 1 shows the
2-D DP table, Figs. 3-4 show the selected paths).  This example makes the
algorithm's inner workings visible:

1. prints the problem instance in the paper's tabular parameter format,
2. runs the minimum-delay DP with ``keep_table=True`` and renders the filled
   T^j(v_i) table (the Fig. 1 structure),
3. back-tracks the optimal path and explains each mapping decision,
4. does the same for the maximum-frame-rate DP and points out the bottleneck,
5. cross-checks both against the exhaustive optimality oracles.

Run with:  python examples/small_instance_walkthrough.py
"""

from repro import elpc_max_frame_rate, elpc_min_delay, exhaustive_max_frame_rate, exhaustive_min_delay
from repro.analysis import mapping_walkthrough
from repro.generators import small_illustration_case
from repro.model import instance_to_table_text


def main() -> None:
    instance = small_illustration_case()
    pipeline, network, request = instance.pipeline, instance.network, instance.request

    print("=" * 72)
    print("Problem instance (paper Section 4.1 parameter format)")
    print("=" * 72)
    print(instance_to_table_text(instance))

    print("=" * 72)
    print("Minimum end-to-end delay DP (node reuse allowed)")
    print("=" * 72)
    delay_mapping = elpc_min_delay(pipeline, network, request, keep_table=True)
    table = delay_mapping.extras["dp_table"]
    print("Filled DP table T^j(v_i) — rows are nodes, columns are modules "
          "(inf = subproblem unreachable):")
    print(table.render())
    print()
    print(mapping_walkthrough(delay_mapping, title="Fig. 3 — optimal minimum-delay path"))
    exact = exhaustive_min_delay(pipeline, network, request)
    print(f"\nexhaustive optimum  : {exact.delay_ms:.4f} ms "
          f"({exact.extras['assignments_explored']} assignments examined)")
    print(f"ELPC dynamic program: {delay_mapping.delay_ms:.4f} ms  "
          f"({delay_mapping.extras['dp_relaxations']} cell relaxations) "
          f"-> {'MATCH' if abs(exact.delay_ms - delay_mapping.delay_ms) < 1e-6 else 'MISMATCH'}")

    print()
    print("=" * 72)
    print("Maximum frame rate DP (no node reuse)")
    print("=" * 72)
    rate_mapping = elpc_max_frame_rate(pipeline, network, request, keep_table=True)
    print(rate_mapping.extras["dp_table"].render())
    print()
    print(mapping_walkthrough(rate_mapping, title="Fig. 4 — optimal maximum-frame-rate path"))
    exact_rate = exhaustive_max_frame_rate(pipeline, network, request)
    print(f"\nexhaustive optimum  : {exact_rate.frame_rate_fps:.4f} frames/s "
          f"({exact_rate.extras['paths_explored']} exact-n-hop paths examined)")
    print(f"ELPC heuristic DP   : {rate_mapping.frame_rate_fps:.4f} frames/s "
          f"-> {'MATCH' if abs(exact_rate.frame_rate_fps - rate_mapping.frame_rate_fps) < 1e-6 else 'GAP'}")


if __name__ == "__main__":
    main()
