#!/usr/bin/env python3
"""Domain scenario 4: fault-tolerance planning for a mapped pipeline.

A mapping is only as good as the nodes it depends on.  This example uses the
library's alternative-mapping utilities (a reproduction extension composed
from the paper's algorithms) to answer three operational questions for a
remote-visualization deployment:

1. *Which nodes is the optimal mapping actually relying on, and how bad is it
   if each one fails?*  (`fault_tolerance_plan`)
2. *Which standby mappings should be kept ready so a failure can be absorbed
   without re-optimising from scratch?*  (`k_alternative_mappings`)
3. *What does the failure of the most critical node cost end to end?*
   (simulate the primary on the healthy network vs the fallback after failure)

It also writes Graphviz DOT renderings of the primary and fallback mappings so
they can be inspected visually (`dot -Tpng primary.dot -o primary.png`).

Run with:  python examples/fault_tolerance_planning.py
"""

from pathlib import Path

from repro import EndToEndRequest, Objective
from repro.analysis import mapping_to_dot, mapping_walkthrough, write_dot
from repro.core import fault_tolerance_plan, k_alternative_mappings
from repro.generators import random_network, remote_visualization_pipeline
from repro.simulation import simulate_interactive


def main() -> None:
    # A reasonably dense shared network: failures are survivable but costly,
    # which is the interesting regime for planning.
    network = random_network(n_nodes=18, n_links=54, seed=41, name="shared grid")
    pipeline = remote_visualization_pipeline(dataset_bytes=5_000_000)
    request = EndToEndRequest(source=0, destination=network.n_nodes - 1)

    print("=" * 72)
    print("1. Primary mapping and its failure exposure")
    print("=" * 72)
    plan = fault_tolerance_plan(pipeline, network, request,
                                objective=Objective.MIN_DELAY)
    print(mapping_walkthrough(plan.primary, title="Primary ELPC mapping"))
    print()
    print(f"{'failed node':>12} {'survivable':>11} {'fallback delay':>15} {'degradation':>12}")
    for node in plan.covered_nodes():
        impact = plan.impacts[node]
        if impact.survivable:
            print(f"{node:>12} {'yes':>11} {impact.fallback.delay_ms:>12.1f} ms "
                  f"{impact.degradation:>11.2f}x")
        else:
            print(f"{node:>12} {'NO':>11} {'-':>15} {'-':>12}")
    critical = plan.most_critical_node()
    print(f"\nmost critical node: {critical} "
          f"(worst survivable degradation {plan.worst_degradation():.2f}x)")

    print()
    print("=" * 72)
    print("2. Standby portfolio: three structurally diverse mappings")
    print("=" * 72)
    portfolio = k_alternative_mappings(pipeline, network, request, k=3)
    for rank, mapping in enumerate(portfolio, start=1):
        shared = set(mapping.path) & set(portfolio[0].path) - {request.source,
                                                               request.destination}
        print(f"alternative {rank}: delay {mapping.delay_ms:8.1f} ms, "
              f"path {mapping.path} "
              f"({len(shared)} interior nodes shared with the primary)")

    print()
    print("=" * 72)
    print("3. End-to-end cost of the most critical failure")
    print("=" * 72)
    if critical is not None and plan.impacts[critical].survivable:
        healthy = simulate_interactive(plan.primary)
        fallback = plan.fallback_for(critical)
        degraded = simulate_interactive(fallback)
        print(f"healthy primary response : {healthy.delay_ms:9.1f} ms")
        print(f"after node {critical} fails (fallback): {degraded.delay_ms:9.1f} ms "
              f"({degraded.delay_ms / healthy.delay_ms:.2f}x)")
    else:
        print("the most critical failure is unsurvivable on this topology")

    out_dir = Path("experiment_outputs")
    primary_dot = write_dot(mapping_to_dot(plan.primary, name="primary"),
                            out_dir / "fault_primary.dot")
    print(f"\nGraphviz renderings written to {primary_dot.parent}/")
    if critical is not None and plan.impacts[critical].survivable:
        write_dot(mapping_to_dot(plan.fallback_for(critical),
                                 name=f"fallback-after-{critical}"),
                  out_dir / "fault_fallback.dot")


if __name__ == "__main__":
    main()
