"""Serving quickstart: the micro-batching solve service end to end.

Starts the service in-process (the same stack ``repro serve`` runs), posts a
burst of concurrent same-network solve requests through the client helper,
and shows them coalescing into one tensor group flush — then prints the
service's health payload.  Run with::

    PYTHONPATH=src python examples/service_quickstart.py
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

from repro.generators import random_network, random_pipeline, random_request
from repro.model import ProblemInstance
from repro.service import BackgroundServer, ServiceConfig


def main() -> None:
    # Eight camera pipelines to map onto one shared transport network — the
    # streaming-service shape of the paper: long-lived infrastructure,
    # per-request pipelines.
    network = random_network(24, 60, seed=7)
    instances = [
        ProblemInstance(
            pipeline=random_pipeline(10, seed=70 + i),
            network=network,
            request=random_request(network, seed=170 + i, min_hop_distance=2),
            name=f"camera-{i}")
        for i in range(8)
    ]

    config = ServiceConfig(max_batch=8, max_wait_ms=250.0)
    with BackgroundServer(config) as server:
        client = server.client()
        print(f"service up on {server.host}:{server.port}")

        # Eight concurrent clients; the service coalesces them into one
        # micro-batch flush and the tensor engine solves them together.
        with ThreadPoolExecutor(max_workers=len(instances)) as pool:
            responses = list(pool.map(client.solve, instances))

        for response in responses:
            label = response["name"]
            if response["ok"]:
                mapping = response["mapping"]
                print(f"  {label}: delay {mapping['delay_ms']:8.2f} ms on "
                      f"path {mapping['path']} "
                      f"(group {response['group_id']}, "
                      f"size {response['group_size']})")
            else:
                print(f"  {label}: failed — {response['error']}")

        status = client.healthz()
        print(f"flushes: {status['flushes_total']} "
              f"(coalesced: {status['coalesced_flushes_total']}), "
              f"interned networks: {status['interned_networks']}, "
              f"backend: {status['backend']}")


if __name__ == "__main__":
    main()
