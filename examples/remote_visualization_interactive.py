#!/usr/bin/env python3
"""Domain scenario 1: interactive remote visualization over a wide-area network.

The paper's motivating interactive application is a remote visualization
system (e.g. for the Terascale Supernova Initiative): an interactive parameter
update triggers data filtering, isosurface extraction, geometry rendering,
image compositing and final display, with the raw data on a remote
supercomputer site and the scientist at another site.  The objective is the
*minimum end-to-end delay* so the system feels responsive.

This example:

1. builds the visualization pipeline workload and a two-level WAN topology
   (fast clusters joined by thin wide-area links),
2. maps it with ELPC and the baselines,
3. shows how the optimal placement changes when the dataset grows (the
   "interactivity cliff": beyond some size even the optimal mapping cannot
   keep the response under a given threshold),
4. demonstrates the adaptive re-mapping extension when a node slows down
   mid-session.

Run with:  python examples/remote_visualization_interactive.py
"""

from repro import EndToEndRequest, Objective, solve
from repro.analysis import mapping_walkthrough
from repro.extensions import ResourceProfile, compare_static_vs_adaptive
from repro.generators import remote_visualization_pipeline, wan_cluster_network


def main() -> None:
    # Three sites of four nodes each: site 0 holds the data (supercomputer),
    # site 2 hosts the end user's workstation.
    network = wan_cluster_network(n_clusters=3, nodes_per_cluster=4, seed=11,
                                  wan_bandwidth_factor=0.08, wan_delay_ms=25.0)
    source = 0            # first node of cluster 0 (the data repository)
    destination = 11      # last node of cluster 2 (the scientist's workstation)
    request = EndToEndRequest(source=source, destination=destination)

    print("=" * 72)
    print("Remote visualization: minimum end-to-end delay across three sites")
    print("=" * 72)
    pipeline = remote_visualization_pipeline(dataset_bytes=4_000_000)
    mappings = {name: solve(name, pipeline, network, request, Objective.MIN_DELAY)
                for name in ("elpc", "streamline", "greedy")}
    for name, mapping in mappings.items():
        print(f"{name:>10}: {mapping.delay_ms:9.2f} ms over path {mapping.path}")
    print()
    print(mapping_walkthrough(mappings["elpc"],
                              title="ELPC placement for the 4 MB dataset"))

    print()
    print("=" * 72)
    print("Scaling the dataset: where does interactivity break down?")
    print("=" * 72)
    threshold_ms = 1000.0
    print(f"{'dataset':>12} {'ELPC delay':>14} {'greedy delay':>14}  interactive(<{threshold_ms:.0f} ms)?")
    for megabytes in (1, 2, 4, 8, 16, 32):
        pipeline = remote_visualization_pipeline(dataset_bytes=megabytes * 1_000_000)
        elpc = solve("elpc", pipeline, network, request, Objective.MIN_DELAY)
        greedy = solve("greedy", pipeline, network, request, Objective.MIN_DELAY)
        verdict = "yes" if elpc.delay_ms <= threshold_ms else "no"
        print(f"{megabytes:>10} MB {elpc.delay_ms:>12.1f} ms {greedy.delay_ms:>12.1f} ms   {verdict}")

    print()
    print("=" * 72)
    print("Adaptive re-mapping when the rendering node slows down mid-session")
    print("=" * 72)
    pipeline = remote_visualization_pipeline(dataset_bytes=4_000_000)
    base_mapping = solve("elpc", pipeline, network, request, Objective.MIN_DELAY)
    # The intermediate node carrying the most computation loses 70 % of its
    # capacity at t = 20 s (e.g. a competing batch job arrives).  The source
    # and destination are excluded: they are pinned by the request, so no
    # re-mapping could route around them anyway.
    breakdown = base_mapping.breakdown()
    intermediate = [(t, node) for t, node in zip(breakdown.node_times_ms, base_mapping.path)
                    if node not in (request.source, request.destination)]
    busiest_node = max(intermediate)[1]
    profile = ResourceProfile()
    profile.set_node_factor(busiest_node, time_s=20.0, factor=0.3)
    comparison = compare_static_vs_adaptive(pipeline, network, request, profile,
                                            horizon_s=60.0, step_s=5.0,
                                            remap_interval=10.0)
    print(f"perturbed node: {busiest_node} (drops to 30 % capacity at t=20 s)")
    print(f"mean delay without re-mapping : {comparison.mean_static_ms:9.2f} ms")
    print(f"mean delay with re-mapping    : {comparison.mean_adaptive_ms:9.2f} ms "
          f"({comparison.remap_count} re-optimisations)")
    print(f"adaptation speed-up           : {comparison.improvement_ratio:9.2f}x")


if __name__ == "__main__":
    main()
