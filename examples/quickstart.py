#!/usr/bin/env python3
"""Quickstart: build a small network and pipeline, map it, inspect the result.

This is the five-minute tour of the public API:

1. describe a linear computing pipeline (here: a tiny remote-visualization
   workflow),
2. describe a transport network (nodes with processing power, links with
   bandwidth and minimum link delay),
3. run the ELPC algorithms for both objectives of the paper,
4. compare against the Streamline and Greedy baselines,
5. replay the chosen mapping in the discrete-event simulator to confirm the
   analytical prediction.

Run with:  python examples/quickstart.py
"""

from repro import (
    EndToEndRequest,
    Objective,
    Pipeline,
    TransportNetwork,
    elpc_max_frame_rate,
    elpc_min_delay,
    solve,
)
from repro.analysis import mapping_walkthrough
from repro.model import CommunicationLink, ComputingNode
from repro.simulation import simulate_interactive, simulate_streaming


def build_pipeline() -> Pipeline:
    """A 5-module pipeline: data source -> filter -> render -> composite -> display."""
    return Pipeline.from_stage_specs(
        source_bytes=2_000_000,                    # 2 MB raw dataset
        stages=[
            (15.0, 800_000),    # data filtering: 15 ops/byte, emits 800 kB
            (90.0, 300_000),    # rendering: heavy compute, emits 300 kB
            (25.0, 200_000),    # compositing
            (8.0, 0),           # final display at the end user
        ],
        stage_names=["data filtering", "rendering", "compositing", "display"],
        name="quickstart visualization",
    )


def build_network() -> TransportNetwork:
    """Six heterogeneous nodes with an arbitrary (non-complete) topology."""
    nodes = [
        ComputingNode(node_id=0, processing_power=80.0, name="data source host"),
        ComputingNode(node_id=1, processing_power=300.0, name="cluster A"),
        ComputingNode(node_id=2, processing_power=450.0, name="cluster B"),
        ComputingNode(node_id=3, processing_power=150.0, name="edge server"),
        ComputingNode(node_id=4, processing_power=500.0, name="GPU node"),
        ComputingNode(node_id=5, processing_power=60.0, name="end-user workstation"),
    ]
    links = [
        CommunicationLink(0, 1, bandwidth_mbps=600, min_delay_ms=0.5),
        CommunicationLink(0, 3, bandwidth_mbps=100, min_delay_ms=2.0),
        CommunicationLink(1, 2, bandwidth_mbps=900, min_delay_ms=0.3),
        CommunicationLink(1, 4, bandwidth_mbps=400, min_delay_ms=0.8),
        CommunicationLink(2, 4, bandwidth_mbps=800, min_delay_ms=0.4),
        CommunicationLink(2, 5, bandwidth_mbps=90, min_delay_ms=5.0),
        CommunicationLink(3, 4, bandwidth_mbps=250, min_delay_ms=1.0),
        CommunicationLink(4, 5, bandwidth_mbps=120, min_delay_ms=4.0),
    ]
    return TransportNetwork(nodes=nodes, links=links, name="quickstart WAN")


def main() -> None:
    pipeline = build_pipeline()
    network = build_network()
    request = EndToEndRequest(source=0, destination=5)

    print("=" * 70)
    print("1. Interactive objective: minimum end-to-end delay (node reuse allowed)")
    print("=" * 70)
    delay_mapping = elpc_min_delay(pipeline, network, request)
    print(mapping_walkthrough(delay_mapping, title="ELPC minimum-delay mapping"))

    print()
    print("Baselines on the same instance:")
    for name in ("streamline", "greedy"):
        mapping = solve(name, pipeline, network, request, Objective.MIN_DELAY)
        print(f"  {name:>10}: {mapping.delay_ms:8.2f} ms  (path {mapping.path})")
    print(f"  {'elpc':>10}: {delay_mapping.delay_ms:8.2f} ms  <- optimal")

    print()
    print("=" * 70)
    print("2. Streaming objective: maximum frame rate (no node reuse)")
    print("=" * 70)
    rate_mapping = elpc_max_frame_rate(pipeline, network, request)
    print(mapping_walkthrough(rate_mapping, title="ELPC maximum-frame-rate mapping"))

    print()
    print("=" * 70)
    print("3. Validate the analytical model with the discrete-event simulator")
    print("=" * 70)
    interactive = simulate_interactive(delay_mapping)
    print(f"interactive replay : measured {interactive.delay_ms:.2f} ms, "
          f"predicted {interactive.predicted_delay_ms:.2f} ms "
          f"(error {interactive.prediction_error_ms:.2e} ms)")
    streaming = simulate_streaming(rate_mapping, n_frames=60)
    print(f"streaming replay   : measured {streaming.achieved_frame_rate_fps:.2f} frames/s, "
          f"predicted {streaming.predicted_frame_rate_fps:.2f} frames/s "
          f"(bottleneck station: {streaming.busiest_station})")


if __name__ == "__main__":
    main()
