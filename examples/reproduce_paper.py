#!/usr/bin/env python3
"""Regenerate every table and figure of the paper's evaluation section.

Running this script reproduces:

* Fig. 2 — the 20-case comparison table (minimum end-to-end delay and maximum
  frame rate for ELPC, Streamline and Greedy),
* Fig. 3 / Fig. 4 — the mapping walkthroughs on the small illustration case,
* Fig. 5 / Fig. 6 — the per-case performance curves (ASCII charts + CSV),
* the §4.3 runtime-scaling observation (milliseconds for small cases, larger
  but polynomially-growing times for big ones).

All outputs are printed and also written under ``experiment_outputs/`` so they
can be diffed against EXPERIMENTS.md.

Run with:  python examples/reproduce_paper.py [--max-cases N] [--output DIR]
"""

import argparse
from pathlib import Path

from repro.analysis import (
    reproduce_fig2,
    reproduce_fig3,
    reproduce_fig4,
    reproduce_fig5,
    reproduce_fig6,
    runtime_scaling,
    write_all_outputs,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--max-cases", type=int, default=None,
                        help="restrict the suite to its first N cases (default: all 20)")
    parser.add_argument("--output", type=Path, default=Path("experiment_outputs"),
                        help="directory for the text/CSV artifacts")
    args = parser.parse_args()

    print("#" * 78)
    print("# Fig. 2 — mapping performance comparison (table)")
    print("#" * 78)
    fig2 = reproduce_fig2(max_cases=args.max_cases)
    print(fig2.table_text)
    print()
    print(f"ELPC wins or ties: {fig2.elpc_wins_delay()}/{len(fig2.delay_run.cases)} "
          f"delay cases, {fig2.elpc_wins_framerate()}/{len(fig2.framerate_run.cases)} "
          f"frame-rate cases")
    print(f"mean improvement over Streamline: "
          f"{fig2.delay_run.mean_improvement('streamline'):.2f}x (delay), "
          f"{fig2.framerate_run.mean_improvement('streamline'):.2f}x (frame rate)")
    print(f"mean improvement over Greedy    : "
          f"{fig2.delay_run.mean_improvement('greedy'):.2f}x (delay), "
          f"{fig2.framerate_run.mean_improvement('greedy'):.2f}x (frame rate)")

    print()
    print("#" * 78)
    print("# Fig. 3 / Fig. 4 — mapping walkthroughs on the small illustration case")
    print("#" * 78)
    print(reproduce_fig3().walkthrough_text)
    print()
    print(reproduce_fig4().walkthrough_text)

    print()
    print("#" * 78)
    print("# Fig. 5 — minimum end-to-end delay per case")
    print("#" * 78)
    fig5 = reproduce_fig5(run=fig2.delay_run)
    print(fig5.chart_text)

    print()
    print("#" * 78)
    print("# Fig. 6 — maximum frame rate per case")
    print("#" * 78)
    fig6 = reproduce_fig6(run=fig2.framerate_run)
    print(fig6.chart_text)

    print()
    print("#" * 78)
    print("# §4.3 — algorithm runtime scaling")
    print("#" * 78)
    scaling = runtime_scaling()
    print(f"{'(m, n, l)':>20} {'n*|E| work':>12} {'ELPC delay DP':>16} {'ELPC rate DP':>16}")
    for size, work, td, tf in zip(scaling.sizes, scaling.work_units(),
                                  scaling.delay_runtimes_s, scaling.framerate_runtimes_s):
        print(f"{str(size):>20} {work:>12.0f} {td * 1e3:>13.1f} ms {tf * 1e3:>13.1f} ms")

    print()
    written = write_all_outputs(args.output, max_cases=args.max_cases)
    print("artifacts written:")
    for name, path in sorted(written.items()):
        print(f"  {name:>16}: {path}")


if __name__ == "__main__":
    main()
