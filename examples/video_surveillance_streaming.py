#!/usr/bin/env python3
"""Domain scenario 2: streaming video surveillance — maximise the frame rate.

The paper's motivating streaming application is "a video-based real-time
monitoring system for detecting criminal suspects at an entrance" whose frames
continuously flow through feature extraction, facial reconstruction, pattern
recognition, data mining and identity matching.  The objective is the
*maximum frame rate* (the reciprocal of the bottleneck time), with each
pipeline stage on its own node so all stages work concurrently.

This example:

1. maps the surveillance pipeline onto a random arbitrary-topology network
   with ELPC, Streamline and Greedy and compares the achievable frame rates,
2. replays the ELPC mapping in the discrete-event simulator and shows that the
   measured steady-state rate matches the analytical bottleneck prediction,
3. quantifies what the paper's no-reuse restriction costs by also running the
   node-reuse extension (future-work feature),
4. sweeps the camera resolution to find the largest frame size that still
   sustains a target rate.

Run with:  python examples/video_surveillance_streaming.py
"""

from repro import EndToEndRequest, Objective, solve
from repro.analysis import mapping_walkthrough
from repro.exceptions import InfeasibleMappingError
from repro.generators import random_network, random_request, video_surveillance_pipeline
from repro.simulation import simulate_streaming


def main() -> None:
    network = random_network(n_nodes=24, n_links=70, seed=5, name="campus network")
    request = random_request(network, seed=5, min_hop_distance=3)
    pipeline = video_surveillance_pipeline(frame_bytes=600_000)

    print("=" * 72)
    print(f"Video surveillance streaming: camera at node {request.source}, "
          f"operations centre at node {request.destination}")
    print("=" * 72)
    results = {}
    for name in ("elpc", "streamline", "greedy"):
        try:
            mapping = solve(name, pipeline, network, request, Objective.MAX_FRAME_RATE)
            results[name] = mapping
            print(f"{name:>10}: {mapping.frame_rate_fps:7.2f} frames/s "
                  f"(bottleneck {mapping.bottleneck_ms:7.2f} ms, path {mapping.path})")
        except InfeasibleMappingError as exc:
            print(f"{name:>10}: infeasible ({exc})")

    elpc_mapping = results["elpc"]
    print()
    print(mapping_walkthrough(elpc_mapping, title="ELPC streaming placement"))

    print()
    print("=" * 72)
    print("Discrete-event replay of the ELPC mapping (100 frames, saturated source)")
    print("=" * 72)
    replay = simulate_streaming(elpc_mapping, n_frames=100)
    print(f"predicted frame rate : {replay.predicted_frame_rate_fps:7.2f} frames/s")
    print(f"measured frame rate  : {replay.achieved_frame_rate_fps:7.2f} frames/s "
          f"(relative error {replay.prediction_error_relative:.2%})")
    print(f"bottleneck station   : {replay.busiest_station} "
          f"(utilisation {replay.station_utilisation[replay.busiest_station]:.1%})")
    print("station utilisations :")
    for station, value in sorted(replay.station_utilisation.items()):
        print(f"    {station:<14} {value:6.1%}")

    print()
    print("=" * 72)
    print("What does the no-reuse restriction cost? (future-work extension)")
    print("=" * 72)
    reuse_mapping = solve("elpc-reuse", pipeline, network, request, Objective.MAX_FRAME_RATE)
    print(f"frame rate without node reuse : {elpc_mapping.frame_rate_fps:7.2f} frames/s "
          f"({elpc_mapping.n_groups} nodes used)")
    print(f"frame rate with node reuse    : {reuse_mapping.frame_rate_fps:7.2f} frames/s "
          f"({len(set(reuse_mapping.path))} nodes used)")

    print()
    print("=" * 72)
    print("Camera-resolution sweep: largest frame that still sustains 10 frames/s")
    print("=" * 72)
    target_fps = 10.0
    print(f"{'frame size':>12} {'ELPC rate':>12}  sustains {target_fps:.0f} fps?")
    best = None
    for kilobytes in (100, 200, 400, 600, 800, 1200, 1600, 2400):
        pipeline = video_surveillance_pipeline(frame_bytes=kilobytes * 1000)
        mapping = solve("elpc", pipeline, network, request, Objective.MAX_FRAME_RATE)
        ok = mapping.frame_rate_fps >= target_fps
        if ok:
            best = kilobytes
        print(f"{kilobytes:>10} kB {mapping.frame_rate_fps:>10.2f} fps   {'yes' if ok else 'no'}")
    if best is not None:
        print(f"-> highest sustainable resolution: {best} kB per frame")


if __name__ == "__main__":
    main()
