#!/usr/bin/env python3
"""Domain scenario 3: calibrate the cost model from (synthetic) measurements.

The paper assumes the cost-model parameters — link bandwidths, minimum link
delays, node processing powers — are known, and points to active measurement
techniques ([13], [14]) for obtaining them in a real deployment.  This example
exercises that calibration path end to end:

1. take a "true" network (which a real deployment could not observe directly),
2. run a synthetic active-probing campaign over every link and node,
3. fit the cost-model parameters by linear regression,
4. map the pipeline on the *estimated* network and evaluate the resulting
   placement on the *true* network, quantifying how measurement noise
   propagates into mapping quality.

Run with:  python examples/measurement_calibration.py
"""

from repro import EndToEndRequest, Objective, end_to_end_delay_ms, solve
from repro.generators import random_network, random_request, remote_visualization_pipeline
from repro.measurement import calibrate_network, estimate_link, probe_link

def main() -> None:
    true_network = random_network(n_nodes=16, n_links=40, seed=23, name="true WAN")
    request = random_request(true_network, seed=23, min_hop_distance=2)
    pipeline = remote_visualization_pipeline(dataset_bytes=3_000_000)

    print("=" * 72)
    print("Single-link estimation: probe sweep + linear regression")
    print("=" * 72)
    link = true_network.links()[0]
    observations = probe_link(link.bandwidth_mbps, link.min_delay_ms,
                              noise_fraction=0.05, repetitions=5, seed=1)
    estimate = estimate_link(observations)
    print(f"true bandwidth      : {link.bandwidth_mbps:9.2f} Mbit/s")
    print(f"estimated bandwidth : {estimate.bandwidth_mbps:9.2f} Mbit/s "
          f"(error {estimate.relative_bandwidth_error(link.bandwidth_mbps):.2%})")
    print(f"true MLD            : {link.min_delay_ms:9.3f} ms")
    print(f"estimated MLD       : {estimate.min_delay_ms:9.3f} ms "
          f"(fit R^2 = {estimate.fit.r_squared:.4f})")

    print()
    print("=" * 72)
    print("Whole-network calibration campaign at three noise levels")
    print("=" * 72)
    print(f"{'noise':>8} {'mean bw err':>12} {'mean pw err':>12} "
          f"{'delay (true map)':>18} {'delay (est. map)':>18} {'penalty':>9}")
    reference = solve("elpc", pipeline, true_network, request, Objective.MIN_DELAY)
    for noise in (0.01, 0.05, 0.20):
        report = calibrate_network(true_network, noise_fraction=noise, seed=7)
        estimated_mapping = solve("elpc", pipeline, report.estimated_network, request,
                                  Objective.MIN_DELAY)
        # Evaluate the mapping chosen from estimates on the *true* network.
        realized = end_to_end_delay_ms(pipeline, true_network,
                                       estimated_mapping.groups, estimated_mapping.path)
        penalty = realized / reference.delay_ms
        print(f"{noise:>8.0%} {report.mean_bandwidth_error:>12.2%} "
              f"{report.mean_power_error:>12.2%} {reference.delay_ms:>15.2f} ms "
              f"{realized:>15.2f} ms {penalty:>8.3f}x")

    print()
    print("A penalty of 1.0x means the mapping chosen from noisy estimates is "
          "still the true optimum; small penalties show the mapping decision is "
          "robust to realistic measurement noise.")


if __name__ == "__main__":
    main()
