"""A6 — substrate ablation: measurement noise vs mapping quality.

The paper assumes the cost-model parameters are obtained by active measurement
([13], [14]) and does not study how estimation error affects the mapping
decision.  This bench quantifies it on the reproduction's calibration
substrate: a whole-network probing campaign is run at increasing noise levels,
ELPC maps the pipeline on the *estimated* network, and the chosen mapping is
re-evaluated on the *true* network.  The penalty relative to the true optimum
answers "how good do the measurements have to be for the optimisation to still
pay off?" — the practical question behind deploying the paper's method.
"""

from __future__ import annotations

import pytest

from repro.core import elpc_min_delay
from repro.generators import random_network, random_request, remote_visualization_pipeline
from repro.measurement import calibrate_network
from repro.model import end_to_end_delay_ms

_NOISE_LEVELS = (0.01, 0.05, 0.20)


@pytest.mark.benchmark(group="measurement-calibration")
def test_calibration_campaign_and_mapping_penalty(benchmark):
    truth = random_network(14, 38, seed=777, name="true-wan")
    pipeline = remote_visualization_pipeline(dataset_bytes=3_000_000)
    request = random_request(truth, seed=777, min_hop_distance=2)
    reference = elpc_min_delay(pipeline, truth, request)

    def run_campaigns():
        penalties = {}
        errors = {}
        for noise in _NOISE_LEVELS:
            report = calibrate_network(truth, noise_fraction=noise,
                                       repetitions=3, seed=7)
            estimated_mapping = elpc_min_delay(pipeline, report.estimated_network,
                                               request)
            realised = end_to_end_delay_ms(pipeline, truth,
                                           estimated_mapping.groups,
                                           estimated_mapping.path)
            penalties[noise] = realised / reference.delay_ms
            errors[noise] = report.mean_bandwidth_error
        return penalties, errors

    penalties, errors = benchmark.pedantic(run_campaigns, rounds=1, iterations=1)
    benchmark.extra_info["mapping_penalty_by_noise"] = penalties
    benchmark.extra_info["mean_bandwidth_error_by_noise"] = errors

    # Estimation error grows with probe noise ...
    assert errors[0.01] <= errors[0.20]
    # ... the mapping chosen from estimates can never beat the true optimum ...
    assert all(p >= 1.0 - 1e-9 for p in penalties.values())
    # ... and at realistic noise levels the decision stays near-optimal.
    assert penalties[0.01] <= 1.05
    assert penalties[0.05] <= 1.25
    assert penalties[0.20] <= 2.0


@pytest.mark.benchmark(group="measurement-calibration")
def test_single_link_estimation_speed(benchmark):
    """Micro-benchmark of one probe sweep + regression (the per-link unit of work)."""
    from repro.measurement import estimate_link, probe_link

    def probe_and_fit():
        observations = probe_link(250.0, 2.0, noise_fraction=0.05,
                                  repetitions=5, seed=3)
        return estimate_link(observations)

    estimate = benchmark(probe_and_fit)
    assert estimate.relative_bandwidth_error(250.0) < 0.2
