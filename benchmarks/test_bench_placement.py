"""Benchmark: capacity-aware joint placement vs capacity-blind sequential.

The placement subsystem (:mod:`repro.placement`, ``repro place``) exists to
admit *more* of a contended batch than the obvious baseline: solve every
pipeline on the full network as if it were alone (:func:`repro.solve_many`)
and then admit mappings first-come-first-served until the cluster's budgets
run out.  That baseline is capacity-blind — its mappings pile onto the same
fast nodes, so the ledger fills after a few commits even though plenty of
aggregate capacity remains.

This file pins that claim on a fixed moderately-contended scenario (16
ten-module pipelines over one 20-node cluster at 0.3x capacity):

* ``place-greedy`` (sequential packing, each solve on the *residual*
  cluster) must admit **strictly more** requests than the capacity-blind
  baseline,
* ``place-flow`` (joint min-cost max-flow) must admit at least as many as
  ``place-greedy``,
* the batch-level validator must replay every accepted set clean.

These quality assertions run unconditionally — unlike the wall-clock
speedup benches there is no ``REPRO_SKIP_SPEEDUP_ASSERT`` escape hatch,
because admission counts on a fixed seed are deterministic on any runner.
The timed metric is the full ``place-flow`` run (flow build + SSP rounds +
rounding + packing fallback) so regressions in the optimizer's cost show up
in the regression gate.
"""

from __future__ import annotations

import pytest

from repro.core import Objective, place_many, solve_many
from repro.exceptions import CapacityError
from repro.generators import random_network, random_pipeline, random_request
from repro.model import ProblemInstance
from repro.placement import ClusterState, validate_placements

#: Fixed contended scenario: the hierarchy blind < greedy <= flow is stable
#: on this seed (blind=2, greedy=5, flow=6 at authoring time).
_COUNT = 16
_N_MODULES = 10
_K_NODES = 20
_N_LINKS = 50
_SEED = 17
_CAPACITY_FACTOR = 0.3
_DEMAND_FPS = 1.0


def _contended_batch():
    network = random_network(_K_NODES, _N_LINKS, seed=_SEED)
    instances = [
        ProblemInstance(pipeline=random_pipeline(_N_MODULES, seed=900 + i),
                        network=network,
                        request=random_request(network, seed=1000 + i,
                                               min_hop_distance=2),
                        name=f"bench-place-{i}")
        for i in range(_COUNT)
    ]
    network.dense_view()
    return instances


def _fresh_cluster(network):
    return ClusterState.from_network(
        network, node_capacity_factor=_CAPACITY_FACTOR,
        link_capacity_factor=_CAPACITY_FACTOR)


def _blind_sequential(instances, cluster):
    """The baseline: uncontended per-pipeline optima, admitted first-come
    first-served while they still fit — no mapping ever adapts."""
    direct = solve_many(instances, solver="elpc-vec",
                        objective=Objective.MIN_DELAY)
    admitted = []
    for item in direct.items:
        if item.mapping is None:
            continue
        try:
            cluster.commit(cluster.demand_of(item.mapping,
                                             demand_fps=_DEMAND_FPS))
        except CapacityError:
            continue
        admitted.append(item)
    return admitted


@pytest.fixture(scope="module")
def placement_runs():
    instances = _contended_batch()
    network = instances[0].network

    blind_cluster = _fresh_cluster(network)
    blind = _blind_sequential(instances, blind_cluster)

    greedy_cluster = _fresh_cluster(network)
    greedy = place_many(instances, placer="place-greedy",
                        cluster=greedy_cluster, demand_fps=_DEMAND_FPS)

    flow_cluster = _fresh_cluster(network)
    flow = place_many(instances, placer="place-flow",
                      cluster=flow_cluster, demand_fps=_DEMAND_FPS)

    return (instances, blind, blind_cluster, greedy, greedy_cluster,
            flow, flow_cluster)


def test_placement_quality_hierarchy(placement_runs):
    """Unconditional acceptance bar: blind < greedy <= flow, all validated."""
    (_, blind, blind_cluster, greedy, greedy_cluster,
     flow, flow_cluster) = placement_runs

    assert greedy.n_admitted > len(blind), (
        f"capacity-aware packing ({greedy.n_admitted}) must beat the "
        f"capacity-blind baseline ({len(blind)})")
    assert flow.n_admitted >= greedy.n_admitted
    # Objective over the placers' common admitted set: joint optimization
    # must not pay for its extra admissions with worse shared mappings.
    common = set(greedy.admitted_indices()) & set(flow.admitted_indices())
    assert flow.objective_total(common) <= \
        greedy.objective_total(common) * (1 + 1e-9)

    blind_cluster.validate()
    validate_placements(greedy.items, greedy_cluster)
    validate_placements(flow.items, flow_cluster)


@pytest.mark.benchmark(group="placement")
def test_placement_flow_joint(benchmark, placement_runs):
    """Timed metric: one full place-flow run over the contended batch."""
    (instances, blind, _, greedy, _, flow, _) = placement_runs

    def run():
        return place_many(instances, placer="place-flow",
                          node_capacity_factor=_CAPACITY_FACTOR,
                          link_capacity_factor=_CAPACITY_FACTOR,
                          demand_fps=_DEMAND_FPS)

    result = benchmark(run)
    assert result.n_admitted == flow.n_admitted

    benchmark.extra_info["batch_size"] = _COUNT
    benchmark.extra_info["blind_admitted"] = len(blind)
    benchmark.extra_info["greedy_admitted"] = greedy.n_admitted
    benchmark.extra_info["flow_admitted"] = flow.n_admitted
    benchmark.extra_info["flow_objective_total_ms"] = round(
        flow.objective_total(), 3)
    benchmark.extra_info["used_fallback"] = bool(
        flow.extras.get("used_fallback"))


@pytest.mark.benchmark(group="placement")
def test_placement_greedy_packing(benchmark, placement_runs):
    """Timed metric: sequential capacity-aware packing of the same batch."""
    (instances, _, _, greedy, _, _, _) = placement_runs

    def run():
        return place_many(instances, placer="place-greedy",
                          node_capacity_factor=_CAPACITY_FACTOR,
                          link_capacity_factor=_CAPACITY_FACTOR,
                          demand_fps=_DEMAND_FPS)

    result = benchmark(run)
    assert result.n_admitted == greedy.n_admitted

    benchmark.extra_info["batch_size"] = _COUNT
    benchmark.extra_info["greedy_admitted"] = greedy.n_admitted
