"""A3 — validation: the discrete-event simulator agrees with Eq. 1 / Eq. 2.

The paper's evaluation is purely analytical (Eq. 1 for delay, Eq. 2 for the
bottleneck/frame rate).  This bench replays ELPC mappings from the case suite
in the discrete-event simulator and checks that

* the measured single-dataset end-to-end delay equals the Eq. 1 prediction
  (exactly, up to float rounding), and
* the measured steady-state frame rate of a saturated stream converges to the
  Eq. 2 prediction (within a small tolerance set by the finite frame count).

If these ever diverge, either the cost model or the simulator has drifted —
which would invalidate the rest of the reproduction.
"""

from __future__ import annotations

import pytest

from repro.core import elpc_max_frame_rate, elpc_min_delay
from repro.simulation import simulate_interactive, simulate_streaming

#: A spread of small / medium / large cases (simulating all 20 would dominate
#: the benchmark wall time without adding information).
_CASE_INDICES = [0, 4, 9, 14, 19]


@pytest.mark.benchmark(group="sim-validation")
def test_interactive_replay_matches_eq1(benchmark, full_suite):
    instances = [full_suite[i] for i in _CASE_INDICES]
    mappings = [elpc_min_delay(inst.pipeline, inst.network, inst.request)
                for inst in instances]

    def replay_all():
        return [simulate_interactive(mapping) for mapping in mappings]

    results = benchmark(replay_all)
    worst = max(result.prediction_error_relative for result in results)
    benchmark.extra_info["worst_relative_error"] = worst
    assert worst < 1e-9
    for result, mapping in zip(results, mappings):
        assert result.delay_ms == pytest.approx(mapping.delay_ms, rel=1e-12)


@pytest.mark.benchmark(group="sim-validation")
def test_streaming_replay_matches_eq2(benchmark, full_suite):
    instances = [full_suite[i] for i in _CASE_INDICES]
    mappings = [elpc_max_frame_rate(inst.pipeline, inst.network, inst.request)
                for inst in instances]

    def replay_all():
        return [simulate_streaming(mapping, n_frames=60) for mapping in mappings]

    results = benchmark.pedantic(replay_all, rounds=1, iterations=1)
    worst = max(result.prediction_error_relative for result in results)
    benchmark.extra_info["worst_relative_error"] = worst
    benchmark.extra_info["measured_fps"] = [r.achieved_frame_rate_fps for r in results]
    assert worst < 1e-3
    # The empirically busiest station dominates the horizon.  It is not fully
    # saturated over the whole makespan because the horizon includes the
    # pipeline fill and drain phases (long pipelines such as case 20 spend a
    # noticeable fraction of the 60-frame run filling up).
    for result in results:
        assert result.station_utilisation[result.busiest_station] > 0.6
