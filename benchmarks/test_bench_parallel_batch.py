"""Benchmark: small-instance batch throughput on the shared-memory runtime.

The parallel runtime (:mod:`repro.core.parallel`, behind
``solve_many(workers=N)``) exists for exactly one regime: **many small
instances** (k ≈ 20-node networks, B ≥ 256 per batch), where the old
per-item-pickling pool lost to its own serialisation costs.  This file
records the sequential-vs-parallel wall times of that workload and asserts
the PR's acceptance bar: **workers=4 must be at least 2× faster than
workers=1 on a B=256 / k=20 batch**, with results bit-identical to the
sequential path for all three ELPC engines.

The timings come from the same
:func:`repro.analysis.experiments.parallel_batch_speedup` driver the library
exposes, so the numbers asserted here and printed by users come from one
code path — and the driver cross-checks every objective value between the
sequential and pooled runs, so the timing claim can never outlive the
equivalence claim.

Like the other speedup benches, the wall-clock ratio assertion is skipped
when ``REPRO_SKIP_SPEEDUP_ASSERT=1`` (noisy shared runners) — and
additionally when the machine has fewer than 4 CPUs, where a 4-worker pool
cannot physically beat a sequential run; the bit-identity assertions always
run.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis import parallel_batch_speedup
from repro.core import Objective, solve_many
from repro.core.parallel import ParallelBatchRunner
from repro.generators import random_network, random_pipeline, random_request
from repro.model import ProblemInstance

#: Acceptance-bar shape: B=256 8-module pipelines over eight 20-node /
#: 40-link networks (round-robin), workers 1 vs 4.
_BATCH_SIZE = 256
_N_MODULES = 8
_K_NODES = 20
_N_LINKS = 40
_N_NETWORKS = 8
_WORKERS = 4
_ENGINES = ("elpc", "elpc-vec", "elpc-tensor")


@pytest.fixture(scope="module")
def speedup_result():
    """One measured workers ∈ {1, 4} sweep shared by the assertions below."""
    return parallel_batch_speedup(worker_counts=(1, _WORKERS),
                                  batch_size=_BATCH_SIZE,
                                  n_modules=_N_MODULES, k_nodes=_K_NODES,
                                  n_links=_N_LINKS, n_networks=_N_NETWORKS,
                                  seed=23, repetitions=2)


def _batch_instances(count=_BATCH_SIZE):
    networks = [random_network(_K_NODES, _N_LINKS, seed=23 + i)
                for i in range(_N_NETWORKS)]
    instances = []
    for b in range(count):
        network = networks[b % _N_NETWORKS]
        instances.append(ProblemInstance(
            pipeline=random_pipeline(_N_MODULES, seed=123 + b),
            network=network,
            request=random_request(network, seed=223 + b, min_hop_distance=1),
            name=f"bench-parallel-{b}"))
    for network in networks:
        network.dense_view()
    return instances


@pytest.mark.benchmark(group="parallel-batch")
def test_parallel_batch_solve(benchmark, speedup_result):
    """Timed metric: one B=256 batch on a warm 2-worker runner, plus the bar."""
    instances = _batch_instances()
    with ParallelBatchRunner(workers=2) as runner:
        solve_many(instances, solver="elpc-vec",
                   objective=Objective.MIN_DELAY, runner=runner)  # warm-up
        result = benchmark(solve_many, instances, solver="elpc-vec",
                           objective=Objective.MIN_DELAY, runner=runner)
    assert result.n_solved == len(instances)
    assert result.workers == 2

    benchmark.extra_info["worker_counts"] = speedup_result.worker_counts
    benchmark.extra_info["wall_s"] = speedup_result.wall_s
    benchmark.extra_info["speedups"] = [round(x, 2)
                                        for x in speedup_result.speedups()]

    # The pooled runs must agree with the sequential reference regardless of
    # timing.
    assert speedup_result.value_mismatches == 0

    if os.environ.get("REPRO_SKIP_SPEEDUP_ASSERT") == "1":
        pytest.skip("speedup ratio assertions disabled via "
                    "REPRO_SKIP_SPEEDUP_ASSERT")
    if (os.cpu_count() or 1) < _WORKERS:
        pytest.skip(f"machine has {os.cpu_count()} CPU(s); a {_WORKERS}-worker "
                    "pool cannot beat sequential wall time here")
    for workers, ratio in zip(speedup_result.worker_counts,
                              speedup_result.speedups()):
        if workers >= _WORKERS:
            assert ratio >= 2.0, (
                f"parallel runtime only {ratio:.2f}x faster than sequential "
                f"at workers={workers} (B={_BATCH_SIZE}, k={_K_NODES}, "
                f"modules={_N_MODULES}); expected >= 2x")


@pytest.mark.benchmark(group="parallel-batch")
def test_sequential_reference_baseline(benchmark):
    """The sequential elpc-vec wall time at B=256, for the records."""
    instances = _batch_instances()
    solve_many(instances, solver="elpc-vec", objective=Objective.MIN_DELAY)
    result = benchmark(solve_many, instances, solver="elpc-vec",
                       objective=Objective.MIN_DELAY)
    assert result.n_solved == len(instances)


def test_engines_bit_identical_under_workers():
    """All three ELPC engines: workers=4 values/errors match workers=1."""
    instances = _batch_instances()
    for solver in _ENGINES:
        sequential = solve_many(instances, solver=solver,
                                objective=Objective.MIN_DELAY)
        parallel = solve_many(instances, solver=solver,
                              objective=Objective.MIN_DELAY, workers=_WORKERS)
        assert parallel.workers == _WORKERS
        assert parallel.values() == sequential.values(), solver
        assert ([item.error for item in parallel]
                == [item.error for item in sequential]), solver
