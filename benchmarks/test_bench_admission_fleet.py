"""Benchmark: shared-ledger admission control on a pre-fork fleet.

The PR's acceptance bar: routing every admission decision through the
``multiprocessing.shared_memory`` fleet ledger (one cross-process lock, one
journal write per commit) must cost **at most 20% of fleet throughput** —
a 2-replica fleet with ``--admission-control`` sustains >= 0.8x the
throughput of the same fleet without it.  The admission run uses a huge
capacity factor so every request is admitted: the measured cost is the
ledger protocol itself, not rejection short-circuits.

The second test is the correctness half of the bar: drive an oversubscribed
admission fleet, then replay exactly the mappings it admitted through
:func:`repro.placement.validate_placements` on a fresh private ledger with
the same budgets.  Zero overdraw means the replay commits cleanly and ends
with every node and link at <= 100% utilisation — if two replicas had ever
double-spent the same capacity, the replay would raise ``CapacityError``.

Like the other speedup benches, the wall-clock ratio assertion is skipped
under ``REPRO_SKIP_SPEEDUP_ASSERT=1`` and on single-core hosts; the
zero-overdraw, rejection-accounting and occupancy assertions always run.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from types import SimpleNamespace

import pytest

import repro
from repro import (
    CommunicationLink,
    ComputingModule,
    ComputingNode,
    EndToEndRequest,
    Objective,
    Pipeline,
    ProblemInstance,
    TransportNetwork,
)
from repro.placement import ClusterState, validate_placements
from repro.service import ServiceClient, generate_workload

pytestmark = pytest.mark.skipif(not hasattr(os, "fork"),
                                reason="pre-fork replicas need os.fork")

_REPLICAS = 2
_GENERATORS = 2          # concurrent loadtest subprocesses per measurement
_CLIENTS_PER_GEN = 8
_DURATION_S = 1.0
_TRIALS = 2
_WORKLOAD = dict(n_modules=4, n_nodes=8, n_links=16, seed=5)
_WORKLOAD_SIZE = 16
#: Admit-everything factor for the throughput A/B: the cost under test is
#: the shared-ledger commit protocol, not capacity exhaustion.
_HUGE_FACTOR = "1e9"


def _env():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _spawn_server(extra_args=()):
    proc = subprocess.Popen(
        [sys.executable, "-c",
         "import sys; from repro.cli import main; "
         "raise SystemExit(main(['serve', '--port', '0', '--max-wait-ms',"
         " '1'] + sys.argv[1:]))",
         *extra_args],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, env=_env(),
        text=True)
    announce = proc.stdout.readline()
    match = re.search(r"listening on 127\.0\.0\.1:(\d+)", announce)
    assert match, f"no announce line from repro serve, got {announce!r}"
    port = int(match.group(1))
    ServiceClient(port=port).wait_ready(timeout=30)
    return proc, port


def _stop_server(proc):
    proc.send_signal(signal.SIGINT)
    proc.wait(timeout=60)


def _wait_fleet(port, replicas, timeout=30.0):
    with ServiceClient(port=port, timeout=30) as client:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            status = client.healthz()
            fleet = status.get("fleet")
            if fleet and fleet["alive"] == replicas:
                return status
            time.sleep(0.05)
    raise AssertionError(f"fleet never reached {replicas} alive replicas")


def _offered_throughput(port, tmp, tag):
    """Summed throughput of {_GENERATORS} concurrent ``repro loadtest``
    subprocess generators (separate processes so the client-side GIL cannot
    cap either side of the A/B)."""
    procs, outs = [], []
    for generator in range(_GENERATORS):
        out = tmp / f"{tag}-{generator}.json"
        outs.append(out)
        args = ["loadtest", "--port", str(port),
                "--clients", str(_CLIENTS_PER_GEN),
                "--duration", str(_DURATION_S),
                "--instances", str(_WORKLOAD_SIZE),
                "--modules", str(_WORKLOAD["n_modules"]),
                "--nodes", str(_WORKLOAD["n_nodes"]),
                "--links", str(_WORKLOAD["n_links"]),
                "--seed", str(_WORKLOAD["seed"]),
                "--emit-json", str(out)]
        procs.append(subprocess.Popen(
            [sys.executable, "-c",
             "import sys; from repro.cli import main; "
             "raise SystemExit(main(sys.argv[1:]))", *args],
            stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, env=_env(),
            text=True))
    for proc in procs:
        assert proc.wait(timeout=180) == 0, proc.stderr.read()
    total_rps, errors = 0.0, 0
    for out in outs:
        metric = json.loads(out.read_text())["metrics"][
            "loadtest/request_latency"]
        total_rps += metric["extra:throughput_rps"]
        errors += metric["extra:errors"]
    assert errors == 0, f"{tag}: {errors} generator-side request errors"
    return total_rps


def _best_offered(port, tmp, tag):
    return max(_offered_throughput(port, tmp, f"{tag}-{trial}")
               for trial in range(_TRIALS))


# --------------------------------------------------------------------- #
# Throughput: shared-ledger admission vs no admission
# --------------------------------------------------------------------- #

@pytest.fixture(scope="module")
def admission_measurement(tmp_path_factory):
    """Throughput of a {_REPLICAS}-replica fleet with and without the
    shared admission ledger (best of {_TRIALS} trials each)."""
    tmp = tmp_path_factory.mktemp("bench-admission-fleet")
    ledger_proc, ledger_port = _spawn_server(
        ["--replicas", str(_REPLICAS), "--admission-control",
         "--admission-capacity-factor", _HUGE_FACTOR])
    plain_proc, plain_port = _spawn_server(["--replicas", str(_REPLICAS)])
    try:
        _wait_fleet(ledger_port, _REPLICAS)
        _wait_fleet(plain_port, _REPLICAS)
        ledger_rps = _best_offered(ledger_port, tmp, "ledger")
        plain_rps = _best_offered(plain_port, tmp, "plain")
        with ServiceClient(port=ledger_port, timeout=30) as client:
            health = client.healthz()
    finally:
        _stop_server(ledger_proc)
        _stop_server(plain_proc)
    return dict(ledger_rps=ledger_rps, plain_rps=plain_rps, health=health)


@pytest.mark.benchmark(group="admission-fleet")
def test_admission_fleet_throughput(benchmark, admission_measurement):
    """Timed metric: a keep-alive burst through a {_REPLICAS}-replica
    shared-ledger fleet, plus the >= 0.8x admission-vs-plain bar."""
    instances = generate_workload(_WORKLOAD_SIZE, **_WORKLOAD)
    proc, port = _spawn_server(
        ["--replicas", str(_REPLICAS), "--admission-control",
         "--admission-capacity-factor", _HUGE_FACTOR])
    try:
        _wait_fleet(port, _REPLICAS)
        client = ServiceClient(port=port)
        burst = (instances * 8)[:128]
        with ThreadPoolExecutor(max_workers=16) as pool:
            list(pool.map(client.solve, burst))  # warm-up + network refs

            def admission_burst():
                return list(pool.map(client.solve, burst))

            responses = benchmark(admission_burst)
        client.close()
    finally:
        _stop_server(proc)
    assert all(r["ok"] and r["admission"]["admitted"] for r in responses)

    health = admission_measurement["health"]
    fleet = health["fleet"]
    assert fleet["alive"] == _REPLICAS
    assert fleet["rejected_total"] == 0  # the A/B measured pure protocol cost
    assert fleet["admitted_total"] > 0
    assert health["admission_store"] == "shared"

    ledger_rps = admission_measurement["ledger_rps"]
    plain_rps = admission_measurement["plain_rps"]
    ratio = ledger_rps / plain_rps if plain_rps else float("inf")
    benchmark.extra_info["ledger_rps"] = round(ledger_rps, 1)
    benchmark.extra_info["plain_rps"] = round(plain_rps, 1)
    benchmark.extra_info["throughput_ratio"] = round(ratio, 2)
    benchmark.extra_info["replicas"] = _REPLICAS

    if os.environ.get("REPRO_SKIP_SPEEDUP_ASSERT") == "1":
        pytest.skip("speedup ratio assertions disabled via "
                    "REPRO_SKIP_SPEEDUP_ASSERT")
    if (os.cpu_count() or 1) < _REPLICAS:
        pytest.skip(f"host has {os.cpu_count()} CPUs; fleet measurement "
                    f"needs at least {_REPLICAS}")
    assert ratio >= 0.8, (
        f"shared-ledger admission costs too much: {ratio:.2f}x the "
        f"no-admission fleet ({ledger_rps:.0f} vs {plain_rps:.0f} req/s); "
        "expected >= 0.8x")


# --------------------------------------------------------------------- #
# Zero overdraw: replay what the fleet admitted
# --------------------------------------------------------------------- #

def _two_node_instance(index):
    network = TransportNetwork(
        nodes=[ComputingNode(node_id=0, processing_power=100.0),
               ComputingNode(node_id=1, processing_power=100.0)],
        links=[CommunicationLink(start_node=0, end_node=1,
                                 bandwidth_mbps=100.0, min_delay_ms=1.0)],
        name="overdraw-two-node")
    pipeline = Pipeline(modules=(
        ComputingModule(module_id=0, complexity=0.0, input_bytes=0.0,
                        output_bytes=1000.0),
        ComputingModule(module_id=1, complexity=3.0, input_bytes=1000.0,
                        output_bytes=500.0),
        ComputingModule(module_id=2, complexity=2.0, input_bytes=500.0,
                        output_bytes=0.0)))
    return ProblemInstance(name=f"overdraw-{index}", pipeline=pipeline,
                           network=network,
                           request=EndToEndRequest(source=0, destination=1))


def test_admission_zero_overdraw_replay():
    """Oversubscribe a 2-replica shared-ledger fleet (budgets for exactly 3
    of 8 identical requests), then replay the admitted mappings on a fresh
    private ledger: the commits must all fit (zero overdraw) and end below
    full utilisation, while the fleet's healthz shows the rejections and a
    <= 1.0 occupancy.  Runs everywhere — it asserts accounting, not speed."""
    admit_exactly, total = 3, 8
    probe = _two_node_instance(0)
    mapping = repro.solve("elpc", probe.pipeline, probe.network,
                          probe.request, Objective.MIN_DELAY)
    reference = ClusterState.from_network(probe.network)
    demand = reference.demand_of(mapping, demand_fps=1.0)
    ratios = [need / reference.node_capacity[reference.view.index_of[node]]
              for node, need in demand.nodes.items()]
    ratios += [need / reference.link_capacity[key]
               for key, need in demand.links.items()]
    factor = (admit_exactly + 0.5) * max(ratios)

    proc, port = _spawn_server(
        ["--replicas", "2", "--admission-control",
         "--admission-capacity-factor", repr(factor)])
    try:
        _wait_fleet(port, 2)
        # Fresh connection per request: the kernel spreads the stream over
        # both replicas, so overdraw would need only one accounting slip.
        with ServiceClient(port=port, keep_alive=False, timeout=60) as client:
            responses = [client.solve(_two_node_instance(i))
                         for i in range(total)]
            health = client.healthz()
    finally:
        _stop_server(proc)

    admitted = [r for r in responses if r["admission"]["admitted"]]
    assert len(admitted) == admit_exactly, health
    for response in admitted:
        assert response["mapping"]["groups"] == [
            list(group) for group in mapping.groups]
        assert response["mapping"]["path"] == list(mapping.path)

    # The replay: identical budgets, a fresh private LocalStore, demands
    # recomputed from the admitted mappings themselves.  CapacityError here
    # would mean the fleet double-spent shared capacity.
    cluster = ClusterState.from_network(probe.network,
                                        node_capacity_factor=factor,
                                        link_capacity_factor=factor)
    items = [SimpleNamespace(mapping=mapping, demand_fps=1.0)
             for _ in admitted]
    utilization = validate_placements(items, cluster)
    assert utilization["committed"] == admit_exactly
    assert 0.0 <= utilization["node_utilization"] <= 1.0
    assert 0.0 <= utilization["link_utilization"] <= 1.0
    assert utilization["node_remaining_min"] >= 0.0

    fleet = health["fleet"]
    assert fleet["admitted_total"] == admit_exactly
    assert fleet["rejected_total"] == total - admit_exactly
    occupancy = health["admission_occupancy"]
    assert 0.0 <= occupancy["node_occupancy_fraction"] <= 1.0
    assert 0.0 <= occupancy["link_occupancy_fraction"] <= 1.0
