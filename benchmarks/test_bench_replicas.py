"""Benchmark: pre-fork replica scaling of the solve service.

``repro serve --replicas 4`` and a single-process ``repro serve`` are both
driven end to end, and this file asserts the PR's acceptance bar: **the
4-replica fleet must sustain at least 1.5x the throughput of one replica on
a transport-dominated workload**, with every solve response bit-identical to
a direct :func:`repro.core.batch.solve_many` of the same instances.

One asyncio process does all JSON parsing and serialisation, so on the
transport-dominated workload (short pipelines, small shared network — the
same shape as ``test_bench_loadtest.py``) the single server saturates one
core; the fleet spreads accepted connections across replica processes via
``SO_REUSEPORT`` (or the shared inherited listener) and scales with cores.

The load generators are **separate ``repro loadtest`` subprocesses** (summed
from their ``--emit-json`` reports): a single Python client process would
bottleneck both sides of the A/B on its own GIL and squash the very ratio
under measurement.

Like the other speedup benches, the wall-clock ratio assertion is skipped
under ``REPRO_SKIP_SPEEDUP_ASSERT=1`` (noisy shared runners) and on hosts
with fewer than 4 CPUs (replica scaling is physically impossible there);
the fleet-health, per-replica-attribution, response-identity and
restart-under-load assertions always run.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core import Objective, solve_many
from repro.service import ServiceClient, generate_workload, run_loadtest

pytestmark = pytest.mark.skipif(not hasattr(os, "fork"),
                                reason="pre-fork replicas need os.fork")

_REPLICAS = 4
_GENERATORS = 3          # concurrent loadtest subprocesses per measurement
_CLIENTS_PER_GEN = 12
_DURATION_S = 1.2
_TRIALS = 2
#: Transport-dominated workload shape (see module docstring).
_WORKLOAD = dict(n_modules=4, n_nodes=8, n_links=16, seed=5)
_WORKLOAD_SIZE = 16


def _env():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _spawn_server(extra_args=()):
    """A real ``repro serve`` subprocess; returns ``(process, port)``."""
    proc = subprocess.Popen(
        [sys.executable, "-c",
         "import sys; from repro.cli import main; "
         "raise SystemExit(main(['serve', '--port', '0'] + sys.argv[1:]))",
         *extra_args],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, env=_env(),
        text=True)
    announce = proc.stdout.readline()
    match = re.search(r"listening on 127\.0\.0\.1:(\d+)", announce)
    assert match, f"no announce line from repro serve, got {announce!r}"
    port = int(match.group(1))
    ServiceClient(port=port).wait_ready(timeout=30)
    return proc, port


def _stop_server(proc):
    proc.send_signal(signal.SIGINT)
    proc.wait(timeout=60)


def _wait_fleet(port, replicas, timeout=30.0):
    with ServiceClient(port=port, timeout=30) as client:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            status = client.healthz()
            fleet = status.get("fleet")
            if fleet and fleet["alive"] == replicas:
                return status
            time.sleep(0.05)
    raise AssertionError(f"fleet never reached {replicas} alive replicas")


def _offered_throughput(port, tmp, tag):
    """Summed throughput of {_GENERATORS} concurrent ``repro loadtest``
    subprocess generators (each a separate Python process: the measurement
    must not be capped by one client-side GIL)."""
    procs, outs = [], []
    for generator in range(_GENERATORS):
        out = tmp / f"{tag}-{generator}.json"
        outs.append(out)
        args = ["loadtest", "--port", str(port),
                "--clients", str(_CLIENTS_PER_GEN),
                "--duration", str(_DURATION_S),
                "--instances", str(_WORKLOAD_SIZE),
                "--modules", str(_WORKLOAD["n_modules"]),
                "--nodes", str(_WORKLOAD["n_nodes"]),
                "--links", str(_WORKLOAD["n_links"]),
                "--seed", str(_WORKLOAD["seed"]),
                "--emit-json", str(out)]
        procs.append(subprocess.Popen(
            [sys.executable, "-c",
             "import sys; from repro.cli import main; "
             "raise SystemExit(main(sys.argv[1:]))", *args],
            stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, env=_env(),
            text=True))
    for proc in procs:
        assert proc.wait(timeout=180) == 0, proc.stderr.read()
    total_rps, errors = 0.0, 0
    for out in outs:
        metric = json.loads(out.read_text())["metrics"][
            "loadtest/request_latency"]
        total_rps += metric["extra:throughput_rps"]
        errors += metric["extra:errors"]
    assert errors == 0, f"{tag}: {errors} generator-side request errors"
    return total_rps


def _best_offered(port, tmp, tag):
    return max(_offered_throughput(port, tmp, f"{tag}-{trial}")
               for trial in range(_TRIALS))


@pytest.fixture(scope="module")
def replica_measurement(tmp_path_factory):
    """Fleet and solo throughput (best of {_TRIALS} trials, {_GENERATORS}
    generator subprocesses each) plus one response-recording run and the
    fleet's final health."""
    tmp = tmp_path_factory.mktemp("bench-replicas")
    instances = generate_workload(_WORKLOAD_SIZE, **_WORKLOAD)
    fleet_proc, fleet_port = _spawn_server(["--replicas", str(_REPLICAS)])
    solo_proc, solo_port = _spawn_server()
    try:
        _wait_fleet(fleet_port, _REPLICAS)
        fleet_rps = _best_offered(fleet_port, tmp, "fleet")
        solo_rps = _best_offered(solo_port, tmp, "solo")
        identity = run_loadtest(host="127.0.0.1", port=fleet_port, clients=8,
                                duration_s=0.5, instances=instances,
                                keep_responses=True)
        with ServiceClient(port=fleet_port, timeout=30) as client:
            health = client.healthz()
    finally:
        _stop_server(fleet_proc)
        _stop_server(solo_proc)
    return dict(instances=instances, fleet_rps=fleet_rps, solo_rps=solo_rps,
                identity=identity, health=health)


@pytest.mark.benchmark(group="replicas")
def test_replica_fleet_throughput(benchmark, replica_measurement):
    """Timed metric: a fixed keep-alive burst through a {_REPLICAS}-replica
    fleet, plus the PR's >= 1.5x fleet-vs-solo throughput bar."""
    instances = replica_measurement["instances"]

    proc, port = _spawn_server(["--replicas", str(_REPLICAS)])
    try:
        _wait_fleet(port, _REPLICAS)
        client = ServiceClient(port=port)
        burst = (instances * 8)[:128]
        with ThreadPoolExecutor(max_workers=16) as pool:
            list(pool.map(client.solve, burst))  # warm-up + network refs

            def fleet_burst():
                return list(pool.map(client.solve, burst))

            responses = benchmark(fleet_burst)
        client.close()
    finally:
        _stop_server(proc)
    assert all(r["ok"] for r in responses)
    # The burst's 16 keep-alive connections really spread over the fleet.
    assert len({r["replica_id"] for r in responses}) >= 2

    fleet_rps = replica_measurement["fleet_rps"]
    solo_rps = replica_measurement["solo_rps"]
    ratio = fleet_rps / solo_rps if solo_rps else float("inf")
    benchmark.extra_info["fleet_rps"] = round(fleet_rps, 1)
    benchmark.extra_info["solo_rps"] = round(solo_rps, 1)
    benchmark.extra_info["throughput_ratio"] = round(ratio, 2)
    benchmark.extra_info["replicas"] = _REPLICAS
    benchmark.extra_info["generators"] = _GENERATORS

    health = replica_measurement["health"]
    assert health["fleet"]["replicas"] == _REPLICAS
    assert health["fleet"]["alive"] == _REPLICAS
    assert health["fleet"]["restarts_total"] == 0  # no crashes under load
    # Fleet-wide accounting saw the generators' traffic, spread over > 1
    # replica process.
    served = [row for row in health["per_replica"]
              if row["responses_total"] > 0]
    assert len(served) >= 2, f"kernel never balanced: {health['per_replica']}"

    if os.environ.get("REPRO_SKIP_SPEEDUP_ASSERT") == "1":
        pytest.skip("speedup ratio assertions disabled via "
                    "REPRO_SKIP_SPEEDUP_ASSERT")
    if (os.cpu_count() or 1) < _REPLICAS:
        pytest.skip(f"host has {os.cpu_count()} CPUs; {_REPLICAS}-replica "
                    "scaling needs at least that many cores")
    assert ratio >= 1.5, (
        f"{_REPLICAS}-replica fleet only {ratio:.2f}x one replica "
        f"({fleet_rps:.0f} vs {solo_rps:.0f} req/s summed over "
        f"{_GENERATORS} generators); expected >= 1.5x")


def test_replica_responses_identical_to_solve_many(replica_measurement):
    """Every response recorded against the fleet equals the direct
    ``solve_many`` answer for its instance, regardless of which replica
    (and therefore which independent interner) served it."""
    instances = replica_measurement["instances"]
    identity = replica_measurement["identity"]
    assert identity.responses, "identity run recorded no responses"
    direct = solve_many(instances, solver="elpc-tensor",
                        objective=Objective.MIN_DELAY)
    assert direct.n_solved == len(instances)
    for instance_index, response in identity.responses:
        item = direct.items[instance_index]
        assert response["ok"]
        assert response["name"] == item.name
        assert response["mapping"]["delay_ms"] == item.mapping.delay_ms
        assert response["mapping"]["bottleneck_ms"] == \
            item.mapping.bottleneck_ms
        assert response["mapping"]["groups"] == [
            list(group) for group in item.mapping.groups]
        assert response["mapping"]["path"] == list(item.mapping.path)
    # Attribution exists for every response (single- or multi-replica).
    assert identity.per_replica
    assert sum(identity.per_replica.values()) >= identity.requests_total \
        - identity.errors_total


def test_replica_restart_under_open_loop_load():
    """Kill one replica while an open-loop schedule is in flight: the
    supervisor restarts it, every scheduled arrival still gets an answer
    (none silently dropped), and the fleet ends the run at full strength.
    Runs everywhere — it asserts behavior, not speed."""
    proc, port = _spawn_server(["--replicas", "2"])
    instances = generate_workload(8, **_WORKLOAD)
    try:
        status = _wait_fleet(port, 2)
        victim = status["per_replica"][1]["pid"]
        killer = threading.Timer(0.4, os.kill, (victim, signal.SIGKILL))
        killer.start()
        try:
            result = run_loadtest(host="127.0.0.1", port=port,
                                  duration_s=1.5, instances=instances,
                                  arrival_rate=120.0, max_connections=8,
                                  seed=9)
        finally:
            killer.cancel()
        # No arrival was dropped: each one produced a recorded outcome.
        assert result.requests_total == result.scheduled_total
        # The kill may cost the in-flight exchanges an error, but the run
        # as a whole stayed served.
        assert result.errors_total < result.requests_total / 2, (
            f"{result.errors_total}/{result.requests_total} errors after "
            "replica kill")
        deadline = time.monotonic() + 30
        with ServiceClient(port=port, timeout=30) as probe:
            while time.monotonic() < deadline:
                fleet = probe.healthz()["fleet"]
                if fleet["alive"] == 2 and fleet["restarts_total"] >= 1:
                    break
                time.sleep(0.05)
        assert fleet["alive"] == 2, f"fleet did not recover: {fleet}"
        assert fleet["restarts_total"] >= 1
    finally:
        _stop_server(proc)
