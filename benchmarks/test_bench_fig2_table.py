"""E1 — Fig. 2: the 20-case mapping-performance comparison table.

Regenerates the paper's table (minimum end-to-end delay and maximum frame rate
for ELPC, Streamline and Greedy over 20 simulated cases) and checks the
qualitative claims:

* ELPC "exhibits comparable or superior performances ... in all the cases" —
  ELPC must win or tie every case for both objectives;
* infeasible extreme cases are reported as "-" rather than silently dropped.

Absolute milliseconds differ from the paper (different random datasets and a
Python implementation); the orderings are what is being reproduced.
"""

from __future__ import annotations

import pytest

from repro.analysis import fig2_table, reproduce_fig2


@pytest.mark.benchmark(group="fig2")
def test_fig2_full_table(benchmark):
    """Time the full Fig. 2 reproduction (both objectives, 20 cases, 3 algorithms)."""
    result = benchmark.pedantic(reproduce_fig2, rounds=1, iterations=1)

    n_cases = len(result.delay_run.cases)
    assert n_cases == 20

    # Paper claim: ELPC is never worse than Streamline or Greedy.
    assert result.elpc_wins_delay() == n_cases
    assert result.elpc_wins_framerate() == n_cases

    # ELPC must be feasible on every case of the fixed suite.
    assert result.delay_run.feasible_case_count("elpc") == n_cases
    assert result.framerate_run.feasible_case_count("elpc") == n_cases

    # The mean improvement factors are >= 1 by construction; report them in
    # the benchmark's extra info so they land in the saved benchmark JSON.
    benchmark.extra_info["delay_improvement_vs_streamline"] = (
        result.delay_run.mean_improvement("streamline"))
    benchmark.extra_info["delay_improvement_vs_greedy"] = (
        result.delay_run.mean_improvement("greedy"))
    benchmark.extra_info["framerate_improvement_vs_streamline"] = (
        result.framerate_run.mean_improvement("streamline"))
    benchmark.extra_info["framerate_improvement_vs_greedy"] = (
        result.framerate_run.mean_improvement("greedy"))
    assert result.delay_run.mean_improvement("streamline") >= 1.0
    assert result.delay_run.mean_improvement("greedy") >= 1.0

    # The rendered table has one row per case and the two objective halves.
    table = result.table_text
    assert table.count("case-") >= n_cases
    assert "Min end-to-end delay" in table and "Max frame rate" in table


@pytest.mark.benchmark(group="fig2")
def test_fig2_table_rendering(benchmark, delay_comparison, framerate_comparison):
    """Time only the table rendering step (cheap, run at full rounds)."""
    text = benchmark(fig2_table, delay_comparison, framerate_comparison)
    assert "ELPC best or tied" in text
