"""Benchmark: keep-alive continuous batching vs the PR 5 service transport.

``repro loadtest`` drives both configurations end to end — real ``repro
serve`` subprocesses, 32 concurrent closed-loop clients — and this file
asserts the acceptance bar: **the keep-alive continuous-batching path must
sustain at least 2x the throughput of the previous one-connection-per-request
fixed-window configuration**, with every solve response identical to a
direct :func:`repro.core.batch.solve_many` of the same instances.

The two measured stacks:

* *keep-alive + continuous batching* — ``repro serve`` defaults; clients
  hold one persistent connection each (``keep_alive=True``) and the
  dispatcher flushes the moment the executor frees.
* *PR 5 baseline* — ``repro serve --fixed-window`` (every flush waits out
  the ``max_wait_ms`` window) with ``keep_alive=False`` clients (a fresh
  ``http.client`` connection per request — the transport the client shipped
  with, preserved verbatim for exactly this A/B).

The workload is deliberately *transport-dominated* (short pipelines over a
small shared network): the solver cost is identical on both sides of the
A/B, so the heavier the instances, the more the connection-handling
difference under test is diluted.  Solver-bound service throughput is
covered by ``test_bench_service.py``.

Servers run as subprocesses so the 32 client threads and the server event
loop do not share one GIL.  Each mode takes the best of two trials; like the
other speedup benches, the wall-clock ratio assertion is skipped under
``REPRO_SKIP_SPEEDUP_ASSERT=1`` (noisy shared runners) while the identity
and connection-accounting assertions always run.
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core import Objective, solve_many
from repro.service import ServiceClient, generate_workload, run_loadtest

_CLIENTS = 32
_DURATION_S = 1.2
_TRIALS = 2
#: Transport-dominated workload shape (see module docstring).
_WORKLOAD = dict(n_modules=4, n_nodes=8, n_links=16, seed=5)
_WORKLOAD_SIZE = 16


def _spawn_server(extra_args=()):
    """A real ``repro serve`` subprocess; returns ``(process, port)``."""
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-c",
         "import sys; from repro.cli import main; "
         "raise SystemExit(main(['serve', '--port', '0'] + sys.argv[1:]))",
         *extra_args],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, env=env, text=True)
    announce = proc.stdout.readline()
    match = re.search(r"listening on 127\.0\.0\.1:(\d+)", announce)
    assert match, f"no announce line from repro serve, got {announce!r}"
    port = int(match.group(1))
    ServiceClient(port=port).wait_ready(timeout=30)
    return proc, port


def _stop_server(proc):
    proc.send_signal(signal.SIGINT)
    proc.wait(timeout=30)


def _best_run(port, instances, *, keep_alive):
    best = None
    for _ in range(_TRIALS):
        result = run_loadtest(host="127.0.0.1", port=port, clients=_CLIENTS,
                              duration_s=_DURATION_S, instances=instances,
                              keep_alive=keep_alive)
        assert result.errors_total == 0, (
            f"loadtest errors (keep_alive={keep_alive}): "
            f"{result.errors_total}/{result.requests_total}")
        if best is None or result.throughput_rps > best.throughput_rps:
            best = result
    return best


@pytest.fixture(scope="module")
def loadtest_measurement():
    """Both stacks measured (best of {_TRIALS} trials each) plus one short
    response-recording run for the identity assertions."""
    instances = generate_workload(_WORKLOAD_SIZE, **_WORKLOAD)

    new_proc, new_port = _spawn_server()
    old_proc, old_port = _spawn_server(["--fixed-window"])
    try:
        new = _best_run(new_port, instances, keep_alive=True)
        old = _best_run(old_port, instances, keep_alive=False)
        identity = run_loadtest(host="127.0.0.1", port=new_port, clients=8,
                                duration_s=0.5, instances=instances,
                                keep_responses=True)
    finally:
        _stop_server(new_proc)
        _stop_server(old_proc)
    return instances, new, old, identity


@pytest.mark.benchmark(group="loadtest")
def test_loadtest_keep_alive_continuous_batching(benchmark,
                                                 loadtest_measurement):
    """Timed metric: a fixed burst of keep-alive requests through the
    continuous-batching server, plus the PR's >= 2x throughput bar."""
    instances, new, old, _identity = loadtest_measurement

    proc, port = _spawn_server()
    try:
        client = ServiceClient(port=port)
        burst = (instances * 8)[:128]
        with ThreadPoolExecutor(max_workers=_CLIENTS) as pool:
            list(pool.map(client.solve, burst))  # warm-up + network refs

            def keep_alive_burst():
                return list(pool.map(client.solve, burst))

            responses = benchmark(keep_alive_burst)
        client.close()
    finally:
        _stop_server(proc)
    assert all(r["ok"] for r in responses)

    ratio = (new.throughput_rps / old.throughput_rps
             if old.throughput_rps else float("inf"))
    benchmark.extra_info["throughput_rps"] = round(new.throughput_rps, 1)
    benchmark.extra_info["baseline_rps"] = round(old.throughput_rps, 1)
    benchmark.extra_info["throughput_ratio"] = round(ratio, 2)
    benchmark.extra_info["p99_ms"] = round(new.latency_p99_ms, 3)
    benchmark.extra_info["mean_flush_size"] = round(
        new.server["mean_flush_size"], 2)
    benchmark.extra_info["clients"] = _CLIENTS

    # Connection accounting — the defining cost difference really happened:
    # the keep-alive run opened about one connection per client, the
    # baseline about one per request.
    assert new.server["connections"] <= _CLIENTS + 4
    assert old.server["connections"] >= old.requests_total
    # The continuous-batching path really batched under load ...
    assert new.mean_group_size > 1.0
    assert new.server["busy_flushes"] > 0
    # ... and both sides completed real traffic.
    assert new.requests_total > 0 and old.requests_total > 0

    if os.environ.get("REPRO_SKIP_SPEEDUP_ASSERT") == "1":
        pytest.skip("speedup ratio assertions disabled via "
                    "REPRO_SKIP_SPEEDUP_ASSERT")
    assert ratio >= 2.0, (
        f"keep-alive continuous batching only {ratio:.2f}x the baseline "
        f"({new.throughput_rps:.0f} vs {old.throughput_rps:.0f} req/s at "
        f"{_CLIENTS} clients); expected >= 2x")


def test_loadtest_responses_identical_to_solve_many(loadtest_measurement):
    """Every response recorded under concurrent load equals the direct
    ``solve_many`` answer for its instance (JSON floats round-trip
    repr-exactly, so == is exact)."""
    instances, _new, _old, identity = loadtest_measurement
    assert identity.responses, "identity run recorded no responses"
    direct = solve_many(instances, solver="elpc-tensor",
                        objective=Objective.MIN_DELAY)
    assert direct.n_solved == len(instances)
    for instance_index, response in identity.responses:
        item = direct.items[instance_index]
        assert response["ok"]
        assert response["name"] == item.name
        assert response["mapping"]["delay_ms"] == item.mapping.delay_ms
        assert response["mapping"]["bottleneck_ms"] == item.mapping.bottleneck_ms
        assert response["mapping"]["groups"] == [
            list(group) for group in item.mapping.groups]
        assert response["mapping"]["path"] == list(item.mapping.path)
