"""Benchmark: the array-backend seam of the tensor batch engine.

PR 4 routed every DP-stage operation of :mod:`repro.core.tensor` through
:mod:`repro.core.backend`.  Two claims are worth pinning with numbers:

* the seam is **free for the default backend** — the named ``"numpy"``
  backend takes the same in-place scratch-buffer path as before, so its wall
  time is the pre-refactor engine's (the regression gate compares this
  file's means against the recorded baseline);
* the **generic path** — the functional formulation CuPy and JAX execute —
  stays within a small constant factor of the in-place path on CPU (it
  allocates per stage instead of recycling buffers) while remaining
  bit-identical, so shipping one portable code path for accelerators does
  not cost correctness and only costs host performance when explicitly
  forced.

A CuPy throughput benchmark is included for GPU machines and skipped
elsewhere.  Ratio assertions honour ``REPRO_SKIP_SPEEDUP_ASSERT=1`` exactly
like the other benchmark files (shared CI runners gate on the recorded
baseline instead); the value cross-checks always run.
"""

from __future__ import annotations

import importlib.util
import os
import time

import pytest

from repro.core import Objective, solve_many
from repro.core.backend import NumpyBackend
from repro.generators import random_network, random_pipeline, random_request
from repro.model import ProblemInstance

#: Same shape as the tensor-batch benchmark: 40-module pipelines on a sparse
#: 48-node network, solved as one B=32 batch.
_BATCH = 32
_N_MODULES = 40
_K_NODES = 48
_N_LINKS = 96


def _instances(count: int = _BATCH):
    network = random_network(_K_NODES, _N_LINKS, seed=11)
    instances = [
        ProblemInstance(pipeline=random_pipeline(_N_MODULES, seed=311 + b),
                        network=network,
                        request=random_request(network, seed=411 + b,
                                               min_hop_distance=2),
                        name=f"bench-backend-{b}")
        for b in range(count)
    ]
    network.dense_view()  # warm the shared view outside the timed region
    return instances


@pytest.mark.benchmark(group="backend")
def test_numpy_backend_named(benchmark):
    """Timed metric: the named numpy backend (the in-place fast path)."""
    instances = _instances()
    solve_many(instances, solver="elpc-tensor", objective=Objective.MIN_DELAY,
               backend="numpy")
    result = benchmark(solve_many, instances, solver="elpc-tensor",
                       objective=Objective.MIN_DELAY, backend="numpy")
    assert result.n_solved == len(instances)
    assert all(item.mapping.extras["backend"] == "numpy"
               for item in result if item.ok)


@pytest.mark.benchmark(group="backend")
def test_generic_backend_path(benchmark):
    """Timed metric: the portable generic path (what CuPy/JAX execute).

    Asserts bit-identity against the fast path and a loose overhead bound —
    the generic path allocates per stage, so some slowdown is expected; what
    must never happen is a blow-up that would make the accelerator
    formulation useless, or any value drift.
    """
    instances = _instances()
    generic = NumpyBackend(force_generic=True)
    solve_many(instances, solver="elpc-tensor", objective=Objective.MIN_DELAY,
               backend=generic)

    result = benchmark(solve_many, instances, solver="elpc-tensor",
                       objective=Objective.MIN_DELAY, backend=generic)
    assert result.n_solved == len(instances)

    reference = solve_many(instances, solver="elpc-tensor",
                           objective=Objective.MIN_DELAY)
    assert result.values() == reference.values()

    # Best-of-3 wall-time ratio, measured outside pytest-benchmark's rounds
    # so the two paths see identical conditions back to back.
    best_fast = best_generic = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        solve_many(instances, solver="elpc-tensor",
                   objective=Objective.MIN_DELAY)
        best_fast = min(best_fast, time.perf_counter() - start)
        start = time.perf_counter()
        solve_many(instances, solver="elpc-tensor",
                   objective=Objective.MIN_DELAY, backend=generic)
        best_generic = min(best_generic, time.perf_counter() - start)
    ratio = best_generic / best_fast
    benchmark.extra_info["generic_over_inplace"] = round(ratio, 2)
    if os.environ.get("REPRO_SKIP_SPEEDUP_ASSERT") == "1":
        pytest.skip("ratio assertions disabled via REPRO_SKIP_SPEEDUP_ASSERT")
    assert ratio < 3.0, (
        f"generic backend path {ratio:.1f}x slower than the in-place numpy "
        f"path at B={_BATCH} (expected < 3x)")


def test_backend_paths_agree_for_framerate():
    """The frame-rate engine runs the portable path for *every* backend —
    including default numpy — so pin it against the vectorized reference."""
    instances = _instances(16)
    tensor = solve_many(instances, solver="elpc-tensor",
                        objective=Objective.MAX_FRAME_RATE)
    looped = solve_many(instances, solver="elpc-vec",
                        objective=Objective.MAX_FRAME_RATE)
    assert tensor.values() == looped.values()


@pytest.mark.skipif(importlib.util.find_spec("cupy") is None,
                    reason="CuPy is not installed")
@pytest.mark.benchmark(group="backend")
def test_cupy_backend_throughput(benchmark):
    """GPU machines only: one B=32 batch on the CuPy backend, values checked."""
    instances = _instances()
    solve_many(instances, solver="elpc-tensor", objective=Objective.MIN_DELAY,
               backend="cupy")  # warm: device staging + kernel compilation
    result = benchmark(solve_many, instances, solver="elpc-tensor",
                       objective=Objective.MIN_DELAY, backend="cupy")
    reference = solve_many(instances, solver="elpc-tensor",
                           objective=Objective.MIN_DELAY)
    assert result.values() == reference.values()
