"""A1 — ablation: dynamic programming vs exhaustive search.

Two design claims of the paper are quantified on a batch of small random
instances (small enough that the exponential oracles terminate):

* the delay DP is *exact*: it returns the same optimum as brute force on every
  instance while touching orders of magnitude fewer states;
* the frame-rate DP is a *heuristic*: the paper argues its misses are
  "extremely rare"; the bench measures the match rate and the mean optimality
  gap against the exact exact-n-hop widest path.
"""

from __future__ import annotations

import pytest

from repro.core import (
    elpc_max_frame_rate,
    elpc_min_delay,
    exhaustive_max_frame_rate,
    exhaustive_min_delay,
)
from repro.exceptions import InfeasibleMappingError
from repro.generators import random_network, random_pipeline, random_request

#: Instance battery shared by both ablations (kept small: the oracles are exponential).
_SEEDS = list(range(24))


def _tiny_instance(seed):
    pipeline = random_pipeline(5, seed=seed)
    network = random_network(8, 16, seed=seed + 1000)
    request = random_request(network, seed=seed, min_hop_distance=1)
    return pipeline, network, request


@pytest.mark.benchmark(group="ablation-optimality")
def test_delay_dp_is_exact(benchmark):
    """The DP equals brute force on every instance of the battery."""

    def run_dp_battery():
        results = []
        for seed in _SEEDS:
            pipeline, network, request = _tiny_instance(seed)
            if network.hop_distance(request.source, request.destination) \
                    > pipeline.n_modules - 1:
                continue
            results.append((seed, elpc_min_delay(pipeline, network, request)))
        return results

    dp_results = benchmark.pedantic(run_dp_battery, rounds=1, iterations=1)
    assert len(dp_results) >= 15

    mismatches = 0
    state_ratio = []
    for seed, dp in dp_results:
        pipeline, network, request = _tiny_instance(seed)
        exact = exhaustive_min_delay(pipeline, network, request)
        if abs(dp.delay_ms - exact.delay_ms) > 1e-6 * max(exact.delay_ms, 1.0):
            mismatches += 1
        state_ratio.append(exact.extras["assignments_explored"]
                           / max(dp.extras["dp_relaxations"], 1))
    benchmark.extra_info["instances"] = len(dp_results)
    benchmark.extra_info["mean_bruteforce_to_dp_state_ratio"] = (
        sum(state_ratio) / len(state_ratio))
    assert mismatches == 0


@pytest.mark.benchmark(group="ablation-optimality")
def test_framerate_heuristic_gap(benchmark):
    """Match rate and worst-case gap of the frame-rate heuristic vs the exact optimum."""

    def run_heuristic_battery():
        outcomes = []
        for seed in _SEEDS:
            pipeline, network, request = _tiny_instance(seed)
            try:
                exact = exhaustive_max_frame_rate(pipeline, network, request)
            except InfeasibleMappingError:
                continue
            try:
                heuristic = elpc_max_frame_rate(pipeline, network, request)
                outcomes.append((exact.frame_rate_fps, heuristic.frame_rate_fps))
            except InfeasibleMappingError:
                outcomes.append((exact.frame_rate_fps, None))
        return outcomes

    outcomes = benchmark.pedantic(run_heuristic_battery, rounds=1, iterations=1)
    assert len(outcomes) >= 10

    solved = [(e, h) for e, h in outcomes if h is not None]
    matches = sum(1 for e, h in solved if abs(e - h) <= 1e-9 * max(e, 1.0))
    gaps = [h / e for e, h in solved]

    benchmark.extra_info["instances_with_feasible_optimum"] = len(outcomes)
    benchmark.extra_info["heuristic_feasible"] = len(solved)
    benchmark.extra_info["exact_match_rate"] = matches / len(solved)
    benchmark.extra_info["worst_fraction_of_optimum"] = min(gaps)

    # The heuristic must solve the vast majority of feasible instances ...
    assert len(solved) / len(outcomes) >= 0.85
    # ... match the optimum most of the time ("extremely rare" misses) ...
    assert matches / len(solved) >= 0.75
    # ... never exceed the optimum, and stay within 2x when it misses.
    assert all(h <= e + 1e-9 for e, h in solved)
    assert min(gaps) >= 0.5
