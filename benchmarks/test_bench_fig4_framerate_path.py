"""E3 — Fig. 4: ELPC's maximum frame rate path on the small illustration case.

The paper's Fig. 4 shows a path of five distinct nodes (one module per node,
no reuse) from the data source (node 0) to the terminal (node 5), with the
bottleneck on one of the path components.  The reproduction checks:

* the selected path is a simple path with exactly n = 5 nodes from node 0 to
  node 5;
* the heuristic matches the exact exact-n-hop widest path optimum on this
  instance;
* the bottleneck component identified analytically is where the frame period
  is spent.
"""

from __future__ import annotations

import pytest

from repro.analysis import reproduce_fig4
from repro.core import exhaustive_max_frame_rate


@pytest.mark.benchmark(group="fig4")
def test_fig4_max_framerate_walkthrough(benchmark, illustration):
    result = benchmark(reproduce_fig4)
    mapping = result.mapping

    assert mapping.path[0] == 0
    assert mapping.path[-1] == 5
    assert len(mapping.path) == 5
    assert len(set(mapping.path)) == 5  # no node reuse
    assert all(len(group) == 1 for group in mapping.groups)

    exact = exhaustive_max_frame_rate(illustration.pipeline, illustration.network,
                                      illustration.request)
    assert mapping.frame_rate_fps == pytest.approx(exact.frame_rate_fps, rel=1e-9)

    breakdown = mapping.breakdown()
    assert breakdown.bottleneck_ms == pytest.approx(mapping.bottleneck_ms)
    benchmark.extra_info["frame_rate_fps"] = mapping.frame_rate_fps
    benchmark.extra_info["bottleneck_kind"] = breakdown.bottleneck_kind
    benchmark.extra_info["path"] = mapping.path
    assert "maximum frame rate" in result.walkthrough_text


@pytest.mark.benchmark(group="fig4")
def test_fig4_heuristic_vs_exact_speed(benchmark, illustration):
    """Time the heuristic DP alone; brute force count recorded for reference."""
    from repro.core import elpc_max_frame_rate

    mapping = benchmark(elpc_max_frame_rate, illustration.pipeline,
                        illustration.network, illustration.request)
    exact = exhaustive_max_frame_rate(illustration.pipeline, illustration.network,
                                      illustration.request)
    benchmark.extra_info["paths_explored_by_bruteforce"] = exact.extras["paths_explored"]
    assert mapping.bottleneck_ms == pytest.approx(exact.bottleneck_ms, rel=1e-9)
