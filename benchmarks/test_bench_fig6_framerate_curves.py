"""E5 — Fig. 6: maximum frame rate per case for ELPC / Streamline / Greedy.

The paper's Fig. 6 plots the three algorithms' maximum frame rate over the 20
cases and observes that, unlike the delay, the frame rate "is not particularly
related to the path length", so the curves show no obvious monotone trend.
Assertions:

* the ELPC curve never lies below a baseline curve on any case where both are
  feasible;
* ELPC is feasible on every case of the fixed suite;
* the ELPC frame-rate series is not monotone in the case number (no trend),
  in contrast to the Fig. 5 delay series.
"""

from __future__ import annotations

import pytest

from repro.analysis import reproduce_fig6
from repro.core import Objective


@pytest.mark.benchmark(group="fig6")
def test_fig6_framerate_curves(benchmark, framerate_comparison):
    result = benchmark(reproduce_fig6, run=framerate_comparison)

    assert result.objective is Objective.MAX_FRAME_RATE
    assert len(result.case_labels) == 20
    series = result.series

    elpc_series = series["elpc"]
    assert all(value is not None for value in elpc_series)

    # ELPC never loses to a baseline where the baseline is feasible.
    for idx in range(20):
        for baseline in ("streamline", "greedy"):
            value = series[baseline][idx]
            if value is not None:
                assert elpc_series[idx] >= value - 1e-9

    # No monotone trend with case number (the paper's observation).
    increasing = all(b >= a for a, b in zip(elpc_series, elpc_series[1:]))
    decreasing = all(b <= a for a, b in zip(elpc_series, elpc_series[1:]))
    assert not increasing and not decreasing

    # Frame rates land in the paper's reported order of magnitude (a few to
    # a few tens of frames per second, not micro- or kilo-hertz).
    assert 0.1 <= min(elpc_series)
    assert max(elpc_series) <= 200.0

    benchmark.extra_info["min_fps"] = min(elpc_series)
    benchmark.extra_info["max_fps"] = max(elpc_series)
    assert "Fig. 6" in result.chart_text
    assert result.csv_text.count("\n") >= 20
