"""Benchmark: warm-started re-planning under capacity churn.

The incremental engine (``ViewDelta`` journal + ``WarmState`` re-solve,
``repro churn``) exists so that a deployment whose capacities drift a little
per step does not pay a from-scratch DP per pipeline per step.  This file
pins that claim on a fixed churn replay (16 twelve-module pipelines over one
320-node / 800-link network, 12 steps editing ~1 % of the links each):

* every warm re-solve must be **bit-identical** to the cold re-solve it
  replaces (``mismatches_total == 0``) — this runs unconditionally, like
  every differential bar in the suite,
* warm-started re-planning must be **>= 3x** faster than full re-solve over
  the whole replay — a wall-clock ratio, honouring
  ``REPRO_SKIP_SPEEDUP_ASSERT=1`` on noisy shared runners,
* the timed metric is one warm re-solve pass over the drifted population
  (the steady-state hot path), so regressions in the dirty-column kernel
  show up in the regression gate.
"""

from __future__ import annotations

import os

import pytest

from repro.core import Objective, solve_many
from repro.service.loadtest import generate_workload
from repro.simulation import generate_churn_events, simulate_churn

_N_PIPELINES = 16
_N_MODULES = 12
_K_NODES = 320
_N_LINKS = 800
_STEPS = 12
_EDIT_FRACTION = 0.01
_SEED = 5
_SPEEDUP_FLOOR = 3.0


@pytest.fixture(scope="module")
def churn_run():
    instances = generate_workload(_N_PIPELINES, n_modules=_N_MODULES,
                                  n_nodes=_K_NODES, n_links=_N_LINKS,
                                  seed=_SEED)
    network = instances[0].network
    events = generate_churn_events(network, n_steps=_STEPS,
                                   edit_fraction=_EDIT_FRACTION, seed=_SEED)
    result = simulate_churn(network, instances, events, solver="elpc-vec",
                            objective=Objective.MIN_DELAY, verify=True)
    return instances, result


def test_churn_replay_is_bit_identical(churn_run):
    """Unconditional differential bar: warm == cold at every step."""
    _instances, result = churn_run
    assert result.n_steps == _STEPS
    assert result.mismatches_total == 0
    assert result.delta_patches_total > 0  # edits journaled, not rebuilt
    assert all(step.n_edits > 0 for step in result.steps)


def test_churn_warm_speedup_floor(churn_run):
    """Wall-clock bar: warm re-planning >= 3x over full re-solve."""
    if os.environ.get("REPRO_SKIP_SPEEDUP_ASSERT") == "1":
        pytest.skip("ratio assertions disabled via REPRO_SKIP_SPEEDUP_ASSERT")
    _instances, result = churn_run
    assert result.speedup >= _SPEEDUP_FLOOR, (
        f"warm churn re-planning speedup {result.speedup:.2f}x fell below "
        f"the {_SPEEDUP_FLOOR}x floor (warm {result.warm_total_s:.3f}s vs "
        f"cold {result.cold_total_s:.3f}s over {result.n_steps} steps)")


@pytest.mark.benchmark(group="churn")
def test_churn_warm_resolve(benchmark, churn_run):
    """Timed metric: one warm re-solve pass over the drifted population.

    The prior is captured once and the drift applied once, so every
    benchmark round performs the same delta-driven recompute.
    """
    instances, result = churn_run
    network = instances[0].network
    prior = solve_many(instances, solver="elpc-vec",
                       objective=Objective.MIN_DELAY, warm_start=True)
    for event in generate_churn_events(network, n_steps=1,
                                       edit_fraction=_EDIT_FRACTION,
                                       seed=_SEED + 1):
        event.apply(network)

    def run():
        return solve_many(instances, solver="elpc-vec",
                          objective=Objective.MIN_DELAY, prior=prior)

    warm = benchmark(run)
    assert all(item.mapping is not None for item in warm.items)

    benchmark.extra_info["n_pipelines"] = _N_PIPELINES
    benchmark.extra_info["n_nodes"] = _K_NODES
    benchmark.extra_info["replay_speedup"] = round(result.speedup, 3)
    benchmark.extra_info["replay_mismatches"] = result.mismatches_total
    benchmark.extra_info["replay_staleness_mean"] = round(
        result.staleness_mean, 6)
