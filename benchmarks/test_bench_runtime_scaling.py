"""E6 — §4.3 runtime claim: "milliseconds for small-scale problems to seconds
for large-scale ones", with polynomial O(n·|E|) scaling.

Two groups of benchmarks:

* per-size micro-benchmarks of the two ELPC dynamic programs (these are the
  numbers a reader compares against the paper's qualitative claim), and
* a scaling check that the measured delay-DP time grows roughly linearly in
  the theoretical work n·|E| (the per-unit time may drift by a small constant
  factor due to interpreter overheads, but not by orders of magnitude).
"""

from __future__ import annotations

import pytest

from repro.analysis import runtime_scaling
from repro.core import elpc_max_frame_rate, elpc_min_delay
from repro.generators import make_case, PAPER_CASE_SPECS

# Representative small / medium / large cases of the fixed suite.
_CASE_INDICES = [0, 9, 19]


@pytest.mark.benchmark(group="runtime-delay-dp")
@pytest.mark.parametrize("case_index", _CASE_INDICES,
                         ids=[f"case{c + 1:02d}" for c in _CASE_INDICES])
def test_elpc_delay_runtime_by_case(benchmark, case_index):
    instance = make_case(PAPER_CASE_SPECS[case_index])
    mapping = benchmark(elpc_min_delay, instance.pipeline, instance.network,
                        instance.request)
    benchmark.extra_info["size"] = instance.size_signature
    benchmark.extra_info["delay_ms"] = mapping.delay_ms
    assert mapping.delay_ms > 0


@pytest.mark.benchmark(group="runtime-framerate-dp")
@pytest.mark.parametrize("case_index", _CASE_INDICES,
                         ids=[f"case{c + 1:02d}" for c in _CASE_INDICES])
def test_elpc_framerate_runtime_by_case(benchmark, case_index):
    instance = make_case(PAPER_CASE_SPECS[case_index])
    mapping = benchmark(elpc_max_frame_rate, instance.pipeline, instance.network,
                        instance.request)
    benchmark.extra_info["size"] = instance.size_signature
    benchmark.extra_info["frame_rate_fps"] = mapping.frame_rate_fps
    assert mapping.frame_rate_fps > 0


@pytest.mark.benchmark(group="runtime-scaling")
def test_polynomial_scaling_of_delay_dp(benchmark):
    """Measured runtime per unit of n·|E| work stays within a constant band."""
    sizes = [(5, 10, 20), (10, 30, 90), (20, 60, 240), (30, 150, 700), (50, 400, 2200)]
    result = benchmark.pedantic(runtime_scaling, kwargs={"sizes": sizes, "seed": 11},
                                rounds=1, iterations=1)
    per_unit = result.delay_runtime_per_unit()
    benchmark.extra_info["seconds_per_unit_work"] = per_unit
    benchmark.extra_info["runtimes_s"] = result.delay_runtimes_s

    # Small problems solve in well under a second; the largest stays polynomial
    # (a few seconds at worst on a laptop-class machine).
    assert result.delay_runtimes_s[0] < 0.5
    assert result.delay_runtimes_s[-1] < 10.0
    # Per-unit cost may vary by constant factors (caching, allocation) but an
    # exponential algorithm would blow this bound up immediately.
    assert max(per_unit) / min(per_unit) < 50.0
    # Runtime grows with problem size overall.
    assert result.delay_runtimes_s[-1] > result.delay_runtimes_s[0]
