"""Micro-benchmarks of every mapping algorithm on a fixed medium-sized case.

Not tied to a specific paper figure; this is the per-algorithm runtime table a
reader uses to compare the implementations' costs (the paper only reports that
its C++ implementation ran in "milliseconds to seconds").  All algorithms are
timed on the same case (case 11: 20 modules, 100 nodes, 400 links) so the
numbers are directly comparable.
"""

from __future__ import annotations

import pytest

from repro.core import Objective, get_solver
from repro.exceptions import InfeasibleMappingError
from repro.generators import make_case, PAPER_CASE_SPECS

#: Case 11 of the suite: 20 modules on 100 nodes / 400 links.
_CASE_INDEX = 10

_DELAY_ALGORITHMS = ["elpc", "streamline", "greedy", "random", "source-only",
                     "direct-path"]
_FRAMERATE_ALGORITHMS = ["elpc", "elpc-reuse", "streamline", "greedy", "random"]


@pytest.fixture(scope="module")
def medium_case():
    return make_case(PAPER_CASE_SPECS[_CASE_INDEX])


@pytest.mark.benchmark(group="micro-delay")
@pytest.mark.parametrize("algorithm", _DELAY_ALGORITHMS)
def test_delay_algorithm_runtime(benchmark, medium_case, algorithm):
    solver = get_solver(algorithm, Objective.MIN_DELAY)
    mapping = benchmark(solver, medium_case.pipeline, medium_case.network,
                        medium_case.request)
    benchmark.extra_info["delay_ms"] = mapping.delay_ms
    assert mapping.path[0] == medium_case.request.source
    assert mapping.path[-1] == medium_case.request.destination


@pytest.mark.benchmark(group="micro-framerate")
@pytest.mark.parametrize("algorithm", _FRAMERATE_ALGORITHMS)
def test_framerate_algorithm_runtime(benchmark, medium_case, algorithm):
    solver = get_solver(algorithm, Objective.MAX_FRAME_RATE)

    def run():
        try:
            return solver(medium_case.pipeline, medium_case.network,
                          medium_case.request)
        except InfeasibleMappingError:
            return None

    mapping = benchmark(run)
    if mapping is not None:
        benchmark.extra_info["frame_rate_fps"] = mapping.frame_rate_fps
        assert mapping.path[-1] == medium_case.request.destination
    else:
        benchmark.extra_info["frame_rate_fps"] = None
