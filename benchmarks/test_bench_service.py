"""Benchmark: coalesced vs sequential request throughput through the service.

The micro-batching service (:mod:`repro.service`, ``repro serve``) exists to
turn B concurrent solve requests into one tensor-engine flush instead of B
independent solves.  This file measures that end to end — real HTTP clients
against a real :class:`~repro.service.BackgroundServer` — and asserts the
PR's acceptance bar: **a coalesced flush of B=32 same-network requests must
achieve at least 3× the throughput of 32 sequential single solves through
the service path**, with every service response bit-identical to a direct
:func:`repro.core.batch.solve_many` of the same instances.

Three measurements:

* *sequential (shipped config)* — one client posts the 32 requests one at a
  time against ``repro serve``'s default configuration
  (:class:`ServiceConfig` defaults: ``max_batch=32, max_wait_ms=2``).  Every
  request flushes as its own group of 1 after the micro-batch window — the
  real per-request path of a serial caller against a deployed service.  This
  is the acceptance bar's denominator.
* *coalesced (throughput config)* — 32 concurrent clients against a server
  whose wait window is deliberately large (a throughput-tuned deployment,
  ``--max-wait-ms``).  The window never actually elapses: the 32nd arrival
  reaches ``max_batch`` and triggers the flush, so the measured time is
  genuinely arrival spread + one tensor group solve.
* *sequential (wait-free floor)* — the same serial stream against a
  no-batching server (``max_batch=1, max_wait_ms=0``), recorded as
  ``sequential_nowait_s``.  A second assertion requires the coalesced flush
  to beat even this window-less baseline by >= 1.5×, so the headline ratio
  can never come from the batching window alone — the tensor group path must
  genuinely pay.

Every timed request rides the client's ``network_ref`` path (the warm-up
teaches it the server's interned digest), so the per-request wire cost is
the pipeline payload only — the same-network streaming regime the service
is built for.

Like the other speedup benches, the wall-clock ratio assertions are skipped
under ``REPRO_SKIP_SPEEDUP_ASSERT=1`` (noisy shared runners); the identity
and coalescing assertions always run.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core import Objective, solve_many
from repro.generators import random_network, random_pipeline, random_request
from repro.model import ProblemInstance
from repro.service import BackgroundServer, ServiceConfig

#: Acceptance-bar shape: B=32 requests of 100-module pipelines over one
#: shared sparse 48-node network — the tensor group path's sweet spot, with
#: pipelines long enough that solving dominates request parsing.
_BATCH_SIZE = 32
_N_MODULES = 100
_K_NODES = 48
_N_LINKS = 96

#: Throughput-tuned deployment: the wait window comfortably covers the burst
#: arrival spread, and the flush fires on the max_batch trigger anyway.
_COALESCING_CONFIG = ServiceConfig(max_batch=_BATCH_SIZE, max_wait_ms=10_000.0)


def _request_instances(count: int = _BATCH_SIZE):
    network = random_network(_K_NODES, _N_LINKS, seed=17)
    instances = [
        ProblemInstance(pipeline=random_pipeline(_N_MODULES, seed=311 + b),
                        network=network,
                        request=random_request(network, seed=411 + b,
                                               min_hop_distance=2),
                        name=f"bench-serve-{b}")
        for b in range(count)
    ]
    network.dense_view()
    return instances


def _post_concurrently(client, instances, pool=None):
    if pool is not None:
        return list(pool.map(client.solve, instances))
    with ThreadPoolExecutor(max_workers=len(instances)) as fresh:
        return list(fresh.map(client.solve, instances))


def _best_sequential_pass(client, instances, passes=5):
    best, responses = float("inf"), None
    for _ in range(passes):
        start = time.perf_counter()
        current = [client.solve(inst) for inst in instances]
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best, responses = elapsed, current
    return best, responses


@pytest.fixture(scope="module")
def service_measurement():
    """The three measurements shared by the assertions (best of 3 passes
    each; warm-ups also teach each client the server's ``network_ref``)."""
    instances = _request_instances()

    with BackgroundServer(ServiceConfig()) as server:  # shipped defaults
        client = server.client()
        client.wait_ready()
        [client.solve(inst) for inst in instances[:2]]
        sequential_s, sequential_responses = _best_sequential_pass(
            client, instances)

    with BackgroundServer(_COALESCING_CONFIG) as server:
        client = server.client()
        client.wait_ready()
        # One warmed thread pool for every pass: 32 thread creations are the
        # harness's cost, not the service's, so keep them out of the timing.
        with ThreadPoolExecutor(max_workers=len(instances)) as pool:
            _post_concurrently(client, instances, pool)  # warm-up
            coalesced_s, coalesced_responses = float("inf"), None
            for _ in range(5):
                start = time.perf_counter()
                current = _post_concurrently(client, instances, pool)
                elapsed = time.perf_counter() - start
                if elapsed < coalesced_s:
                    coalesced_s, coalesced_responses = elapsed, current

    with BackgroundServer(ServiceConfig(max_batch=1,
                                        max_wait_ms=0.0)) as server:
        client = server.client()
        client.wait_ready()
        [client.solve(inst) for inst in instances[:2]]
        sequential_nowait_s, _ = _best_sequential_pass(client, instances)

    return (sequential_s, coalesced_s, sequential_nowait_s,
            sequential_responses, coalesced_responses)


@pytest.mark.benchmark(group="service")
def test_service_coalesced_flush(benchmark, service_measurement):
    """Timed metric: B=32 concurrent requests through one coalesced flush,
    plus the PR's >= 3x acceptance bar."""
    (sequential_s, coalesced_s, sequential_nowait_s,
     sequential_responses, coalesced_responses) = service_measurement
    instances = _request_instances()

    with BackgroundServer(_COALESCING_CONFIG) as server:
        client = server.client()
        client.wait_ready()
        _post_concurrently(client, instances)  # warm-up + network ref
        responses = benchmark(_post_concurrently, client, instances)
    assert all(r["ok"] for r in responses)

    benchmark.extra_info["sequential_s"] = round(sequential_s, 4)
    benchmark.extra_info["sequential_nowait_s"] = round(sequential_nowait_s, 4)
    benchmark.extra_info["coalesced_s"] = round(coalesced_s, 4)
    benchmark.extra_info["speedup"] = round(sequential_s / coalesced_s, 2)
    benchmark.extra_info["speedup_vs_nowait"] = round(
        sequential_nowait_s / coalesced_s, 2)

    # The coalescing claim itself: every request of the measured pass rode
    # one tensor group flush of the full batch.
    group_ids = {r["group_id"] for r in coalesced_responses}
    assert len(group_ids) == 1, "B=32 concurrent requests split across flushes"
    assert all(r["group_size"] == _BATCH_SIZE for r in coalesced_responses)
    # ... while the sequential pass really was per-request flushes.
    assert all(r["group_size"] == 1 for r in sequential_responses)

    if os.environ.get("REPRO_SKIP_SPEEDUP_ASSERT") == "1":
        pytest.skip("speedup ratio assertions disabled via "
                    "REPRO_SKIP_SPEEDUP_ASSERT")
    speedup = sequential_s / coalesced_s
    assert speedup >= 3.0, (
        f"coalesced service flush only {speedup:.1f}x faster than sequential "
        f"requests (sequential {sequential_s:.3f}s vs coalesced "
        f"{coalesced_s:.3f}s for B={_BATCH_SIZE}, modules={_N_MODULES}, "
        f"nodes={_K_NODES}); expected >= 3x")
    # Engine batching must contribute even against the wait-free baseline —
    # the ratio cannot come from the micro-batch window alone.
    floor_speedup = sequential_nowait_s / coalesced_s
    assert floor_speedup >= 1.5, (
        f"coalescing only {floor_speedup:.1f}x faster than a wait-free "
        "sequential server; the tensor group path is not paying off")


@pytest.mark.benchmark(group="service")
def test_service_sequential_reference(benchmark):
    """The wait-free sequential service wall time at B=8, for the records
    (kept small: the full B=32 passes are already timed by the fixture)."""
    instances = _request_instances(8)
    with BackgroundServer(ServiceConfig(max_batch=1,
                                        max_wait_ms=0.0)) as server:
        client = server.client()
        client.wait_ready()
        client.solve(instances[0])  # warm-up

        def sequential_pass():
            return [client.solve(inst) for inst in instances]

        responses = benchmark(sequential_pass)
    assert all(r["ok"] for r in responses)


def test_service_responses_identical_to_solve_many(service_measurement):
    """Bit-identity: both service paths return exactly the direct batch
    results (JSON floats round-trip repr-exactly, so == is exact)."""
    (_seq_s, _coal_s, _nowait_s, sequential_responses,
     coalesced_responses) = service_measurement
    instances = _request_instances()
    direct = solve_many(instances, solver="elpc-tensor",
                        objective=Objective.MIN_DELAY)
    assert direct.n_solved == len(instances)
    for item, seq, coal in zip(direct.items, sequential_responses,
                               coalesced_responses):
        expected = item.mapping.delay_ms
        expected_groups = [list(g) for g in item.mapping.groups]
        expected_path = list(item.mapping.path)
        for response in (seq, coal):
            assert response["ok"]
            assert response["mapping"]["delay_ms"] == expected
            assert response["mapping"]["groups"] == expected_groups
            assert response["mapping"]["path"] == expected_path
