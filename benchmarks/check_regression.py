#!/usr/bin/env python
"""Normalize benchmark output and gate CI on performance regressions.

The CI ``bench`` job runs the perf-critical benchmark files with
``pytest --benchmark-json=raw.json`` and pipes the result through this script,
which

1. normalizes the pytest-benchmark payload into the compact ``repro-bench/1``
   schema (the same one ``repro bench --emit-json`` produces)::

       {
         "schema": "repro-bench/1",
         "source": "pytest-benchmark",
         "sha": "<commit>",
         "metrics": {"<benchmark name>": {"mean_s": ..., "stddev_s": ...,
                                          "rounds": ...}}
       }

2. writes it to ``--output`` (CI names the file ``BENCH_<sha>.json`` and
   uploads it as a build artifact, so every commit's numbers are archived),
3. compares every metric present in both files against ``--baseline`` and
   **exits 1** when any mean regresses by more than ``--threshold`` (default
   30 %; the benchmarks' own assertions still enforce the absolute speedup
   floors).

Absolute wall times are hardware-specific, so a baseline is only meaningful
on the machine class that recorded it: CI seeds and gates against a
runner-local baseline kept in the actions cache (see the ``bench`` job),
while the checked-in ``benchmarks/bench_baseline.json`` is the
development-machine reference used by local runs and
``tests/test_check_regression.py``.

Metrics only present on one side are reported but never fail the gate —
adding a benchmark must not break CI until a baseline refresh
(``--write-baseline``) records it.

Usage::

    python benchmarks/check_regression.py --input raw.json \
        --baseline benchmarks/bench_baseline.json --output BENCH_abc123.json
    python benchmarks/check_regression.py --input raw.json \
        --write-baseline benchmarks/bench_baseline.json     # refresh baseline
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, Optional

SCHEMA = "repro-bench/1"


def normalize(raw: dict, *, sha: Optional[str] = None) -> dict:
    """Convert a pytest-benchmark JSON payload to the repro-bench/1 schema.

    A payload that already carries ``schema: repro-bench/1`` (e.g. produced by
    ``repro bench --emit-json``) passes through untouched apart from the
    ``sha`` stamp.
    """
    if raw.get("schema") == SCHEMA:
        normalized = dict(raw)
    else:
        metrics: Dict[str, Dict[str, float]] = {}
        for bench in raw.get("benchmarks", []):
            stats = bench.get("stats", {})
            name = bench.get("fullname") or bench.get("name")
            if not name or "mean" not in stats:
                continue
            metrics[name] = {
                "mean_s": stats["mean"],
                "stddev_s": stats.get("stddev", 0.0),
                "rounds": stats.get("rounds", 0),
            }
            # The speedup benches attach their measured ratios; archive them
            # so the committed BENCH_<sha>.json files tell the whole story.
            extra = bench.get("extra_info") or {}
            for key, value in sorted(extra.items()):
                if isinstance(value, (int, float)):
                    metrics[name][f"extra:{key}"] = value
        normalized = {"schema": SCHEMA, "source": "pytest-benchmark",
                      "metrics": metrics}
    if sha:
        normalized["sha"] = sha
    return normalized


def compare(current: dict, baseline: dict, *, threshold: float) -> list:
    """Return a list of regression description strings (empty when clean)."""
    regressions = []
    current_metrics = current.get("metrics", {})
    baseline_metrics = baseline.get("metrics", {})
    for name in sorted(set(current_metrics) & set(baseline_metrics)):
        new = current_metrics[name].get("mean_s")
        old = baseline_metrics[name].get("mean_s")
        if new is None or old is None or old <= 0:
            continue
        ratio = new / old
        marker = "REGRESSION" if ratio > 1.0 + threshold else "ok"
        line = (f"{name}: {old:.6f}s -> {new:.6f}s "
                f"({(ratio - 1.0) * 100.0:+.1f}%) [{marker}]")
        print(line)
        if marker == "REGRESSION":
            regressions.append(line)
    for name in sorted(set(current_metrics) - set(baseline_metrics)):
        print(f"{name}: not in baseline (informational)")
    for name in sorted(set(baseline_metrics) - set(current_metrics)):
        print(f"{name}: missing from current run (informational)")
    return regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--input", type=Path, required=True,
                        help="pytest-benchmark JSON (or an existing "
                             "repro-bench/1 file) to normalize")
    parser.add_argument("--baseline", type=Path,
                        default=Path("benchmarks/bench_baseline.json"),
                        help="checked-in baseline to compare against")
    parser.add_argument("--output", type=Path, default=None,
                        help="where to write the normalized BENCH_<sha>.json")
    parser.add_argument("--sha", default=None,
                        help="commit sha recorded in the normalized output")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="allowed relative mean increase before failing "
                             "(default 0.30 = 30%%)")
    parser.add_argument("--write-baseline", type=Path, default=None,
                        metavar="PATH",
                        help="write the normalized metrics as the new "
                             "baseline and skip the comparison")
    parser.add_argument("--require-baseline", action="store_true",
                        help="fail (exit 2) when the baseline file is missing "
                             "instead of passing informationally")
    args = parser.parse_args(argv)

    try:
        raw = json.loads(args.input.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        print(f"error: cannot read {args.input}: {exc}", file=sys.stderr)
        return 2
    current = normalize(raw, sha=args.sha)

    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(json.dumps(current, indent=2, sort_keys=True)
                               + "\n", encoding="utf-8")
        print(f"wrote {args.output}")

    if args.write_baseline is not None:
        args.write_baseline.parent.mkdir(parents=True, exist_ok=True)
        args.write_baseline.write_text(
            json.dumps(current, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")
        print(f"wrote baseline {args.write_baseline}")
        return 0

    if not args.baseline.exists():
        message = (f"baseline {args.baseline} not found; "
                   "run with --write-baseline to create it")
        if args.require_baseline:
            print(f"error: {message}", file=sys.stderr)
            return 2
        print(message)
        return 0
    try:
        baseline = json.loads(args.baseline.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        print(f"error: cannot read baseline {args.baseline}: {exc}",
              file=sys.stderr)
        return 2

    regressions = compare(current, baseline, threshold=args.threshold)
    if regressions:
        print(f"\n{len(regressions)} benchmark regression(s) beyond "
              f"{args.threshold * 100:.0f}%:", file=sys.stderr)
        for line in regressions:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("benchmark means within threshold of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
