"""A2 — ablation: what does the no-node-reuse restriction cost for streaming?

The paper restricts its streaming (maximum frame rate) variant to one module
per node and defers the reuse-enabled problem to future work.  This ablation
runs both the restricted ELPC heuristic and the reuse-enabled extension
(:mod:`repro.extensions.framerate_reuse`) over the case suite and over random
instances, and reports:

* how often reuse changes the achieved frame rate at all,
* the mean and maximum frame-rate gain from allowing reuse, and
* how many instances are *only* feasible with reuse (pipelines longer than the
  longest simple path — the paper's own infeasibility example).
"""

from __future__ import annotations

import pytest

from repro.core import elpc_max_frame_rate
from repro.exceptions import InfeasibleMappingError
from repro.extensions import elpc_max_frame_rate_with_reuse
from repro.generators import (
    line_network,
    paper_case_suite,
    random_network,
    random_pipeline,
    random_request,
)
from repro.model import EndToEndRequest


@pytest.mark.benchmark(group="ablation-node-reuse")
def test_reuse_gain_on_case_suite(benchmark, full_suite):
    """Both variants across the fixed 20-case suite; reuse can only help."""

    def run_both_variants():
        pairs = []
        for instance in full_suite:
            restricted = elpc_max_frame_rate(instance.pipeline, instance.network,
                                             instance.request)
            with_reuse = elpc_max_frame_rate_with_reuse(instance.pipeline,
                                                        instance.network,
                                                        instance.request)
            pairs.append((restricted.frame_rate_fps, with_reuse.frame_rate_fps))
        return pairs

    pairs = benchmark.pedantic(run_both_variants, rounds=1, iterations=1)
    assert len(pairs) == 20

    gains = [reuse / restricted for restricted, reuse in pairs]
    improved = sum(1 for g in gains if g > 1.0 + 1e-9)
    benchmark.extra_info["cases_where_reuse_helps"] = improved
    benchmark.extra_info["mean_gain"] = sum(gains) / len(gains)
    benchmark.extra_info["max_gain"] = max(gains)

    # Reuse enlarges the solution space: it must never be (meaningfully) worse.
    assert all(g >= 0.999 for g in gains)


@pytest.mark.benchmark(group="ablation-node-reuse")
def test_reuse_restores_feasibility_on_sparse_topologies(benchmark):
    """On long pipelines over short networks only the reuse variant is feasible."""

    def run_battery():
        only_reuse_feasible = 0
        both_feasible = 0
        for seed in range(12):
            network = line_network(4 + (seed % 3), seed=seed)
            pipeline = random_pipeline(network.n_nodes + 2 + (seed % 2), seed=seed)
            request = EndToEndRequest(0, network.n_nodes - 1)
            reuse_mapping = elpc_max_frame_rate_with_reuse(pipeline, network, request)
            assert reuse_mapping.frame_rate_fps > 0
            try:
                elpc_max_frame_rate(pipeline, network, request)
                both_feasible += 1
            except InfeasibleMappingError:
                only_reuse_feasible += 1
        return only_reuse_feasible, both_feasible

    only_reuse, both = benchmark.pedantic(run_battery, rounds=1, iterations=1)
    benchmark.extra_info["only_feasible_with_reuse"] = only_reuse
    benchmark.extra_info["feasible_for_both"] = both
    # The battery is constructed so the pipelines outgrow the simple paths.
    assert only_reuse == 12 and both == 0


@pytest.mark.benchmark(group="ablation-node-reuse")
def test_reuse_gain_on_dense_random_instances(benchmark):
    """On dense networks with plenty of nodes, reuse rarely changes the optimum."""

    def run_battery():
        gains = []
        for seed in range(10):
            pipeline = random_pipeline(6, seed=seed)
            network = random_network(18, 60, seed=seed + 2000)
            request = random_request(network, seed=seed, min_hop_distance=2)
            try:
                restricted = elpc_max_frame_rate(pipeline, network, request)
            except InfeasibleMappingError:
                continue
            with_reuse = elpc_max_frame_rate_with_reuse(pipeline, network, request)
            gains.append(with_reuse.frame_rate_fps / restricted.frame_rate_fps)
        return gains

    gains = benchmark.pedantic(run_battery, rounds=1, iterations=1)
    assert len(gains) >= 6
    benchmark.extra_info["mean_gain_dense"] = sum(gains) / len(gains)
    assert all(g >= 0.999 for g in gains)
    # With many nodes available, restricting reuse costs little (< 50 % on average).
    assert sum(gains) / len(gains) < 1.5
