"""Benchmark: batched throughput of the tensor ELPC engine.

The tensor engine (:mod:`repro.core.tensor`, solver name ``"elpc-tensor"``)
advances the DP columns of a whole batch of pipelines over one shared network
in stacked CSR edge-array passes, where the looped path solves them one
``elpc-vec`` call at a time.  This file records the looped-vs-tensor wall
times across batch sizes and asserts the PR's acceptance bar: **at batch
sizes B ≥ 32 on a k ≥ 40-node network the tensor path must be at least 5×
faster than looping the vectorized engine** (measured ~6× locally, growing
with batch size and network sparsity).

The timings come from the same
:func:`repro.analysis.experiments.tensor_batch_speedup` driver the
``repro bench-batch`` CLI uses, so the numbers printed there and asserted
here come from one code path — and the driver cross-checks every objective
value between the two engines, so the timing claim can never outlive the
equivalence claim.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis import tensor_batch_speedup
from repro.core import Objective, solve_many
from repro.generators import random_network, random_pipeline, random_request
from repro.model import ProblemInstance

#: Benchmark shape: a sparse (Internet-like) 48-node topology and 40-module
#: pipelines; every batch size from index 1 on is >= 32.
_BATCH_SIZES = (8, 32, 64)
_N_MODULES = 40
_K_NODES = 48
_N_LINKS = 96


@pytest.fixture(scope="module")
def speedup_result():
    """One measured sweep shared by the assertions below (best of 3 passes)."""
    return tensor_batch_speedup(batch_sizes=_BATCH_SIZES, n_modules=_N_MODULES,
                                k_nodes=_K_NODES, n_links=_N_LINKS,
                                seed=11, repetitions=3)


def _batch_instances(count: int):
    network = random_network(_K_NODES, _N_LINKS, seed=11)
    instances = [
        ProblemInstance(pipeline=random_pipeline(_N_MODULES, seed=111 + b),
                        network=network,
                        request=random_request(network, seed=211 + b,
                                               min_hop_distance=2),
                        name=f"bench-tensor-{b}")
        for b in range(count)
    ]
    network.dense_view()
    return instances


@pytest.mark.benchmark(group="tensor-batch")
def test_tensor_batch_solve(benchmark, speedup_result):
    """Timed metric: one B=32 batch through the tensor engine, plus the bar."""
    instances = _batch_instances(32)
    solve_many(instances, solver="elpc-tensor", objective=Objective.MIN_DELAY)

    result = benchmark(solve_many, instances, solver="elpc-tensor",
                       objective=Objective.MIN_DELAY)
    assert result.n_solved == len(instances)

    speedups = speedup_result.speedups()
    benchmark.extra_info["batch_sizes"] = speedup_result.batch_sizes
    benchmark.extra_info["speedups"] = [round(x, 2) for x in speedups]
    benchmark.extra_info["looped_s"] = speedup_result.looped_s
    benchmark.extra_info["tensor_s"] = speedup_result.tensor_s

    # The engines must agree on every solved value regardless of timing.
    assert speedup_result.value_mismatches == 0

    # Wall-clock ratios on shared CI runners carry noise; the measured margin
    # is ~20% above the floor, but REPRO_SKIP_SPEEDUP_ASSERT=1 lets a
    # throttled environment keep the equivalence checks without the timing
    # gate (the CI regression script still compares means against the
    # checked-in baseline).
    if os.environ.get("REPRO_SKIP_SPEEDUP_ASSERT") == "1":
        pytest.skip("speedup ratio assertions disabled via "
                    "REPRO_SKIP_SPEEDUP_ASSERT")
    for B, ratio in zip(speedup_result.batch_sizes, speedups):
        if B >= 32:
            assert ratio >= 5.0, (
                f"tensor batch engine only {ratio:.1f}x faster than looped "
                f"elpc-vec at B={B} (modules={_N_MODULES}, nodes={_K_NODES}, "
                f"links={_N_LINKS}); expected >= 5x")


@pytest.mark.benchmark(group="tensor-batch")
def test_looped_vec_reference_baseline(benchmark):
    """The looped elpc-vec wall time at B=32, for the records."""
    instances = _batch_instances(32)
    solve_many(instances, solver="elpc-vec", objective=Objective.MIN_DELAY)
    result = benchmark(solve_many, instances, solver="elpc-vec",
                       objective=Objective.MIN_DELAY)
    assert result.n_solved == len(instances)


def test_engines_agree_at_benchmark_sizes():
    """The timed runs compare identical work: same values item by item."""
    instances = _batch_instances(max(_BATCH_SIZES))
    tensor = solve_many(instances, solver="elpc-tensor",
                        objective=Objective.MIN_DELAY)
    looped = solve_many(instances, solver="elpc-vec",
                        objective=Objective.MIN_DELAY)
    scalar = solve_many(instances, solver="elpc",
                        objective=Objective.MIN_DELAY)
    for t, l, s in zip(tensor.values(), looped.values(), scalar.values()):
        assert t == l == s
