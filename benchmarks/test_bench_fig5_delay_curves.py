"""E4 — Fig. 5: minimum end-to-end delay per case for ELPC / Streamline / Greedy.

The paper's Fig. 5 plots the three algorithms' minimum end-to-end delay over
the 20 cases.  Two qualitative features are asserted:

* the ELPC curve never lies above a baseline curve (it is the optimum), and
* the delay exhibits "the increasing trend" with problem size the paper
  explains (bigger cases generally mean longer mapping paths and thus larger
  total delay) — checked as a positive rank correlation between case number
  and ELPC delay.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import reproduce_fig5
from repro.core import Objective


def _rank_correlation(values):
    """Spearman rank correlation of a series against its index (no scipy needed)."""
    values = np.asarray(values, dtype=float)
    idx = np.arange(len(values), dtype=float)
    rank_v = np.argsort(np.argsort(values)).astype(float)
    rank_i = np.argsort(np.argsort(idx)).astype(float)
    rv = rank_v - rank_v.mean()
    ri = rank_i - rank_i.mean()
    return float((rv * ri).sum() / np.sqrt((rv ** 2).sum() * (ri ** 2).sum()))


@pytest.mark.benchmark(group="fig5")
def test_fig5_delay_curves(benchmark, delay_comparison):
    result = benchmark(reproduce_fig5, run=delay_comparison)

    assert result.objective is Objective.MIN_DELAY
    assert len(result.case_labels) == 20
    series = result.series

    # ELPC is optimal: it can never be above a baseline on any case.
    for idx in range(20):
        elpc = series["elpc"][idx]
        assert elpc is not None
        for baseline in ("streamline", "greedy"):
            value = series[baseline][idx]
            if value is not None:
                assert elpc <= value + 1e-9

    # Increasing trend of delay with problem size (paper's observation).
    correlation = _rank_correlation([v for v in series["elpc"]])
    benchmark.extra_info["elpc_delay_rank_correlation_with_case"] = correlation
    assert correlation > 0.5

    # Artifacts are produced for external plotting.
    assert result.csv_text.startswith("case,")
    assert "Fig. 5" in result.chart_text
    assert "legend" in result.chart_text
