"""E2 — Fig. 3: ELPC's minimum end-to-end delay path on the small illustration case.

The paper illustrates the delay variant on a 5-module / 6-node instance where
the optimum groups several modules on the same nodes (node reuse).  The
reproduction checks:

* the selected path starts at the designated source (node 0) and ends at the
  designated destination (node 5), as in the figure;
* the DP result is *provably optimal*: it matches the exhaustive search;
* node reuse is actually exercised (fewer path nodes than modules), matching
  the figure's grouping of modules onto three nodes.
"""

from __future__ import annotations

import pytest

from repro.analysis import reproduce_fig3
from repro.core import exhaustive_min_delay


@pytest.mark.benchmark(group="fig3")
def test_fig3_min_delay_walkthrough(benchmark, illustration):
    result = benchmark(reproduce_fig3)
    mapping = result.mapping

    assert mapping.path[0] == 0
    assert mapping.path[-1] == 5
    assert mapping.pipeline.n_modules == 5
    # Grouping: the optimum uses fewer nodes than modules (node reuse), like Fig. 3.
    assert len(mapping.path) < mapping.pipeline.n_modules

    exact = exhaustive_min_delay(illustration.pipeline, illustration.network,
                                 illustration.request)
    assert mapping.delay_ms == pytest.approx(exact.delay_ms, rel=1e-9)

    benchmark.extra_info["delay_ms"] = mapping.delay_ms
    benchmark.extra_info["path"] = mapping.path
    assert "minimum end-to-end delay" in result.walkthrough_text


@pytest.mark.benchmark(group="fig3")
def test_fig3_dp_vs_exhaustive_speed(benchmark, illustration):
    """The DP solves the illustration instance much faster than brute force."""
    from repro.core import elpc_min_delay

    def run_both():
        dp = elpc_min_delay(illustration.pipeline, illustration.network,
                            illustration.request)
        return dp

    mapping = benchmark(run_both)
    exact = exhaustive_min_delay(illustration.pipeline, illustration.network,
                                 illustration.request)
    assert mapping.delay_ms == pytest.approx(exact.delay_ms, rel=1e-9)
    benchmark.extra_info["exhaustive_assignments"] = exact.extras["assignments_explored"]
    benchmark.extra_info["dp_relaxations"] = mapping.extras["dp_relaxations"]
    # the DP examines far fewer states than the exhaustive assignment count
    assert mapping.extras["dp_relaxations"] < exact.extras["assignments_explored"]
