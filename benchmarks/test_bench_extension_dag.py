"""A5 — extension ablation: DAG workflow mapping vs the linear-pipeline optimum.

The paper defers general graph workflows to future work; the reproduction
ships a HEFT-style list-scheduling heuristic (`repro.extensions.dag_workflow`).
Two checks keep that extension honest:

* embedding a *linear* pipeline as a chain DAG and mapping it with the DAG
  heuristic must stay within a modest factor of the ELPC optimum (the DAG
  evaluator permits multi-hop message routing, so small deviations in either
  direction are expected, but never catastrophic ones), and
* on a genuinely branching workflow (fork/join), the heuristic must beat the
  trivial "run everything at the edges" placement.
"""

from __future__ import annotations

import pytest

from repro.core import elpc_min_delay
from repro.extensions import (
    DagTask,
    DagWorkflow,
    dag_makespan,
    linearize_pipeline,
    map_dag_earliest_finish,
)
from repro.generators import random_network, random_pipeline, random_request


def _fork_join_workflow(width: int = 4, *, data_bytes: float = 400_000.0) -> DagWorkflow:
    """source -> `width` parallel branches -> join (a simple branching workload)."""
    dag = DagWorkflow()
    dag.add_task(DagTask(0, complexity=0.0, name="source"))
    join_id = width + 1
    dag.add_task(DagTask(join_id, complexity=15.0, name="join"))
    for branch in range(1, width + 1):
        dag.add_task(DagTask(branch, complexity=40.0 + 10.0 * branch,
                             name=f"branch-{branch}"))
        dag.add_dependency(0, branch, data_bytes)
        dag.add_dependency(branch, join_id, data_bytes / 4.0)
    return dag


@pytest.mark.benchmark(group="extension-dag")
def test_chain_dag_close_to_linear_optimum(benchmark):
    """Gap of the DAG heuristic vs ELPC on chain workflows across seeds."""

    def run_battery():
        gaps = []
        for seed in range(8):
            pipeline = random_pipeline(7, seed=seed)
            network = random_network(14, 44, seed=seed + 4000)
            request = random_request(network, seed=seed, min_hop_distance=2)
            optimal = elpc_min_delay(pipeline, network, request)
            result = map_dag_earliest_finish(linearize_pipeline(pipeline), network, request)
            gaps.append(result.makespan_ms / optimal.delay_ms)
        return gaps

    gaps = benchmark.pedantic(run_battery, rounds=1, iterations=1)
    benchmark.extra_info["mean_gap"] = sum(gaps) / len(gaps)
    benchmark.extra_info["worst_gap"] = max(gaps)
    benchmark.extra_info["best_gap"] = min(gaps)
    # The two models are not identical: the DAG evaluator may route messages
    # over multi-hop paths, so it can occasionally undercut the (direct-link
    # only) linear optimum — but never by much, and it must never blow up.
    assert min(gaps) >= 0.5
    assert max(gaps) <= 3.0
    assert sum(gaps) / len(gaps) >= 0.9


@pytest.mark.benchmark(group="extension-dag")
def test_fork_join_workflow_mapping(benchmark):
    """The heuristic exploits parallel branches better than an all-at-the-source placement."""
    network = random_network(16, 52, seed=4242)
    request = random_request(network, seed=4242, min_hop_distance=2)
    dag = _fork_join_workflow(width=4)

    result = benchmark(map_dag_earliest_finish, dag, network, request)

    naive_assignment = {task_id: request.source for task_id in dag.task_ids()}
    naive_assignment[dag.exit_task()] = request.destination
    naive_makespan, _ = dag_makespan(dag, network, naive_assignment)

    benchmark.extra_info["heuristic_makespan_ms"] = result.makespan_ms
    benchmark.extra_info["naive_makespan_ms"] = naive_makespan
    assert result.makespan_ms <= naive_makespan + 1e-9
    # entry and exit pinned to the request
    assert result.assignment[dag.entry_task()] == request.source
    assert result.assignment[dag.exit_task()] == request.destination
