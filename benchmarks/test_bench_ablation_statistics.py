"""A4 — ablation: is ELPC's advantage robust to the random dataset draw?

The paper's Fig. 2 reports one random draw per case.  This ablation re-draws
selected case specifications several times with different seeds and checks
that the headline qualitative result — ELPC wins or ties — is a property of
the algorithm, not of the particular datasets: the win rate across replicates
must stay at 100 % for the delay objective (where ELPC is provably optimal)
and the pooled improvement factors over Streamline / Greedy must stay ≥ 1
with a confidence interval that excludes "ELPC loses".
"""

from __future__ import annotations

import pytest

from repro.analysis import replicate_case, summarize_improvements
from repro.core import Objective
from repro.generators import PAPER_CASE_SPECS

#: Replicated specs: one small, one medium case (replication is solver-heavy).
_SPEC_INDICES = [2, 7]
_REPLICATES = 8


@pytest.mark.benchmark(group="ablation-statistics")
def test_delay_advantage_robust_across_replicates(benchmark):
    def run_replications():
        return [replicate_case(PAPER_CASE_SPECS[idx], _REPLICATES,
                               objective=Objective.MIN_DELAY)
                for idx in _SPEC_INDICES]

    results = benchmark.pedantic(run_replications, rounds=1, iterations=1)

    for result in results:
        # ELPC is optimal: it must be feasible and winning on every replicate.
        assert result.feasibility_rate("elpc") == 1.0
        assert result.win_rate("elpc") == 1.0

    streamline = summarize_improvements(results, "streamline")
    greedy = summarize_improvements(results, "greedy")
    benchmark.extra_info["improvement_vs_streamline_mean"] = streamline.mean
    benchmark.extra_info["improvement_vs_streamline_ci"] = (streamline.ci_low,
                                                            streamline.ci_high)
    benchmark.extra_info["improvement_vs_greedy_mean"] = greedy.mean
    benchmark.extra_info["improvement_vs_greedy_ci"] = (greedy.ci_low, greedy.ci_high)

    # The advantage never inverts: even the lower confidence bound stays >= 1.
    assert streamline.minimum >= 1.0 - 1e-9
    assert greedy.minimum >= 1.0 - 1e-9
    assert streamline.ci_low >= 1.0 - 1e-9
    assert greedy.ci_low >= 1.0 - 1e-9


@pytest.mark.benchmark(group="ablation-statistics")
def test_framerate_advantage_robust_across_replicates(benchmark):
    def run_replications():
        return [replicate_case(PAPER_CASE_SPECS[idx], _REPLICATES,
                               objective=Objective.MAX_FRAME_RATE)
                for idx in _SPEC_INDICES]

    results = benchmark.pedantic(run_replications, rounds=1, iterations=1)

    for result in results:
        # The heuristic is not guaranteed feasible on arbitrary re-draws, but
        # it should succeed on the bulk of them and win whenever it does.
        assert result.feasibility_rate("elpc") >= 0.75
        assert result.win_rate("elpc") >= 0.9

    pooled = summarize_improvements(results, "greedy")
    benchmark.extra_info["improvement_vs_greedy_mean"] = pooled.mean
    benchmark.extra_info["replicate_feasibility_elpc"] = [
        r.feasibility_rate("elpc") for r in results]
    assert pooled.mean >= 1.0 - 1e-9
