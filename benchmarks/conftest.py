"""Shared fixtures for the benchmark harness.

Everything here is session-scoped: the fixed 20-case suite is generated once
and reused by every benchmark so `pytest benchmarks/ --benchmark-only` stays
reasonably quick while still covering the paper's full evaluation.
"""

from __future__ import annotations

import pytest

from repro.analysis import run_comparison
from repro.core import Objective
from repro.generators import paper_case_suite, small_illustration_case


@pytest.fixture(scope="session")
def full_suite():
    """The full 20-case simulation suite behind Fig. 2 / Fig. 5 / Fig. 6."""
    return paper_case_suite()


@pytest.fixture(scope="session")
def illustration():
    """The 5-module / 6-node instance behind Fig. 3 / Fig. 4."""
    return small_illustration_case()


@pytest.fixture(scope="session")
def delay_comparison(full_suite):
    """One full minimum-delay comparison run, shared by shape assertions."""
    return run_comparison(full_suite, Objective.MIN_DELAY)


@pytest.fixture(scope="session")
def framerate_comparison(full_suite):
    """One full maximum-frame-rate comparison run, shared by shape assertions."""
    return run_comparison(full_suite, Objective.MAX_FRAME_RATE)
