"""Benchmark: speedup of the vectorized ELPC engine over the scalar reference.

The vectorized solvers do the same :math:`O(n k^2)` work as the scalar
dynamic programs but move every column update from Python-level dict/neighbor
iteration into a handful of dense NumPy passes.  This file records the
speedup ratio across problem sizes and asserts the PR's acceptance bar: at
``k >= 50`` network nodes the vectorized min-delay DP must be at least 3x
faster than the scalar one (in practice it lands around 10x and grows with
``k``).

The per-solver wall times are measured through the same
:func:`repro.analysis.experiments.vectorized_speedup` driver the
``repro bench-scaling`` CLI uses, so the numbers printed there and asserted
here come from one code path.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis import vectorized_speedup
from repro.core import elpc_min_delay, elpc_min_delay_vec
from repro.generators import random_network, random_pipeline, random_request

#: (modules, nodes, links) sweep; everything from index 1 on has k >= 50.
_SIZES = [(10, 30, 90), (20, 60, 240), (30, 120, 600)]


@pytest.fixture(scope="module")
def speedup_result():
    """One measured sweep shared by the assertions below (best of 2 passes)."""
    return vectorized_speedup(sizes=_SIZES, seed=11, repetitions=2)


@pytest.mark.benchmark(group="vectorized-speedup")
def test_vectorized_speedup_at_scale(benchmark, speedup_result):
    """Acceptance bar: >= 3x on the min-delay DP at every k >= 50 size."""
    pipeline = random_pipeline(20, seed=23)
    network = random_network(60, 240, seed=23)
    request = random_request(network, seed=23, min_hop_distance=2)
    elpc_min_delay_vec(pipeline, network, request)  # warm the dense view
    benchmark(elpc_min_delay_vec, pipeline, network, request)

    delay_speedups = speedup_result.delay_speedups()
    framerate_speedups = speedup_result.framerate_speedups()
    benchmark.extra_info["sizes"] = speedup_result.sizes
    benchmark.extra_info["delay_speedups"] = [round(x, 2) for x in delay_speedups]
    benchmark.extra_info["framerate_speedups"] = [round(x, 2)
                                                  for x in framerate_speedups]
    benchmark.extra_info["scalar_delay_s"] = speedup_result.scalar.delay_runtimes_s
    benchmark.extra_info["vec_delay_s"] = speedup_result.vectorized.delay_runtimes_s

    # Wall-clock ratios on shared CI runners carry noise; the measured margin
    # is ~3x the floor, but REPRO_SKIP_SPEEDUP_ASSERT=1 lets a throttled
    # environment keep the (always-asserted) equivalence checks without the
    # timing gate.
    if os.environ.get("REPRO_SKIP_SPEEDUP_ASSERT") == "1":
        pytest.skip("speedup ratio assertions disabled via REPRO_SKIP_SPEEDUP_ASSERT")
    for (m, k, l), ratio in zip(speedup_result.sizes, delay_speedups):
        if k >= 50:
            assert ratio >= 3.0, (
                f"vectorized min-delay DP only {ratio:.1f}x faster than scalar "
                f"at size (modules={m}, nodes={k}, links={l}); expected >= 3x")
    # The frame-rate DP vectorizes the same way; hold it to a softer floor
    # (its scalar loop does less per-edge work, so the ratio is smaller).
    for (m, k, l), ratio in zip(speedup_result.sizes, framerate_speedups):
        if k >= 50:
            assert ratio >= 1.5, (
                f"vectorized frame-rate DP only {ratio:.1f}x faster at "
                f"(modules={m}, nodes={k}, links={l}); expected >= 1.5x")


@pytest.mark.benchmark(group="vectorized-speedup")
def test_scalar_reference_baseline(benchmark):
    """The scalar DP's runtime at the k=60 size, for the records."""
    pipeline = random_pipeline(20, seed=23)
    network = random_network(60, 240, seed=23)
    request = random_request(network, seed=23, min_hop_distance=2)
    mapping = benchmark(elpc_min_delay, pipeline, network, request)
    assert mapping.delay_ms > 0


def test_engines_agree_at_benchmark_sizes(speedup_result):
    """The timed runs must compare identical work: same optimum at every size."""
    from repro.analysis.experiments import _scaling_instances

    instances = _scaling_instances(_SIZES, seed=11)
    for instance in instances:
        scalar = elpc_min_delay(instance.pipeline, instance.network,
                                instance.request)
        vec = elpc_min_delay_vec(instance.pipeline, instance.network,
                                 instance.request)
        assert vec.delay_ms == pytest.approx(scalar.delay_ms, rel=1e-12)
