#!/usr/bin/env python
"""Docs health checks: markdown link integrity + core docstring presence.

Run by the CI ``docs`` job (and importable by ``tests/test_docs.py``):

1. **Link check** — every relative markdown link in ``docs/*.md`` and
   ``README.md`` must resolve to an existing file, and ``#anchor`` fragments
   pointing into a markdown file must match one of its headings
   (GitHub-style slugs).  External ``http(s)://`` / ``mailto:`` links are
   not fetched — this check needs no network.
2. **Docstring check** — every public module, class, function and method
   defined in ``repro.core.*`` must carry a docstring.  The architecture
   docs lean on the API reference being readable straight from the source;
   this keeps that promise enforceable.

Usage::

    python docs/check_docs.py [--repo-root PATH]

Exits 0 when clean, 1 with one line per finding otherwise.
"""

from __future__ import annotations

import argparse
import importlib
import inspect
import pkgutil
import re
import sys
from pathlib import Path
from typing import List

#: Markdown inline links: [text](target) — images share the syntax.
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def _slugify(heading: str) -> str:
    """GitHub-style anchor slug of a markdown heading."""
    slug = heading.strip().lower()
    slug = re.sub(r"[`*_~]", "", slug)          # inline formatting
    slug = re.sub(r"[^\w\- ]", "", slug)        # punctuation
    return slug.replace(" ", "-")


def _anchors_of(markdown_path: Path) -> set:
    text = markdown_path.read_text(encoding="utf-8")
    return {_slugify(match) for match in _HEADING_RE.findall(text)}


def check_links(markdown_files: List[Path], repo_root: Path) -> List[str]:
    """Relative-link findings (missing files / unknown anchors) for the docs.

    Returns one message per broken link; an empty list means every relative
    target exists and every in-repo anchor matches a heading.
    """
    findings: List[str] = []
    for md in markdown_files:
        text = md.read_text(encoding="utf-8")
        for target in _LINK_RE.findall(text):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path_part, _, anchor = target.partition("#")
            base = md if not path_part else (md.parent / path_part)
            if path_part:
                resolved = base.resolve()
                if not resolved.exists():
                    findings.append(
                        f"{md.relative_to(repo_root)}: broken link target "
                        f"{target!r} (no such file)")
                    continue
            if anchor and base.suffix == ".md" and base.exists():
                if _slugify(anchor) not in _anchors_of(base):
                    findings.append(
                        f"{md.relative_to(repo_root)}: anchor {target!r} "
                        f"matches no heading in {base.name}")
    return findings


def _public_members(module) -> List[tuple]:
    """(qualified name, object) pairs that must carry docstrings."""
    members = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isfunction(obj) or inspect.isclass(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-exports are documented where they are defined
        members.append((f"{module.__name__}.{name}", obj))
        if inspect.isclass(obj):
            for attr_name, attr in vars(obj).items():
                if attr_name.startswith("_"):
                    continue
                func = attr.fget if isinstance(attr, property) else attr
                if inspect.isfunction(func):
                    members.append(
                        (f"{module.__name__}.{name}.{attr_name}", func))
    return members


def check_docstrings(package_name: str = "repro.core") -> List[str]:
    """Docstring findings for every public definition under ``package_name``."""
    findings: List[str] = []
    package = importlib.import_module(package_name)
    module_names = [package_name] + [
        f"{package_name}.{info.name}"
        for info in pkgutil.iter_modules(package.__path__)
    ]
    for module_name in module_names:
        module = importlib.import_module(module_name)
        if not (module.__doc__ or "").strip():
            findings.append(f"{module_name}: missing module docstring")
        for qualname, obj in _public_members(module):
            doc = inspect.getdoc(obj)
            if not (doc or "").strip():
                findings.append(f"{qualname}: missing docstring")
    return findings


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repo-root", type=Path,
                        default=Path(__file__).resolve().parent.parent,
                        help="repository root (default: the parent of docs/)")
    args = parser.parse_args(argv)
    repo_root = args.repo_root.resolve()

    sys.path.insert(0, str(repo_root / "src"))
    markdown_files = sorted((repo_root / "docs").glob("*.md"))
    readme = repo_root / "README.md"
    if readme.exists():
        markdown_files.append(readme)

    findings = check_links(markdown_files, repo_root) + check_docstrings()
    for finding in findings:
        print(f"docs-check: {finding}", file=sys.stderr)
    if findings:
        print(f"docs-check: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print(f"docs-check: {len(markdown_files)} markdown files and the "
          f"repro.core API are clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
