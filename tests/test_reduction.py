"""Tests for the Hamiltonian-Path → ENSP reduction (:mod:`repro.core.reduction`)."""

import networkx as nx
import pytest

from repro.core import (
    hamiltonian_path_to_ensp,
    has_hamiltonian_path,
    solve_ensp_exact,
    verify_ensp_certificate,
)
from repro.exceptions import SpecificationError


def path_graph(n):
    return nx.path_graph(n)


def star_graph(leaves):
    return nx.star_graph(leaves)  # node 0 is the hub


class TestTransformation:
    def test_instance_shape(self):
        g = path_graph(5)
        inst = hamiltonian_path_to_ensp(g, 0, 4)
        assert inst.hops == 4
        assert inst.bound == 4.0
        assert inst.graph.number_of_nodes() == 5
        assert inst.graph.number_of_edges() == g.number_of_edges()
        assert all(d["weight"] == 1.0 for _u, _v, d in inst.graph.edges(data=True))

    def test_same_endpoints_rejected(self):
        with pytest.raises(SpecificationError):
            hamiltonian_path_to_ensp(path_graph(3), 1, 1)

    def test_unknown_endpoint_rejected(self):
        with pytest.raises(SpecificationError):
            hamiltonian_path_to_ensp(path_graph(3), 0, 9)


class TestCertificateVerifier:
    def test_valid_certificate(self):
        inst = hamiltonian_path_to_ensp(path_graph(4), 0, 3)
        assert verify_ensp_certificate(inst, [0, 1, 2, 3])

    def test_wrong_length_rejected(self):
        inst = hamiltonian_path_to_ensp(path_graph(4), 0, 3)
        assert not verify_ensp_certificate(inst, [0, 1, 3])

    def test_wrong_endpoints_rejected(self):
        inst = hamiltonian_path_to_ensp(path_graph(4), 0, 3)
        assert not verify_ensp_certificate(inst, [1, 2, 3, 0])

    def test_revisiting_rejected(self):
        inst = hamiltonian_path_to_ensp(nx.complete_graph(4), 0, 3)
        assert not verify_ensp_certificate(inst, [0, 1, 0, 3])

    def test_non_edges_rejected(self):
        inst = hamiltonian_path_to_ensp(path_graph(4), 0, 3)
        assert not verify_ensp_certificate(inst, [0, 2, 1, 3])

    def test_over_budget_rejected(self):
        g = nx.complete_graph(4)
        inst = hamiltonian_path_to_ensp(g, 0, 3)
        # Inflate one edge weight beyond the bound.
        inst.graph[0][1]["weight"] = 10.0
        assert not verify_ensp_certificate(inst, [0, 1, 2, 3])


class TestEndToEndReduction:
    def test_yes_instances(self):
        # A path graph trivially has a Hamiltonian path between its ends.
        assert has_hamiltonian_path(path_graph(6), 0, 5)
        # A complete graph has one between any two vertices.
        assert has_hamiltonian_path(nx.complete_graph(6), 2, 4)
        # A cycle has one between adjacent vertices.
        assert has_hamiltonian_path(nx.cycle_graph(5), 0, 4)

    def test_no_instances(self):
        # A star with 3+ leaves has no Hamiltonian path between two leaves.
        assert not has_hamiltonian_path(star_graph(4), 1, 2)
        # A path graph has none between interior vertices.
        assert not has_hamiltonian_path(path_graph(5), 1, 3)

    def test_witness_is_verified(self):
        inst = hamiltonian_path_to_ensp(nx.complete_graph(5), 0, 4)
        witness = solve_ensp_exact(inst)
        assert witness is not None
        assert verify_ensp_certificate(inst, witness)

    def test_solver_returns_none_when_infeasible(self):
        inst = hamiltonian_path_to_ensp(star_graph(3), 1, 2)
        assert solve_ensp_exact(inst) is None

    def test_reduction_agrees_with_networkx_bruteforce(self):
        """Cross-check the reduction-based decision against direct enumeration."""
        rng_graphs = [
            nx.gnp_random_graph(6, 0.4, seed=s) for s in range(6)
        ]
        for g in rng_graphs:
            if 0 not in g or 5 not in g:
                continue
            direct = any(len(p) == g.number_of_nodes()
                         for p in nx.all_simple_paths(g, 0, 5))
            assert has_hamiltonian_path(g, 0, 5) == direct
