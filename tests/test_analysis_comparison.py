"""Tests for the comparison harness (:mod:`repro.analysis.comparison`)."""

import pytest

from repro.analysis import DEFAULT_ALGORITHMS, run_case, run_comparison
from repro.core import Objective
from repro.generators import make_case, PAPER_CASE_SPECS, paper_case_suite
from repro.model import EndToEndRequest, ProblemInstance


@pytest.fixture(scope="module")
def small_suite():
    return paper_case_suite(max_cases=3)


class TestRunCase:
    def test_all_default_algorithms_reported(self, small_suite):
        case = run_case(small_suite[0], Objective.MIN_DELAY)
        assert set(case.results) == set(DEFAULT_ALGORITHMS)
        assert case.size_signature == small_suite[0].size_signature
        for result in case.results.values():
            assert result.runtime_s >= 0.0

    def test_elpc_is_best_for_delay(self, small_suite):
        case = run_case(small_suite[0], Objective.MIN_DELAY)
        assert case.best_algorithm() == "elpc" or \
            case.value("elpc") == pytest.approx(case.value(case.best_algorithm()))

    def test_infeasible_recorded_not_raised(self):
        """An instance that is infeasible for the no-reuse variant must produce
        value=None entries rather than an exception."""
        from repro.generators import line_network, random_pipeline
        pipeline = random_pipeline(4, seed=0)
        network = line_network(5, seed=0)
        instance = ProblemInstance(pipeline=pipeline, network=network,
                                   request=EndToEndRequest(0, 2), name="bad")
        case = run_case(instance, Objective.MAX_FRAME_RATE)
        assert all(result.value is None for result in case.results.values())
        assert all(result.error for result in case.results.values())

    def test_custom_algorithm_list(self, small_suite):
        case = run_case(small_suite[0], Objective.MIN_DELAY, algorithms=("elpc", "random"))
        assert set(case.results) == {"elpc", "random"}


class TestRunComparison:
    def test_series_shapes(self, small_suite):
        run = run_comparison(small_suite, Objective.MIN_DELAY)
        assert len(run.cases) == len(small_suite)
        assert run.case_names() == [inst.name for inst in small_suite]
        for algorithm in DEFAULT_ALGORITHMS:
            assert len(run.series(algorithm)) == len(small_suite)

    def test_elpc_wins_every_delay_case(self, small_suite):
        run = run_comparison(small_suite, Objective.MIN_DELAY)
        assert run.win_count("elpc") == len(small_suite)

    def test_feasible_counts(self, small_suite):
        run = run_comparison(small_suite, Objective.MIN_DELAY)
        assert run.feasible_case_count("elpc") == len(small_suite)

    def test_mean_improvement_at_least_one(self, small_suite):
        run = run_comparison(small_suite, Objective.MIN_DELAY)
        assert run.mean_improvement("streamline") >= 1.0 - 1e-9
        assert run.mean_improvement("greedy") >= 1.0 - 1e-9

    def test_framerate_objective_runs(self, small_suite):
        run = run_comparison(small_suite, Objective.MAX_FRAME_RATE)
        assert len(run.cases) == len(small_suite)
        # ELPC must be feasible on the fixed suite cases (validated at generation)
        assert run.feasible_case_count("elpc") == len(small_suite)
