"""Differential tests: the tensor batch engine against the vectorized and
scalar ELPC references.

The tensor engine (:mod:`repro.core.tensor`) promises to be *bit-identical*
to the vectorized engine — which PR 1's differential harness already pins to
the scalar DPs — on every instance: same objective values, same feasibility
verdicts, same backtracked mappings, same DP tables.  This suite extends that
harness to ``"elpc-tensor"``:

* fixed-seed sweeps over generated instances with **exact** (``==``, not
  approximate) agreement between tensor and vectorized results,
* hypothesis property tests over instance shapes, for both objectives and
  both cost-model variants,
* batch semantics of :func:`repro.core.batch.solve_many` with the tensor
  dispatch: same-network groups, heterogeneous (per-instance network)
  batches, ragged pipeline lengths, interleaved infeasible items, empty
  batches, multiprocessing fallback, and cross-solver parity.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    Objective,
    elpc_max_frame_rate,
    elpc_max_frame_rate_many,
    elpc_max_frame_rate_tensor,
    elpc_max_frame_rate_vec,
    elpc_min_delay,
    elpc_min_delay_many,
    elpc_min_delay_tensor,
    elpc_min_delay_vec,
    solve_many,
)
from repro.core.mapping import PipelineMapping
from repro.exceptions import InfeasibleMappingError, SpecificationError
from repro.generators import (
    max_links,
    min_links_for_connectivity,
    random_network,
    random_pipeline,
    random_request,
)
from repro.model import ProblemInstance, assert_no_reuse

#: Outcome marker for infeasible solves, comparable across solvers.
INFEASIBLE = object()


def _objective_or_infeasible(solver, pipeline, network, request, **kwargs):
    try:
        mapping = solver(pipeline, network, request, **kwargs)
    except InfeasibleMappingError:
        return INFEASIBLE, None
    key = ("dp_value_ms" if "dp_value_ms" in mapping.extras else "dp_bottleneck_ms")
    return mapping.extras[key], mapping


def _make_instance(seed: int, n_modules: int, k_nodes: int, extra_links: int):
    """One deterministic random instance from shape parameters."""
    lo, hi = min_links_for_connectivity(k_nodes), max_links(k_nodes)
    n_links = min(lo + extra_links, hi)
    pipeline = random_pipeline(n_modules, seed=seed)
    network = random_network(k_nodes, n_links, seed=seed + 1)
    request = random_request(network, seed=seed + 2, min_hop_distance=1)
    return pipeline, network, request


def _assert_bit_identical(vec_solver, tensor_solver, pipeline, network,
                          request, **kwargs):
    """Tensor vs vectorized: identical feasibility, *bit-identical* values."""
    vec_value, vec_mapping = _objective_or_infeasible(
        vec_solver, pipeline, network, request, **kwargs)
    tensor_value, tensor_mapping = _objective_or_infeasible(
        tensor_solver, pipeline, network, request, **kwargs)
    if vec_value is INFEASIBLE or tensor_value is INFEASIBLE:
        assert vec_value is tensor_value, (
            f"feasibility disagreement: vec={vec_value!r} tensor={tensor_value!r}")
        return None, None
    assert tensor_value == vec_value, (
        f"objective not bit-identical: vec={vec_value!r} tensor={tensor_value!r}")
    assert tensor_mapping.path == vec_mapping.path
    assert tensor_mapping.groups == vec_mapping.groups
    return vec_mapping, tensor_mapping


# --------------------------------------------------------------------------- #
# Fixed-seed sweep: exact agreement with the vectorized engine
# --------------------------------------------------------------------------- #
class TestFixedSeedSweep:
    @pytest.mark.parametrize("seed", range(60))
    def test_min_delay_bit_identical(self, seed):
        pipeline, network, request = _make_instance(
            seed=seed * 41, n_modules=3 + seed % 6, k_nodes=5 + seed % 9,
            extra_links=seed % 12)
        vec, tensor = _assert_bit_identical(
            elpc_min_delay_vec, elpc_min_delay_tensor, pipeline, network, request)
        if tensor is not None:
            assert tensor.algorithm == "elpc-tensor"
            assert tensor.extras["tensor_batch"] == 1
            assert tensor.extras["dp_finite_cells"] == vec.extras["dp_finite_cells"]

    @pytest.mark.parametrize("seed", range(60))
    def test_max_frame_rate_bit_identical(self, seed):
        pipeline, network, request = _make_instance(
            seed=seed * 59 + 1, n_modules=3 + seed % 4, k_nodes=6 + seed % 8,
            extra_links=seed % 14)
        vec, tensor = _assert_bit_identical(
            elpc_max_frame_rate_vec, elpc_max_frame_rate_tensor,
            pipeline, network, request)
        if tensor is not None:
            assert_no_reuse(tensor.path)
            assert len(tensor.path) == pipeline.n_modules

    @pytest.mark.parametrize("seed", range(20))
    def test_min_delay_matches_scalar(self, seed):
        """Transitively: tensor == vec == scalar, checked directly anyway."""
        pipeline, network, request = _make_instance(
            seed=seed * 23 + 7, n_modules=3 + seed % 5, k_nodes=5 + seed % 7,
            extra_links=seed % 9)
        s_value, _ = _objective_or_infeasible(
            elpc_min_delay, pipeline, network, request)
        t_value, _ = _objective_or_infeasible(
            elpc_min_delay_tensor, pipeline, network, request)
        if s_value is INFEASIBLE or t_value is INFEASIBLE:
            assert s_value is t_value
        else:
            assert t_value == pytest.approx(s_value, rel=1e-12, abs=1e-12)

    @pytest.mark.parametrize("seed", range(20))
    def test_max_frame_rate_matches_scalar(self, seed):
        pipeline, network, request = _make_instance(
            seed=seed * 31 + 5, n_modules=3 + seed % 4, k_nodes=6 + seed % 6,
            extra_links=seed % 8)
        s_value, _ = _objective_or_infeasible(
            elpc_max_frame_rate, pipeline, network, request)
        t_value, _ = _objective_or_infeasible(
            elpc_max_frame_rate_tensor, pipeline, network, request)
        if s_value is INFEASIBLE or t_value is INFEASIBLE:
            assert s_value is t_value
        else:
            assert t_value == pytest.approx(s_value, rel=1e-12, abs=1e-12)


# --------------------------------------------------------------------------- #
# Hypothesis property tests over instance shapes
# --------------------------------------------------------------------------- #
@st.composite
def instance_shapes(draw):
    seed = draw(st.integers(min_value=0, max_value=10**6))
    n_modules = draw(st.integers(min_value=2, max_value=8))
    k_nodes = draw(st.integers(min_value=2, max_value=14))
    extra_links = draw(st.integers(min_value=0, max_value=20))
    return seed, n_modules, k_nodes, extra_links


class TestHypothesisEquivalence:
    @settings(max_examples=50, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(shape=instance_shapes())
    def test_min_delay_property(self, shape):
        seed, n_modules, k_nodes, extra_links = shape
        pipeline, network, request = _make_instance(
            seed, n_modules, k_nodes, extra_links)
        _assert_bit_identical(elpc_min_delay_vec, elpc_min_delay_tensor,
                              pipeline, network, request)

    @settings(max_examples=50, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(shape=instance_shapes())
    def test_max_frame_rate_property(self, shape):
        seed, n_modules, k_nodes, extra_links = shape
        pipeline, network, request = _make_instance(
            seed, n_modules, k_nodes, extra_links)
        _assert_bit_identical(elpc_max_frame_rate_vec, elpc_max_frame_rate_tensor,
                              pipeline, network, request)

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(shape=instance_shapes())
    def test_min_delay_property_without_link_delay(self, shape):
        """Agreement must also hold for the literal Eq. 1 cost model."""
        seed, n_modules, k_nodes, extra_links = shape
        pipeline, network, request = _make_instance(
            seed, n_modules, k_nodes, extra_links)
        _assert_bit_identical(elpc_min_delay_vec, elpc_min_delay_tensor,
                              pipeline, network, request,
                              include_link_delay=False)

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(shape=instance_shapes())
    def test_max_frame_rate_property_without_link_delay(self, shape):
        seed, n_modules, k_nodes, extra_links = shape
        pipeline, network, request = _make_instance(
            seed, n_modules, k_nodes, extra_links)
        _assert_bit_identical(elpc_max_frame_rate_vec,
                              elpc_max_frame_rate_tensor,
                              pipeline, network, request,
                              include_link_delay=False)

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(shape=instance_shapes(),
           batch=st.integers(min_value=1, max_value=6))
    def test_batched_solve_matches_per_item(self, shape, batch):
        """A whole batch over one network solves exactly like B single calls."""
        seed, n_modules, k_nodes, extra_links = shape
        _, network, _ = _make_instance(seed, n_modules, k_nodes, extra_links)
        pipelines, requests = [], []
        for b in range(batch):
            pipeline, _, _ = _make_instance(seed + 1000 * b + 1, 2 + (b + n_modules) % 7,
                                            k_nodes, extra_links)
            pipelines.append(pipeline)
            requests.append(random_request(network, seed=seed + b,
                                           min_hop_distance=1))
        entries = elpc_min_delay_many(pipelines, network, requests)
        assert len(entries) == batch
        for pipeline, request, entry in zip(pipelines, requests, entries):
            value, _ = _objective_or_infeasible(
                elpc_min_delay_vec, pipeline, network, request)
            if isinstance(entry, InfeasibleMappingError):
                assert value is INFEASIBLE
            else:
                assert value == entry.extras["dp_value_ms"]


# --------------------------------------------------------------------------- #
# DP-table parity (keep_table)
# --------------------------------------------------------------------------- #
class TestTableParity:
    @pytest.mark.parametrize("seed", [0, 4, 11])
    def test_min_delay_tables_match(self, seed):
        pipeline, network, request = _make_instance(seed * 13, 5, 8, 6)
        vec = elpc_min_delay_vec(pipeline, network, request, keep_table=True)
        tensor = elpc_min_delay_tensor(pipeline, network, request, keep_table=True)
        v_table, t_table = vec.extras["dp_table"], tensor.extras["dp_table"]
        assert v_table.node_ids == t_table.node_ids
        for j in range(pipeline.n_modules):
            for nid in v_table.node_ids:
                v_val, t_val = v_table.value(j, nid), t_table.value(j, nid)
                if math.isinf(v_val):
                    assert math.isinf(t_val), (j, nid)
                else:
                    assert t_val == v_val, (j, nid)

    @pytest.mark.parametrize("seed", [1, 6])
    def test_frame_rate_tables_match(self, seed):
        pipeline, network, request = _make_instance(seed * 17 + 2, 4, 9, 8)
        try:
            vec = elpc_max_frame_rate_vec(pipeline, network, request,
                                          keep_table=True)
        except InfeasibleMappingError:
            with pytest.raises(InfeasibleMappingError):
                elpc_max_frame_rate_tensor(pipeline, network, request)
            return
        tensor = elpc_max_frame_rate_tensor(pipeline, network, request,
                                            keep_table=True)
        v_table, t_table = vec.extras["dp_table"], tensor.extras["dp_table"]
        for j in range(pipeline.n_modules):
            for nid in v_table.node_ids:
                v_val, t_val = v_table.value(j, nid), t_table.value(j, nid)
                if math.isinf(v_val):
                    assert math.isinf(t_val), (j, nid)
                else:
                    assert t_val == v_val, (j, nid)


# --------------------------------------------------------------------------- #
# solve_many tensor dispatch
# --------------------------------------------------------------------------- #
def _shared_network_suite(count, *, network=None, n_modules=None, seed0=0):
    network = network if network is not None else random_network(10, 24, seed=7)
    instances = []
    for s in range(count):
        n = n_modules if n_modules is not None else 3 + s % 6
        instances.append(ProblemInstance(
            pipeline=random_pipeline(n, seed=seed0 + s),
            network=network,
            request=random_request(network, seed=seed0 + s, min_hop_distance=1),
            name=f"shared-{s}"))
    return instances


class TestSolveManyTensorDispatch:
    def test_same_network_batch_matches_vec(self):
        instances = _shared_network_suite(12)
        for objective in (Objective.MIN_DELAY, Objective.MAX_FRAME_RATE):
            tensor = solve_many(instances, solver="elpc-tensor",
                                objective=objective)
            vec = solve_many(instances, solver="elpc-vec", objective=objective)
            assert tensor.solver == "elpc-tensor"
            assert [item.index for item in tensor] == list(range(12))
            for t, v in zip(tensor, vec):
                assert t.ok == v.ok
                if t.ok:
                    assert (t.objective_value(objective)
                            == v.objective_value(objective))
                    assert t.mapping.algorithm == "elpc-tensor"

    def test_ragged_pipeline_lengths(self):
        """Pipelines of different lengths batch correctly (per-item columns)."""
        network = random_network(11, 30, seed=19)
        instances = [
            ProblemInstance(pipeline=random_pipeline(n, seed=50 + n),
                            network=network,
                            request=random_request(network, seed=60 + n,
                                                   min_hop_distance=1),
                            name=f"ragged-{n}")
            for n in (2, 9, 3, 7, 2, 11, 5)
        ]
        tensor = solve_many(instances, solver="elpc-tensor",
                            objective=Objective.MIN_DELAY)
        vec = solve_many(instances, solver="elpc-vec",
                         objective=Objective.MIN_DELAY)
        assert tensor.values() == vec.values()

    def test_heterogeneous_networks_fall_back_per_group(self):
        """Every instance on its own network still matches the scalar DP."""
        instances = []
        for s in range(6):
            network = random_network(8, 16, seed=100 + s)
            instances.append(ProblemInstance(
                pipeline=random_pipeline(4, seed=s),
                network=network,
                request=random_request(network, seed=s, min_hop_distance=1),
                name=f"hetero-{s}"))
        tensor = solve_many(instances, solver="elpc-tensor",
                            objective=Objective.MIN_DELAY)
        scalar = solve_many(instances, solver="elpc",
                            objective=Objective.MIN_DELAY)
        for t, s_item in zip(tensor, scalar):
            assert t.ok == s_item.ok
            if t.ok:
                assert t.objective_value(Objective.MIN_DELAY) == pytest.approx(
                    s_item.objective_value(Objective.MIN_DELAY), rel=1e-12)

    def test_mixed_networks_preserve_input_order(self):
        """Two interleaved network groups re-scatter into input order."""
        net_a = random_network(9, 20, seed=1)
        net_b = random_network(9, 20, seed=2)
        instances = []
        for s in range(8):
            network = net_a if s % 2 == 0 else net_b
            instances.append(ProblemInstance(
                pipeline=random_pipeline(4, seed=s), network=network,
                request=random_request(network, seed=s, min_hop_distance=1),
                name=f"mix-{s}"))
        tensor = solve_many(instances, solver="elpc-tensor",
                            objective=Objective.MIN_DELAY)
        vec = solve_many(instances, solver="elpc-vec",
                         objective=Objective.MIN_DELAY)
        assert [item.name for item in tensor] == [f"mix-{s}" for s in range(8)]
        assert tensor.values() == vec.values()

    def test_infeasible_items_recorded_not_raised(self):
        # 12-module pipelines cannot avoid reuse on 10-node networks, and the
        # feasible 3-module ones must still solve: mixed outcomes, one batch.
        network = random_network(10, 24, seed=7)
        instances = (_shared_network_suite(3, network=network, n_modules=12)
                     + _shared_network_suite(3, network=network, n_modules=3,
                                             seed0=40))
        result = solve_many(instances, solver="elpc-tensor",
                            objective=Objective.MAX_FRAME_RATE)
        assert [item.ok for item in result] == [False] * 3 + [True] * 3
        assert all(item.error for item in result if not item.ok)

    def test_empty_batch(self):
        result = solve_many([], solver="elpc-tensor",
                            objective=Objective.MIN_DELAY)
        assert len(result) == 0 and result.n_solved == 0

    def test_malformed_request_recorded_per_item(self):
        """An unknown endpoint in one item must not abort the batch.

        Regression: the eager endpoint validation used to raise out of the
        whole tensor group; the looped path has always recorded it per item.
        """
        from repro.model import EndToEndRequest

        network = random_network(10, 24, seed=7)
        good = _shared_network_suite(2, network=network, n_modules=4)
        bad = ProblemInstance(pipeline=random_pipeline(4, seed=9),
                              network=network,
                              request=EndToEndRequest(source=999, destination=0),
                              name="bad-endpoint")
        batch = [good[0], bad, good[1]]
        tensor = solve_many(batch, solver="elpc-tensor",
                            objective=Objective.MIN_DELAY)
        looped = solve_many(batch, solver="elpc-vec",
                            objective=Objective.MIN_DELAY)
        assert [item.ok for item in tensor] == [True, False, True]
        assert "unknown source node 999" in tensor.items[1].error
        assert tensor.values() == looped.values()
        assert [item.error is None for item in tensor] \
            == [item.error is None for item in looped]

    def test_solver_kwargs_forwarded(self):
        instances = _shared_network_suite(4)
        with_mld = solve_many(instances, solver="elpc-tensor",
                              objective=Objective.MIN_DELAY)
        without = solve_many(instances, solver="elpc-tensor",
                             objective=Objective.MIN_DELAY,
                             include_link_delay=False)
        for a, b in zip(with_mld, without):
            assert (b.mapping.extras["dp_value_ms"]
                    <= a.mapping.extras["dp_value_ms"] + 1e-9)

    def test_workers_fall_back_to_per_item_solves(self):
        instances = _shared_network_suite(6)
        sequential = solve_many(instances, solver="elpc-tensor",
                                objective=Objective.MIN_DELAY)
        parallel = solve_many(instances, solver="elpc-tensor",
                              objective=Objective.MIN_DELAY, workers=2)
        assert parallel.workers == 2
        assert sequential.values() == parallel.values()


# --------------------------------------------------------------------------- #
# Batch API edge cases of the *_many functions themselves
# --------------------------------------------------------------------------- #
class TestManyFunctionSemantics:
    def test_shared_request_broadcast(self):
        network = random_network(9, 22, seed=5)
        request = random_request(network, seed=5, min_hop_distance=1)
        pipelines = [random_pipeline(4, seed=s) for s in range(3)]
        entries = elpc_min_delay_many(pipelines, network, request)
        assert len(entries) == 3
        for pipeline, entry in zip(pipelines, entries):
            assert isinstance(entry, PipelineMapping)
            direct = elpc_min_delay_vec(pipeline, network, request)
            assert entry.extras["dp_value_ms"] == direct.extras["dp_value_ms"]

    def test_mismatched_request_count_rejected(self):
        network = random_network(6, 10, seed=5)
        request = random_request(network, seed=5)
        with pytest.raises(SpecificationError):
            elpc_min_delay_many([random_pipeline(3, seed=0)], network,
                                [request, request])

    def test_empty_input(self):
        network = random_network(6, 10, seed=5)
        assert elpc_min_delay_many([], network, []) == []
        assert elpc_max_frame_rate_many([], network, []) == []

    def test_all_infeasible_batch(self):
        """The DP is skipped entirely but per-item errors still line up."""
        network = random_network(6, 8, seed=9)
        request = random_request(network, seed=9, min_hop_distance=1)
        pipelines = [random_pipeline(8, seed=s) for s in range(3)]
        entries = elpc_max_frame_rate_many(pipelines, network, request)
        assert all(isinstance(e, InfeasibleMappingError) for e in entries)

    def test_runtime_and_batch_extras(self):
        instances = _shared_network_suite(5, n_modules=4)
        entries = elpc_min_delay_many([i.pipeline for i in instances],
                                      instances[0].network,
                                      [i.request for i in instances])
        for entry in entries:
            assert isinstance(entry, PipelineMapping)
            assert entry.extras["tensor_batch"] == 5
            assert entry.runtime_s > 0
