"""Unit tests for :mod:`repro.model.node` and :mod:`repro.model.link`."""

import pytest

from repro.exceptions import SpecificationError
from repro.model import (
    BITS_PER_BYTE,
    CommunicationLink,
    ComputingNode,
    synthetic_ip,
    transfer_time_ms,
)


class TestComputingNode:
    def test_basic_fields(self):
        node = ComputingNode(node_id=2, processing_power=150.0, name="cluster")
        assert node.node_id == 2
        assert node.processing_power == 150.0
        assert node.name == "cluster"

    def test_synthetic_ip_assigned(self):
        node = ComputingNode(node_id=5, processing_power=1.0)
        assert node.ip_address == synthetic_ip(5) == "10.0.0.5"

    def test_synthetic_ip_encodes_large_ids(self):
        assert synthetic_ip(0x01_02_03) == "10.1.2.3"

    def test_explicit_ip_preserved(self):
        node = ComputingNode(node_id=5, processing_power=1.0, ip_address="192.168.1.9")
        assert node.ip_address == "192.168.1.9"

    def test_non_positive_power_rejected(self):
        with pytest.raises(SpecificationError):
            ComputingNode(node_id=0, processing_power=0.0)
        with pytest.raises(SpecificationError):
            ComputingNode(node_id=0, processing_power=-5.0)

    def test_negative_id_rejected(self):
        with pytest.raises(SpecificationError):
            ComputingNode(node_id=-1, processing_power=1.0)

    def test_computing_time_ms(self):
        # power 100 Mops/s = 100e3 ops/ms; 1e6 ops -> 10 ms
        node = ComputingNode(node_id=0, processing_power=100.0)
        assert node.computing_time_ms(1_000_000) == pytest.approx(10.0)
        assert node.computing_time_ms(0.0) == 0.0

    def test_computing_time_rejects_negative_workload(self):
        node = ComputingNode(node_id=0, processing_power=100.0)
        with pytest.raises(SpecificationError):
            node.computing_time_ms(-1.0)

    def test_relative_speed(self):
        fast = ComputingNode(node_id=0, processing_power=400.0)
        slow = ComputingNode(node_id=1, processing_power=100.0)
        assert fast.relative_speed(slow) == pytest.approx(4.0)

    def test_with_power(self):
        node = ComputingNode(node_id=0, processing_power=100.0)
        assert node.with_power(250.0).processing_power == 250.0

    def test_dict_roundtrip(self):
        node = ComputingNode(node_id=3, processing_power=77.0, name="n")
        assert ComputingNode.from_dict(node.to_dict()) == node


class TestTransferTimeFunction:
    def test_known_value(self):
        # 1_000_000 bytes over 8 Mbit/s: 8e6 bits / 8e6 bit/s = 1 s = 1000 ms
        assert transfer_time_ms(1_000_000, 8.0) == pytest.approx(1000.0)

    def test_mld_added(self):
        assert transfer_time_ms(1_000_000, 8.0, 5.0) == pytest.approx(1005.0)

    def test_zero_message_costs_only_mld(self):
        assert transfer_time_ms(0.0, 100.0, 2.5) == pytest.approx(2.5)

    def test_invalid_inputs(self):
        with pytest.raises(SpecificationError):
            transfer_time_ms(-1.0, 10.0)
        with pytest.raises(SpecificationError):
            transfer_time_ms(1.0, 0.0)
        with pytest.raises(SpecificationError):
            transfer_time_ms(1.0, 10.0, -1.0)

    def test_monotone_in_size_and_bandwidth(self):
        assert transfer_time_ms(2000, 10.0) > transfer_time_ms(1000, 10.0)
        assert transfer_time_ms(1000, 10.0) > transfer_time_ms(1000, 100.0)


class TestCommunicationLink:
    def test_basic_fields(self):
        link = CommunicationLink(1, 2, bandwidth_mbps=100.0, min_delay_ms=3.0, link_id=7)
        assert link.endpoints == (1, 2)
        assert link.link_id == 7

    def test_self_loop_rejected(self):
        with pytest.raises(SpecificationError):
            CommunicationLink(3, 3, bandwidth_mbps=10.0)

    def test_bad_bandwidth_rejected(self):
        with pytest.raises(SpecificationError):
            CommunicationLink(0, 1, bandwidth_mbps=0.0)

    def test_bad_delay_rejected(self):
        with pytest.raises(SpecificationError):
            CommunicationLink(0, 1, bandwidth_mbps=1.0, min_delay_ms=-0.1)

    def test_transport_time_matches_function(self):
        link = CommunicationLink(0, 1, bandwidth_mbps=80.0, min_delay_ms=1.5)
        assert link.transport_time_ms(500_000) == pytest.approx(
            transfer_time_ms(500_000, 80.0, 1.5))

    def test_bandwidth_bytes_per_ms(self):
        link = CommunicationLink(0, 1, bandwidth_mbps=8.0)
        # 8 Mbit/s = 1e6 bytes/s = 1000 bytes/ms
        assert link.bandwidth_bytes_per_ms() == pytest.approx(1000.0)

    def test_connects_either_direction(self):
        link = CommunicationLink(4, 9, bandwidth_mbps=1.0)
        assert link.connects(4, 9)
        assert link.connects(9, 4)
        assert not link.connects(4, 5)

    def test_reversed(self):
        link = CommunicationLink(4, 9, bandwidth_mbps=1.0, min_delay_ms=2.0)
        rev = link.reversed()
        assert rev.start_node == 9 and rev.end_node == 4
        assert rev.bandwidth_mbps == link.bandwidth_mbps

    def test_with_bandwidth(self):
        link = CommunicationLink(0, 1, bandwidth_mbps=10.0)
        assert link.with_bandwidth(50.0).bandwidth_mbps == 50.0

    def test_dict_roundtrip(self):
        link = CommunicationLink(2, 5, bandwidth_mbps=33.0, min_delay_ms=0.5, link_id=4)
        assert CommunicationLink.from_dict(link.to_dict()) == link

    def test_bits_per_byte_constant(self):
        assert BITS_PER_BYTE == 8.0
