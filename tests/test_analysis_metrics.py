"""Tests for result records and improvement metrics."""

import math

import pytest

from repro.analysis import AlgorithmResult, CaseResult, improvement_ratio
from repro.core import Objective


class TestImprovementRatio:
    def test_delay_direction(self):
        # ELPC delay 100 ms vs baseline 200 ms -> 2x improvement
        assert improvement_ratio(Objective.MIN_DELAY, 100.0, 200.0) == pytest.approx(2.0)

    def test_framerate_direction(self):
        # ELPC 30 fps vs baseline 10 fps -> 3x improvement
        assert improvement_ratio(Objective.MAX_FRAME_RATE, 30.0, 10.0) == pytest.approx(3.0)

    def test_degenerate_values_give_nan(self):
        assert math.isnan(improvement_ratio(Objective.MIN_DELAY, 0.0, 10.0))
        assert math.isnan(improvement_ratio(Objective.MIN_DELAY, 10.0, 0.0))


class TestAlgorithmResult:
    def test_feasible_flag(self):
        ok = AlgorithmResult("c", "elpc", Objective.MIN_DELAY, 12.0, 0.01)
        bad = AlgorithmResult("c", "greedy", Objective.MIN_DELAY, None, 0.01,
                              error="stuck")
        assert ok.feasible and not bad.feasible
        assert ok.value_or_nan() == 12.0
        assert math.isnan(bad.value_or_nan())


def build_case(objective=Objective.MIN_DELAY):
    case = CaseResult(case_name="case-1", objective=objective,
                      size_signature=(5, 6, 10))
    case.add(AlgorithmResult("case-1", "elpc", objective, 100.0, 0.01))
    case.add(AlgorithmResult("case-1", "streamline", objective, 150.0, 0.02))
    case.add(AlgorithmResult("case-1", "greedy", objective, None, 0.005, error="x"))
    return case


class TestCaseResult:
    def test_lookup_and_algorithms(self):
        case = build_case()
        assert case.algorithms() == ["elpc", "greedy", "streamline"]
        assert case.value("elpc") == 100.0
        assert case.value("greedy") is None
        assert case.value("unknown") is None

    def test_best_algorithm_min_delay(self):
        assert build_case().best_algorithm() == "elpc"

    def test_best_algorithm_max_framerate(self):
        case = CaseResult("c", Objective.MAX_FRAME_RATE, (5, 6, 10))
        case.add(AlgorithmResult("c", "elpc", Objective.MAX_FRAME_RATE, 20.0, 0.0))
        case.add(AlgorithmResult("c", "greedy", Objective.MAX_FRAME_RATE, 25.0, 0.0))
        assert case.best_algorithm() == "greedy"

    def test_best_algorithm_all_infeasible(self):
        case = CaseResult("c", Objective.MIN_DELAY, (5, 6, 10))
        case.add(AlgorithmResult("c", "elpc", Objective.MIN_DELAY, None, 0.0))
        assert case.best_algorithm() is None

    def test_elpc_improvement(self):
        case = build_case()
        assert case.elpc_improvement("streamline") == pytest.approx(1.5)
        assert math.isnan(case.elpc_improvement("greedy"))

    def test_to_row_order(self):
        case = build_case()
        assert case.to_row(["streamline", "elpc", "greedy"]) == [150.0, 100.0, None]
