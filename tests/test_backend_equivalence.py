"""Differential tests for the pluggable array-backend seam.

The tensor engine promises that routing its DP stages through
:mod:`repro.core.backend` changes *nothing* about the results:

* the NumPy backend's default (in-place) path is the pre-refactor engine —
  ``tests/test_tensor_equivalence.py`` keeps pinning it to the vectorized and
  scalar references;
* the **generic** path — the one CuPy and JAX run — must be bit-identical to
  it, which this file pins with a NumPy backend forced onto that path
  (``NumpyBackend(force_generic=True)``) over the full fixed-seed sweep, for
  both objectives and both cost-model variants;
* CuPy / JAX parity runs of the same sweep are included but skipped unless
  the library is installed (and, for CuPy, a CUDA device is visible).

Plus the seam's plumbing: backend resolution (names, instances, the
``REPRO_BACKEND`` environment default, unknown/uninstalled names raising an
actionable :class:`BackendUnavailableError`), the padded-slot
``segment_min`` contract, per-view device staging, and the
``solve_many(backend=...)`` / worker-pool threading semantics.
"""

from __future__ import annotations

import importlib.util

import numpy as np
import pytest

from repro.core import Objective, solve_many
from repro.core.backend import (
    ArrayBackend,
    NumpyBackend,
    available_backends,
    get_backend,
    register_backend,
)
from repro.core.backend import _FACTORIES, _INSTANCES  # test cleanup only
from repro.core.mapping import PipelineMapping
from repro.core.tensor import elpc_max_frame_rate_many, elpc_min_delay_many
from repro.exceptions import (
    BackendUnavailableError,
    InfeasibleMappingError,
    SpecificationError,
)
from repro.generators import (
    max_links,
    min_links_for_connectivity,
    random_network,
    random_pipeline,
    random_request,
)
from repro.model import ProblemInstance


def _installed(module: str) -> bool:
    return importlib.util.find_spec(module) is not None


requires_cupy = pytest.mark.skipif(not _installed("cupy"),
                                   reason="CuPy is not installed")
requires_jax = pytest.mark.skipif(not _installed("jax"),
                                  reason="JAX is not installed")
without_cupy = pytest.mark.skipif(_installed("cupy"),
                                  reason="CuPy is installed here")


def _make_instance(seed: int, n_modules: int, k_nodes: int, extra_links: int):
    """One deterministic random instance (same recipe as the tensor suite)."""
    lo, hi = min_links_for_connectivity(k_nodes), max_links(k_nodes)
    n_links = min(lo + extra_links, hi)
    pipeline = random_pipeline(n_modules, seed=seed)
    network = random_network(k_nodes, n_links, seed=seed + 1)
    request = random_request(network, seed=seed + 2, min_hop_distance=1)
    return pipeline, network, request


def _sweep_instance(seed: int):
    return _make_instance(seed=seed * 41, n_modules=3 + seed % 6,
                          k_nodes=5 + seed % 9, extra_links=seed % 12)


def _assert_entries_identical(reference, candidate, *, exact=True):
    """Two ``*_many`` result lists: same feasibility, same values, same paths."""
    assert len(reference) == len(candidate)
    for ref, cand in zip(reference, candidate):
        if isinstance(ref, PipelineMapping):
            assert isinstance(cand, PipelineMapping), (ref, cand)
            key = ("dp_value_ms" if "dp_value_ms" in ref.extras
                   else "dp_bottleneck_ms")
            if exact:
                assert cand.extras[key] == ref.extras[key]
            else:
                assert cand.extras[key] == pytest.approx(ref.extras[key],
                                                         rel=1e-12)
            assert cand.path == ref.path
            assert cand.extras["dp_finite_cells"] == ref.extras["dp_finite_cells"]
        else:
            assert isinstance(cand, type(ref)), (ref, cand)


def _batch(seed: int, count: int = 4):
    """A small same-network batch with mixed pipeline lengths."""
    _, network, _ = _sweep_instance(seed)
    pipelines = [random_pipeline(2 + (seed + b) % 7, seed=seed * 10 + b)
                 for b in range(count)]
    requests = [random_request(network, seed=seed + b, min_hop_distance=1)
                for b in range(count)]
    return pipelines, network, requests


# --------------------------------------------------------------------------- #
# Backend resolution
# --------------------------------------------------------------------------- #
class TestBackendResolution:
    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        backend = get_backend(None)
        assert backend.name == "numpy"
        assert backend.supports_inplace and not backend.is_gpu

    def test_named_lookup_is_cached(self):
        assert get_backend("numpy") is get_backend("NumPy")

    def test_instance_passes_through(self):
        backend = NumpyBackend(force_generic=True)
        assert get_backend(backend) is backend
        assert not backend.supports_inplace

    def test_env_var_supplies_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        assert get_backend(None).name == "numpy"
        monkeypatch.setenv("REPRO_BACKEND", "")
        assert get_backend(None).name == "numpy"

    def test_unknown_name_lists_registered_and_installed(self):
        with pytest.raises(BackendUnavailableError) as excinfo:
            get_backend("tpu9000")
        message = str(excinfo.value)
        assert "tpu9000" in message and "numpy" in message
        assert "numpy" in excinfo.value.installed

    @without_cupy
    def test_missing_cupy_raises_actionable_error(self):
        with pytest.raises(BackendUnavailableError) as excinfo:
            get_backend("cupy")
        message = str(excinfo.value)
        assert "cupy" in message
        assert "installed backends" in message and "numpy" in message
        assert excinfo.value.backend == "cupy"
        assert "numpy" in excinfo.value.installed

    @without_cupy
    def test_env_var_failure_surfaces_in_engine(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "cupy")
        pipelines, network, requests = _batch(3)
        with pytest.raises(BackendUnavailableError):
            elpc_min_delay_many(pipelines, network, requests)

    def test_available_backends_contains_numpy(self):
        installed = available_backends()
        assert "numpy" in installed
        assert installed == sorted(installed)

    def test_validate_backend_name_is_light(self):
        """Name validation never constructs the backend (no device probes)."""
        from repro.core.backend import _INSTANCES, validate_backend_name

        assert validate_backend_name("NumPy") == "numpy"
        with pytest.raises(BackendUnavailableError):
            validate_backend_name("tpu9000")
        if not _installed("cupy"):
            with pytest.raises(BackendUnavailableError) as excinfo:
                validate_backend_name("cupy")
            assert "not installed" in str(excinfo.value)
            assert "cupy" not in _INSTANCES

    @without_cupy
    def test_listing_availability_has_no_construction_side_effects(self):
        """available_backends() must not import/construct missing backends."""
        from repro.core.backend import _INSTANCES, _UNAVAILABLE

        installed = available_backends()
        assert "cupy" not in installed
        # find_spec-based probing records no construction verdicts.
        assert "cupy" not in _INSTANCES and "cupy" not in _UNAVAILABLE

    def test_register_backend_rejects_duplicates(self):
        with pytest.raises(SpecificationError):
            register_backend("numpy", NumpyBackend)

    def test_registered_backend_resolves(self):
        class MirrorBackend(NumpyBackend):
            """NumPy arithmetic under a non-default name (test double)."""
            name = "mirror"

        register_backend("mirror", MirrorBackend)
        try:
            assert get_backend("mirror").name == "mirror"
            assert "mirror" in available_backends()
        finally:
            _FACTORIES.pop("mirror", None)
            _INSTANCES.pop("mirror", None)


# --------------------------------------------------------------------------- #
# segment_min contract
# --------------------------------------------------------------------------- #
class TestSegmentMin:
    def _staged(self, k=6, links=9, seed=3):
        backend = get_backend("numpy")
        network = random_network(k, links, seed=seed)
        view = network.dense_view()
        return backend, view, backend.stage_view(view)

    def test_matches_bruteforce_min_and_lowest_u(self):
        backend, view, staged = self._staged()
        rng = np.random.default_rng(7)
        values = rng.random((3, view.n_directed_edges))
        # Force ties inside one node's segment to check the lowest-u rule.
        lo, hi = view.edge_indptr[2], view.edge_indptr[3]
        if hi - lo >= 2:
            values[:, lo:hi] = 0.25
        best, best_u = backend.segment_min(values, staged)
        for a in range(values.shape[0]):
            for v in range(view.n_nodes):
                seg = slice(view.edge_indptr[v], view.edge_indptr[v + 1])
                entries = values[a, seg]
                if entries.size == 0:
                    assert np.isinf(best[a, v]) and best_u[a, v] == 0
                    continue
                assert best[a, v] == entries.min()
                winners = view.edge_u[seg][entries == entries.min()]
                assert best_u[a, v] == winners.min()

    def test_all_inf_segment_normalises_argmin_to_zero(self):
        backend, view, staged = self._staged()
        values = np.full((2, view.n_directed_edges), np.inf)
        best, best_u = backend.segment_min(values, staged)
        assert np.isinf(best).all()
        assert (best_u == 0).all()

    def test_edgeless_network(self):
        from repro.model import ComputingNode, TransportNetwork

        backend = get_backend("numpy")
        network = TransportNetwork(nodes=[
            ComputingNode(node_id=i, processing_power=1.0) for i in range(4)])
        staged = backend.stage_view(network.dense_view())
        best, best_u = backend.segment_min(np.empty((2, 0)), staged)
        assert best.shape == (2, 4) and np.isinf(best).all()
        assert (best_u == 0).all()


# --------------------------------------------------------------------------- #
# Device staging
# --------------------------------------------------------------------------- #
class TestStageView:
    def test_staging_is_cached_per_view(self):
        backend = NumpyBackend()
        network = random_network(8, 16, seed=4)
        view = network.dense_view()
        assert backend.stage_view(view) is backend.stage_view(view)

    def test_mutation_invalidates_through_new_view(self):
        from repro.model import ComputingNode

        backend = NumpyBackend()
        network = random_network(8, 16, seed=4)
        first = backend.stage_view(network.dense_view())
        network.add_node(ComputingNode(node_id=99, processing_power=1.0))
        second = backend.stage_view(network.dense_view())
        assert second is not first
        assert second.k == first.k + 1

    def test_numpy_staging_is_zero_copy(self):
        backend = NumpyBackend()
        network = random_network(8, 16, seed=4)
        view = network.dense_view()
        staged = backend.stage_view(view)
        assert staged.edge_u is view.edge_u
        assert staged.edge_bandwidth_bits_per_s is view.edge_bandwidth_bits_per_s


# --------------------------------------------------------------------------- #
# Bit-identity: NumPy vs NumPy through the generic abstraction (all seeds)
# --------------------------------------------------------------------------- #
class TestGenericPathBitIdentity:
    """The portable path (what CuPy/JAX run) against the in-place fast path."""

    generic = NumpyBackend(force_generic=True)

    @pytest.mark.parametrize("seed", range(60))
    def test_min_delay_batch(self, seed):
        pipelines, network, requests = _batch(seed)
        reference = elpc_min_delay_many(pipelines, network, requests)
        candidate = elpc_min_delay_many(pipelines, network, requests,
                                        backend=self.generic)
        _assert_entries_identical(reference, candidate)
        for entry in candidate:
            if isinstance(entry, PipelineMapping):
                assert entry.extras["backend"] == "numpy"

    @pytest.mark.parametrize("seed", range(60))
    def test_max_frame_rate_batch(self, seed):
        pipelines, network, requests = _batch(seed)
        reference = elpc_max_frame_rate_many(pipelines, network, requests)
        candidate = elpc_max_frame_rate_many(pipelines, network, requests,
                                             backend=self.generic)
        _assert_entries_identical(reference, candidate)

    @pytest.mark.parametrize("seed", range(20))
    def test_both_objectives_without_link_delay(self, seed):
        """Bit-identity must also hold for the literal Eq. 1 cost model."""
        pipelines, network, requests = _batch(seed * 7 + 1)
        for many in (elpc_min_delay_many, elpc_max_frame_rate_many):
            reference = many(pipelines, network, requests,
                             include_link_delay=False)
            candidate = many(pipelines, network, requests,
                             include_link_delay=False, backend=self.generic)
            _assert_entries_identical(reference, candidate)

    @pytest.mark.parametrize("seed", [2, 9, 17])
    def test_dp_tables_match(self, seed):
        pipelines, network, requests = _batch(seed)
        reference = elpc_min_delay_many(pipelines, network, requests,
                                        keep_table=True)
        candidate = elpc_min_delay_many(pipelines, network, requests,
                                        keep_table=True, backend=self.generic)
        for ref, cand in zip(reference, candidate):
            if not isinstance(ref, PipelineMapping):
                continue
            r_table, c_table = ref.extras["dp_table"], cand.extras["dp_table"]
            for j in range(len(ref.pipeline.modules)):
                for nid in r_table.node_ids:
                    r_val, c_val = r_table.value(j, nid), c_table.value(j, nid)
                    assert (c_val == r_val) or (np.isinf(r_val)
                                                and np.isinf(c_val)), (j, nid)

    def test_all_infeasible_batch(self):
        network = random_network(6, 8, seed=9)
        request = random_request(network, seed=9, min_hop_distance=1)
        pipelines = [random_pipeline(8, seed=s) for s in range(3)]
        entries = elpc_max_frame_rate_many(pipelines, network, request,
                                           backend=self.generic)
        assert all(isinstance(e, InfeasibleMappingError) for e in entries)

    def test_ragged_lengths(self):
        network = random_network(11, 30, seed=19)
        pipelines = [random_pipeline(n, seed=50 + n)
                     for n in (2, 9, 3, 7, 2, 11, 5)]
        requests = [random_request(network, seed=60 + n, min_hop_distance=1)
                    for n in (2, 9, 3, 7, 2, 11, 5)]
        for many in (elpc_min_delay_many, elpc_max_frame_rate_many):
            _assert_entries_identical(
                many(pipelines, network, requests),
                many(pipelines, network, requests, backend=self.generic))


# --------------------------------------------------------------------------- #
# solve_many / worker-pool threading
# --------------------------------------------------------------------------- #
def _suite(count=8, *, seed=7):
    network = random_network(10, 24, seed=seed)
    return [ProblemInstance(
        pipeline=random_pipeline(3 + s % 5, seed=seed + s),
        network=network,
        request=random_request(network, seed=seed + s, min_hop_distance=1),
        name=f"backend-{s}") for s in range(count)]


class TestSolveManyBackend:
    def test_numpy_backend_matches_default(self):
        instances = _suite()
        for objective in (Objective.MIN_DELAY, Objective.MAX_FRAME_RATE):
            default = solve_many(instances, solver="elpc-tensor",
                                 objective=objective)
            named = solve_many(instances, solver="elpc-tensor",
                               objective=objective, backend="numpy")
            assert named.values() == default.values()
            for item in named:
                if item.ok:
                    assert item.mapping.extras["backend"] == "numpy"

    def test_generic_instance_matches_default(self):
        instances = _suite()
        default = solve_many(instances, solver="elpc-tensor")
        generic = solve_many(instances, solver="elpc-tensor",
                             backend=NumpyBackend(force_generic=True))
        assert generic.values() == default.values()

    @without_cupy
    def test_unavailable_backend_fails_fast(self):
        with pytest.raises(BackendUnavailableError):
            solve_many(_suite(2), solver="elpc-tensor", backend="cupy")

    def test_unknown_backend_fails_fast(self):
        with pytest.raises(BackendUnavailableError):
            solve_many(_suite(2), solver="elpc-tensor", backend="tpu9000")

    def test_numpy_backend_is_noop_for_other_solvers(self):
        instances = _suite(4)
        plain = solve_many(instances, solver="elpc-vec")
        named = solve_many(instances, solver="elpc-vec", backend="numpy")
        assert named.values() == plain.values()

    def test_non_numpy_backend_rejected_for_other_solvers(self):
        class MirrorBackend(NumpyBackend):
            """NumPy arithmetic under a non-default name (test double)."""
            name = "mirror"

        register_backend("mirror", MirrorBackend, overwrite=True)
        try:
            with pytest.raises(SpecificationError) as excinfo:
                solve_many(_suite(2), solver="elpc-vec", backend="mirror")
            assert "not backend-aware" in str(excinfo.value)
            # ... while the tensor engine happily runs it, bit-identically.
            instances = _suite()
            mirror = solve_many(instances, solver="elpc-tensor",
                                backend="mirror")
            default = solve_many(instances, solver="elpc-tensor")
            assert mirror.values() == default.values()
            assert all(item.mapping.extras["backend"] == "mirror"
                       for item in mirror if item.ok)
        finally:
            _FACTORIES.pop("mirror", None)
            _INSTANCES.pop("mirror", None)

    def test_backend_name_crosses_worker_pool(self):
        instances = _suite(12)
        sequential = solve_many(instances, solver="elpc-tensor",
                                backend="numpy")
        pooled = solve_many(instances, solver="elpc-tensor",
                            backend="numpy", workers=2)
        assert pooled.workers == 2
        assert pooled.values() == sequential.values()
        assert all(item.mapping.extras["backend"] == "numpy"
                   for item in pooled if item.ok)

    def test_backend_instance_rejected_under_workers(self):
        with pytest.raises(SpecificationError) as excinfo:
            solve_many(_suite(4), solver="elpc-tensor",
                       backend=NumpyBackend(), workers=2)
        assert "by name" in str(excinfo.value)

    @without_cupy
    def test_env_var_backend_fails_fast_for_tensor_batches(self, monkeypatch):
        """REPRO_BACKEND gets the same up-front validation as an explicit
        selection — an unusable value must fail the call, not degrade into
        per-item failures (and a clean CLI exit 0)."""
        monkeypatch.setenv("REPRO_BACKEND", "cupy")
        with pytest.raises(BackendUnavailableError):
            solve_many(_suite(2), solver="elpc-tensor")

    @without_cupy
    def test_env_var_backend_ignored_for_non_aware_solvers(self, monkeypatch):
        """The env default names the tensor engine's backend; solvers that
        never read it must not fail because it is set."""
        monkeypatch.setenv("REPRO_BACKEND", "cupy")
        result = solve_many(_suite(4), solver="elpc-vec")
        assert result.n_solved > 0

    def test_env_var_backend_is_injected_for_tensor(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        result = solve_many(_suite(4), solver="elpc-tensor")
        assert all(item.mapping.extras["backend"] == "numpy"
                   for item in result if item.ok)


# --------------------------------------------------------------------------- #
# Accelerator parity (skipped unless the library is installed)
# --------------------------------------------------------------------------- #
@requires_cupy
class TestCupyParity:
    @pytest.mark.parametrize("seed", range(12))
    def test_sweep_matches_numpy(self, seed):
        pipelines, network, requests = _batch(seed)
        for many in (elpc_min_delay_many, elpc_max_frame_rate_many):
            _assert_entries_identical(
                many(pipelines, network, requests),
                many(pipelines, network, requests, backend="cupy"))


@requires_jax
class TestJaxParity:
    @pytest.mark.parametrize("seed", range(12))
    def test_sweep_matches_numpy(self, seed):
        pipelines, network, requests = _batch(seed)
        for many in (elpc_min_delay_many, elpc_max_frame_rate_many):
            _assert_entries_identical(
                many(pipelines, network, requests),
                many(pipelines, network, requests, backend="jax"),
                exact=False)


def test_array_backend_is_extensible_contract():
    """The protocol surface the docs promise: xp, movement, segment_min, flags."""
    backend = get_backend("numpy")
    assert isinstance(backend, ArrayBackend)
    for attr in ("xp", "asarray", "to_numpy", "scatter_set", "segment_min",
                 "stage_view", "supports_inplace", "is_gpu", "name"):
        assert hasattr(backend, attr), attr
