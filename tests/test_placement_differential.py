"""Differential tests pinning the placers to the per-pipeline engines.

Two regimes, per the PR's acceptance criteria:

* **Uncontended** (capacity factors so large that budgets never bind): both
  ``place-greedy`` and ``place-flow`` must reproduce per-pipeline
  :func:`repro.solve_many` *exactly* — same admission (everything), same
  objective values, same paths — for both objectives.  The placement layer
  must be a strict generalisation, not a different solver.
* **Oversubscribed** (moderate contention): the joint flow optimizer must
  admit at least as many requests as sequential packing, its total objective
  over the common admitted set must be no worse, and the batch-level
  capacity validator must pass for both.
"""

from __future__ import annotations

import pytest

from repro.core import Objective, place_many, solve_many
from repro.generators import random_network, random_pipeline, random_request
from repro.model import ProblemInstance
from repro.placement import (
    ClusterState,
    PlacementRequest,
    validate_placements,
)

UNCONTENDED = 1e9  # capacity factor: budgets are effectively infinite


def _shared_batch(count, *, n_modules=7, n_nodes=14, n_links=36, seed=29):
    network = random_network(n_nodes, n_links, seed=seed)
    return [
        ProblemInstance(
            pipeline=random_pipeline(n_modules, seed=300 + i),
            network=network,
            request=random_request(network, seed=400 + i, min_hop_distance=2),
            name=f"diff-{i}")
        for i in range(count)
    ]


class TestUncontendedExactness:
    @pytest.mark.parametrize("placer", ["place-greedy", "place-flow"])
    @pytest.mark.parametrize("objective", [Objective.MIN_DELAY,
                                           Objective.MAX_FRAME_RATE])
    def test_placer_reproduces_solve_many(self, placer, objective):
        instances = _shared_batch(6)
        direct = solve_many(instances, solver="elpc-vec", objective=objective)
        placed = place_many(instances, placer=placer, objective=objective,
                            node_capacity_factor=UNCONTENDED,
                            link_capacity_factor=UNCONTENDED)
        assert placed.n_admitted == len(instances)
        for ref, item in zip(direct.items, placed.items):
            assert ref.ok and item.admitted
            if objective is Objective.MIN_DELAY:
                assert item.mapping.delay_ms == ref.mapping.delay_ms
            else:
                assert item.mapping.frame_rate_fps == \
                    ref.mapping.frame_rate_fps
            assert list(item.mapping.path) == list(ref.mapping.path)
            assert [list(g) for g in item.mapping.groups] == \
                [list(g) for g in ref.mapping.groups]

    @pytest.mark.parametrize("placer", ["place-greedy", "place-flow"])
    def test_uncontended_admits_in_any_priority_order(self, placer):
        """Priorities permute the packing order but, uncontended, must not
        change any mapping."""
        instances = _shared_batch(4)
        baseline = place_many(instances, placer=placer,
                              node_capacity_factor=UNCONTENDED,
                              link_capacity_factor=UNCONTENDED)
        prioritized = place_many(
            [PlacementRequest(inst, priority=float(len(instances) - i))
             for i, inst in enumerate(instances)],
            placer=placer,
            node_capacity_factor=UNCONTENDED,
            link_capacity_factor=UNCONTENDED)
        assert prioritized.n_admitted == baseline.n_admitted == len(instances)
        for a, b in zip(baseline.items, prioritized.items):
            assert a.mapping.delay_ms == b.mapping.delay_ms
            assert list(a.mapping.path) == list(b.mapping.path)


class TestOversubscribedDominance:
    @pytest.mark.parametrize("factor,fps", [(0.3, 1.0), (0.15, 1.0),
                                            (1.0, 4.0)])
    def test_flow_dominates_greedy(self, factor, fps):
        instances = _shared_batch(8, seed=31)
        network = instances[0].network

        def cluster():
            return ClusterState.from_network(
                network, node_capacity_factor=factor,
                link_capacity_factor=factor)

        greedy_cluster, flow_cluster = cluster(), cluster()
        greedy = place_many(instances, placer="place-greedy",
                            cluster=greedy_cluster, demand_fps=fps)
        flow = place_many(instances, placer="place-flow",
                          cluster=flow_cluster, demand_fps=fps)
        assert flow.n_admitted >= greedy.n_admitted
        common = set(greedy.admitted_indices()) & set(flow.admitted_indices())
        if common and greedy.objective is Objective.MIN_DELAY:
            assert flow.objective_total(common) <= \
                greedy.objective_total(common) * (1 + 1e-9)
        validate_placements(greedy.items, greedy_cluster)
        validate_placements(flow.items, flow_cluster)

    def test_flow_records_provenance(self):
        instances = _shared_batch(6, seed=37)
        result = place_many(instances, placer="place-flow",
                            node_capacity_factor=0.2,
                            link_capacity_factor=0.2)
        assert "used_fallback" in result.extras
        assert "flow_routed_fraction" in result.extras
        assert "rounding_order" in result.extras
        assert sorted(result.extras["rounding_order"]) == \
            list(range(len(instances)))

    def test_sequential_clusters_accumulate_commitments(self):
        """A cluster passed across two place_many calls must remember the
        first batch's commitments (the service admission-control shape)."""
        instances = _shared_batch(6, seed=41)
        cluster = ClusterState.from_network(instances[0].network,
                                            node_capacity_factor=0.4,
                                            link_capacity_factor=0.4)
        first = place_many(instances[:3], placer="place-greedy",
                           cluster=cluster)
        second = place_many(instances[3:], placer="place-greedy",
                            cluster=cluster)
        assert cluster.commits_total == first.n_admitted + second.n_admitted
        combined = list(first.items) + list(second.items)
        validate_placements(combined, cluster)
