"""Tests for the batch solving API (:mod:`repro.core.batch`)."""

import pytest

from repro.core import Objective, elpc_min_delay, solve_many
from repro.exceptions import SpecificationError
from repro.generators import random_network, random_pipeline, random_request
from repro.model import EndToEndRequest, ProblemInstance


def _suite(count: int, *, n_modules: int = 5, nodes: int = 9, links: int = 18):
    instances = []
    for seed in range(count):
        network = random_network(nodes, links, seed=seed)
        instances.append(ProblemInstance(
            pipeline=random_pipeline(n_modules, seed=seed),
            network=network,
            request=random_request(network, seed=seed, min_hop_distance=1),
            name=f"batch-{seed}"))
    return instances


class TestSequentialBatches:
    def test_solves_all_instances_in_order(self):
        instances = _suite(6)
        result = solve_many(instances, solver="elpc-vec",
                            objective=Objective.MIN_DELAY)
        assert len(result) == 6
        assert result.n_solved == 6 and result.n_failed == 0
        assert [item.index for item in result] == list(range(6))
        assert [item.name for item in result] == [i.name for i in instances]
        assert all(v is not None and v > 0 for v in result.values())

    def test_matches_direct_solver_calls(self):
        instances = _suite(5)
        batch = solve_many(instances, solver="elpc",
                           objective=Objective.MIN_DELAY)
        for inst, value in zip(instances, batch.values()):
            direct = elpc_min_delay(inst.pipeline, inst.network, inst.request)
            assert value == pytest.approx(direct.delay_ms)

    def test_accepts_triples(self):
        triples = [(i.pipeline, i.network, i.request) for i in _suite(3)]
        result = solve_many(triples, solver="elpc-vec",
                            objective=Objective.MIN_DELAY)
        assert result.n_solved == 3
        assert all(item.name is None for item in result)

    def test_accepts_callable_solver(self):
        result = solve_many(_suite(3), solver=elpc_min_delay,
                            objective=Objective.MIN_DELAY)
        assert result.n_solved == 3
        assert result.solver == "elpc_min_delay"

    def test_records_infeasible_instances_without_raising(self):
        # 10-module pipelines cannot avoid reuse on 9-node networks.
        instances = _suite(3, n_modules=10)
        result = solve_many(instances, solver="elpc-vec",
                            objective=Objective.MAX_FRAME_RATE)
        assert result.n_failed == 3
        assert all(item.error for item in result)
        assert result.values() == [None, None, None]

    def test_solver_kwargs_forwarded(self):
        instances = _suite(4)
        with_mld = solve_many(instances, solver="elpc-vec",
                              objective=Objective.MIN_DELAY)
        without = solve_many(instances, solver="elpc-vec",
                             objective=Objective.MIN_DELAY,
                             include_link_delay=False)
        for a, b in zip(with_mld, without):
            assert (b.mapping.extras["dp_value_ms"]
                    <= a.mapping.extras["dp_value_ms"] + 1e-9)

    def test_unknown_solver_fails_fast(self):
        with pytest.raises(SpecificationError):
            solve_many(_suite(2), solver="nope", objective=Objective.MIN_DELAY)

    def test_unexpected_exception_recorded_per_item(self):
        def brittle(pipeline, network, request, **kwargs):
            if pipeline.n_modules > 5:
                raise ZeroDivisionError("synthetic numeric blow-up")
            from repro.core import elpc_min_delay
            return elpc_min_delay(pipeline, network, request, **kwargs)

        instances = _suite(2) + _suite(2, n_modules=7)
        result = solve_many(instances, solver=brittle,
                            objective=Objective.MIN_DELAY)
        assert result.n_solved == 2 and result.n_failed == 2
        for item in result:
            if item.ok:
                assert item.error is None and item.traceback is None
            else:
                assert item.error == ("ZeroDivisionError: synthetic numeric "
                                      "blow-up")
                assert "Traceback" in item.traceback

    def test_per_item_solves_carry_no_group(self):
        result = solve_many(_suite(3), solver="elpc-vec",
                            objective=Objective.MIN_DELAY)
        assert all(item.group_id is None for item in result)
        assert all(item.group_size == 1 for item in result)
        assert result.group_times() == {}

    def test_bad_item_rejected(self):
        with pytest.raises(SpecificationError):
            solve_many([42], solver="elpc", objective=Objective.MIN_DELAY)

    def test_empty_batch(self):
        result = solve_many([], solver="elpc", objective=Objective.MIN_DELAY)
        assert len(result) == 0 and result.n_solved == 0


class TestParallelBatches:
    def test_workers_produce_identical_values(self):
        instances = _suite(6)
        sequential = solve_many(instances, solver="elpc",
                                objective=Objective.MIN_DELAY)
        parallel = solve_many(instances, solver="elpc",
                              objective=Objective.MIN_DELAY, workers=2)
        assert parallel.workers == 2
        for a, b in zip(sequential.values(), parallel.values()):
            assert b == pytest.approx(a)

    def test_single_item_batch_stays_in_process(self):
        result = solve_many(_suite(1), solver="elpc",
                            objective=Objective.MIN_DELAY, workers=4)
        assert result.workers == 1  # no pool spun up for one instance
        assert result.n_solved == 1

    def test_callable_solver_rejected_under_multiprocessing(self):
        with pytest.raises(SpecificationError):
            solve_many(_suite(3), solver=elpc_min_delay,
                       objective=Objective.MIN_DELAY, workers=2)

    def test_negative_workers_rejected(self):
        with pytest.raises(SpecificationError):
            solve_many(_suite(2), solver="elpc",
                       objective=Objective.MIN_DELAY, workers=-1)


class TestRunComparisonThroughBatches:
    def test_workers_match_sequential_comparison(self):
        from repro.analysis import run_comparison
        instances = _suite(4)
        seq = run_comparison(instances, Objective.MIN_DELAY, ["elpc", "greedy"])
        par = run_comparison(instances, Objective.MIN_DELAY, ["elpc", "greedy"],
                             workers=2)
        for algo in ("elpc", "greedy"):
            seq_series = seq.series(algo)
            par_series = par.series(algo)
            assert len(seq_series) == len(par_series) == 4
            for a, b in zip(seq_series, par_series):
                if a is None:
                    assert b is None
                else:
                    assert b == pytest.approx(a)
