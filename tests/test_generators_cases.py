"""Tests for the fixed 20-case suite and the illustration instance."""

import pytest

from repro.exceptions import SpecificationError
from repro.generators import (
    PAPER_CASE_SPECS,
    CaseSpec,
    make_case,
    paper_case_suite,
    small_illustration_case,
)
from repro.model import check_delay_instance


class TestCaseSpecs:
    def test_twenty_cases(self):
        assert len(PAPER_CASE_SPECS) == 20
        assert [spec.case_number for spec in PAPER_CASE_SPECS] == list(range(1, 21))

    def test_sizes_grow(self):
        modules = [s.n_modules for s in PAPER_CASE_SPECS]
        nodes = [s.n_nodes for s in PAPER_CASE_SPECS]
        links = [s.n_links for s in PAPER_CASE_SPECS]
        assert modules == sorted(modules)
        assert nodes == sorted(nodes)
        assert links == sorted(links)
        assert nodes[0] <= 10 and nodes[-1] >= 300  # small to large span

    def test_no_case_has_more_modules_than_nodes(self):
        for spec in PAPER_CASE_SPECS:
            assert spec.n_modules <= spec.n_nodes

    def test_label_format(self):
        assert PAPER_CASE_SPECS[0].label.startswith("m=")

    def test_invalid_spec_rejected(self):
        with pytest.raises(SpecificationError):
            CaseSpec(case_number=1, n_modules=1, n_nodes=5, n_links=6, seed=0)
        with pytest.raises(SpecificationError):
            CaseSpec(case_number=1, n_modules=4, n_nodes=5, n_links=100, seed=0)
        with pytest.raises(SpecificationError):
            CaseSpec(case_number=1, n_modules=9, n_nodes=5, n_links=6, seed=0)


class TestMakeCase:
    def test_matches_spec_sizes(self):
        for spec in PAPER_CASE_SPECS[:4]:
            inst = make_case(spec)
            assert inst.size_signature == (spec.n_modules, spec.n_nodes, spec.n_links)
            assert inst.name == f"case-{spec.case_number:02d}"

    def test_deterministic(self):
        a = make_case(PAPER_CASE_SPECS[2])
        b = make_case(PAPER_CASE_SPECS[2])
        assert a.to_dict() == b.to_dict()

    def test_delay_feasible_for_every_case(self):
        for spec in PAPER_CASE_SPECS:
            inst = make_case(spec)
            report = check_delay_instance(inst.pipeline, inst.network, inst.request)
            assert report.feasible, f"case {spec.case_number} infeasible: {report.reason}"

    def test_requests_nontrivial(self):
        for spec in PAPER_CASE_SPECS[:6]:
            inst = make_case(spec)
            assert inst.request.source != inst.request.destination


class TestSuite:
    def test_full_suite(self):
        suite = paper_case_suite()
        assert len(suite) == 20
        assert [inst.name for inst in suite] == [f"case-{i:02d}" for i in range(1, 21)]

    def test_truncation(self):
        assert len(paper_case_suite(max_cases=5)) == 5
        with pytest.raises(SpecificationError):
            paper_case_suite(max_cases=0)


class TestIllustrationCase:
    def test_matches_paper_description(self):
        inst = small_illustration_case()
        assert inst.pipeline.n_modules == 5
        assert inst.network.n_nodes == 6
        assert inst.network.is_complete()
        assert inst.request.source == 0
        assert inst.request.destination == 5

    def test_deterministic(self):
        assert small_illustration_case().to_dict() == small_illustration_case().to_dict()
