"""Tests for the exhaustive optimality oracles (:mod:`repro.core.exact`)."""

import pytest

from repro.core import (
    enumerate_exact_hop_paths,
    exhaustive_max_frame_rate,
    exhaustive_min_delay,
)
from repro.exceptions import InfeasibleMappingError, SpecificationError
from repro.generators import complete_network, line_network, random_pipeline
from repro.model import EndToEndRequest, assert_no_reuse


class TestExhaustiveMinDelay:
    def test_respects_endpoints_and_walk(self, tiny_instance):
        pipeline, network, request = tiny_instance
        mapping = exhaustive_min_delay(pipeline, network, request)
        assert mapping.path[0] == request.source
        assert mapping.path[-1] == request.destination
        assert network.is_walk(mapping.path)
        assert mapping.extras["assignments_explored"] > 0

    def test_refuses_large_instances(self):
        network = complete_network(20, seed=1)
        pipeline = random_pipeline(4, seed=1)
        with pytest.raises(SpecificationError):
            exhaustive_min_delay(pipeline, network, EndToEndRequest(0, 1))

    def test_refuses_long_pipelines(self, simple_network, simple_request):
        pipeline = random_pipeline(12, seed=2)
        with pytest.raises(SpecificationError):
            exhaustive_min_delay(pipeline, simple_network, simple_request,
                                 module_limit=8)

    def test_single_node_problem(self, simple_network):
        pipeline = random_pipeline(3, seed=3)
        mapping = exhaustive_min_delay(pipeline, simple_network, EndToEndRequest(2, 2))
        assert mapping.path[0] == 2 and mapping.path[-1] == 2


class TestEnumerateExactHopPaths:
    def test_line_has_single_full_path(self):
        network = line_network(5, seed=0)
        paths = list(enumerate_exact_hop_paths(network, 0, 4, 5))
        assert paths == [[0, 1, 2, 3, 4]]

    def test_no_paths_when_too_long(self):
        network = line_network(4, seed=0)
        assert list(enumerate_exact_hop_paths(network, 0, 3, 5)) == []

    def test_single_node_path(self):
        network = line_network(3, seed=0)
        assert list(enumerate_exact_hop_paths(network, 1, 1, 1)) == [[1]]
        assert list(enumerate_exact_hop_paths(network, 0, 1, 1)) == []

    def test_all_paths_simple_and_correct_length(self, complete6):
        count = 0
        for path in enumerate_exact_hop_paths(complete6, 0, 5, 4):
            count += 1
            assert len(path) == 4
            assert len(set(path)) == 4
            assert path[0] == 0 and path[-1] == 5
            assert complete6.is_walk(path)
        # complete graph on 6 nodes: choose 2 ordered intermediates from 4 -> 12
        assert count == 12

    def test_zero_or_negative_length(self, complete6):
        assert list(enumerate_exact_hop_paths(complete6, 0, 5, 0)) == []


class TestExhaustiveMaxFrameRate:
    def test_optimal_no_reuse_path(self, tiny_instance):
        pipeline, network, request = tiny_instance
        try:
            mapping = exhaustive_max_frame_rate(pipeline, network, request)
        except InfeasibleMappingError:
            pytest.skip("tiny instance infeasible for the no-reuse variant")
        assert len(mapping.path) == pipeline.n_modules
        assert_no_reuse(mapping.path)
        assert mapping.extras["paths_explored"] >= 1

    def test_infeasible_raises(self):
        network = line_network(5, seed=1)
        pipeline = random_pipeline(4, seed=1)
        with pytest.raises(InfeasibleMappingError):
            exhaustive_max_frame_rate(pipeline, network, EndToEndRequest(0, 2))

    def test_refuses_large_networks(self):
        network = complete_network(30, seed=2)
        pipeline = random_pipeline(4, seed=2)
        with pytest.raises(SpecificationError):
            exhaustive_max_frame_rate(pipeline, network, EndToEndRequest(0, 1))

    def test_beats_or_equals_any_enumerated_path(self, illustration_instance):
        from repro.model import bottleneck_time_ms
        inst = illustration_instance
        best = exhaustive_max_frame_rate(inst.pipeline, inst.network, inst.request)
        n = inst.pipeline.n_modules
        groups = [[j] for j in range(n)]
        for path in enumerate_exact_hop_paths(inst.network, inst.request.source,
                                              inst.request.destination, n):
            other = bottleneck_time_ms(inst.pipeline, inst.network, groups, path)
            assert best.bottleneck_ms <= other + 1e-9
