"""Tests for the reporting and plotting layers."""

import math

import pytest

from repro.analysis import (
    ascii_line_chart,
    comparison_table,
    fig2_table,
    format_value,
    mapping_walkthrough,
    run_comparison,
    series_to_csv,
    write_csv,
)
from repro.core import Objective, elpc_min_delay
from repro.exceptions import SpecificationError
from repro.generators import paper_case_suite


@pytest.fixture(scope="module")
def runs():
    suite = paper_case_suite(max_cases=3)
    delay = run_comparison(suite, Objective.MIN_DELAY)
    rate = run_comparison(suite, Objective.MAX_FRAME_RATE)
    return delay, rate


class TestFormatValue:
    def test_number(self):
        assert format_value(12.3456) == "12.35"
        assert format_value(12.3456, precision=1) == "12.3"

    def test_missing(self):
        assert format_value(None) == "-"
        assert format_value(float("nan")) == "-"


class TestComparisonTable:
    def test_contains_cases_and_algorithms(self, runs):
        delay, _rate = runs
        text = comparison_table(delay)
        for case in delay.cases:
            assert case.case_name in text
        for algorithm in delay.algorithms:
            assert algorithm in text
        assert "ELPC best or tied" in text

    def test_fig2_table_combines_both_objectives(self, runs):
        delay, rate = runs
        text = fig2_table(delay, rate)
        assert "Min end-to-end delay" in text
        assert "Max frame rate" in text
        assert "ELPC best or tied" in text
        assert "case-01" in text

    def test_fig2_table_requires_same_cases(self, runs):
        delay, rate = runs
        import copy
        truncated = copy.copy(rate)
        truncated.cases = rate.cases[:-1]
        with pytest.raises(ValueError):
            fig2_table(delay, truncated)


class TestMappingWalkthrough:
    def test_mentions_modules_links_and_bottleneck(self, illustration_instance):
        inst = illustration_instance
        mapping = elpc_min_delay(inst.pipeline, inst.network, inst.request)
        text = mapping_walkthrough(mapping, title="Test title")
        assert "Test title" in text
        assert "selected path" in text
        assert "bottleneck" in text
        assert "end-to-end delay" in text
        for node in mapping.path:
            assert f"node {node}" in text


class TestAsciiChart:
    def test_basic_chart(self):
        series = {"elpc": [1.0, 2.0, 3.0], "greedy": [2.0, 3.0, 4.0]}
        text = ascii_line_chart(series, x_labels=["1", "2", "3"],
                                title="T", y_label="ms")
        assert "T" in text
        assert "legend" in text
        assert "elpc" in text and "greedy" in text

    def test_handles_missing_points(self):
        series = {"a": [1.0, None, 3.0]}
        text = ascii_line_chart(series)
        assert "legend" in text

    def test_rejects_empty_and_mismatched(self):
        with pytest.raises(SpecificationError):
            ascii_line_chart({})
        with pytest.raises(SpecificationError):
            ascii_line_chart({"a": [1.0], "b": [1.0, 2.0]})
        with pytest.raises(SpecificationError):
            ascii_line_chart({"a": [None, None]})

    def test_size_validation(self):
        with pytest.raises(SpecificationError):
            ascii_line_chart({"a": [1.0, 2.0]}, height=1)


class TestCsvExport:
    def test_series_to_csv_contents(self):
        series = {"elpc": [1.5, 2.5], "greedy": [3.0, None]}
        text = series_to_csv(series, x_labels=["c1", "c2"], x_name="case")
        lines = text.strip().splitlines()
        assert lines[0] == "case,elpc,greedy"
        assert lines[1].startswith("c1,1.5,3.0")
        assert lines[2].startswith("c2,2.5,")  # missing value -> empty cell

    def test_write_csv_creates_file(self, tmp_path):
        path = write_csv({"a": [1.0, 2.0]}, tmp_path / "sub" / "out.csv")
        assert path.exists()
        assert "a" in path.read_text()

    def test_mismatched_series_rejected(self):
        with pytest.raises(SpecificationError):
            series_to_csv({"a": [1.0], "b": [1.0, 2.0]})
        with pytest.raises(SpecificationError):
            series_to_csv({})
