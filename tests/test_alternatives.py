"""Tests for alternative / fault-tolerant mappings (:mod:`repro.core.alternatives`)."""

import pytest

from repro.core import (
    Objective,
    elpc_min_delay,
    fault_tolerance_plan,
    k_alternative_mappings,
    remove_nodes,
    solve_excluding_nodes,
)
from repro.exceptions import InfeasibleMappingError, SpecificationError
from repro.generators import line_network, random_network, random_pipeline, random_request
from repro.model import EndToEndRequest


class TestRemoveNodes:
    def test_nodes_and_incident_links_removed(self, simple_network):
        reduced = remove_nodes(simple_network, [2])
        assert not reduced.has_node(2)
        assert reduced.n_nodes == 3
        assert not reduced.has_link(1, 2)
        assert reduced.has_link(0, 1)

    def test_unknown_node_rejected(self, simple_network):
        with pytest.raises(SpecificationError):
            remove_nodes(simple_network, [99])

    def test_original_untouched(self, simple_network):
        remove_nodes(simple_network, [1])
        assert simple_network.has_node(1)


class TestSolveExcludingNodes:
    def test_fallback_avoids_excluded_node(self, medium_instance):
        pipeline, network, request = medium_instance
        primary = elpc_min_delay(pipeline, network, request)
        victims = [n for n in set(primary.path)
                   if n not in (request.source, request.destination)]
        if not victims:
            pytest.skip("primary mapping uses only the endpoints")
        victim = victims[0]
        fallback = solve_excluding_nodes(pipeline, network, request,
                                         Objective.MIN_DELAY, [victim])
        assert victim not in fallback.path
        assert fallback.delay_ms >= primary.delay_ms - 1e-9  # optimum can only degrade

    def test_endpoints_cannot_be_excluded(self, medium_instance):
        pipeline, network, request = medium_instance
        with pytest.raises(SpecificationError):
            solve_excluding_nodes(pipeline, network, request, Objective.MIN_DELAY,
                                  [request.source])

    def test_infeasible_when_cut_vertex_removed(self):
        # On a line, removing any interior node disconnects source from destination.
        network = line_network(5, seed=1)
        pipeline = random_pipeline(6, seed=1)
        request = EndToEndRequest(0, 4)
        with pytest.raises(InfeasibleMappingError):
            solve_excluding_nodes(pipeline, network, request, Objective.MIN_DELAY, [2])


class TestFaultTolerancePlan:
    @pytest.fixture(scope="class")
    def plan(self):
        pipeline = random_pipeline(8, seed=31)
        network = random_network(16, 48, seed=31)
        request = random_request(network, seed=31, min_hop_distance=2)
        return fault_tolerance_plan(pipeline, network, request), request

    def test_covers_non_endpoint_primary_nodes(self, plan):
        ft_plan, request = plan
        expected = {n for n in set(ft_plan.primary.path)
                    if n not in (request.source, request.destination)}
        assert set(ft_plan.covered_nodes()) == expected

    def test_fallbacks_avoid_their_failed_node(self, plan):
        ft_plan, _request = plan
        for node, impact in ft_plan.impacts.items():
            if impact.survivable:
                assert node not in impact.fallback.path
                assert impact.degradation >= 1.0 - 1e-9

    def test_worst_degradation_and_critical_node(self, plan):
        ft_plan, _request = plan
        if not ft_plan.impacts:
            pytest.skip("primary mapping uses only the endpoints")
        worst = ft_plan.worst_degradation()
        assert worst >= 1.0 - 1e-9
        critical = ft_plan.most_critical_node()
        assert critical in ft_plan.impacts

    def test_fallback_for_lookup(self, plan):
        ft_plan, _request = plan
        for node in ft_plan.covered_nodes():
            impact = ft_plan.impacts[node]
            if impact.survivable:
                assert ft_plan.fallback_for(node) is impact.fallback
        with pytest.raises(SpecificationError):
            ft_plan.fallback_for(10_000)

    def test_explicit_candidate_nodes(self):
        pipeline = random_pipeline(6, seed=32)
        network = random_network(12, 30, seed=32)
        request = random_request(network, seed=32, min_hop_distance=2)
        others = [n for n in network.node_ids()
                  if n not in (request.source, request.destination)][:3]
        plan = fault_tolerance_plan(pipeline, network, request, candidate_nodes=others)
        assert set(plan.covered_nodes()) == set(others)


class TestKAlternatives:
    def test_first_is_optimal_and_later_are_diverse(self):
        pipeline = random_pipeline(7, seed=33)
        network = random_network(15, 45, seed=33)
        request = random_request(network, seed=33, min_hop_distance=2)
        alternatives = k_alternative_mappings(pipeline, network, request, k=3)
        assert 1 <= len(alternatives) <= 3
        optimal = elpc_min_delay(pipeline, network, request)
        assert alternatives[0].delay_ms == pytest.approx(optimal.delay_ms, rel=1e-9)
        # objective values are non-decreasing (each alternative solves a more
        # constrained problem)
        for earlier, later in zip(alternatives, alternatives[1:]):
            assert later.delay_ms >= earlier.delay_ms - 1e-9

    def test_k_validation(self, medium_instance):
        pipeline, network, request = medium_instance
        with pytest.raises(SpecificationError):
            k_alternative_mappings(pipeline, network, request, k=0)

    def test_framerate_objective_supported(self):
        pipeline = random_pipeline(5, seed=34)
        network = random_network(12, 36, seed=34)
        request = random_request(network, seed=34, min_hop_distance=2)
        alternatives = k_alternative_mappings(pipeline, network, request, k=2,
                                              objective=Objective.MAX_FRAME_RATE)
        assert alternatives
        for earlier, later in zip(alternatives, alternatives[1:]):
            assert later.frame_rate_fps <= earlier.frame_rate_fps + 1e-9
