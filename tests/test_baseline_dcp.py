"""Tests for the Dynamic-Critical-Path-inspired baseline."""

import pytest

from repro.baselines import dcp_min_delay
from repro.core import Objective, available_solvers, elpc_min_delay, solve
from repro.exceptions import InfeasibleMappingError
from repro.generators import line_network, random_network, random_pipeline, random_request
from repro.model import EndToEndRequest


class TestDcpStructure:
    def test_valid_mapping(self, simple_pipeline, simple_network, simple_request):
        mapping = dcp_min_delay(simple_pipeline, simple_network, simple_request)
        assert mapping.algorithm == "dcp"
        assert mapping.objective is Objective.MIN_DELAY
        assert mapping.path[0] == simple_request.source
        assert mapping.path[-1] == simple_request.destination
        assert simple_network.is_walk(mapping.path)

    def test_registered_in_registry(self):
        assert "dcp" in available_solvers(Objective.MIN_DELAY)
        assert "dcp" not in available_solvers(Objective.MAX_FRAME_RATE)

    def test_callable_via_solve(self, simple_pipeline, simple_network, simple_request):
        mapping = solve("dcp", simple_pipeline, simple_network, simple_request,
                        Objective.MIN_DELAY)
        assert mapping.algorithm == "dcp"

    def test_infeasible_short_pipeline(self):
        network = line_network(6, seed=4)
        pipeline = random_pipeline(3, seed=4)
        with pytest.raises(InfeasibleMappingError):
            dcp_min_delay(pipeline, network, EndToEndRequest(0, 5))


class TestDcpQuality:
    def test_never_better_than_elpc(self):
        for seed in range(10):
            pipeline = random_pipeline(7, seed=seed)
            network = random_network(14, 42, seed=seed + 900)
            request = random_request(network, seed=seed, min_hop_distance=2)
            dcp = dcp_min_delay(pipeline, network, request)
            optimal = elpc_min_delay(pipeline, network, request)
            assert dcp.delay_ms >= optimal.delay_ms - 1e-9

    def test_lookahead_usually_helps_over_greedy(self):
        """DCP's critical-path look-ahead should not lose to Greedy on average."""
        from repro.baselines import greedy_min_delay
        dcp_total, greedy_total = 0.0, 0.0
        for seed in range(12):
            pipeline = random_pipeline(7, seed=seed + 50)
            network = random_network(16, 50, seed=seed + 950)
            request = random_request(network, seed=seed, min_hop_distance=2)
            dcp_total += dcp_min_delay(pipeline, network, request).delay_ms
            greedy_total += greedy_min_delay(pipeline, network, request).delay_ms
        assert dcp_total <= greedy_total * 1.05  # at worst marginally behind

    def test_runs_on_medium_instance(self, medium_instance):
        pipeline, network, request = medium_instance
        mapping = dcp_min_delay(pipeline, network, request)
        assert mapping.delay_ms > 0
        assert mapping.runtime_s < 5.0
