"""Tests for package-level basics: version metadata, exceptions, shared helpers."""

import pytest

import repro
from repro.exceptions import (
    AlgorithmError,
    InfeasibleMappingError,
    MeasurementError,
    ReproError,
    SimulationError,
    SpecificationError,
)
from repro.types import ensure_non_negative, ensure_positive, pairwise


class TestVersionAndMetadata:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_paper_citation_present(self):
        assert "IPDPS" in repro.PAPER
        assert "2008" in repro.PAPER

    def test_public_api_exports_exist(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"__all__ lists missing attribute {name}"


class TestExceptionHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc_type in (SpecificationError, InfeasibleMappingError,
                         AlgorithmError, SimulationError, MeasurementError):
            assert issubclass(exc_type, ReproError)

    def test_specification_error_is_value_error(self):
        assert issubclass(SpecificationError, ValueError)
        assert issubclass(MeasurementError, ValueError)

    def test_algorithm_and_simulation_errors_are_runtime_errors(self):
        assert issubclass(AlgorithmError, RuntimeError)
        assert issubclass(SimulationError, RuntimeError)

    def test_infeasible_error_carries_context(self):
        exc = InfeasibleMappingError("nope", source=1, destination=5, n_modules=7)
        assert exc.source == 1
        assert exc.destination == 5
        assert exc.n_modules == 7
        assert "nope" in str(exc)

    def test_catching_family_with_base_class(self):
        with pytest.raises(ReproError):
            raise SpecificationError("bad input")


class TestSharedHelpers:
    def test_ensure_positive(self):
        assert ensure_positive(3, "x") == 3.0
        with pytest.raises(ValueError):
            ensure_positive(0, "x")
        with pytest.raises(ValueError):
            ensure_positive(-2.5, "x")

    def test_ensure_non_negative(self):
        assert ensure_non_negative(0, "x") == 0.0
        assert ensure_non_negative(4.5, "x") == 4.5
        with pytest.raises(ValueError):
            ensure_non_negative(-0.1, "x")

    def test_pairwise(self):
        assert list(pairwise([1, 2, 3, 4])) == [(1, 2), (2, 3), (3, 4)]
        assert list(pairwise([7])) == []
        assert list(pairwise([])) == []
