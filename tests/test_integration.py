"""End-to-end integration tests across subsystem boundaries.

Each test exercises a realistic multi-package flow: generate → solve →
validate → simulate → report, mirroring how a downstream user would chain the
library's pieces.
"""

import pytest

from repro import (
    EndToEndRequest,
    Objective,
    elpc_max_frame_rate,
    elpc_min_delay,
    solve,
)
from repro.analysis import fig2_table, mapping_walkthrough, run_comparison
from repro.exceptions import InfeasibleMappingError
from repro.extensions import ResourceProfile, compare_static_vs_adaptive
from repro.generators import (
    paper_case_suite,
    remote_visualization_pipeline,
    video_surveillance_pipeline,
    wan_cluster_network,
)
from repro.measurement import calibrate_network
from repro.model import end_to_end_delay_ms, load_instance, save_instance
from repro.simulation import simulate_interactive, simulate_streaming


class TestInteractiveWorkflow:
    """Generate a WAN scenario, optimise it, simulate it, adapt it."""

    @pytest.fixture(scope="class")
    def scenario(self):
        network = wan_cluster_network(3, 4, seed=77)
        pipeline = remote_visualization_pipeline(dataset_bytes=3_000_000)
        request = EndToEndRequest(source=0, destination=network.n_nodes - 1)
        return pipeline, network, request

    def test_solve_simulate_and_report(self, scenario):
        pipeline, network, request = scenario
        mapping = elpc_min_delay(pipeline, network, request)
        replay = simulate_interactive(mapping)
        assert replay.delay_ms == pytest.approx(mapping.delay_ms, rel=1e-12)
        report = mapping_walkthrough(mapping, title="integration")
        assert "integration" in report and "bottleneck" in report

    def test_every_delay_algorithm_agrees_with_simulator(self, scenario):
        pipeline, network, request = scenario
        for name in ("elpc", "streamline", "greedy", "source-only", "direct-path"):
            mapping = solve(name, pipeline, network, request, Objective.MIN_DELAY)
            replay = simulate_interactive(mapping)
            assert replay.delay_ms == pytest.approx(mapping.delay_ms, rel=1e-12)

    def test_adaptation_loop(self, scenario):
        pipeline, network, request = scenario
        mapping = elpc_min_delay(pipeline, network, request)
        profile = ResourceProfile()
        for node in set(mapping.path) - {request.source, request.destination}:
            profile.set_node_factor(node, time_s=10.0, factor=0.25)
        comparison = compare_static_vs_adaptive(pipeline, network, request, profile,
                                                horizon_s=30.0, step_s=5.0,
                                                remap_interval=10.0)
        assert comparison.mean_adaptive_ms <= comparison.mean_static_ms + 1e-6


class TestStreamingWorkflow:
    def test_surveillance_pipeline_end_to_end(self):
        from repro.generators import random_network, random_request
        network = random_network(20, 60, seed=88)
        request = random_request(network, seed=88, min_hop_distance=3)
        pipeline = video_surveillance_pipeline(frame_bytes=400_000)
        mapping = elpc_max_frame_rate(pipeline, network, request)
        replay = simulate_streaming(mapping, n_frames=60)
        assert replay.achieved_frame_rate_fps == pytest.approx(
            mapping.frame_rate_fps, rel=1e-3)
        # the empirical bottleneck matches the analytical one
        assert replay.busiest_station in replay.station_utilisation
        assert replay.station_utilisation[replay.busiest_station] > 0.9


class TestMeasurementToMappingWorkflow:
    def test_calibrate_then_map(self):
        from repro.generators import random_network, random_request
        truth = random_network(12, 30, seed=99)
        request = random_request(truth, seed=99, min_hop_distance=2)
        pipeline = remote_visualization_pipeline(dataset_bytes=2_000_000)
        report = calibrate_network(truth, noise_fraction=0.05, seed=1)
        est_mapping = elpc_min_delay(pipeline, report.estimated_network, request)
        true_optimum = elpc_min_delay(pipeline, truth, request)
        realised = end_to_end_delay_ms(pipeline, truth, est_mapping.groups,
                                       est_mapping.path)
        assert realised >= true_optimum.delay_ms - 1e-9
        assert realised <= true_optimum.delay_ms * 1.5


class TestSuitePersistenceWorkflow:
    def test_save_solve_reload_consistency(self, tmp_path):
        suite = paper_case_suite(max_cases=2)
        for instance in suite:
            path = save_instance(instance, tmp_path / f"{instance.name}.json")
            reloaded = load_instance(path)
            original = elpc_min_delay(instance.pipeline, instance.network,
                                      instance.request)
            again = elpc_min_delay(reloaded.pipeline, reloaded.network, reloaded.request)
            assert again.delay_ms == pytest.approx(original.delay_ms, rel=1e-12)
            assert again.path == original.path

    def test_comparison_and_table_generation(self):
        suite = paper_case_suite(max_cases=2)
        delay_run = run_comparison(suite, Objective.MIN_DELAY)
        rate_run = run_comparison(suite, Objective.MAX_FRAME_RATE)
        table = fig2_table(delay_run, rate_run)
        assert "case-01" in table and "case-02" in table
        assert delay_run.win_count("elpc") == 2
