"""Unit tests for the multi-tenant placement subsystem (repro.placement).

Covers the capacity ledger (budget derivation, atomic commit/release,
snapshot/restore, validation), the oversubscription edge cases named by the
PR (zero-capacity nodes, jointly-infeasible-but-individually-feasible
batches, priority ties), the placer registry, the min-cost-flow kernel on
hand-checkable networks, and a hypothesis property: no accepted placement
set ever exceeds any node or link capacity.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import Objective, place_many
from repro.exceptions import CapacityError, SpecificationError
from repro.generators import random_network, random_pipeline, random_request
from repro.model import ProblemInstance
from repro.placement import (
    ClusterState,
    MinCostFlow,
    PlacementRequest,
    available_placers,
    get_placer,
    place_flow,
    place_greedy,
    register_placer,
    validate_placements,
)

PROFILE = settings(max_examples=15, deadline=None,
                   suppress_health_check=[HealthCheck.too_slow])


def _shared_batch(count, *, n_modules=6, n_nodes=12, n_links=30, seed=3):
    """``count`` pipelines over one shared network (the placement shape)."""
    network = random_network(n_nodes, n_links, seed=seed)
    return [
        ProblemInstance(
            pipeline=random_pipeline(n_modules, seed=100 + i),
            network=network,
            request=random_request(network, seed=200 + i, min_hop_distance=2),
            name=f"place-{i}")
        for i in range(count)
    ]


class TestClusterStateBudgets:
    def test_budgets_derived_from_power_and_bandwidth(self):
        network = random_network(8, 16, seed=1)
        cluster = ClusterState.from_network(network, node_capacity_factor=0.5,
                                            link_capacity_factor=2.0)
        for node in network.nodes():
            assert cluster.remaining_node(node.node_id) == pytest.approx(
                node.processing_power * 1e6 * 0.5)
        for link in network.links():
            assert cluster.remaining_link(
                link.start_node, link.end_node) == pytest.approx(
                    link.bandwidth_mbps * 1e6 * 2.0)

    def test_link_budget_is_shared_across_directions(self):
        network = random_network(8, 16, seed=1)
        cluster = ClusterState.from_network(network)
        link = network.links()[0]
        forward = cluster.remaining_link(link.start_node, link.end_node)
        backward = cluster.remaining_link(link.end_node, link.start_node)
        assert forward == backward

    def test_negative_capacity_factor_rejected(self):
        network = random_network(6, 10, seed=2)
        with pytest.raises(SpecificationError, match=">= 0"):
            ClusterState.from_network(network, node_capacity_factor=-1.0)

    def test_unknown_node_override_rejected(self):
        network = random_network(6, 10, seed=2)
        with pytest.raises(SpecificationError, match="unknown node"):
            ClusterState.from_network(network, node_capacity={999: 0.0})


class TestCommitReleaseSnapshot:
    def _cluster_and_demand(self):
        (instance,) = _shared_batch(1, seed=7)
        cluster = ClusterState.from_network(instance.network)
        from repro.core import solve

        mapping = solve("elpc-vec", instance.pipeline, instance.network,
                        instance.request, objective=Objective.MIN_DELAY)
        return cluster, cluster.demand_of(mapping, demand_fps=1.0)

    def test_commit_then_release_restores_remaining(self):
        cluster, demand = self._cluster_and_demand()
        before = {n: cluster.remaining_node(n) for n in demand.nodes}
        cluster.commit(demand)
        for node_id, used in demand.nodes.items():
            assert cluster.remaining_node(node_id) == pytest.approx(
                before[node_id] - used)
        cluster.release(demand)
        for node_id in demand.nodes:
            assert cluster.remaining_node(node_id) == pytest.approx(
                before[node_id])
        assert cluster.commits_total == 1 and cluster.releases_total == 1
        cluster.validate()

    def test_failed_commit_is_atomic(self):
        """A commit that violates any budget must leave the ledger exactly
        as it was — no partial node debits before the failing link."""
        cluster, demand = self._cluster_and_demand()
        # Drain one node the demand needs so the commit must fail.
        victim = max(demand.nodes, key=demand.nodes.get)
        cluster.node_remaining[cluster.view.index_of[victim]] = 0.0
        snap = cluster.snapshot()
        with pytest.raises(CapacityError, match="node"):
            cluster.commit(demand)
        after = cluster.snapshot()
        assert list(after.node_remaining) == list(snap.node_remaining)
        assert after.link_remaining == snap.link_remaining
        assert cluster.commits_total == 0

    def test_snapshot_restore_after_failed_commit(self):
        cluster, demand = self._cluster_and_demand()
        snap = cluster.snapshot()
        cluster.commit(demand)  # succeeds, mutates the ledger
        victim = max(demand.nodes, key=demand.nodes.get)
        cluster.node_remaining[cluster.view.index_of[victim]] = 0.0
        with pytest.raises(CapacityError):
            cluster.commit(demand)
        cluster.restore(snap)
        assert not cluster.committed
        for node_id in demand.nodes:
            assert cluster.remaining_node(node_id) == pytest.approx(
                cluster.node_capacity[cluster.view.index_of[node_id]])
        cluster.validate()

    def test_release_of_uncommitted_demand_rejected(self):
        cluster, demand = self._cluster_and_demand()
        with pytest.raises(SpecificationError, match="not currently committed"):
            cluster.release(demand)

    def test_demand_against_foreign_network_rejected(self):
        cluster, demand = self._cluster_and_demand()
        other = random_network(6, 12, seed=99)
        foreign = ClusterState.from_network(other)
        with pytest.raises(SpecificationError):
            foreign.violations(demand)


class TestZeroCapacityNodes:
    def test_drained_inner_node_is_routed_around(self):
        instances = _shared_batch(4, seed=11)
        network = instances[0].network
        endpoints = set()
        for inst in instances:
            endpoints.update((inst.request.source,
                              inst.request.destination))
        dead = next(n.node_id for n in network.nodes()
                    if n.node_id not in endpoints)
        cluster = ClusterState.from_network(network,
                                            node_capacity={dead: 0.0})
        result = place_greedy(instances, cluster)
        assert result.n_admitted >= 1
        for item in result.admitted_items():
            assert item.demand.nodes.get(dead, 0.0) == 0.0
        validate_placements(result.items, cluster)

    def test_drained_endpoint_rejects_fast(self):
        (instance,) = _shared_batch(1, seed=13)
        source = instance.request.source
        cluster = ClusterState.from_network(instance.network,
                                            node_capacity={source: 0.0})
        workloads = instance.pipeline.workloads()
        result = place_greedy([instance], cluster)
        if workloads[0] > 0:
            assert result.n_admitted == 0
            assert "endpoint" in result.items[0].error

    def test_all_nodes_drained_rejects_everything(self):
        instances = _shared_batch(3, seed=17)
        cluster = ClusterState.from_network(instances[0].network,
                                            node_capacity_factor=0.0)
        result = place_greedy(instances, cluster)
        assert result.n_admitted == 0
        assert all(item.error for item in result.items)


class TestPriorityOrder:
    def _tight_cluster(self, instances, fps=1.0):
        """A cluster that can hold roughly one of the batch's pipelines."""
        network = instances[0].network
        probe = ClusterState.from_network(network)
        greedy = place_greedy(instances, probe, demand_fps=fps)
        assert greedy.n_admitted >= 1
        demand = next(i.demand for i in greedy.admitted_items())
        # Budget: every node gets just the max single-pipeline node draw.
        cap = max(demand.nodes.values()) * 1.2
        return ClusterState.from_network(
            network, node_capacity={n.node_id: cap for n in network.nodes()})

    def test_higher_priority_wins_the_capacity_race(self):
        instances = _shared_batch(2, n_modules=8, seed=19)
        requests_a = [PlacementRequest(instances[0], priority=0.0),
                      PlacementRequest(instances[1], priority=5.0)]
        cluster = self._tight_cluster(instances)
        result = place_greedy(requests_a, cluster)
        if result.n_admitted < 2:  # contended, as constructed
            assert result.items[1].admitted
            assert not result.items[0].admitted

    def test_priority_ties_break_by_input_position(self):
        instances = _shared_batch(2, n_modules=8, seed=19)
        requests = [PlacementRequest(inst, priority=1.0)
                    for inst in instances]
        cluster = self._tight_cluster(instances)
        result = place_greedy(requests, cluster)
        if result.n_admitted < 2:
            assert result.items[0].admitted, \
                "equal priority must admit the earlier arrival"

    def test_input_order_ignores_priority(self):
        instances = _shared_batch(2, n_modules=8, seed=19)
        requests = [PlacementRequest(instances[0], priority=0.0),
                    PlacementRequest(instances[1], priority=5.0)]
        cluster = self._tight_cluster(instances)
        result = place_greedy(requests, cluster, order="input")
        if result.n_admitted < 2:
            assert result.items[0].admitted

    def test_unknown_order_rejected(self):
        instances = _shared_batch(2, seed=19)
        cluster = ClusterState.from_network(instances[0].network)
        with pytest.raises(SpecificationError, match="order"):
            place_greedy(instances, cluster, order="fifo")


class TestJointInfeasibility:
    def test_individually_feasible_jointly_infeasible(self):
        """Each request fits an empty cluster; the pair does not."""
        instances = _shared_batch(2, n_modules=8, seed=5)
        network = instances[0].network
        fps = 1.0
        demands = []
        for inst in instances:
            fresh = ClusterState.from_network(network)
            solo = place_greedy([inst], fresh, demand_fps=fps)
            assert solo.n_admitted == 1
            demands.append(solo.admitted_items()[0].demand)
        # Cap every node at 1.05x the larger single-pipeline draw: either
        # request fits alone, but their endpoint/bottleneck draws collide.
        peak = max(max(d.nodes.values()) for d in demands)
        caps = {n.node_id: peak * 1.05 for n in network.nodes()}

        def tight():
            return ClusterState.from_network(network, node_capacity=caps)

        for inst in instances:
            assert place_greedy([inst], tight(),
                                demand_fps=fps).n_admitted == 1
        both = place_greedy(instances, tight(), demand_fps=fps)
        assert both.n_admitted == 1, \
            "seed 5 is pinned because the pair contends at 1.05x peak"
        validate_placements(both.items, tight())


class TestRegistry:
    def test_builtins_registered(self):
        assert available_placers() == ["place-flow", "place-greedy"]
        assert get_placer("place-greedy") is place_greedy
        assert get_placer("PLACE-FLOW") is place_flow

    def test_unknown_placer_lists_known(self):
        with pytest.raises(SpecificationError, match="place-greedy"):
            get_placer("place-magic")

    def test_register_rejects_silent_overwrite(self):
        def fake(*args, **kwargs):  # pragma: no cover - never called
            raise AssertionError

        with pytest.raises(SpecificationError, match="already registered"):
            register_placer("place-greedy", fake)


class TestMinCostFlowKernel:
    def test_two_path_network_prefers_cheap_path(self):
        # S=0, T=1, A=2, B=3: S->A->T (cost 1) and S->B->T (cost 3).
        mcmf = MinCostFlow(4)
        sa = mcmf.add_edge(0, 2, 5.0, 0.0)
        at = mcmf.add_edge(2, 1, 5.0, 1.0)
        sb = mcmf.add_edge(0, 3, 5.0, 0.0)
        bt = mcmf.add_edge(3, 1, 5.0, 3.0)
        flow, cost = mcmf.solve(0, 1, max_flow=7.0)
        assert flow == pytest.approx(7.0)
        assert cost == pytest.approx(5.0 * 1.0 + 2.0 * 3.0)
        assert mcmf.flow_on(sa) == pytest.approx(5.0)
        assert mcmf.flow_on(sb) == pytest.approx(2.0)
        assert mcmf.flow_on(at) == pytest.approx(5.0)
        assert mcmf.flow_on(bt) == pytest.approx(2.0)

    def test_flow_bounded_by_cut(self):
        mcmf = MinCostFlow(3)
        mcmf.add_edge(0, 2, 4.0, 0.0)
        mcmf.add_edge(2, 1, 1.5, 2.0)
        flow, cost = mcmf.solve(0, 1)
        assert flow == pytest.approx(1.5)
        assert cost == pytest.approx(3.0)

    def test_negative_inputs_rejected(self):
        mcmf = MinCostFlow(2)
        with pytest.raises(SpecificationError):
            mcmf.add_edge(0, 1, -1.0, 0.0)
        with pytest.raises(SpecificationError):
            mcmf.add_edge(0, 1, 1.0, -0.5)
        with pytest.raises(SpecificationError):
            mcmf.add_edge(0, 5, 1.0, 0.0)


@st.composite
def _placement_scenarios(draw):
    seed = draw(st.integers(min_value=0, max_value=40))
    count = draw(st.integers(min_value=2, max_value=5))
    factor = draw(st.sampled_from([0.01, 0.05, 0.2, 1.0]))
    fps = draw(st.sampled_from([0.5, 1.0, 4.0]))
    placer = draw(st.sampled_from(["place-greedy", "place-flow"]))
    return seed, count, factor, fps, placer


class TestCapacityProperty:
    @PROFILE
    @given(_placement_scenarios())
    def test_accepted_set_never_exceeds_any_capacity(self, scenario):
        seed, count, factor, fps, placer = scenario
        instances = _shared_batch(count, n_modules=5, n_nodes=10,
                                  n_links=24, seed=seed)
        cluster = ClusterState.from_network(
            instances[0].network, node_capacity_factor=factor,
            link_capacity_factor=factor)
        result = place_many(instances, placer=placer, cluster=cluster,
                            demand_fps=fps)
        # validate_placements recomputes every admitted demand from the
        # mapping itself and raises CapacityError on any overdraw.
        audit = validate_placements(result.items, cluster)
        assert audit["committed"] == result.n_admitted
        cluster.validate()
        for item in result.items:
            assert item.admitted == (item.error is None)
