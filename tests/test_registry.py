"""Tests for the solver registry (:mod:`repro.core.registry`)."""

import pytest

from repro.core import (
    Objective,
    available_solvers,
    get_solver,
    register_solver,
    solve,
)
from repro.core.registry import _REGISTRY
from repro.exceptions import SpecificationError


class TestBuiltinRegistrations:
    def test_paper_algorithms_present_for_both_objectives(self):
        for objective in (Objective.MIN_DELAY, Objective.MAX_FRAME_RATE):
            names = available_solvers(objective)
            for expected in ("elpc", "streamline", "greedy", "exhaustive", "random"):
                assert expected in names

    def test_delay_only_solvers(self):
        assert "source-only" in available_solvers(Objective.MIN_DELAY)
        assert "source-only" not in available_solvers(Objective.MAX_FRAME_RATE)

    def test_framerate_extension_registered(self):
        assert "elpc-reuse" in available_solvers(Objective.MAX_FRAME_RATE)

    def test_available_solvers_all(self):
        assert set(available_solvers()) >= {"elpc", "streamline", "greedy"}


class TestLookupAndInvocation:
    def test_get_solver_returns_callable(self):
        solver = get_solver("elpc", Objective.MIN_DELAY)
        assert callable(solver)

    def test_lookup_is_case_insensitive(self):
        assert get_solver("ELPC", Objective.MIN_DELAY) is get_solver(
            "elpc", Objective.MIN_DELAY)

    def test_unknown_solver_raises_with_suggestions(self):
        with pytest.raises(SpecificationError) as excinfo:
            get_solver("does-not-exist", Objective.MIN_DELAY)
        assert "elpc" in str(excinfo.value)

    def test_solve_wrapper(self, simple_pipeline, simple_network, simple_request):
        mapping = solve("greedy", simple_pipeline, simple_network, simple_request,
                        Objective.MIN_DELAY)
        assert mapping.algorithm == "greedy"
        assert mapping.path[0] == simple_request.source


class TestCustomRegistration:
    def test_register_and_overwrite_semantics(self, simple_pipeline, simple_network,
                                              simple_request):
        def fake_solver(pipeline, network, request, **kwargs):
            return solve("elpc", pipeline, network, request, Objective.MIN_DELAY)

        register_solver("unit-test-solver", Objective.MIN_DELAY, fake_solver)
        try:
            assert "unit-test-solver" in available_solvers(Objective.MIN_DELAY)
            with pytest.raises(SpecificationError):
                register_solver("unit-test-solver", Objective.MIN_DELAY, fake_solver)
            register_solver("unit-test-solver", Objective.MIN_DELAY, fake_solver,
                            overwrite=True)
            mapping = solve("unit-test-solver", simple_pipeline, simple_network,
                            simple_request, Objective.MIN_DELAY)
            assert mapping.algorithm == "elpc"
        finally:
            _REGISTRY.pop(("unit-test-solver", Objective.MIN_DELAY), None)

    def test_registration_is_objective_scoped(self):
        def fake_solver(*args, **kwargs):  # pragma: no cover - never called
            raise AssertionError

        register_solver("delay-only-solver", Objective.MIN_DELAY, fake_solver)
        try:
            with pytest.raises(SpecificationError):
                get_solver("delay-only-solver", Objective.MAX_FRAME_RATE)
        finally:
            _REGISTRY.pop(("delay-only-solver", Objective.MIN_DELAY), None)


class TestBuiltinOverrideNotClobbered:
    """Regression: registering over a builtin before the first lookup used to
    be silently clobbered, because ``_load_builtins`` registered with
    ``overwrite=True`` on the first ``get_solver`` call."""

    def test_builtin_override_survives_lookups(self):
        original = get_solver("greedy", Objective.MIN_DELAY)

        def my_greedy(pipeline, network, request, **kwargs):
            raise AssertionError  # pragma: no cover - identity is the test

        register_solver("greedy", Objective.MIN_DELAY, my_greedy,
                        overwrite=True)
        try:
            assert get_solver("greedy", Objective.MIN_DELAY) is my_greedy
            # A later lookup of any other solver must not reload builtins
            # over the override.
            get_solver("elpc", Objective.MIN_DELAY)
            assert get_solver("greedy", Objective.MIN_DELAY) is my_greedy
        finally:
            register_solver("greedy", Objective.MIN_DELAY, original,
                            overwrite=True)

    def test_override_before_first_lookup_in_fresh_interpreter(self):
        """The original failure mode needs a registry nobody has touched yet,
        so it runs in a subprocess."""
        import os
        import subprocess
        import sys

        program = (
            "from repro.core import Objective, register_solver, get_solver\n"
            "from repro.exceptions import SpecificationError\n"
            "def mine(pipeline, network, request, **kw):\n"
            "    raise RuntimeError('mine')\n"
            "# builtins load first, so behaviour is lookup-order independent:\n"
            "try:\n"
            "    register_solver('greedy', Objective.MIN_DELAY, mine)\n"
            "except SpecificationError:\n"
            "    pass\n"
            "else:\n"
            "    raise SystemExit('duplicate builtin not detected')\n"
            "register_solver('greedy', Objective.MIN_DELAY, mine, overwrite=True)\n"
            "assert get_solver('greedy', Objective.MIN_DELAY) is mine, 'clobbered'\n"
            "print('override-survived')\n"
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
            "PYTHONPATH", "")
        proc = subprocess.run([sys.executable, "-c", program], env=env,
                              capture_output=True, text=True, timeout=120)
        assert proc.returncode == 0, proc.stderr
        assert "override-survived" in proc.stdout
