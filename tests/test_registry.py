"""Tests for the solver registry (:mod:`repro.core.registry`)."""

import pytest

from repro.core import (
    Objective,
    available_solvers,
    get_solver,
    register_solver,
    solve,
)
from repro.core.registry import _REGISTRY
from repro.exceptions import SpecificationError


class TestBuiltinRegistrations:
    def test_paper_algorithms_present_for_both_objectives(self):
        for objective in (Objective.MIN_DELAY, Objective.MAX_FRAME_RATE):
            names = available_solvers(objective)
            for expected in ("elpc", "streamline", "greedy", "exhaustive", "random"):
                assert expected in names

    def test_delay_only_solvers(self):
        assert "source-only" in available_solvers(Objective.MIN_DELAY)
        assert "source-only" not in available_solvers(Objective.MAX_FRAME_RATE)

    def test_framerate_extension_registered(self):
        assert "elpc-reuse" in available_solvers(Objective.MAX_FRAME_RATE)

    def test_available_solvers_all(self):
        assert set(available_solvers()) >= {"elpc", "streamline", "greedy"}


class TestLookupAndInvocation:
    def test_get_solver_returns_callable(self):
        solver = get_solver("elpc", Objective.MIN_DELAY)
        assert callable(solver)

    def test_lookup_is_case_insensitive(self):
        assert get_solver("ELPC", Objective.MIN_DELAY) is get_solver(
            "elpc", Objective.MIN_DELAY)

    def test_unknown_solver_raises_with_suggestions(self):
        with pytest.raises(SpecificationError) as excinfo:
            get_solver("does-not-exist", Objective.MIN_DELAY)
        assert "elpc" in str(excinfo.value)

    def test_solve_wrapper(self, simple_pipeline, simple_network, simple_request):
        mapping = solve("greedy", simple_pipeline, simple_network, simple_request,
                        Objective.MIN_DELAY)
        assert mapping.algorithm == "greedy"
        assert mapping.path[0] == simple_request.source


class TestCustomRegistration:
    def test_register_and_overwrite_semantics(self, simple_pipeline, simple_network,
                                              simple_request):
        def fake_solver(pipeline, network, request, **kwargs):
            return solve("elpc", pipeline, network, request, Objective.MIN_DELAY)

        register_solver("unit-test-solver", Objective.MIN_DELAY, fake_solver)
        try:
            assert "unit-test-solver" in available_solvers(Objective.MIN_DELAY)
            with pytest.raises(SpecificationError):
                register_solver("unit-test-solver", Objective.MIN_DELAY, fake_solver)
            register_solver("unit-test-solver", Objective.MIN_DELAY, fake_solver,
                            overwrite=True)
            mapping = solve("unit-test-solver", simple_pipeline, simple_network,
                            simple_request, Objective.MIN_DELAY)
            assert mapping.algorithm == "elpc"
        finally:
            _REGISTRY.pop(("unit-test-solver", Objective.MIN_DELAY), None)

    def test_registration_is_objective_scoped(self):
        def fake_solver(*args, **kwargs):  # pragma: no cover - never called
            raise AssertionError

        register_solver("delay-only-solver", Objective.MIN_DELAY, fake_solver)
        try:
            with pytest.raises(SpecificationError):
                get_solver("delay-only-solver", Objective.MAX_FRAME_RATE)
        finally:
            _REGISTRY.pop(("delay-only-solver", Objective.MIN_DELAY), None)
