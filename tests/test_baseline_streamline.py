"""Tests for the Streamline baseline mapper (adapted to linear pipelines)."""

import pytest

from repro.baselines import (
    resource_ranks,
    stage_needs,
    streamline_max_frame_rate,
    streamline_min_delay,
)
from repro.core import elpc_min_delay
from repro.exceptions import InfeasibleMappingError
from repro.generators import (
    complete_network,
    line_network,
    random_network,
    random_pipeline,
    random_request,
)
from repro.model import EndToEndRequest, assert_no_reuse


class TestStageNeeds:
    def test_length_and_alignment(self, visualization_pipeline):
        needs = stage_needs(visualization_pipeline)
        assert len(needs) == visualization_pipeline.n_modules
        assert all(n >= 0 for n in needs)

    def test_heaviest_stage_has_highest_need(self, visualization_pipeline):
        needs = stage_needs(visualization_pipeline)
        workloads = visualization_pipeline.workloads()
        # the module with the largest workload should be among the top-2 needs
        heaviest = workloads.index(max(workloads))
        top2 = sorted(range(len(needs)), key=lambda j: needs[j], reverse=True)[:2]
        assert heaviest in top2

    def test_source_has_zero_compute_need_but_positive_comm_need(self, simple_pipeline):
        needs = stage_needs(simple_pipeline)
        assert needs[0] > 0.0  # communication component only


class TestResourceRanks:
    def test_all_nodes_ranked(self, simple_network):
        ranks = resource_ranks(simple_network)
        assert set(ranks) == set(simple_network.node_ids())
        assert all(0.0 <= r <= 2.0 for r in ranks.values())

    def test_most_powerful_well_connected_node_ranks_highest(self, simple_network):
        ranks = resource_ranks(simple_network)
        # node 2 has the highest power (400) and good connectivity in the fixture
        assert max(ranks, key=ranks.get) == 2


class TestStreamlineMinDelay:
    def test_valid_structure(self, simple_pipeline, simple_network, simple_request):
        mapping = streamline_min_delay(simple_pipeline, simple_network, simple_request)
        assert mapping.algorithm == "streamline"
        assert mapping.path[0] == simple_request.source
        assert mapping.path[-1] == simple_request.destination
        assert simple_network.is_walk(mapping.path)
        assert "tentative_assignment" in mapping.extras

    def test_never_better_than_elpc(self):
        for seed in range(10):
            pipeline = random_pipeline(6, seed=seed)
            network = random_network(14, 40, seed=seed + 10)
            request = random_request(network, seed=seed, min_hop_distance=2)
            streamline = streamline_min_delay(pipeline, network, request)
            optimal = elpc_min_delay(pipeline, network, request)
            assert streamline.delay_ms >= optimal.delay_ms - 1e-9

    def test_tentative_assignment_respected_on_complete_graph(self):
        """On a complete network every tentative choice is adjacency-feasible,
        so the adapted assignment should keep the interior tentative picks."""
        network = complete_network(8, seed=3)
        pipeline = random_pipeline(5, seed=3)
        request = EndToEndRequest(0, 7)
        mapping = streamline_min_delay(pipeline, network, request)
        tentative = mapping.extras["tentative_assignment"]
        assert mapping.assignment()[0] == tentative[0] == 0
        assert mapping.assignment()[-1] == tentative[-1] == 7

    def test_infeasible_short_pipeline(self):
        network = line_network(6, seed=2)
        pipeline = random_pipeline(3, seed=2)
        with pytest.raises(InfeasibleMappingError):
            streamline_min_delay(pipeline, network, EndToEndRequest(0, 5))


class TestStreamlineMaxFrameRate:
    def test_no_reuse_structure(self, simple_pipeline, complete6):
        # A dense topology: Streamline's needs-first placement is always repairable.
        request = EndToEndRequest(0, 5)
        mapping = streamline_max_frame_rate(simple_pipeline, complete6, request)
        assert_no_reuse(mapping.path)
        assert len(mapping.path) == simple_pipeline.n_modules
        assert mapping.path[-1] == request.destination

    def test_sparse_topology_may_be_reported_infeasible(self, simple_pipeline,
                                                        simple_network, simple_request):
        """On the sparse fixture the needs-first tentative choice can paint the
        walk into a corner; the algorithm must report that cleanly rather than
        return an invalid mapping."""
        try:
            mapping = streamline_max_frame_rate(simple_pipeline, simple_network,
                                                simple_request)
            assert_no_reuse(mapping.path)
            assert mapping.path[-1] == simple_request.destination
        except InfeasibleMappingError:
            pass

    def test_interior_stages_get_distinct_nodes_on_complete_graph(self):
        network = complete_network(10, seed=6)
        pipeline = random_pipeline(6, seed=6)
        mapping = streamline_max_frame_rate(pipeline, network, EndToEndRequest(0, 9))
        assert len(set(mapping.path)) == len(mapping.path)

    def test_infeasible_when_not_enough_nodes(self, simple_network, simple_request):
        pipeline = random_pipeline(9, seed=5)
        with pytest.raises(InfeasibleMappingError):
            streamline_max_frame_rate(pipeline, simple_network, simple_request)

    def test_feasible_on_random_instances_or_reports(self):
        successes = 0
        for seed in range(8):
            pipeline = random_pipeline(5, seed=seed)
            network = random_network(12, 35, seed=seed + 70)
            request = random_request(network, seed=seed, min_hop_distance=2)
            try:
                mapping = streamline_max_frame_rate(pipeline, network, request)
                assert_no_reuse(mapping.path)
                successes += 1
            except InfeasibleMappingError:
                pass
        assert successes >= 4  # the heuristic should succeed on most dense instances
