"""Unit tests for the analytical cost model (:mod:`repro.model.cost`)."""

import pytest

from repro.exceptions import SpecificationError
from repro.model import (
    bottleneck_time_ms,
    computing_time_ms,
    cost_breakdown,
    end_to_end_delay_ms,
    frame_rate_fps,
    group_computing_time_ms,
    transport_time_ms,
)


class TestPrimitiveCosts:
    def test_computing_time_known_value(self, simple_network):
        # node 0 power 100 Mops/s = 100e3 ops/ms; c=10, m=1e6 -> 1e7 ops -> 100 ms
        t = computing_time_ms(simple_network, 0, complexity=10.0, input_bytes=1_000_000)
        assert t == pytest.approx(100.0)

    def test_computing_time_scales_inverse_with_power(self, simple_network):
        slow = computing_time_ms(simple_network, 0, 10.0, 1_000_000)   # power 100
        fast = computing_time_ms(simple_network, 2, 10.0, 1_000_000)   # power 400
        assert slow == pytest.approx(4 * fast)

    def test_transport_time_known_value(self, simple_network):
        # 1 MB over 80 Mbit/s: 8e6 bits / 8e7 bit/s = 0.1 s = 100 ms, + 1 ms MLD
        t = transport_time_ms(simple_network, 0, 1, 1_000_000)
        assert t == pytest.approx(101.0)

    def test_transport_time_without_mld(self, simple_network):
        t = transport_time_ms(simple_network, 0, 1, 1_000_000, include_link_delay=False)
        assert t == pytest.approx(100.0)

    def test_intra_node_transport_free(self, simple_network):
        assert transport_time_ms(simple_network, 2, 2, 1_000_000) == 0.0

    def test_transport_requires_link(self, simple_network):
        with pytest.raises(SpecificationError):
            transport_time_ms(simple_network, 0, 3, 100.0)

    def test_group_computing_time(self, simple_pipeline, simple_network):
        # modules 1 and 2: workloads 10*1e6 + 20*5e5 = 2e7 ops, node 1 power 200
        t = group_computing_time_ms(simple_pipeline, simple_network, [1, 2], 1)
        assert t == pytest.approx(2e7 / (200 * 1e3))


class TestEndToEndDelay:
    def test_single_node_mapping(self, simple_pipeline, simple_network):
        # whole pipeline on node 0 (power 100): workload 1e7+1e7+1e7 = 3e7 -> 300 ms
        groups = [[0, 1, 2, 3]]
        delay = end_to_end_delay_ms(simple_pipeline, simple_network, groups, [0])
        assert delay == pytest.approx(300.0)

    def test_two_node_mapping_known_value(self, simple_pipeline, simple_network):
        # groups [[0,1],[2,3]] on nodes [0, 1]:
        #   node 0: module 1 workload 1e7 -> 100 ms
        #   link 0-1: 500_000 bytes at 80 Mbit/s -> 50 ms + 1 ms MLD
        #   node 1: modules 2,3 workload 1e7 + 1e7 = 2e7 -> 100 ms
        groups = [[0, 1], [2, 3]]
        delay = end_to_end_delay_ms(simple_pipeline, simple_network, groups, [0, 1])
        assert delay == pytest.approx(100.0 + 51.0 + 100.0)

    def test_mld_toggle(self, simple_pipeline, simple_network):
        groups = [[0, 1], [2, 3]]
        with_mld = end_to_end_delay_ms(simple_pipeline, simple_network, groups, [0, 1])
        without = end_to_end_delay_ms(simple_pipeline, simple_network, groups, [0, 1],
                                      include_link_delay=False)
        assert with_mld - without == pytest.approx(1.0)

    def test_mismatched_groups_and_path(self, simple_pipeline, simple_network):
        with pytest.raises(SpecificationError):
            end_to_end_delay_ms(simple_pipeline, simple_network, [[0, 1, 2, 3]], [0, 1])

    def test_non_contiguous_groups_rejected(self, simple_pipeline, simple_network):
        with pytest.raises(SpecificationError):
            end_to_end_delay_ms(simple_pipeline, simple_network,
                                [[0, 2], [1, 3]], [0, 1])

    def test_non_adjacent_path_rejected(self, simple_pipeline, simple_network):
        with pytest.raises(SpecificationError):
            end_to_end_delay_ms(simple_pipeline, simple_network,
                                [[0, 1], [2, 3]], [0, 3])


class TestBottleneckAndFrameRate:
    def test_bottleneck_is_max_component(self, simple_pipeline, simple_network):
        groups = [[0, 1], [2, 3]]
        bottleneck = bottleneck_time_ms(simple_pipeline, simple_network, groups, [0, 1])
        assert bottleneck == pytest.approx(100.0)  # max(100, 51, 100)

    def test_frame_rate_reciprocal(self, simple_pipeline, simple_network):
        groups = [[0, 1], [2, 3]]
        fps = frame_rate_fps(simple_pipeline, simple_network, groups, [0, 1])
        assert fps == pytest.approx(1000.0 / 100.0)

    def test_node_sharing_aggregates_load(self, simple_pipeline, simple_network):
        # Path loops back to node 0: groups [[0,1],[2],[3]] on [0, 1, 0].
        groups = [[0, 1], [2], [3]]
        path = [0, 1, 0]
        shared = bottleneck_time_ms(simple_pipeline, simple_network, groups, path,
                                    account_node_sharing=True)
        independent = bottleneck_time_ms(simple_pipeline, simple_network, groups, path,
                                         account_node_sharing=False)
        # node 0 carries modules 1 and 3: (1e7 + 1e7) / 100e3 = 200 ms when shared
        assert shared == pytest.approx(200.0)
        assert independent < shared

    def test_frame_rate_infinite_for_zero_work(self, simple_network):
        from repro.model import Pipeline
        # Forwarding-only pipeline with zero-byte messages costs nothing anywhere.
        p = Pipeline.from_stage_specs(0.0, [(0.0, 0.0), (0.0, 0.0)])
        fps = frame_rate_fps(p, simple_network, [[0, 1], [2]], [0, 1],
                             include_link_delay=False)
        assert fps == float("inf")


class TestCostBreakdown:
    def test_components_sum_to_total(self, simple_pipeline, simple_network):
        groups = [[0, 1], [2], [3]]
        path = [0, 1, 2]
        bd = cost_breakdown(simple_pipeline, simple_network, groups, path)
        assert sum(bd.node_times_ms) + sum(bd.link_times_ms) == pytest.approx(
            bd.total_delay_ms)
        assert bd.total_delay_ms == pytest.approx(
            end_to_end_delay_ms(simple_pipeline, simple_network, groups, path))

    def test_bottleneck_location(self, simple_pipeline, simple_network):
        groups = [[0, 1], [2, 3]]
        bd = cost_breakdown(simple_pipeline, simple_network, groups, [0, 1])
        assert bd.bottleneck_kind in ("node", "link")
        assert bd.bottleneck_ms == pytest.approx(
            bottleneck_time_ms(simple_pipeline, simple_network, groups, [0, 1]))
        assert bd.frame_rate_fps == pytest.approx(1000.0 / bd.bottleneck_ms)

    def test_link_bottleneck_detected(self, simple_pipeline, simple_network):
        # Use the thin 0-2 chord (8 Mbit/s): 1 MB transfer = 1000 ms + 1 dominates.
        groups = [[0], [1, 2, 3]]
        bd = cost_breakdown(simple_pipeline, simple_network, groups, [0, 2])
        assert bd.bottleneck_kind == "link"
        assert bd.bottleneck_ms == pytest.approx(1001.0)
