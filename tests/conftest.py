"""Shared fixtures for the test suite.

All fixtures are deterministic (fixed seeds) so test failures are
reproducible.  The "tiny" fixtures are small enough for the exhaustive
optimality oracles; the "medium" fixtures exercise more realistic sizes.
"""

from __future__ import annotations

import pytest

from repro.generators import (
    complete_network,
    line_network,
    random_network,
    random_pipeline,
    random_request,
    remote_visualization_pipeline,
    small_illustration_case,
    video_surveillance_pipeline,
)
from repro.model import (
    CommunicationLink,
    ComputingModule,
    ComputingNode,
    EndToEndRequest,
    Pipeline,
    TransportNetwork,
)


# --------------------------------------------------------------------------- #
# Hand-built entities with easily checkable numbers
# --------------------------------------------------------------------------- #
@pytest.fixture
def simple_pipeline() -> Pipeline:
    """A 4-module pipeline with round numbers (workloads easy to verify by hand).

    Module data sizes (bytes): source emits 1_000_000; stage outputs 500_000,
    250_000, 0.  Complexities: 10, 20, 40 ops/byte for the three computing
    stages.
    """
    return Pipeline.from_stage_specs(
        source_bytes=1_000_000,
        stages=[(10.0, 500_000), (20.0, 250_000), (40.0, 0)],
        stage_names=["filter", "render", "display"],
        name="simple",
    )


@pytest.fixture
def simple_network() -> TransportNetwork:
    """A 4-node line-plus-chord network with round numbers.

    Topology: 0-1, 1-2, 2-3, 0-2.  Powers: 100, 200, 400, 50.
    Bandwidths: all 80 Mbit/s except the 0-2 chord at 8 Mbit/s.  MLD 1 ms
    everywhere.
    """
    nodes = [
        ComputingNode(node_id=0, processing_power=100.0),
        ComputingNode(node_id=1, processing_power=200.0),
        ComputingNode(node_id=2, processing_power=400.0),
        ComputingNode(node_id=3, processing_power=50.0),
    ]
    links = [
        CommunicationLink(0, 1, bandwidth_mbps=80.0, min_delay_ms=1.0),
        CommunicationLink(1, 2, bandwidth_mbps=80.0, min_delay_ms=1.0),
        CommunicationLink(2, 3, bandwidth_mbps=80.0, min_delay_ms=1.0),
        CommunicationLink(0, 2, bandwidth_mbps=8.0, min_delay_ms=1.0),
    ]
    return TransportNetwork(nodes=nodes, links=links, name="simple-net")


@pytest.fixture
def simple_request() -> EndToEndRequest:
    """Source node 0, destination node 3 on the simple network."""
    return EndToEndRequest(source=0, destination=3)


# --------------------------------------------------------------------------- #
# Generated instances
# --------------------------------------------------------------------------- #
@pytest.fixture
def tiny_instance():
    """Small random instance (5 modules, 7 nodes) usable with the exhaustive oracles."""
    pipeline = random_pipeline(5, seed=101)
    network = random_network(7, 14, seed=101)
    request = random_request(network, seed=101, min_hop_distance=2)
    return pipeline, network, request


@pytest.fixture
def illustration_instance():
    """The paper's Fig. 3 / Fig. 4 small illustration case."""
    return small_illustration_case()


@pytest.fixture
def medium_instance():
    """Medium random instance (12 modules, 40 nodes)."""
    pipeline = random_pipeline(12, seed=202)
    network = random_network(40, 130, seed=202)
    request = random_request(network, seed=202, min_hop_distance=3)
    return pipeline, network, request


@pytest.fixture
def visualization_pipeline() -> Pipeline:
    """The remote-visualization domain workload."""
    return remote_visualization_pipeline()


@pytest.fixture
def surveillance_pipeline() -> Pipeline:
    """The video-surveillance domain workload."""
    return video_surveillance_pipeline()


@pytest.fixture
def complete6() -> TransportNetwork:
    """A complete 6-node network (every placement is adjacency-feasible)."""
    return complete_network(6, seed=33)


@pytest.fixture
def line5() -> TransportNetwork:
    """A 5-node line network (unique simple path between the two ends)."""
    return line_network(5, seed=44)
