"""Tests for the per-figure reproduction drivers (:mod:`repro.analysis.experiments`).

These are the library-level checks that the reproduced artifacts have the
*shape* the paper reports; the full-suite versions live in ``benchmarks/``.
"""

import math

import pytest

from repro.analysis import (
    reproduce_fig2,
    reproduce_fig3,
    reproduce_fig4,
    reproduce_fig5,
    reproduce_fig6,
    runtime_scaling,
    write_all_outputs,
)
from repro.core import Objective


@pytest.fixture(scope="module")
def fig2_small():
    # Keep the unit-test version small; the benchmark runs all 20 cases.
    return reproduce_fig2(max_cases=4)


class TestFig2:
    def test_runs_cover_requested_cases(self, fig2_small):
        assert len(fig2_small.delay_run.cases) == 4
        assert len(fig2_small.framerate_run.cases) == 4

    def test_elpc_never_loses_on_delay(self, fig2_small):
        assert fig2_small.elpc_wins_delay() == 4

    def test_elpc_never_loses_on_framerate(self, fig2_small):
        assert fig2_small.elpc_wins_framerate() == 4

    def test_table_text_structure(self, fig2_small):
        assert "Min end-to-end delay" in fig2_small.table_text
        assert "case-01" in fig2_small.table_text


class TestFig3AndFig4:
    def test_fig3_shape(self):
        result = reproduce_fig3()
        assert result.instance.pipeline.n_modules == 5
        assert result.mapping.objective is Objective.MIN_DELAY
        assert result.mapping.path[0] == 0
        assert result.mapping.path[-1] == 5
        assert "minimum end-to-end delay" in result.walkthrough_text

    def test_fig4_shape(self):
        result = reproduce_fig4()
        assert result.mapping.objective is Objective.MAX_FRAME_RATE
        assert len(result.mapping.path) == 5
        assert len(set(result.mapping.path)) == 5  # no reuse
        assert "maximum frame rate" in result.walkthrough_text

    def test_fig3_reuses_nodes_fig4_does_not(self):
        fig3 = reproduce_fig3()
        fig4 = reproduce_fig4()
        # Fig. 3 groups at least two modules on some node (5 modules on <= 6 nodes,
        # and the optimum in the paper grouped several); Fig. 4 uses 5 distinct nodes.
        assert len(fig3.mapping.path) <= 5
        assert len(fig4.mapping.path) == 5


class TestFig5AndFig6:
    def test_series_from_existing_run(self, fig2_small):
        fig5 = reproduce_fig5(run=fig2_small.delay_run)
        assert set(fig5.series) == set(fig2_small.delay_run.algorithms)
        assert len(fig5.case_labels) == 4
        assert "Fig. 5" in fig5.chart_text
        assert fig5.csv_text.startswith("case,")

    def test_fig5_elpc_curve_below_baselines(self, fig2_small):
        fig5 = reproduce_fig5(run=fig2_small.delay_run)
        for idx in range(len(fig5.case_labels)):
            elpc = fig5.series["elpc"][idx]
            for other in ("streamline", "greedy"):
                value = fig5.series[other][idx]
                if value is not None and elpc is not None:
                    assert elpc <= value + 1e-9

    def test_fig6_elpc_curve_above_baselines(self, fig2_small):
        fig6 = reproduce_fig6(run=fig2_small.framerate_run)
        for idx in range(len(fig6.case_labels)):
            elpc = fig6.series["elpc"][idx]
            for other in ("streamline", "greedy"):
                value = fig6.series[other][idx]
                if value is not None and elpc is not None:
                    assert elpc >= value - 1e-9

    def test_standalone_generation(self):
        fig6 = reproduce_fig6(max_cases=2)
        assert len(fig6.case_labels) == 2


class TestRuntimeScaling:
    def test_measures_all_sizes(self):
        result = runtime_scaling(sizes=[(5, 10, 20), (10, 20, 60)])
        assert len(result.sizes) == 2
        assert all(t > 0 for t in result.delay_runtimes_s)
        assert result.work_units() == [5 * 20.0, 10 * 60.0]
        assert len(result.delay_runtime_per_unit()) == 2

    def test_runtime_grows_with_problem_size(self):
        result = runtime_scaling(sizes=[(5, 10, 20), (40, 200, 1000)])
        assert result.delay_runtimes_s[1] > result.delay_runtimes_s[0]


class TestWriteAllOutputs:
    def test_artifacts_written(self, tmp_path):
        written = write_all_outputs(tmp_path, max_cases=2)
        expected = {"fig2", "fig3", "fig4", "fig5", "fig5_csv", "fig6", "fig6_csv",
                    "runtime_scaling"}
        assert expected <= set(written)
        for path in written.values():
            assert path.exists()
            assert path.stat().st_size > 0
        assert "Fig. 5" in (tmp_path / "fig5_delay_curves.txt").read_text()
        assert (tmp_path / "runtime_scaling.csv").read_text().startswith("modules,")
