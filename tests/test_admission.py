"""End-to-end tests for service admission control and the repro-serve/2 wire.

The service satellite of the placement PR: requests carry a ``priority``,
the dispatcher charges every successful solve against a per-network
:class:`repro.placement.ClusterState` ledger when ``admission_control`` is
on, rejected requests answer ``ok: false`` with an ``admission`` object, and
``/healthz`` exposes ``admitted_total`` / ``rejected_total``.  The server
accepts ``repro-serve/1`` payloads verbatim and rejects unknown schemas.
"""

from __future__ import annotations

import threading

import pytest

from repro.exceptions import SpecificationError
from repro.generators import random_network, random_pipeline, random_request
from repro.model import ProblemInstance
from repro.service import (
    BackgroundServer,
    ServiceConfig,
    SolveRequest,
    WIRE_SCHEMA,
)
from repro.service.wire import SUPPORTED_SCHEMAS, WIRE_SCHEMA_V1


def _single_fit_factor(instance, *, headroom=1.5):
    """A capacity factor that fits exactly one copy of ``instance``.

    The binding resource is loaded to ``1/headroom`` of its budget by one
    admitted mapping, so a second identical commit (``2/headroom > 1`` of
    the budget for ``headroom < 2``) must be rejected.
    """
    from repro.core import Objective, solve
    from repro.placement import ClusterState

    mapping = solve("elpc-tensor", instance.pipeline, instance.network,
                    instance.request, objective=Objective.MIN_DELAY)
    probe = ClusterState.from_network(instance.network)
    demand = probe.demand_of(mapping)
    fractions = [used / probe.remaining_node(node)
                 for node, used in demand.nodes.items()]
    fractions += [used / probe.remaining_link(*key)
                  for key, used in demand.links.items()]
    return headroom * max(fractions)


def _instances(count, *, network_seed=3, n_nodes=12, n_links=30,
               n_modules=6):
    network = random_network(n_nodes, n_links, seed=network_seed)
    return [
        ProblemInstance(
            pipeline=random_pipeline(n_modules, seed=700 + i),
            network=network,
            request=random_request(network, seed=800 + i, min_hop_distance=2),
            name=f"adm-{i}")
        for i in range(count)
    ]


class TestWireV2:
    def test_current_schema_is_v2(self):
        assert WIRE_SCHEMA == "repro-serve/2"
        assert SUPPORTED_SCHEMAS == {WIRE_SCHEMA, WIRE_SCHEMA_V1}

    def test_priority_round_trips(self):
        (instance,) = _instances(1)
        request = SolveRequest(instance=instance, priority=3.5)
        payload = request.to_wire()
        assert payload["schema"] == WIRE_SCHEMA
        assert payload["priority"] == 3.5
        back = SolveRequest.from_wire(payload)
        assert back.priority == 3.5

    def test_zero_priority_is_omitted_from_the_wire(self):
        (instance,) = _instances(1)
        payload = SolveRequest(instance=instance).to_wire()
        assert "priority" not in payload

    def test_v1_payload_accepted_verbatim(self):
        (instance,) = _instances(1)
        payload = SolveRequest(instance=instance, priority=9.0).to_wire()
        # A /1 client: old schema tag (or none at all), no priority field.
        del payload["priority"]
        for schema in (WIRE_SCHEMA_V1, None):
            v1 = dict(payload)
            if schema is None:
                v1.pop("schema", None)
            else:
                v1["schema"] = schema
            request = SolveRequest.from_wire(v1)
            assert request.priority == 0.0
            assert request.instance.pipeline.n_modules == \
                instance.pipeline.n_modules

    def test_unknown_schema_rejected(self):
        (instance,) = _instances(1)
        payload = SolveRequest(instance=instance).to_wire()
        payload["schema"] = "repro-serve/3"
        with pytest.raises(SpecificationError, match="unsupported wire"):
            SolveRequest.from_wire(payload)

    @pytest.mark.parametrize("bad", ["high", True, [1]])
    def test_non_numeric_priority_rejected(self, bad):
        (instance,) = _instances(1)
        payload = SolveRequest(instance=instance).to_wire()
        payload["priority"] = bad
        with pytest.raises(SpecificationError, match="priority"):
            SolveRequest.from_wire(payload)


class TestAdmissionControl:
    def test_uncontended_everything_admitted(self):
        instances = _instances(4)
        config = ServiceConfig(max_batch=4, max_wait_ms=5000.0,
                               admission_control=True,
                               admission_capacity_factor=1e9)
        with BackgroundServer(config) as server:
            client = server.client()
            responses = [client.solve(inst) for inst in instances]
            status = client.healthz()
        assert all(r["ok"] for r in responses)
        assert all(r["admission"] == {"admitted": True, "priority": 0.0}
                   for r in responses)
        assert status["admitted_total"] == 4
        assert status["rejected_total"] == 0
        assert status["admission_ledgers"] == 1
        # Single-process serving charges an in-process LocalStore; healthz
        # still reports the occupancy block the fleet path exposes.
        assert status["admission_store"] == "local"
        occupancy = status["admission_occupancy"]
        assert occupancy["networks"] == 1
        assert 0.0 <= occupancy["node_occupancy_fraction"] <= 1.0
        assert 0.0 <= occupancy["link_occupancy_fraction"] <= 1.0
        assert occupancy["node_residual_fraction"] == pytest.approx(
            1.0 - occupancy["node_occupancy_fraction"])
        assert occupancy["released_total"] == 0

    def test_oversubscribed_rejects_with_reason(self):
        instances = _instances(6, n_modules=10)
        config = ServiceConfig(max_batch=1, max_wait_ms=0.0,
                               admission_control=True,
                               admission_capacity_factor=0.05,
                               admission_demand_fps=2.0)
        with BackgroundServer(config) as server:
            client = server.client()
            responses = [client.solve(inst) for inst in instances]
            status = client.healthz()
        rejected = [r for r in responses if not r["ok"]]
        admitted = [r for r in responses if r["ok"]]
        assert rejected, "0.05x capacity at 2 fps must reject something"
        for response in rejected:
            assert response["admission"]["admitted"] is False
            assert response["admission"]["reason"]
            assert "admission rejected" in response["error"]
        assert status["admitted_total"] == len(admitted)
        assert status["rejected_total"] == len(rejected)

    def test_commitments_persist_across_flushes(self):
        """The ledger is service-lifetime state: a request admitted in an
        early flush keeps its capacity through later flushes."""
        (instance,) = _instances(1, n_modules=8)
        config = ServiceConfig(max_batch=1, max_wait_ms=0.0,
                               admission_control=True,
                               admission_capacity_factor=_single_fit_factor(
                                   instance, headroom=3.0))
        with BackgroundServer(config) as server:
            client = server.client()
            first = client.solve(instance)
            repeats = [client.solve(instance) for _ in range(8)]
            status = client.healthz()
        assert first["ok"]
        assert any(not r["ok"] for r in repeats), \
            "repeating one admitted pipeline must eventually exhaust 0.8x"
        assert status["admitted_total"] + status["rejected_total"] == 9

    def test_priority_wins_the_capacity_race(self):
        """Two identical requests coalesce into one flush that only has
        capacity for one: the higher-priority one must win even though it
        was posted second."""
        (instance,) = _instances(1, n_modules=8)
        config = ServiceConfig(max_batch=2, max_wait_ms=5000.0,
                               admission_control=True,
                               admission_capacity_factor=_single_fit_factor(
                                   instance))
        with BackgroundServer(config) as server:
            client = server.client()
            responses = [None, None]
            barrier = threading.Barrier(2)

            def post(slot, priority):
                barrier.wait()
                responses[slot] = client.solve(instance, priority=priority)

            threads = [threading.Thread(target=post, args=(0, 0.0)),
                       threading.Thread(target=post, args=(1, 7.0))]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        low, high = responses
        assert high["group_size"] == 2, \
            "both requests must ride one flush for the race to be real"
        assert high["ok"] and high["admission"]["admitted"] is True
        assert high["admission"]["priority"] == 7.0
        assert not low["ok"]
        assert low["admission"]["admitted"] is False

    def test_admission_off_leaves_wire_unchanged(self):
        instances = _instances(2)
        with BackgroundServer(ServiceConfig(max_batch=1,
                                            max_wait_ms=0.0)) as server:
            client = server.client()
            responses = [client.solve(inst) for inst in instances]
            status = client.healthz()
        assert all(r["ok"] and "admission" not in r for r in responses)
        assert status["admission_control"] is False
        assert "admission_ledgers" not in status

    def test_failed_solves_are_not_counted(self):
        (instance,) = _instances(1)
        config = ServiceConfig(max_batch=1, max_wait_ms=0.0,
                               admission_control=True)
        with BackgroundServer(config) as server:
            client = server.client()
            response = client.solve(instance, solver="no-such-solver")
            status = client.healthz()
        assert not response["ok"]
        assert "admission" not in response
        assert status["admitted_total"] == 0
        assert status["rejected_total"] == 0

    def test_negative_capacity_factor_rejected(self):
        with pytest.raises(SpecificationError, match="admission_capacity"):
            ServiceConfig(admission_capacity_factor=-1.0)
        with pytest.raises(SpecificationError, match="admission_demand"):
            ServiceConfig(admission_demand_fps=-1.0)
