"""Tests for the DAG workflow extension."""

import pytest

from repro.core import elpc_min_delay
from repro.exceptions import SpecificationError
from repro.extensions import (
    DagTask,
    DagWorkflow,
    dag_makespan,
    linearize_pipeline,
    map_dag_earliest_finish,
)
from repro.generators import random_network, random_pipeline, random_request
from repro.model import EndToEndRequest


def diamond_workflow() -> DagWorkflow:
    """source -> (left, right) -> sink with asymmetric branch weights."""
    dag = DagWorkflow()
    dag.add_task(DagTask(0, complexity=0.0, name="source"))
    dag.add_task(DagTask(1, complexity=50.0, name="left"))
    dag.add_task(DagTask(2, complexity=5.0, name="right"))
    dag.add_task(DagTask(3, complexity=10.0, name="sink"))
    dag.add_dependency(0, 1, 400_000)
    dag.add_dependency(0, 2, 400_000)
    dag.add_dependency(1, 3, 100_000)
    dag.add_dependency(2, 3, 100_000)
    return dag


class TestDagWorkflowConstruction:
    def test_basic_queries(self):
        dag = diamond_workflow()
        assert dag.n_tasks == 4
        assert dag.entry_task() == 0
        assert dag.exit_task() == 3
        assert dag.predecessors(3) == [1, 2]
        assert dag.successors(0) == [1, 2]
        assert dag.edge_bytes(0, 1) == 400_000
        assert dag.task_input_bytes(3) == 200_000
        assert dag.task_ids()[0] == 0
        dag.validate()

    def test_cycle_rejected(self):
        dag = diamond_workflow()
        with pytest.raises(SpecificationError):
            dag.add_dependency(3, 0, 10.0)

    def test_duplicate_task_rejected(self):
        dag = diamond_workflow()
        with pytest.raises(SpecificationError):
            dag.add_task(DagTask(2, complexity=1.0))

    def test_unknown_edge_queries(self):
        dag = diamond_workflow()
        with pytest.raises(SpecificationError):
            dag.edge_bytes(1, 2)
        with pytest.raises(SpecificationError):
            dag.task(99)

    def test_multiple_exits_rejected(self):
        dag = DagWorkflow()
        dag.add_task(DagTask(0, 0.0))
        dag.add_task(DagTask(1, 1.0))
        dag.add_task(DagTask(2, 1.0))
        dag.add_dependency(0, 1, 10.0)
        dag.add_dependency(0, 2, 10.0)
        with pytest.raises(SpecificationError):
            dag.validate()

    def test_upward_rank_monotone_towards_entry(self, simple_network):
        dag = diamond_workflow()
        rank = dag.upward_rank(simple_network)
        assert rank[0] >= max(rank[1], rank[2])
        assert rank[3] <= min(rank[1], rank[2])


class TestLinearization:
    def test_chain_shape(self, simple_pipeline):
        dag = linearize_pipeline(simple_pipeline)
        assert dag.n_tasks == simple_pipeline.n_modules
        assert dag.entry_task() == 0
        assert dag.exit_task() == simple_pipeline.n_modules - 1
        for j in range(simple_pipeline.n_modules - 1):
            assert dag.edge_bytes(j, j + 1) == simple_pipeline.message_size(j)

    def test_chain_makespan_matches_eq1(self, simple_pipeline, simple_network):
        """Evaluating a chain DAG under the per-module assignment of a linear
        mapping reproduces the Eq. 1 delay (intra-node transfers are free and
        every inter-node message crosses a direct link)."""
        mapping = elpc_min_delay(simple_pipeline, simple_network, EndToEndRequest(0, 3))
        dag = linearize_pipeline(simple_pipeline)
        assignment = {j: node for j, node in enumerate(mapping.assignment())}
        makespan, finish = dag_makespan(dag, simple_network, assignment)
        assert makespan == pytest.approx(mapping.delay_ms)
        assert finish[dag.exit_task()] == pytest.approx(mapping.delay_ms)


class TestDagMapping:
    def test_heuristic_respects_pinning(self, simple_network):
        dag = diamond_workflow()
        result = map_dag_earliest_finish(dag, simple_network, EndToEndRequest(0, 3))
        assert result.assignment[0] == 0
        assert result.assignment[3] == 3
        assert result.makespan_ms > 0
        assert set(result.finish_times_ms) == {0, 1, 2, 3}

    def test_heuristic_not_worse_than_all_on_source(self, simple_network):
        dag = diamond_workflow()
        result = map_dag_earliest_finish(dag, simple_network, EndToEndRequest(0, 3))
        all_on_edges = {0: 0, 1: 0, 2: 0, 3: 3}
        naive_makespan, _ = dag_makespan(dag, simple_network, all_on_edges)
        assert result.makespan_ms <= naive_makespan + 1e-9

    def test_missing_assignment_rejected(self, simple_network):
        dag = diamond_workflow()
        with pytest.raises(SpecificationError):
            dag_makespan(dag, simple_network, {0: 0, 1: 1})

    def test_linear_pipeline_via_dag_close_to_elpc(self):
        """On a well-connected network the DAG heuristic should land within a
        reasonable factor of the linear-optimal delay for a chain workflow.
        (The DAG evaluator allows multi-hop routing, so it may occasionally
        land slightly below the direct-link-only linear optimum.)"""
        pipeline = random_pipeline(6, seed=17)
        network = random_network(12, 40, seed=17)
        request = random_request(network, seed=17, min_hop_distance=2)
        optimal = elpc_min_delay(pipeline, network, request)
        dag = linearize_pipeline(pipeline)
        result = map_dag_earliest_finish(dag, network, request)
        assert result.makespan_ms >= optimal.delay_ms * 0.5
        assert result.makespan_ms <= optimal.delay_ms * 3.0
