"""Tests for the ELPC maximum frame rate dynamic-programming heuristic."""

import pytest

from repro.core import (
    Objective,
    elpc_max_frame_rate,
    elpc_max_frame_rate_vec,
    exhaustive_max_frame_rate,
)
from repro.exceptions import InfeasibleMappingError
from repro.generators import (
    complete_network,
    line_network,
    random_network,
    random_pipeline,
    random_request,
)
from repro.model import EndToEndRequest, assert_no_reuse, bottleneck_time_ms

#: Both engines must pass every edge-case test below identically.
FRAMERATE_SOLVERS = [pytest.param(elpc_max_frame_rate, id="scalar"),
                     pytest.param(elpc_max_frame_rate_vec, id="vectorized")]


class TestBasicBehaviour:
    def test_returns_simple_path_of_n_nodes(self, simple_pipeline, simple_network,
                                            simple_request):
        mapping = elpc_max_frame_rate(simple_pipeline, simple_network, simple_request)
        assert mapping.objective is Objective.MAX_FRAME_RATE
        assert len(mapping.path) == simple_pipeline.n_modules
        assert_no_reuse(mapping.path)
        assert mapping.path[0] == simple_request.source
        assert mapping.path[-1] == simple_request.destination
        assert all(len(g) == 1 for g in mapping.groups)

    def test_dp_value_equals_mapping_bottleneck(self, simple_pipeline, simple_network,
                                                simple_request):
        mapping = elpc_max_frame_rate(simple_pipeline, simple_network, simple_request)
        assert mapping.extras["dp_bottleneck_ms"] == pytest.approx(mapping.bottleneck_ms)
        assert mapping.frame_rate_fps == pytest.approx(1e3 / mapping.bottleneck_ms)

    def test_keep_table(self, simple_pipeline, simple_network, simple_request):
        mapping = elpc_max_frame_rate(simple_pipeline, simple_network, simple_request,
                                      keep_table=True)
        assert "dp_table" in mapping.extras

    def test_unique_path_on_line_network(self):
        # On a line the only exact-n-node simple path is the line itself.
        network = line_network(5, seed=3)
        pipeline = random_pipeline(5, seed=3)
        mapping = elpc_max_frame_rate(pipeline, network, EndToEndRequest(0, 4))
        assert mapping.path == [0, 1, 2, 3, 4]
        expected = bottleneck_time_ms(pipeline, network,
                                      [[j] for j in range(5)], [0, 1, 2, 3, 4])
        assert mapping.bottleneck_ms == pytest.approx(expected)


class TestHeuristicQuality:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5, 6, 7, 8, 9])
    def test_close_to_exhaustive_on_random_instances(self, seed):
        """The heuristic may miss the optimum, but must stay feasible and
        within a modest factor whenever it succeeds; most seeds match exactly
        (the paper reports misses are "extremely rare")."""
        pipeline = random_pipeline(5, seed=seed)
        network = random_network(8, 16, seed=seed + 100)
        request = random_request(network, seed=seed, min_hop_distance=2)
        try:
            exact = exhaustive_max_frame_rate(pipeline, network, request)
        except InfeasibleMappingError:
            pytest.skip("instance genuinely infeasible")
        try:
            heuristic = elpc_max_frame_rate(pipeline, network, request)
        except InfeasibleMappingError:
            pytest.skip("heuristic miss on a feasible instance (known rare failure mode)")
        assert_no_reuse(heuristic.path)
        assert heuristic.frame_rate_fps <= exact.frame_rate_fps + 1e-9
        assert heuristic.frame_rate_fps >= 0.5 * exact.frame_rate_fps

    def test_exact_match_count_on_small_suite(self):
        """At least 80 % of small random instances should be solved optimally."""
        matches, total = 0, 0
        for seed in range(15):
            pipeline = random_pipeline(4, seed=seed)
            network = random_network(7, 14, seed=seed + 500)
            request = random_request(network, seed=seed, min_hop_distance=2)
            try:
                exact = exhaustive_max_frame_rate(pipeline, network, request)
                heuristic = elpc_max_frame_rate(pipeline, network, request)
            except InfeasibleMappingError:
                continue
            total += 1
            if heuristic.frame_rate_fps == pytest.approx(exact.frame_rate_fps, rel=1e-9):
                matches += 1
        assert total >= 5
        assert matches / total >= 0.8


class TestFeasibilityHandling:
    def test_infeasible_more_modules_than_nodes(self, simple_network, simple_request):
        pipeline = random_pipeline(10, seed=1)
        with pytest.raises(InfeasibleMappingError):
            elpc_max_frame_rate(pipeline, simple_network, simple_request)

    def test_infeasible_pipeline_longer_than_longest_path(self):
        network = line_network(5, seed=1)
        pipeline = random_pipeline(4, seed=1)
        with pytest.raises(InfeasibleMappingError):
            elpc_max_frame_rate(pipeline, network, EndToEndRequest(0, 2))

    def test_infeasible_pipeline_shorter_than_shortest_path(self):
        network = line_network(6, seed=1)
        pipeline = random_pipeline(3, seed=1)
        with pytest.raises(InfeasibleMappingError):
            elpc_max_frame_rate(pipeline, network, EndToEndRequest(0, 5))

    def test_destination_never_used_as_intermediate(self):
        for seed in range(5):
            network = random_network(9, 20, seed=seed)
            pipeline = random_pipeline(5, seed=seed)
            request = random_request(network, seed=seed, min_hop_distance=2)
            try:
                mapping = elpc_max_frame_rate(pipeline, network, request)
            except InfeasibleMappingError:
                continue
            assert request.destination not in mapping.path[:-1]

    def test_complete_graph_always_feasible_when_enough_nodes(self):
        network = complete_network(7, seed=4)
        pipeline = random_pipeline(6, seed=4)
        mapping = elpc_max_frame_rate(pipeline, network, EndToEndRequest(0, 6))
        assert len(mapping.path) == 6
        assert_no_reuse(mapping.path)


class TestEdgeCasesBothEngines:
    """Edge-case coverage shared by the scalar and vectorized solvers."""

    @pytest.mark.parametrize("solver", FRAMERATE_SOLVERS)
    def test_without_link_delay_never_slower(self, solver, simple_pipeline,
                                             simple_network, simple_request):
        with_mld = solver(simple_pipeline, simple_network, simple_request)
        without = solver(simple_pipeline, simple_network, simple_request,
                         include_link_delay=False)
        assert without.extras["include_link_delay"] is False
        # Dropping the additive MLD term can only shrink link times, so the
        # optimised bottleneck cannot get worse.
        assert (without.extras["dp_bottleneck_ms"]
                <= with_mld.extras["dp_bottleneck_ms"] + 1e-9)

    @pytest.mark.parametrize("solver", FRAMERATE_SOLVERS)
    def test_keep_table_final_cell_matches(self, solver, simple_pipeline,
                                           simple_network, simple_request):
        mapping = solver(simple_pipeline, simple_network, simple_request,
                         keep_table=True)
        table = mapping.extras["dp_table"]
        assert table.value(simple_pipeline.n_modules - 1,
                           simple_request.destination) == pytest.approx(
            mapping.bottleneck_ms)
        assert table.backtrack_path(simple_request.destination) == mapping.path

    @pytest.mark.parametrize("solver", FRAMERATE_SOLVERS)
    def test_keep_table_off_by_default(self, solver, simple_pipeline,
                                       simple_network, simple_request):
        mapping = solver(simple_pipeline, simple_network, simple_request)
        assert "dp_table" not in mapping.extras

    @pytest.mark.parametrize("solver", FRAMERATE_SOLVERS)
    def test_disconnected_destination_raises(self, solver, simple_pipeline,
                                             simple_network):
        from repro.model import ComputingNode
        simple_network.add_node(ComputingNode(node_id=9, processing_power=1.0))
        with pytest.raises(InfeasibleMappingError):
            solver(simple_pipeline, simple_network, EndToEndRequest(0, 9))

    @pytest.mark.parametrize("solver", FRAMERATE_SOLVERS)
    def test_disconnected_source_raises(self, solver, simple_pipeline,
                                        simple_network):
        from repro.model import ComputingNode
        simple_network.add_node(ComputingNode(node_id=9, processing_power=1.0))
        with pytest.raises(InfeasibleMappingError):
            solver(simple_pipeline, simple_network, EndToEndRequest(9, 3))

    @pytest.mark.parametrize("solver", FRAMERATE_SOLVERS)
    def test_minimal_client_server_pipeline(self, solver, simple_network):
        """The smallest legal pipeline maps onto a single link without reuse."""
        from repro.model import Pipeline
        pipeline = Pipeline.client_server(data_bytes=400_000, sink_complexity=10.0)
        mapping = solver(pipeline, simple_network, EndToEndRequest(0, 1))
        assert mapping.path == [0, 1]
        assert_no_reuse(mapping.path)
        expected = bottleneck_time_ms(pipeline, simple_network, [[0], [1]], [0, 1])
        assert mapping.bottleneck_ms == pytest.approx(expected)

    @pytest.mark.parametrize("solver", FRAMERATE_SOLVERS)
    def test_minimal_pipeline_same_endpoint_infeasible(self, solver, simple_network):
        """Without reuse a 2-module pipeline cannot start and end on one node."""
        from repro.model import Pipeline
        pipeline = Pipeline.client_server(data_bytes=400_000, sink_complexity=10.0)
        with pytest.raises(InfeasibleMappingError):
            solver(pipeline, simple_network, EndToEndRequest(2, 2))

    def test_vectorized_survives_network_mutation(self, simple_pipeline,
                                                  simple_network, simple_request):
        """The dense view cache is invalidated when the topology changes."""
        elpc_max_frame_rate_vec(simple_pipeline, simple_network, simple_request)
        simple_network.connect(1, 3, bandwidth_mbps=1000.0, min_delay_ms=0.01)
        after = elpc_max_frame_rate_vec(simple_pipeline, simple_network,
                                        simple_request)
        reference = elpc_max_frame_rate(simple_pipeline, simple_network,
                                        simple_request)
        assert after.bottleneck_ms == pytest.approx(reference.bottleneck_ms,
                                                    rel=1e-12)
