"""Tests for FIFO stations, the trace collector and the pipeline replay process."""

import pytest

from repro.core import Objective, mapping_from_assignment
from repro.exceptions import SimulationError
from repro.simulation import FifoStation, MappedPipelineProcess, SimulationEngine, Trace


class TestTrace:
    def test_record_and_query(self):
        trace = Trace()
        trace.record(0, "node:1", "compute", 0.0, 10.0)
        trace.record(0, "link:1-2", "transfer", 10.0, 15.0)
        trace.record(1, "node:1", "compute", 10.0, 20.0)
        assert len(trace) == 3
        assert trace.frames() == [0, 1]
        assert trace.stations() == ["link:1-2", "node:1"]
        assert trace.frame_completion_ms(0) == 15.0
        assert trace.frame_latency_ms(0) == 15.0
        assert trace.station_busy_ms("node:1") == 20.0
        assert trace.busiest_station() == ("node:1", 20.0)
        assert trace.makespan_ms() == 20.0
        assert 0.0 < trace.utilisation("link:1-2") < 1.0

    def test_invalid_record_rejected(self):
        with pytest.raises(SimulationError):
            Trace().record(0, "x", "compute", 5.0, 1.0)

    def test_unknown_frame_raises(self):
        with pytest.raises(SimulationError):
            Trace().frame_completion_ms(3)

    def test_empty_trace_busiest_raises(self):
        with pytest.raises(SimulationError):
            Trace().busiest_station()

    def test_summary_fields(self):
        trace = Trace()
        trace.record(0, "node:1", "compute", 0.0, 4.0)
        summary = trace.summary()
        assert summary["frames"] == 1.0
        assert summary["mean_latency_ms"] == pytest.approx(4.0)


class TestFifoStation:
    def test_fifo_serialisation(self):
        engine = SimulationEngine()
        station = FifoStation(engine, "node:0", "compute")
        completions = []
        station.submit(0, 10.0, lambda fid, t: completions.append((fid, t)))
        station.submit(1, 5.0, lambda fid, t: completions.append((fid, t)))
        engine.run()
        assert completions == [(0, 10.0), (1, 15.0)]
        assert station.busy_ms == pytest.approx(15.0)
        assert station.completed == 2

    def test_negative_service_rejected(self):
        engine = SimulationEngine()
        station = FifoStation(engine, "node:0", "compute")
        with pytest.raises(SimulationError):
            station.submit(0, -1.0, lambda fid, t: None)

    def test_unknown_kind_rejected(self):
        with pytest.raises(SimulationError):
            FifoStation(SimulationEngine(), "x", "teleport")

    def test_trace_recording(self):
        engine = SimulationEngine()
        trace = Trace()
        station = FifoStation(engine, "node:0", "compute", trace)
        station.submit(0, 3.0, lambda fid, t: None)
        engine.run()
        assert len(trace) == 1
        assert trace.records()[0].duration_ms == pytest.approx(3.0)


class TestMappedPipelineProcess:
    def make_process(self, pipeline, network, assignment, engine=None, trace=None):
        mapping = mapping_from_assignment(pipeline, network, assignment,
                                          objective=Objective.MIN_DELAY)
        engine = engine or SimulationEngine()
        process = MappedPipelineProcess(engine, mapping, trace=trace)
        return engine, process, mapping

    def test_stations_shared_per_node(self, simple_pipeline, simple_network):
        # walk 0 -> 1 -> 0 -> 2 revisits node 0: its compute station must be shared
        engine, process, _m = self.make_process(simple_pipeline, simple_network,
                                                [0, 1, 0, 2])
        labels = [s.label for s in process.stations()]
        assert labels.count("node:0") == 1
        assert any(l.startswith("link:") for l in labels)

    def test_release_validation(self, simple_pipeline, simple_network):
        engine, process, _m = self.make_process(simple_pipeline, simple_network,
                                                [0, 0, 1, 2])
        with pytest.raises(SimulationError):
            process.release_frames(0)
        with pytest.raises(SimulationError):
            process.release_frames(2, interval_ms=-1.0)

    def test_frame_completion_and_latency(self, simple_pipeline, simple_network):
        engine, process, mapping = self.make_process(simple_pipeline, simple_network,
                                                     [0, 0, 1, 2])
        process.release_frames(1)
        engine.run()
        assert process.completion_ms[0] == pytest.approx(mapping.delay_ms)
        assert process.frame_latency_ms(0) == pytest.approx(mapping.delay_ms)
        with pytest.raises(SimulationError):
            process.frame_latency_ms(5)

    def test_on_frame_done_callback(self, simple_pipeline, simple_network):
        engine, process, _m = self.make_process(simple_pipeline, simple_network,
                                                [0, 0, 1, 2])
        done = []
        process.release_frames(3, interval_ms=0.0,
                               on_frame_done=lambda fid, t: done.append(fid))
        engine.run()
        assert done == [0, 1, 2]
