"""Unit tests for the ELPC dynamic-programming table (:mod:`repro.core.dp_table`)."""

import math

import pytest

from repro.core import DPTable
from repro.core.dp_table import DPCell
from repro.exceptions import AlgorithmError


class TestConstruction:
    def test_all_cells_start_unreachable(self):
        table = DPTable(n_modules=4, node_ids=[0, 1, 2])
        for j in range(4):
            for v in (0, 1, 2):
                assert not table.is_reachable(j, v)
                assert math.isinf(table.value(j, v))
        assert table.finite_cell_count() == 0

    def test_invalid_sizes_rejected(self):
        with pytest.raises(AlgorithmError):
            DPTable(n_modules=1, node_ids=[0])
        with pytest.raises(AlgorithmError):
            DPTable(n_modules=3, node_ids=[])

    def test_unknown_node_rejected(self):
        table = DPTable(n_modules=3, node_ids=[0, 1])
        with pytest.raises(AlgorithmError):
            table.value(0, 7)


class TestRelaxation:
    def test_set_and_get(self):
        table = DPTable(n_modules=3, node_ids=[0, 1])
        table.set(0, 0, 0.0)
        assert table.value(0, 0) == 0.0
        assert table.is_reachable(0, 0)

    def test_relax_only_improves(self):
        table = DPTable(n_modules=3, node_ids=[0, 1])
        assert table.relax(1, 0, 10.0, predecessor=0)
        assert not table.relax(1, 0, 12.0, predecessor=1)
        assert table.relax(1, 0, 8.0, predecessor=1)
        assert table.value(1, 0) == 8.0
        assert table.cell(1, 0).predecessor == 1
        assert table.relaxations == 3

    def test_cell_contents(self):
        table = DPTable(n_modules=3, node_ids=[0, 1])
        table.relax(2, 1, 5.0, predecessor=0, same_node=False)
        cell = table.cell(2, 1)
        assert isinstance(cell, DPCell)
        assert cell.value == 5.0
        assert cell.predecessor == 0
        assert not cell.same_node

    def test_column_and_reachable_nodes(self):
        table = DPTable(n_modules=3, node_ids=[0, 1, 2])
        table.set(1, 0, 3.0)
        table.set(1, 2, 7.0)
        assert table.column(1) == {0: 3.0, 2: 7.0}
        assert table.reachable_nodes(1) == [0, 2]


class TestBacktracking:
    def build_chain(self) -> DPTable:
        """Table for 3 modules on nodes 0-1-2: module 0 on 0, 1 on 1, 2 on 2."""
        table = DPTable(n_modules=3, node_ids=[0, 1, 2])
        table.set(0, 0, 0.0)
        table.relax(1, 1, 4.0, predecessor=0, same_node=False)
        table.relax(2, 2, 9.0, predecessor=1, same_node=False)
        return table

    def test_backtrack_assignment(self):
        table = self.build_chain()
        assert table.backtrack_assignment(2) == [0, 1, 2]

    def test_backtrack_with_same_node_transition(self):
        table = DPTable(n_modules=3, node_ids=[0, 1])
        table.set(0, 0, 0.0)
        table.relax(1, 0, 2.0, predecessor=0, same_node=True)
        table.relax(2, 1, 6.0, predecessor=0, same_node=False)
        assert table.backtrack_assignment(1) == [0, 0, 1]
        assert table.backtrack_path(1) == [0, 1]

    def test_backtrack_from_unreachable_cell(self):
        table = self.build_chain()
        with pytest.raises(AlgorithmError):
            table.backtrack_assignment(0)  # module 2 never reached node 0

    def test_backtrack_partial_column(self):
        table = self.build_chain()
        assert table.backtrack_assignment(1, module_index=1) == [0, 1]


class TestExportAndRender:
    def test_to_array_shape(self):
        table = DPTable(n_modules=4, node_ids=[0, 1, 2])
        arr = table.to_array()
        assert arr.shape == (3, 4)

    def test_render_contains_values_and_inf(self):
        table = DPTable(n_modules=3, node_ids=[0, 1])
        table.set(0, 0, 0.0)
        table.set(1, 1, 42.5)
        text = table.render()
        assert "42.50" in text
        assert "inf" in text
        assert "M0" in text and "v1" in text

    def test_render_truncates_large_tables(self):
        table = DPTable(n_modules=30, node_ids=list(range(40)))
        text = table.render(max_nodes=5, max_modules=4)
        assert "total" in text
