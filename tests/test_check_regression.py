"""Tests for the CI perf-regression gate (``benchmarks/check_regression.py``).

The script is not part of the installed package (it lives next to the
benchmarks and is invoked by the CI ``bench`` job), so it is loaded from its
file path and exercised through its ``main`` entry point with temp files —
exactly how CI drives it.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).resolve().parent.parent / "benchmarks" / "check_regression.py"
_spec = importlib.util.spec_from_file_location("check_regression", _SCRIPT)
check_regression = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_regression)


def _pytest_benchmark_payload(means):
    return {
        "benchmarks": [
            {
                "fullname": f"benchmarks/test_x.py::{name}",
                "name": name,
                "stats": {"mean": mean, "stddev": mean / 10, "rounds": 5},
                "extra_info": {"speedups": [6.0, 6.2], "note": "text ignored"},
            }
            for name, mean in means.items()
        ]
    }


def _write(tmp_path, name, payload):
    path = tmp_path / name
    path.write_text(json.dumps(payload), encoding="utf-8")
    return path


class TestNormalize:
    def test_pytest_benchmark_payload(self):
        raw = _pytest_benchmark_payload({"test_a": 0.5})
        normalized = check_regression.normalize(raw, sha="abc123")
        assert normalized["schema"] == "repro-bench/1"
        assert normalized["sha"] == "abc123"
        metric = normalized["metrics"]["benchmarks/test_x.py::test_a"]
        assert metric["mean_s"] == 0.5
        assert metric["rounds"] == 5
        # numeric extra_info entries are archived, non-numeric dropped
        assert "extra:note" not in metric

    def test_repro_bench_payload_passthrough(self):
        raw = {"schema": "repro-bench/1", "source": "repro-bench",
               "metrics": {"bench/solver:elpc": {"mean_s": 0.1}}}
        normalized = check_regression.normalize(raw, sha="s")
        assert normalized["metrics"] == raw["metrics"]
        assert normalized["sha"] == "s"


class TestGate:
    def test_within_threshold_passes(self, tmp_path, capsys):
        baseline = _write(tmp_path, "base.json", check_regression.normalize(
            _pytest_benchmark_payload({"test_a": 0.100})))
        current = _write(tmp_path, "cur.json",
                         _pytest_benchmark_payload({"test_a": 0.120}))
        code = check_regression.main(["--input", str(current),
                                      "--baseline", str(baseline),
                                      "--threshold", "0.30"])
        assert code == 0
        assert "within threshold" in capsys.readouterr().out

    def test_regression_fails(self, tmp_path, capsys):
        baseline = _write(tmp_path, "base.json", check_regression.normalize(
            _pytest_benchmark_payload({"test_a": 0.100})))
        current = _write(tmp_path, "cur.json",
                         _pytest_benchmark_payload({"test_a": 0.140}))
        code = check_regression.main(["--input", str(current),
                                      "--baseline", str(baseline),
                                      "--threshold", "0.30"])
        assert code == 1
        captured = capsys.readouterr()
        assert "REGRESSION" in captured.out
        assert "regression(s) beyond 30%" in captured.err

    def test_tighter_threshold_catches_smaller_slips(self, tmp_path):
        baseline = _write(tmp_path, "base.json", check_regression.normalize(
            _pytest_benchmark_payload({"test_a": 0.100})))
        current = _write(tmp_path, "cur.json",
                         _pytest_benchmark_payload({"test_a": 0.112}))
        assert check_regression.main(["--input", str(current),
                                      "--baseline", str(baseline),
                                      "--threshold", "0.30"]) == 0
        assert check_regression.main(["--input", str(current),
                                      "--baseline", str(baseline),
                                      "--threshold", "0.10"]) == 1

    def test_new_benchmark_is_informational(self, tmp_path, capsys):
        baseline = _write(tmp_path, "base.json", check_regression.normalize(
            _pytest_benchmark_payload({"test_a": 0.100})))
        current = _write(tmp_path, "cur.json",
                         _pytest_benchmark_payload({"test_a": 0.105,
                                                    "test_new": 9.9}))
        code = check_regression.main(["--input", str(current),
                                      "--baseline", str(baseline)])
        assert code == 0
        assert "not in baseline" in capsys.readouterr().out

    def test_missing_baseline_passes_unless_required(self, tmp_path, capsys):
        current = _write(tmp_path, "cur.json",
                         _pytest_benchmark_payload({"test_a": 0.1}))
        missing = tmp_path / "nope.json"
        assert check_regression.main(["--input", str(current),
                                      "--baseline", str(missing)]) == 0
        assert check_regression.main(["--input", str(current),
                                      "--baseline", str(missing),
                                      "--require-baseline"]) == 2

    def test_output_and_write_baseline(self, tmp_path):
        current = _write(tmp_path, "cur.json",
                         _pytest_benchmark_payload({"test_a": 0.1}))
        out = tmp_path / "BENCH_deadbeef.json"
        new_base = tmp_path / "new_base.json"
        code = check_regression.main(["--input", str(current),
                                      "--output", str(out),
                                      "--sha", "deadbeef",
                                      "--write-baseline", str(new_base)])
        assert code == 0
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert payload["sha"] == "deadbeef"
        assert json.loads(new_base.read_text(encoding="utf-8"))["metrics"] \
            == payload["metrics"]

    def test_unreadable_input_exits_2(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        assert check_regression.main(["--input", str(bad)]) == 2

    def test_shared_schema_with_repro_bench_emit_json(self, tmp_path):
        """A repro-bench emit-json file can serve as baseline for itself."""
        payload = {"schema": "repro-bench/1", "source": "repro-bench",
                   "metrics": {"bench/solver:elpc": {"mean_s": 0.2}}}
        baseline = _write(tmp_path, "base.json", payload)
        current = _write(tmp_path, "cur.json", payload)
        assert check_regression.main(["--input", str(current),
                                      "--baseline", str(baseline)]) == 0


class TestCheckedInBaselineCoverage:
    """The committed development-machine baseline must cover every
    perf-critical benchmark the CI ``bench`` job runs, so a fresh runner
    baseline seeded from it gates the same metric set."""

    def test_baseline_covers_all_gated_benchmark_files(self):
        baseline_path = _SCRIPT.parent / "bench_baseline.json"
        baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
        assert baseline["schema"] == check_regression.SCHEMA
        metrics = set(baseline["metrics"])
        for prefix in ("benchmarks/test_bench_vectorized_speedup.py",
                       "benchmarks/test_bench_tensor_batch.py",
                       "benchmarks/test_bench_parallel_batch.py",
                       "benchmarks/test_bench_backend.py"):
            assert any(name.startswith(prefix) for name in metrics), (
                f"no baseline metric recorded for {prefix}")

    def test_baseline_includes_parallel_runtime_metrics(self):
        baseline_path = _SCRIPT.parent / "bench_baseline.json"
        metrics = json.loads(baseline_path.read_text(encoding="utf-8"))["metrics"]
        parallel = ("benchmarks/test_bench_parallel_batch.py::"
                    "test_parallel_batch_solve")
        sequential = ("benchmarks/test_bench_parallel_batch.py::"
                      "test_sequential_reference_baseline")
        for name in (parallel, sequential):
            assert name in metrics
            assert metrics[name]["mean_s"] > 0
