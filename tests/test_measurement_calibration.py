"""Tests for the end-to-end calibration campaign."""

import pytest

from repro.core import elpc_min_delay
from repro.exceptions import MeasurementError
from repro.generators import random_network, random_pipeline, random_request
from repro.measurement import calibrate_network
from repro.model import end_to_end_delay_ms


@pytest.fixture(scope="module")
def true_network():
    return random_network(10, 22, seed=90, name="truth")


class TestCalibrationReport:
    def test_structure_preserved(self, true_network):
        report = calibrate_network(true_network, noise_fraction=0.02, seed=1)
        est = report.estimated_network
        assert est.n_nodes == true_network.n_nodes
        assert est.n_links == true_network.n_links
        assert est.node_ids() == true_network.node_ids()
        for link in true_network.links():
            assert est.has_link(link.start_node, link.end_node)

    def test_error_statistics_bounded(self, true_network):
        report = calibrate_network(true_network, noise_fraction=0.03,
                                   repetitions=5, seed=2)
        assert 0.0 <= report.mean_bandwidth_error < 0.15
        assert 0.0 <= report.mean_power_error < 0.15
        assert report.max_bandwidth_error >= report.mean_bandwidth_error
        assert report.max_power_error >= report.mean_power_error
        assert len(report.bandwidth_errors) == true_network.n_links
        assert len(report.power_errors) == true_network.n_nodes

    def test_noiseless_calibration_is_exact(self, true_network):
        report = calibrate_network(true_network, noise_fraction=0.0, seed=3)
        assert report.max_bandwidth_error < 1e-9
        assert report.max_power_error < 1e-9

    def test_more_noise_means_more_error(self, true_network):
        low = calibrate_network(true_network, noise_fraction=0.01, seed=4)
        high = calibrate_network(true_network, noise_fraction=0.25, seed=4)
        assert high.mean_bandwidth_error > low.mean_bandwidth_error

    def test_negative_noise_rejected(self, true_network):
        with pytest.raises(MeasurementError):
            calibrate_network(true_network, noise_fraction=-0.1)


class TestCalibratedMappingQuality:
    def test_mapping_from_estimates_close_to_true_optimum(self, true_network):
        """A mapping chosen from mildly noisy estimates should cost at most a
        few percent more than the true optimum when evaluated on the truth."""
        pipeline = random_pipeline(6, seed=91)
        request = random_request(true_network, seed=91, min_hop_distance=2)
        truth_mapping = elpc_min_delay(pipeline, true_network, request)

        report = calibrate_network(true_network, noise_fraction=0.03, seed=5)
        est_mapping = elpc_min_delay(pipeline, report.estimated_network, request)
        realised = end_to_end_delay_ms(pipeline, true_network,
                                       est_mapping.groups, est_mapping.path)
        assert realised >= truth_mapping.delay_ms - 1e-9
        assert realised <= truth_mapping.delay_ms * 1.25
