"""Unit tests for :mod:`repro.core.mapping` (PipelineMapping and helpers)."""

import pytest

from repro.core import Objective, PipelineMapping, mapping_from_assignment
from repro.exceptions import SpecificationError
from repro.model import bottleneck_time_ms, end_to_end_delay_ms, frame_rate_fps


class TestMappingFromAssignment:
    def test_groups_merge_consecutive_same_node(self, simple_pipeline, simple_network):
        mapping = mapping_from_assignment(simple_pipeline, simple_network,
                                          [0, 0, 1, 2], objective=Objective.MIN_DELAY)
        assert mapping.groups == [[0, 1], [2], [3]]
        assert mapping.path == [0, 1, 2]

    def test_assignment_length_checked(self, simple_pipeline, simple_network):
        with pytest.raises(SpecificationError):
            mapping_from_assignment(simple_pipeline, simple_network, [0, 1],
                                    objective=Objective.MIN_DELAY)

    def test_non_adjacent_assignment_rejected(self, simple_pipeline, simple_network):
        with pytest.raises(SpecificationError):
            mapping_from_assignment(simple_pipeline, simple_network, [0, 3, 3, 3],
                                    objective=Objective.MIN_DELAY)

    def test_no_reuse_flag_enforced(self, simple_pipeline, simple_network):
        # path 0 -> 1 -> 0 reuses node 0
        with pytest.raises(SpecificationError):
            mapping_from_assignment(simple_pipeline, simple_network, [0, 1, 0, 2],
                                    objective=Objective.MAX_FRAME_RATE,
                                    allow_reuse=False)

    def test_reuse_allowed_for_delay(self, simple_pipeline, simple_network):
        mapping = mapping_from_assignment(simple_pipeline, simple_network, [0, 1, 0, 2],
                                          objective=Objective.MIN_DELAY)
        assert mapping.uses_node_reuse
        assert mapping.path == [0, 1, 0, 2]


class TestObjectiveValues:
    def test_delay_matches_cost_model(self, simple_pipeline, simple_network):
        mapping = mapping_from_assignment(simple_pipeline, simple_network, [0, 0, 1, 2],
                                          objective=Objective.MIN_DELAY)
        expected = end_to_end_delay_ms(simple_pipeline, simple_network,
                                       mapping.groups, mapping.path)
        assert mapping.delay_ms == pytest.approx(expected)
        assert mapping.objective_value == pytest.approx(expected)

    def test_frame_rate_matches_cost_model(self, simple_pipeline, simple_network):
        mapping = mapping_from_assignment(simple_pipeline, simple_network, [0, 1, 2, 3],
                                          objective=Objective.MAX_FRAME_RATE,
                                          allow_reuse=False)
        assert mapping.bottleneck_ms == pytest.approx(
            bottleneck_time_ms(simple_pipeline, simple_network, mapping.groups, mapping.path))
        assert mapping.frame_rate_fps == pytest.approx(
            frame_rate_fps(simple_pipeline, simple_network, mapping.groups, mapping.path))
        assert mapping.objective_value == pytest.approx(mapping.frame_rate_fps)

    def test_breakdown_consistent(self, simple_pipeline, simple_network):
        mapping = mapping_from_assignment(simple_pipeline, simple_network, [0, 1, 2, 3],
                                          objective=Objective.MIN_DELAY)
        bd = mapping.breakdown()
        assert bd.total_delay_ms == pytest.approx(mapping.delay_ms)


class TestStructureQueries:
    def test_node_of_module_and_assignment(self, simple_pipeline, simple_network):
        mapping = mapping_from_assignment(simple_pipeline, simple_network, [0, 0, 1, 2],
                                          objective=Objective.MIN_DELAY)
        assert mapping.node_of_module(0) == 0
        assert mapping.node_of_module(2) == 1
        assert mapping.assignment() == [0, 0, 1, 2]
        with pytest.raises(SpecificationError):
            mapping.node_of_module(17)

    def test_modules_on_node(self, simple_pipeline, simple_network):
        mapping = mapping_from_assignment(simple_pipeline, simple_network, [0, 1, 0, 2],
                                          objective=Objective.MIN_DELAY)
        assert mapping.modules_on_node(0) == [0, 2]
        assert mapping.modules_on_node(1) == [1]
        assert mapping.modules_on_node(3) == []

    def test_request_endpoints(self, simple_pipeline, simple_network):
        mapping = mapping_from_assignment(simple_pipeline, simple_network, [0, 0, 1, 2],
                                          objective=Objective.MIN_DELAY)
        request = mapping.request()
        assert request.source == 0
        assert request.destination == 2

    def test_n_groups(self, simple_pipeline, simple_network):
        mapping = mapping_from_assignment(simple_pipeline, simple_network, [0, 0, 0, 0],
                                          objective=Objective.MIN_DELAY)
        assert mapping.n_groups == 1
        assert not mapping.uses_node_reuse  # single visit is not "reuse"


class TestPresentation:
    def test_to_dict_fields(self, simple_pipeline, simple_network):
        mapping = mapping_from_assignment(simple_pipeline, simple_network, [0, 0, 1, 2],
                                          objective=Objective.MIN_DELAY,
                                          algorithm="unit")
        data = mapping.to_dict()
        assert data["algorithm"] == "unit"
        assert data["objective"] == "min_delay"
        assert data["path"] == [0, 1, 2]
        assert data["delay_ms"] == pytest.approx(mapping.delay_ms)

    def test_describe_mentions_every_path_node(self, simple_pipeline, simple_network):
        mapping = mapping_from_assignment(simple_pipeline, simple_network, [0, 0, 1, 2],
                                          objective=Objective.MIN_DELAY)
        text = mapping.describe()
        for node in mapping.path:
            assert f"node {node}" in text
        assert "bottleneck" in text

    def test_direct_constructor_validates(self, simple_pipeline, simple_network):
        with pytest.raises(SpecificationError):
            PipelineMapping(pipeline=simple_pipeline, network=simple_network,
                            groups=[[0, 1], [2, 3]], path=[0, 3],
                            objective=Objective.MIN_DELAY)
