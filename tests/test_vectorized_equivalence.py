"""Differential tests: the vectorized ELPC engine against the scalar reference.

The vectorized solvers (:mod:`repro.core.vectorized`) promise to be *drop-in*
replacements for the scalar dynamic programs: identical objective values,
identical feasibility behaviour, and — because they replicate the scalar
floating-point operation order and tie-breaking — identical DP tables bit for
bit.  This suite locks that promise in three ways:

* a fixed-seed sweep of 200 random instances (100 per objective) asserting
  exact value and feasibility agreement,
* hypothesis property tests drawing instance shapes (pipeline length, node
  count, link density, seeds) from strategies, and
* agreement with the exhaustive oracles on small instances (the vectorized
  min-delay DP must be exact, and the vectorized frame-rate heuristic must
  never beat the true optimum).
"""

from __future__ import annotations

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    elpc_max_frame_rate,
    elpc_max_frame_rate_vec,
    elpc_min_delay,
    elpc_min_delay_vec,
    exhaustive_max_frame_rate,
    exhaustive_min_delay,
)
from repro.exceptions import InfeasibleMappingError
from repro.generators import (
    max_links,
    min_links_for_connectivity,
    random_network,
    random_pipeline,
    random_request,
)
from repro.model import assert_no_reuse

#: Outcome marker for infeasible solves, comparable across solvers.
INFEASIBLE = object()


def _objective_or_infeasible(solver, pipeline, network, request, **kwargs):
    try:
        mapping = solver(pipeline, network, request, **kwargs)
    except InfeasibleMappingError:
        return INFEASIBLE, None
    key = ("dp_value_ms" if "dp_value_ms" in mapping.extras else "dp_bottleneck_ms")
    return mapping.extras[key], mapping


def _make_instance(seed: int, n_modules: int, k_nodes: int, extra_links: int):
    """One deterministic random instance from shape parameters."""
    lo, hi = min_links_for_connectivity(k_nodes), max_links(k_nodes)
    n_links = min(lo + extra_links, hi)
    pipeline = random_pipeline(n_modules, seed=seed)
    network = random_network(k_nodes, n_links, seed=seed + 1)
    request = random_request(network, seed=seed + 2, min_hop_distance=1)
    return pipeline, network, request


def _assert_agreement(scalar_solver, vec_solver, pipeline, network, request,
                      **kwargs):
    """Core differential assertion: same feasibility, same objective value."""
    scalar_value, scalar_mapping = _objective_or_infeasible(
        scalar_solver, pipeline, network, request, **kwargs)
    vec_value, vec_mapping = _objective_or_infeasible(
        vec_solver, pipeline, network, request, **kwargs)
    if scalar_value is INFEASIBLE or vec_value is INFEASIBLE:
        assert scalar_value is vec_value, (
            f"feasibility disagreement: scalar={scalar_value!r} vec={vec_value!r}")
        return None, None
    assert vec_value == pytest.approx(scalar_value, rel=1e-12, abs=1e-12), (
        f"objective disagreement: scalar={scalar_value!r} vec={vec_value!r}")
    return scalar_mapping, vec_mapping


# --------------------------------------------------------------------------- #
# Fixed-seed sweep: 200 generated instances with exact agreement
# --------------------------------------------------------------------------- #
class TestFixedSeedSweep:
    @pytest.mark.parametrize("seed", range(100))
    def test_min_delay_agreement(self, seed):
        pipeline, network, request = _make_instance(
            seed=seed * 37, n_modules=3 + seed % 6, k_nodes=5 + seed % 9,
            extra_links=seed % 12)
        scalar, vec = _assert_agreement(
            elpc_min_delay, elpc_min_delay_vec, pipeline, network, request)
        if vec is not None:
            # The engines also agree on the realised mapping cost, not just
            # the DP cell value.
            assert vec.delay_ms == pytest.approx(scalar.delay_ms, rel=1e-12)
            assert vec.path[0] == request.source
            assert vec.path[-1] == request.destination

    @pytest.mark.parametrize("seed", range(100))
    def test_max_frame_rate_agreement(self, seed):
        pipeline, network, request = _make_instance(
            seed=seed * 53 + 1, n_modules=3 + seed % 4, k_nodes=6 + seed % 8,
            extra_links=seed % 14)
        scalar, vec = _assert_agreement(
            elpc_max_frame_rate, elpc_max_frame_rate_vec,
            pipeline, network, request)
        if vec is not None:
            assert vec.frame_rate_fps == pytest.approx(scalar.frame_rate_fps,
                                                       rel=1e-12)
            assert_no_reuse(vec.path)
            assert len(vec.path) == pipeline.n_modules


# --------------------------------------------------------------------------- #
# Hypothesis property tests over instance shapes
# --------------------------------------------------------------------------- #
@st.composite
def instance_shapes(draw):
    seed = draw(st.integers(min_value=0, max_value=10**6))
    n_modules = draw(st.integers(min_value=2, max_value=8))
    k_nodes = draw(st.integers(min_value=2, max_value=14))
    extra_links = draw(st.integers(min_value=0, max_value=20))
    return seed, n_modules, k_nodes, extra_links


class TestHypothesisEquivalence:
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(shape=instance_shapes())
    def test_min_delay_property(self, shape):
        seed, n_modules, k_nodes, extra_links = shape
        pipeline, network, request = _make_instance(
            seed, n_modules, k_nodes, extra_links)
        _assert_agreement(elpc_min_delay, elpc_min_delay_vec,
                          pipeline, network, request)

    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(shape=instance_shapes())
    def test_max_frame_rate_property(self, shape):
        seed, n_modules, k_nodes, extra_links = shape
        pipeline, network, request = _make_instance(
            seed, n_modules, k_nodes, extra_links)
        _assert_agreement(elpc_max_frame_rate, elpc_max_frame_rate_vec,
                          pipeline, network, request)

    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(shape=instance_shapes())
    def test_min_delay_property_without_link_delay(self, shape):
        """Agreement must also hold for the literal Eq. 1 cost model."""
        seed, n_modules, k_nodes, extra_links = shape
        pipeline, network, request = _make_instance(
            seed, n_modules, k_nodes, extra_links)
        _assert_agreement(elpc_min_delay, elpc_min_delay_vec,
                          pipeline, network, request, include_link_delay=False)

    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(shape=instance_shapes())
    def test_max_frame_rate_property_without_link_delay(self, shape):
        seed, n_modules, k_nodes, extra_links = shape
        pipeline, network, request = _make_instance(
            seed, n_modules, k_nodes, extra_links)
        _assert_agreement(elpc_max_frame_rate, elpc_max_frame_rate_vec,
                          pipeline, network, request, include_link_delay=False)


# --------------------------------------------------------------------------- #
# Agreement with the exhaustive oracles on small instances
# --------------------------------------------------------------------------- #
class TestAgainstExhaustiveOracles:
    @pytest.mark.parametrize("seed", range(8))
    def test_vec_min_delay_is_exact(self, seed):
        pipeline = random_pipeline(5, seed=seed)
        network = random_network(7, 13, seed=seed)
        request = random_request(network, seed=seed, min_hop_distance=1)
        vec = elpc_min_delay_vec(pipeline, network, request)
        brute = exhaustive_min_delay(pipeline, network, request)
        assert vec.delay_ms == pytest.approx(brute.delay_ms, rel=1e-9)

    @pytest.mark.parametrize("seed", range(8))
    def test_vec_frame_rate_never_beats_exhaustive(self, seed):
        pipeline = random_pipeline(4, seed=seed)
        network = random_network(7, 14, seed=seed + 500)
        request = random_request(network, seed=seed, min_hop_distance=2)
        try:
            exact = exhaustive_max_frame_rate(pipeline, network, request)
        except InfeasibleMappingError:
            pytest.skip("instance genuinely infeasible")
        try:
            vec = elpc_max_frame_rate_vec(pipeline, network, request)
        except InfeasibleMappingError:
            pytest.skip("heuristic miss (must match the scalar, checked elsewhere)")
        assert vec.frame_rate_fps <= exact.frame_rate_fps + 1e-9
        assert_no_reuse(vec.path)

    def test_vec_and_scalar_heuristics_miss_identically(self):
        """When the heuristic misses a feasible instance, both engines miss."""
        scalar_outcomes, vec_outcomes = [], []
        for seed in range(40):
            pipeline, network, request = _make_instance(
                seed * 11 + 3, n_modules=4 + seed % 3, k_nodes=6 + seed % 5,
                extra_links=seed % 6)
            s_value, _ = _objective_or_infeasible(
                elpc_max_frame_rate, pipeline, network, request)
            v_value, _ = _objective_or_infeasible(
                elpc_max_frame_rate_vec, pipeline, network, request)
            scalar_outcomes.append(s_value is INFEASIBLE)
            vec_outcomes.append(v_value is INFEASIBLE)
        assert scalar_outcomes == vec_outcomes


# --------------------------------------------------------------------------- #
# DP-table parity (keep_table) — the tables themselves agree cell by cell
# --------------------------------------------------------------------------- #
class TestTableParity:
    @pytest.mark.parametrize("seed", [0, 3, 9])
    def test_min_delay_tables_match(self, seed):
        pipeline, network, request = _make_instance(seed * 7, 5, 8, 6)
        scalar = elpc_min_delay(pipeline, network, request, keep_table=True)
        vec = elpc_min_delay_vec(pipeline, network, request, keep_table=True)
        s_table, v_table = scalar.extras["dp_table"], vec.extras["dp_table"]
        assert s_table.node_ids == v_table.node_ids
        for j in range(pipeline.n_modules):
            for nid in s_table.node_ids:
                s_val, v_val = s_table.value(j, nid), v_table.value(j, nid)
                if math.isinf(s_val):
                    assert math.isinf(v_val), (j, nid)
                else:
                    assert v_val == pytest.approx(s_val, rel=1e-12), (j, nid)
