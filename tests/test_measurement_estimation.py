"""Tests for probe generation and bandwidth / complexity / power estimation."""

import pytest

from repro.exceptions import MeasurementError
from repro.measurement import (
    ProbeObservation,
    bandwidth_mbps_to_slope,
    default_probe_sizes,
    estimate_complexity,
    estimate_link,
    estimate_node_power,
    probe_link,
    probe_module_on_node,
    slope_to_bandwidth_mbps,
)


class TestProbeGeneration:
    def test_default_sizes_geometric_and_increasing(self):
        sizes = default_probe_sizes(n_sizes=6)
        assert len(sizes) == 6
        assert sizes == sorted(sizes)
        assert sizes[0] < sizes[-1]

    def test_default_sizes_validation(self):
        with pytest.raises(MeasurementError):
            default_probe_sizes(n_sizes=1)
        with pytest.raises(MeasurementError):
            default_probe_sizes(smallest_bytes=100.0, largest_bytes=10.0)

    def test_probe_link_noiseless_matches_model(self):
        obs = probe_link(100.0, 2.0, noise_fraction=0.0, repetitions=1, seed=0)
        from repro.model import transfer_time_ms
        for o in obs:
            assert o.time_ms == pytest.approx(transfer_time_ms(o.size_bytes, 100.0, 2.0))

    def test_probe_link_reproducible(self):
        a = probe_link(50.0, 1.0, seed=3)
        b = probe_link(50.0, 1.0, seed=3)
        assert [(o.size_bytes, o.time_ms) for o in a] == \
            [(o.size_bytes, o.time_ms) for o in b]

    def test_probe_validation(self):
        with pytest.raises(MeasurementError):
            probe_link(10.0, 1.0, repetitions=0)
        with pytest.raises(MeasurementError):
            probe_module_on_node(10.0, 0.0)
        with pytest.raises(MeasurementError):
            ProbeObservation(size_bytes=-1.0, time_ms=1.0)


class TestSlopeConversions:
    def test_roundtrip(self):
        slope = bandwidth_mbps_to_slope(80.0)
        assert slope_to_bandwidth_mbps(slope) == pytest.approx(80.0)

    def test_known_value(self):
        # 1 Mbit/s moves 125 bytes per ms -> slope = 1/125 ms per byte = 0.008
        assert bandwidth_mbps_to_slope(1.0) == pytest.approx(0.008)

    def test_invalid(self):
        with pytest.raises(MeasurementError):
            slope_to_bandwidth_mbps(0.0)
        with pytest.raises(MeasurementError):
            bandwidth_mbps_to_slope(-3.0)


class TestLinkEstimation:
    def test_noiseless_recovery_exact(self):
        obs = probe_link(200.0, 3.0, noise_fraction=0.0, repetitions=2, seed=1)
        est = estimate_link(obs)
        assert est.bandwidth_mbps == pytest.approx(200.0, rel=1e-9)
        assert est.min_delay_ms == pytest.approx(3.0, rel=1e-6)
        assert est.fit.r_squared == pytest.approx(1.0)

    def test_noisy_recovery_close(self):
        obs = probe_link(120.0, 1.5, noise_fraction=0.05, repetitions=5, seed=2)
        est = estimate_link(obs)
        assert est.relative_bandwidth_error(120.0) < 0.15
        assert est.min_delay_ms >= 0.0

    def test_robust_option(self):
        obs = probe_link(80.0, 2.0, noise_fraction=0.02, repetitions=4, seed=3)
        est = estimate_link(obs, robust=True)
        assert est.bandwidth_mbps == pytest.approx(80.0, rel=0.1)

    def test_too_few_observations(self):
        with pytest.raises(MeasurementError):
            estimate_link([ProbeObservation(1000.0, 1.0)])


class TestComplexityAndPowerEstimation:
    def test_complexity_recovery(self):
        obs = probe_module_on_node(true_complexity=40.0, true_power=200.0,
                                   noise_fraction=0.0, seed=4)
        est = estimate_complexity(obs, node_power=200.0)
        assert est.complexity == pytest.approx(40.0, rel=1e-9)
        assert est.overhead_ms == pytest.approx(0.0, abs=1e-9)

    def test_complexity_with_overhead(self):
        obs = probe_module_on_node(true_complexity=40.0, true_power=200.0,
                                   overhead_ms=5.0, noise_fraction=0.0, seed=4)
        est = estimate_complexity(obs, node_power=200.0)
        assert est.complexity == pytest.approx(40.0, rel=1e-9)
        assert est.overhead_ms == pytest.approx(5.0, rel=1e-6)

    def test_complexity_relative_error_helper(self):
        obs = probe_module_on_node(30.0, 100.0, noise_fraction=0.02, seed=5)
        est = estimate_complexity(obs, node_power=100.0)
        assert est.relative_error(30.0) < 0.15

    def test_complexity_validation(self):
        obs = probe_module_on_node(30.0, 100.0, seed=5)
        with pytest.raises(MeasurementError):
            estimate_complexity(obs, node_power=0.0)

    def test_power_recovery(self):
        obs = probe_module_on_node(true_complexity=50.0, true_power=333.0,
                                   noise_fraction=0.0, seed=6)
        est = estimate_node_power(obs, module_complexity=50.0)
        assert est.processing_power == pytest.approx(333.0, rel=1e-9)
        assert est.dispersion == pytest.approx(0.0, abs=1e-9)

    def test_power_noisy_recovery(self):
        obs = probe_module_on_node(true_complexity=50.0, true_power=150.0,
                                   noise_fraction=0.08, repetitions=6, seed=7)
        est = estimate_node_power(obs, module_complexity=50.0)
        assert est.relative_error(150.0) < 0.15
        assert est.dispersion > 0.0

    def test_power_validation(self):
        with pytest.raises(MeasurementError):
            estimate_node_power([], module_complexity=10.0)
        with pytest.raises(MeasurementError):
            estimate_node_power([ProbeObservation(10.0, 1.0)], module_complexity=0.0)
