"""Replicated admission control against the shared fleet ledger.

The PR's acceptance surface: with ``--replicas N --admission-control`` every
replica charges ONE shared capacity ledger, so an oversubscribed 2-replica
fleet admits exactly the same multiset of request priorities as a 1-replica
fleet — and as direct :func:`repro.place_many` over the same budgets (the
differential test).  Also the crash-release protocol: SIGKILL a replica
holding reservations and its journalled holdings are refunded by the
supervisor's reap, after which a previously-rejected request is admitted by
a surviving replica.

The workload is a *forced-mapping* construction: a two-node cluster (both
nodes are the request's endpoints) leaves the solver exactly one grouping,
so service-side admission (solve on the full network, then commit), greedy
packing (solve on the residual, repair, commit) and raw ledger arithmetic
all make identical decisions — any divergence is an accounting bug, not a
solver degree of freedom.  Demands are uniform and requests are posted
sequentially in descending priority order, so "the same multiset of
priorities" is exact, not probabilistic.
"""

from __future__ import annotations

import os
import signal
import time
from collections import Counter

import pytest

import repro
from repro import (
    CommunicationLink,
    ComputingModule,
    ComputingNode,
    EndToEndRequest,
    Objective,
    Pipeline,
    ProblemInstance,
    TransportNetwork,
)
from repro import place_many
from repro.placement import ClusterState, PlacementRequest
from repro.service import ServiceClient

from test_replicas import _spawn_fleet, _stop_fleet, _wait_fleet_ready

requires_fork = pytest.mark.skipif(not hasattr(os, "fork"),
                                   reason="pre-fork replicas need os.fork")

#: Distinct priorities, deliberately not sorted: the test posts in
#: descending priority order (so arrival order == priority order and the
#: sequential service path matches place_greedy's priority order), and the
#: admitted multiset must be exactly the top-K.
PRIORITIES = [7.0, 3.0, 9.0, 1.0, 5.0, 8.0, 2.0, 6.0]


def _two_node_network() -> TransportNetwork:
    return TransportNetwork(
        nodes=[ComputingNode(node_id=0, processing_power=100.0),
               ComputingNode(node_id=1, processing_power=100.0)],
        links=[CommunicationLink(start_node=0, end_node=1,
                                 bandwidth_mbps=100.0, min_delay_ms=1.0)],
        name="admission-two-node")


def _pipeline() -> Pipeline:
    return Pipeline(modules=(
        ComputingModule(module_id=0, complexity=0.0, input_bytes=0.0,
                        output_bytes=1000.0),
        ComputingModule(module_id=1, complexity=3.0, input_bytes=1000.0,
                        output_bytes=500.0),
        ComputingModule(module_id=2, complexity=2.0, input_bytes=500.0,
                        output_bytes=0.0)))


def _capacity_factor_for(admit_exactly: int) -> float:
    """The capacity factor at which exactly ``admit_exactly`` requests fit.

    Uniform demands make admission pure counting: scale the budgets so the
    binding resource holds ``admit_exactly + 0.5`` per-request demands.
    """
    network = _two_node_network()
    pipeline = _pipeline()
    mapping = repro.solve("elpc", pipeline, network,
                          EndToEndRequest(source=0, destination=1),
                          Objective.MIN_DELAY)
    probe = ClusterState.from_network(network)
    demand = probe.demand_of(mapping, demand_fps=1.0)
    ratios = [need / probe.node_capacity[probe.view.index_of[node_id]]
              for node_id, need in demand.nodes.items()]
    ratios += [need / probe.link_capacity[key]
               for key, need in demand.links.items()]
    return (admit_exactly + 0.5) * max(ratios)


def _instances(priorities=PRIORITIES):
    network = _two_node_network()
    pipeline = _pipeline()
    return network, [
        ProblemInstance(name=f"adm-{i}", pipeline=pipeline, network=network,
                        request=EndToEndRequest(source=0, destination=1))
        for i in range(len(priorities))
    ]


def _admitted_priorities_via_fleet(replicas: int, factor: float) -> Counter:
    """Post the workload to a live fleet; the admitted-priority multiset."""
    proc, port = _spawn_fleet(replicas, "--admission-control",
                              "--admission-capacity-factor", f"{factor!r}")
    try:
        # keep_alive=False: every request opens a fresh connection, so under
        # SO_REUSEPORT the kernel spreads the stream across replicas — the
        # shared ledger, not connection affinity, must serialise admission.
        with ServiceClient(port=port, keep_alive=False,
                           timeout=60.0) as client:
            if replicas > 1:
                _wait_fleet_ready(client, replicas)
            else:
                client.wait_ready(timeout=30.0)
            _network, instances = _instances()
            order = sorted(range(len(PRIORITIES)),
                           key=lambda i: -PRIORITIES[i])
            admitted: Counter = Counter()
            replicas_seen = set()
            for i in order:
                response = client.solve(instances[i],
                                        priority=PRIORITIES[i])
                assert "admission" in response, response
                replicas_seen.add(response.get("replica_id"))
                if response["admission"]["admitted"]:
                    assert response["ok"], response
                    admitted[PRIORITIES[i]] += 1
                else:
                    assert not response["ok"]
                    assert "admission rejected" in (response["error"] or "")
            status = client.healthz()
        fleet = status.get("fleet") or {}
        if replicas > 1:
            # The satellite counters: fleet healthz sums admission per-replica
            # slots, and the summed occupancy never exceeds the cluster.
            assert fleet["admitted_total"] == sum(admitted.values())
            assert fleet["rejected_total"] == \
                len(PRIORITIES) - sum(admitted.values())
            assert status["admission_store"] == "shared"
        occupancy = status["admission_occupancy"]
        for kind in ("node", "link"):
            assert 0.0 <= occupancy[f"{kind}_occupancy_fraction"] <= 1.0
    finally:
        _stop_fleet(proc)
    return admitted


@requires_fork
class TestDifferentialAdmission:
    def test_fleet_sizes_and_place_many_admit_identically(self):
        admit_exactly = 3
        factor = _capacity_factor_for(admit_exactly)

        two = _admitted_priorities_via_fleet(2, factor)
        one = _admitted_priorities_via_fleet(1, factor)

        network, instances = _instances()
        cluster = ClusterState.from_network(
            network, node_capacity_factor=factor,
            link_capacity_factor=factor)
        result = place_many(
            [PlacementRequest(instance, priority=PRIORITIES[i])
             for i, instance in enumerate(instances)],
            placer="place-greedy", cluster=cluster)
        direct = Counter(item.priority for item in result.items
                         if item.mapping is not None)

        expected = Counter(sorted(PRIORITIES, reverse=True)[:admit_exactly])
        assert two == one == direct == expected


@requires_fork
class TestCrashRelease:
    def test_sigkill_releases_holdings_and_survivor_admits(self):
        factor = _capacity_factor_for(1)  # room for exactly one admission
        proc, port = _spawn_fleet(2, "--admission-control",
                                  "--admission-capacity-factor",
                                  f"{factor!r}")
        try:
            with ServiceClient(port=port, keep_alive=False,
                               timeout=60.0) as client:
                _wait_fleet_ready(client, 2)
                _network, instances = _instances()

                hog = client.solve(instances[0], priority=9.0)
                assert hog["admission"]["admitted"], hog
                holder = int(hog["replica_id"])

                rejected = client.solve(instances[1], priority=1.0)
                assert rejected["admission"]["admitted"] is False, rejected

                status = client.healthz()
                pid = next(row["pid"] for row in status["per_replica"]
                           if row["replica_id"] == holder)
                os.kill(pid, signal.SIGKILL)

                # The reap refunds the dead replica's journalled holdings;
                # once it lands, the previously-rejected request fits.  Posts
                # before the reap keep being rejected, posts landing on the
                # dying socket are retried — poll until admission flips.
                deadline = time.monotonic() + 30.0
                admitted_after_crash = None
                while time.monotonic() < deadline:
                    try:
                        retry = client.solve(instances[1], priority=1.0)
                    except OSError:
                        time.sleep(0.1)
                        continue
                    if retry.get("admission", {}).get("admitted"):
                        admitted_after_crash = retry
                        break
                    time.sleep(0.1)
                assert admitted_after_crash is not None, \
                    "crashed replica's reservations were never released"

                status = client.healthz()
                occupancy = status["admission_occupancy"]
                assert occupancy["released_total"] >= 1
                assert 0.0 <= occupancy["node_occupancy_fraction"] <= 1.0
                assert 0.0 <= occupancy["link_occupancy_fraction"] <= 1.0
        finally:
            _stop_fleet(proc)
