"""Property-based tests: incremental views and warm-started re-solves.

Two invariants the incremental dense-view engine promises:

* **Patch ≡ rebuild** — after any sequence of scalar edits
  (``set_processing_power`` / ``set_bandwidth`` / ``set_link_delay``), the
  network's copy-on-write-patched dense view is bit-identical (``tobytes``
  equality on every array) to a from-scratch dense view of an
  identically-specified network.
* **Warm ≡ cold** — a warm-started ELPC re-solve on the edited network
  reproduces the cold solve's DP tables byte for byte and its mapping
  exactly, for both objectives, in agreement with all three engines
  (scalar, vectorized, tensor).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.core import (
    elpc_max_frame_rate,
    elpc_max_frame_rate_vec,
    elpc_min_delay,
    elpc_min_delay_vec,
)
from repro.core.tensor import elpc_max_frame_rate_many, elpc_min_delay_many
from repro.exceptions import InfeasibleMappingError
from repro.core.vectorized import _framerate_tables, _min_delay_tables
from repro.core.warm import elpc_max_frame_rate_warm, elpc_min_delay_warm
from repro.generators import random_network, random_pipeline, random_request
from repro.model import ComputingNode, TransportNetwork
from repro.model.link import CommunicationLink

# Each example chains several edit rounds and a handful of solves; a small
# example budget still explores many edit sequences.
PROFILE = settings(max_examples=10, deadline=None,
                   suppress_health_check=[HealthCheck.too_slow])

_VIEW_ARRAYS = ("power", "adjacency", "bandwidth", "link_delay",
                "bandwidth_bits_per_s", "edge_u", "edge_v", "edge_indptr",
                "edge_bandwidth_bits_per_s", "edge_link_delay")


def _apply_random_edits(network: TransportNetwork, rng: np.random.Generator,
                        n_edits: int) -> None:
    """Drive a random mix of the three scalar setters."""
    links = list(network.links())
    nodes = list(network.nodes())
    for _ in range(n_edits):
        kind = int(rng.integers(3))
        if kind == 0:
            node = nodes[int(rng.integers(len(nodes)))]
            network.set_processing_power(
                node.node_id,
                float(network.processing_power(node.node_id))
                * float(rng.uniform(0.5, 1.5)))
        elif kind == 1:
            link = links[int(rng.integers(len(links)))]
            network.set_bandwidth(
                link.start_node, link.end_node,
                float(network.bandwidth(link.start_node, link.end_node))
                * float(rng.uniform(0.5, 1.5)))
        else:
            link = links[int(rng.integers(len(links)))]
            network.set_link_delay(link.start_node, link.end_node,
                                   float(rng.uniform(0.0, 2.0)))


def _rebuilt_view(network: TransportNetwork):
    """From-scratch dense view of an identically-specified network."""
    clone = TransportNetwork(
        nodes=[ComputingNode(node_id=n.node_id,
                             processing_power=n.processing_power)
               for n in network.nodes()],
        links=[CommunicationLink(start_node=l.start_node,
                                 end_node=l.end_node,
                                 bandwidth_mbps=l.bandwidth_mbps,
                                 min_delay_ms=l.min_delay_ms)
               for l in network.links()])
    return clone.dense_view()


@st.composite
def edit_scenarios(draw):
    """A solvable instance plus a seeded multi-round edit schedule."""
    seed = draw(st.integers(min_value=0, max_value=10_000))
    n_modules = draw(st.integers(min_value=4, max_value=8))
    n_nodes = draw(st.integers(min_value=8, max_value=20))
    n_links = draw(st.integers(min_value=int(1.5 * n_nodes),
                               max_value=3 * n_nodes))
    n_rounds = draw(st.integers(min_value=1, max_value=3))
    edits_per_round = draw(st.integers(min_value=1, max_value=6))
    pipeline = random_pipeline(n_modules, seed=seed)
    network = random_network(n_nodes, n_links, seed=seed + 1)
    request = random_request(network, seed=seed + 2, min_hop_distance=1)
    assume(network.hop_distance(request.source, request.destination)
           <= n_modules - 1)
    return pipeline, network, request, seed, n_rounds, edits_per_round


class TestPatchedViewEqualsRebuild:
    @PROFILE
    @given(edit_scenarios())
    def test_patched_view_bit_identical_to_from_scratch_build(self, scenario):
        _pipeline, network, _request, seed, n_rounds, edits_per_round = scenario
        rng = np.random.default_rng(seed + 77)
        network.dense_view()  # prime the cache so edits patch copy-on-write
        for _ in range(n_rounds):
            _apply_random_edits(network, rng, edits_per_round)
            patched = network.dense_view()
            rebuilt = _rebuilt_view(network)
            assert patched.node_ids == rebuilt.node_ids
            for name in _VIEW_ARRAYS:
                a, b = getattr(patched, name), getattr(rebuilt, name)
                assert a.tobytes() == b.tobytes(), name


class TestWarmEqualsCold:
    @PROFILE
    @given(edit_scenarios())
    def test_min_delay_warm_matches_cold_everywhere(self, scenario):
        pipeline, network, request, seed, n_rounds, edits_per_round = scenario
        rng = np.random.default_rng(seed + 177)
        _mapping, state = elpc_min_delay_warm(pipeline, network, request,
                                              prior=None)
        for _ in range(n_rounds):
            _apply_random_edits(network, rng, edits_per_round)
            warm, state = elpc_min_delay_warm(pipeline, network, request,
                                              prior=state)
            view = network.dense_view()
            values, pred, same = _min_delay_tables(
                pipeline, view, view.index_of[request.source],
                include_link_delay=True)
            assert values.tobytes() == state.values.tobytes()
            assert pred.tobytes() == state.pred.tobytes()
            assert same.tobytes() == state.same.tobytes()
            colds = (elpc_min_delay(pipeline, network, request),
                     elpc_min_delay_vec(pipeline, network, request),
                     elpc_min_delay_many([pipeline], network, [request])[0])
            for cold in colds:
                assert warm.path == cold.path
                assert warm.groups == cold.groups
                assert warm.objective_value == cold.objective_value

    @PROFILE
    @given(edit_scenarios())
    def test_frame_rate_warm_matches_cold_everywhere(self, scenario):
        pipeline, network, request, seed, n_rounds, edits_per_round = scenario
        rng = np.random.default_rng(seed + 277)
        try:
            _mapping, state = elpc_max_frame_rate_warm(pipeline, network,
                                                       request, prior=None)
        except InfeasibleMappingError:
            # Frame rate needs a *simple* path with exactly n_modules nodes
            # and the instance never had one — discard the draw.
            assume(False)
        for _ in range(n_rounds):
            _apply_random_edits(network, rng, edits_per_round)
            try:
                warm, state = elpc_max_frame_rate_warm(pipeline, network,
                                                       request, prior=state)
            except InfeasibleMappingError:
                # The frame-rate DP's visited-path guard is value-dependent,
                # so capacity edits can genuinely flip the heuristic's
                # feasibility verdict — warm and cold must agree on it.
                with pytest.raises(InfeasibleMappingError):
                    elpc_max_frame_rate(pipeline, network, request)
                with pytest.raises(InfeasibleMappingError):
                    elpc_max_frame_rate_vec(pipeline, network, request)
                tensor = elpc_max_frame_rate_many([pipeline], network,
                                                  [request])[0]
                assert isinstance(tensor, InfeasibleMappingError)
                break
            view = network.dense_view()
            values, pred = _framerate_tables(
                pipeline, view, view.index_of[request.source],
                view.index_of[request.destination], include_link_delay=True)
            assert values.tobytes() == state.values.tobytes()
            assert pred.tobytes() == state.pred.tobytes()
            colds = (elpc_max_frame_rate(pipeline, network, request),
                     elpc_max_frame_rate_vec(pipeline, network, request),
                     elpc_max_frame_rate_many([pipeline], network,
                                              [request])[0])
            for cold in colds:
                assert warm.path == cold.path
                assert warm.groups == cold.groups
                assert warm.objective_value == cold.objective_value
