"""Tests for the multi-replicate statistics layer."""

import math

import pytest

from repro.analysis import (
    ReplicatedCaseResult,
    SummaryStatistics,
    replicate_case,
    summarize_improvements,
)
from repro.core import Objective
from repro.exceptions import SpecificationError
from repro.generators import PAPER_CASE_SPECS


class TestSummaryStatistics:
    def test_basic_statistics(self):
        stats = SummaryStatistics.from_values([1.0, 2.0, 3.0, 4.0])
        assert stats.n_samples == 4
        assert stats.mean == pytest.approx(2.5)
        assert stats.minimum == 1.0 and stats.maximum == 4.0
        assert stats.ci_low < stats.mean < stats.ci_high

    def test_single_sample_degenerate_interval(self):
        stats = SummaryStatistics.from_values([5.0])
        assert stats.std == 0.0
        assert stats.ci_low == stats.ci_high == 5.0

    def test_nan_values_dropped(self):
        stats = SummaryStatistics.from_values([1.0, float("nan"), 3.0])
        assert stats.n_samples == 2
        assert stats.mean == pytest.approx(2.0)

    def test_empty_rejected(self):
        with pytest.raises(SpecificationError):
            SummaryStatistics.from_values([])
        with pytest.raises(SpecificationError):
            SummaryStatistics.from_values([float("nan")])

    def test_overlap_detection(self):
        a = SummaryStatistics.from_values([1.0, 1.1, 0.9, 1.05])
        b = SummaryStatistics.from_values([1.02, 1.08, 0.95, 1.0])
        c = SummaryStatistics.from_values([10.0, 10.1, 9.9, 10.05])
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)


@pytest.fixture(scope="module")
def replicated_small_case():
    # smallest case spec, few replicates: fast but statistically meaningful
    return replicate_case(PAPER_CASE_SPECS[1], n_replicates=6,
                          objective=Objective.MIN_DELAY)


class TestReplicateCase:
    def test_shapes(self, replicated_small_case):
        result = replicated_small_case
        assert result.n_replicates == 6
        assert set(result.values) == {"elpc", "streamline", "greedy"}
        for values in result.values.values():
            assert len(values) == 6

    def test_elpc_always_feasible_and_winning(self, replicated_small_case):
        result = replicated_small_case
        assert result.feasibility_rate("elpc") == 1.0
        assert result.win_rate("elpc") == 1.0

    def test_statistics_and_improvements(self, replicated_small_case):
        result = replicated_small_case
        stats = result.statistics("elpc")
        assert stats.n_samples == 6
        assert stats.mean > 0
        improvements = result.improvement_samples("greedy")
        assert improvements
        assert all(r >= 1.0 - 1e-9 for r in improvements)

    def test_unknown_algorithm_statistics_rejected(self, replicated_small_case):
        with pytest.raises(SpecificationError):
            replicated_small_case.statistics("nope")

    def test_replicates_actually_differ(self, replicated_small_case):
        values = replicated_small_case.values["elpc"]
        assert len(set(round(v, 6) for v in values)) > 1

    def test_validation(self):
        with pytest.raises(SpecificationError):
            replicate_case(PAPER_CASE_SPECS[0], n_replicates=0)

    def test_framerate_objective(self):
        result = replicate_case(PAPER_CASE_SPECS[1], n_replicates=3,
                                objective=Objective.MAX_FRAME_RATE,
                                algorithms=("elpc", "greedy"))
        assert result.n_replicates == 3
        assert result.feasibility_rate("elpc") > 0.0
        # win rate is computed only over replicates where elpc is feasible
        assert 0.0 <= result.win_rate("elpc") <= 1.0

    def test_unknown_algorithm_fails_fast(self):
        with pytest.raises(SpecificationError):
            replicate_case(PAPER_CASE_SPECS[1], n_replicates=2,
                           algorithms=("elpc", "no-such-solver"))

    def test_non_infeasibility_errors_recorded_as_nan(self):
        """Any ReproError from one replicate (not just infeasibility) becomes
        NaN instead of aborting the whole campaign."""
        from repro.core import register_solver
        from repro.core.registry import _REGISTRY
        from repro.exceptions import SpecificationError as SpecError

        calls = {"n": 0}

        def flaky(pipeline, network, request, **kwargs):
            calls["n"] += 1
            if calls["n"] % 2 == 0:
                raise SpecError("synthetic mid-campaign solver error")
            from repro.core import get_solver
            return get_solver("greedy", Objective.MIN_DELAY)(
                pipeline, network, request)

        register_solver("stats-flaky", Objective.MIN_DELAY, flaky)
        try:
            result = replicate_case(PAPER_CASE_SPECS[1], n_replicates=4,
                                    algorithms=("elpc", "stats-flaky"))
        finally:
            _REGISTRY.pop(("stats-flaky", Objective.MIN_DELAY), None)
        flaky_values = result.values["stats-flaky"]
        assert len(flaky_values) == 4
        assert sum(1 for v in flaky_values if v != v) == 2  # NaN where it blew up
        assert result.feasibility_rate("stats-flaky") == 0.5
        # the co-scheduled healthy algorithm is untouched
        assert result.feasibility_rate("elpc") == 1.0

    def test_replicates_batch_through_solve_many(self, monkeypatch):
        """The inner loop rides solve_many (one batch per algorithm), so
        replication sweeps inherit tensor grouping and workers=."""
        import repro.analysis.statistics as stats_mod

        seen = []
        real_solve_many = stats_mod.solve_many

        def spy(instances, **kwargs):
            seen.append((len(list(instances)), kwargs.get("solver")))
            return real_solve_many(instances, **kwargs)

        monkeypatch.setattr(stats_mod, "solve_many", spy)
        result = replicate_case(PAPER_CASE_SPECS[1], n_replicates=3,
                                algorithms=("elpc", "greedy"))
        assert seen == [(3, "elpc"), (3, "greedy")]
        assert result.n_replicates == 3

    def test_workers_match_sequential(self):
        sequential = replicate_case(PAPER_CASE_SPECS[1], n_replicates=3,
                                    algorithms=("elpc", "greedy"))
        parallel = replicate_case(PAPER_CASE_SPECS[1], n_replicates=3,
                                  algorithms=("elpc", "greedy"), workers=2)
        assert parallel.values == sequential.values


class TestSummarizeImprovements:
    def test_pooled_improvements(self, replicated_small_case):
        stats = summarize_improvements([replicated_small_case], "streamline")
        assert stats.n_samples >= 4
        assert stats.mean >= 1.0 - 1e-9

    def test_no_samples_rejected(self):
        empty = ReplicatedCaseResult(spec=PAPER_CASE_SPECS[0],
                                     objective=Objective.MIN_DELAY,
                                     algorithms=("elpc", "greedy"),
                                     values={"elpc": [], "greedy": []})
        with pytest.raises(SpecificationError):
            summarize_improvements([empty], "greedy")
