"""Tests for the Graphviz DOT export."""

import pytest

from repro.analysis import mapping_to_dot, network_to_dot, write_dot
from repro.core import elpc_max_frame_rate, elpc_min_delay


class TestNetworkToDot:
    def test_contains_all_nodes_and_links(self, simple_network):
        dot = network_to_dot(simple_network)
        assert dot.startswith('graph "network"')
        for node_id in simple_network.node_ids():
            assert f"n{node_id} [" in dot
        assert dot.count(" -- ") == simple_network.n_links
        assert dot.rstrip().endswith("}")

    def test_attribute_toggle(self, simple_network):
        with_attrs = network_to_dot(simple_network, include_attributes=True)
        without = network_to_dot(simple_network, include_attributes=False)
        assert "Mbps" in with_attrs
        assert "Mbps" not in without

    def test_custom_name(self, simple_network):
        assert 'graph "wan"' in network_to_dot(simple_network, name="wan")


class TestMappingToDot:
    def test_highlights_used_nodes_and_links(self, illustration_instance):
        inst = illustration_instance
        mapping = elpc_min_delay(inst.pipeline, inst.network, inst.request)
        dot = mapping_to_dot(mapping, name="fig3")
        # used nodes are filled, mapped links are bold
        assert "fillcolor" in dot
        assert "penwidth=2.5" in dot
        assert "delay" in dot and "frames/s" in dot
        # every network link appears exactly once
        assert dot.count(" -- ") == inst.network.n_links

    def test_bottleneck_highlighted(self, illustration_instance):
        inst = illustration_instance
        mapping = elpc_max_frame_rate(inst.pipeline, inst.network, inst.request)
        dot = mapping_to_dot(mapping)
        breakdown = mapping.breakdown()
        if breakdown.bottleneck_kind == "node":
            assert "#ffcccc" in dot
        else:
            assert 'color="red"' in dot

    def test_module_names_listed(self, illustration_instance):
        inst = illustration_instance
        mapping = elpc_min_delay(inst.pipeline, inst.network, inst.request)
        dot = mapping_to_dot(mapping)
        # at least one module label (M<k> or a stage name) appears on a node
        assert any(f"M{m}" in dot or (inst.pipeline.modules[m].name or "") in dot
                   for m in range(inst.pipeline.n_modules))


class TestWriteDot:
    def test_writes_file(self, tmp_path, simple_network):
        path = write_dot(network_to_dot(simple_network), tmp_path / "a" / "net.dot")
        assert path.exists()
        assert path.read_text().startswith("graph")
