"""Tests for the discrete-event engine and event queue."""

import pytest

from repro.exceptions import SimulationError
from repro.simulation import Event, EventQueue, SimulationEngine


class TestEventQueue:
    def test_orders_by_time(self):
        queue = EventQueue()
        fired = []
        queue.push(5.0, lambda e: fired.append("b"))
        queue.push(1.0, lambda e: fired.append("a"))
        queue.push(9.0, lambda e: fired.append("c"))
        while not queue.is_empty():
            event = queue.pop()
            event.callback(event)
        assert fired == ["a", "b", "c"]

    def test_ties_broken_by_insertion_order(self):
        queue = EventQueue()
        order = []
        queue.push(2.0, lambda e: order.append(1))
        queue.push(2.0, lambda e: order.append(2))
        queue.push(2.0, lambda e: order.append(3))
        while not queue.is_empty():
            event = queue.pop()
            event.callback(event)
        assert order == [1, 2, 3]

    def test_cancelled_events_skipped(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda e: None)
        queue.push(2.0, lambda e: None)
        event.cancel()
        assert queue.peek_time() == 2.0
        assert len(queue) >= 1

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().push(-1.0, lambda e: None)


class TestSimulationEngine:
    def test_clock_advances_monotonically(self):
        engine = SimulationEngine()
        times = []
        engine.schedule(3.0, lambda e: times.append(engine.now_ms))
        engine.schedule(1.0, lambda e: times.append(engine.now_ms))
        engine.run()
        assert times == [1.0, 3.0]
        assert engine.now_ms == 3.0
        assert engine.processed_events == 2

    def test_schedule_in_relative_delay(self):
        engine = SimulationEngine()
        seen = []

        def first(_event):
            engine.schedule_in(5.0, lambda e: seen.append(engine.now_ms))

        engine.schedule(2.0, first)
        engine.run()
        assert seen == [7.0]

    def test_scheduling_in_past_rejected(self):
        engine = SimulationEngine()

        def callback(_event):
            with pytest.raises(SimulationError):
                engine.schedule(engine.now_ms - 10.0, lambda e: None)

        engine.schedule(5.0, callback)
        engine.run()

    def test_negative_delay_rejected(self):
        engine = SimulationEngine()
        with pytest.raises(SimulationError):
            engine.schedule_in(-1.0, lambda e: None)

    def test_run_until_stops_early(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(1.0, lambda e: fired.append(1))
        engine.schedule(100.0, lambda e: fired.append(2))
        engine.run(until_ms=10.0)
        assert fired == [1]
        assert engine.now_ms == 10.0

    def test_event_budget_guards_against_loops(self):
        engine = SimulationEngine(max_events=50)

        def reschedule(_event):
            engine.schedule_in(1.0, reschedule)

        engine.schedule(0.0, reschedule)
        with pytest.raises(SimulationError):
            engine.run()

    def test_events_carry_payload(self):
        engine = SimulationEngine()
        captured = []
        engine.schedule(1.0, lambda e: captured.append(e.payload["x"]),
                        kind="custom", payload={"x": 42})
        engine.run()
        assert captured == [42]
