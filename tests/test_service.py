"""Integration tests for the micro-batching solve service (repro.service).

Covers the PR's service acceptance surface: wire-schema round-trips, network
interning, concurrent clients coalescing into one tensor group flush (shared
``group_id``), per-request error isolation, result identity with direct
``solve_many``, backend validation at startup (CLI exit 1), and graceful
shutdown draining the queue.
"""

from __future__ import annotations

import asyncio
import json
import threading

import pytest

from repro.core import Objective, solve_many
from repro.exceptions import SpecificationError
from repro.generators import (
    make_case,
    PAPER_CASE_SPECS,
    random_network,
    random_pipeline,
    random_request,
)
from repro.model import ProblemInstance
from repro.service import (
    BackgroundServer,
    NetworkInterner,
    ServiceConfig,
    ServiceClient,
    ServiceUnavailableError,
    SolveRequest,
    SolveService,
    WIRE_SCHEMA,
)


def _instances(count, *, network_seed=3, n_nodes=12, n_links=30, n_modules=6):
    """``count`` pipelines over one shared network (the coalescing shape)."""
    network = random_network(n_nodes, n_links, seed=network_seed)
    return [
        ProblemInstance(
            pipeline=random_pipeline(n_modules, seed=100 + i),
            network=network,
            request=random_request(network, seed=200 + i, min_hop_distance=2),
            name=f"svc-{i}")
        for i in range(count)
    ]


def _post_all(client, instances, **kwargs):
    """POST every instance from its own thread; responses in input order."""
    results = [None] * len(instances)

    def post(i):
        results[i] = client.solve(instances[i], **kwargs)

    threads = [threading.Thread(target=post, args=(i,))
               for i in range(len(instances))]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return results


class TestWireSchema:
    def test_request_roundtrip(self):
        instance = make_case(PAPER_CASE_SPECS[0])
        request = SolveRequest(instance=instance, solver="elpc-vec",
                               objective=Objective.MAX_FRAME_RATE,
                               solver_kwargs={"include_link_delay": False})
        payload = json.loads(json.dumps(request.to_wire()))  # full JSON trip
        again = SolveRequest.from_wire(payload)
        assert again.solver == "elpc-vec"
        assert again.objective is Objective.MAX_FRAME_RATE
        assert again.solver_kwargs == {"include_link_delay": False}
        assert again.instance.name == instance.name
        assert again.instance.size_signature == instance.size_signature

    def test_defaults_applied(self):
        instance = make_case(PAPER_CASE_SPECS[0])
        request = SolveRequest.from_wire({"instance": instance.to_dict()})
        assert request.solver == "elpc-tensor"
        assert request.objective is Objective.MIN_DELAY
        assert request.backend is None

    @pytest.mark.parametrize("payload", [
        [],
        {},
        {"instance": 7},
        {"instance": {"pipeline": {}}},
    ])
    def test_malformed_payloads_rejected(self, payload):
        with pytest.raises(SpecificationError):
            SolveRequest.from_wire(payload)

    def test_unknown_objective_rejected(self):
        instance = make_case(PAPER_CASE_SPECS[0])
        with pytest.raises(SpecificationError, match="unknown objective"):
            SolveRequest.from_wire({"instance": instance.to_dict(),
                                    "objective": "fastest"})

    def test_interner_shares_identical_networks(self):
        interner = NetworkInterner()
        a, b = _instances(2)
        net_a = interner.intern(a.network.to_dict())
        net_b = interner.intern(b.network.to_dict())
        assert net_a is net_b
        assert interner.hits == 1 and interner.misses == 1
        other = random_network(8, 16, seed=99)
        assert interner.intern(other.to_dict()) is not net_a
        assert len(interner) == 2

    def test_interner_lru_bound(self):
        interner = NetworkInterner(max_entries=2)
        payloads = [random_network(6, 10, seed=s).to_dict() for s in range(4)]
        for payload in payloads:
            interner.intern(payload)
        assert len(interner) == 2


class TestCoalescing:
    def test_concurrent_clients_share_one_tensor_group(self):
        instances = _instances(8)
        config = ServiceConfig(max_batch=8, max_wait_ms=5000.0)
        with BackgroundServer(config) as server:
            responses = _post_all(server.client(), instances)
        group_ids = {r["group_id"] for r in responses}
        assert all(r["ok"] for r in responses)
        assert len(group_ids) == 1, "all 8 requests must ride one flush group"
        assert all(r["group_size"] == 8 for r in responses)
        assert all(r["schema"] == WIRE_SCHEMA for r in responses)

    def test_responses_identical_to_direct_solve_many(self):
        instances = _instances(6)
        direct = solve_many(instances, solver="elpc-tensor",
                            objective=Objective.MIN_DELAY)
        config = ServiceConfig(max_batch=6, max_wait_ms=5000.0)
        with BackgroundServer(config) as server:
            responses = _post_all(server.client(), instances)
        for item, response in zip(direct.items, responses):
            assert response["ok"]
            # bit-identical: JSON floats round-trip repr-exactly
            assert response["mapping"]["delay_ms"] == item.mapping.delay_ms
            assert response["mapping"]["groups"] == [list(g) for g
                                                    in item.mapping.groups]
            assert response["mapping"]["path"] == list(item.mapping.path)

    def test_sequential_requests_without_coalescing(self):
        instances = _instances(3)
        config = ServiceConfig(max_batch=1, max_wait_ms=0.0)
        with BackgroundServer(config) as server:
            client = server.client()
            responses = [client.solve(inst) for inst in instances]
            status = client.healthz()
        assert all(r["ok"] and r["group_size"] == 1 for r in responses)
        assert status["flushes_total"] == 3
        assert status["coalesced_flushes_total"] == 0

    def test_mixed_dispatch_keys_partition_one_flush(self):
        """Different solver selections inside one flush must not contaminate
        each other's solve_many call."""
        instances = _instances(4)
        config = ServiceConfig(max_batch=4, max_wait_ms=5000.0)
        with BackgroundServer(config) as server:
            client = server.client()
            results = [None] * 4

            def post(i):
                solver = "elpc-tensor" if i % 2 == 0 else "elpc-vec"
                results[i] = client.solve(instances[i], solver=solver)

            threads = [threading.Thread(target=post, args=(i,))
                       for i in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert all(r["ok"] for r in results)
        assert {r["solver"] for r in results} == {"elpc-tensor", "elpc-vec"}
        tensor_groups = {r["group_id"] for r in results
                        if r["solver"] == "elpc-tensor"}
        assert len(tensor_groups) == 1  # the tensor pair still grouped


class TestErrorIsolation:
    def test_one_bad_request_does_not_poison_the_flush(self):
        instances = _instances(4)
        # an infeasible instance: request endpoints farther apart than the
        # pipeline can reach is not guaranteed here, so use a bogus solver
        # kwarg on one request instead — recorded per item by solve_many.
        config = ServiceConfig(max_batch=4, max_wait_ms=5000.0)
        with BackgroundServer(config) as server:
            client = server.client()
            results = [None] * 4

            def post(i):
                if i == 2:
                    results[i] = client.solve(instances[i],
                                              no_such_kwarg=True)
                else:
                    results[i] = client.solve(instances[i])

            threads = [threading.Thread(target=post, args=(i,))
                       for i in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert [r["ok"] for r in results] == [True, True, False, True]
        assert results[2]["error"]
        assert results[2]["mapping"] is None

    @pytest.mark.parametrize("key", ["backend", "runner", "workers",
                                     "solver", "objective", "chunk_size"])
    def test_reserved_solver_kwargs_rejected_not_fatal(self, key):
        """Dispatch-control keys smuggled through solver_kwargs must be a
        per-request 400, not a TypeError that kills the flusher (or a
        policy bypass like workers=32)."""
        instances = _instances(2)
        with BackgroundServer(ServiceConfig(max_wait_ms=0.0)) as server:
            client = server.client()
            bad = client.request("POST", "/solve", {
                "instance": instances[0].to_dict(),
                "solver_kwargs": {key: "anything"},
            })
            assert bad["ok"] is False
            assert "dispatch controls" in bad["error"]
            # the service must still be alive and solving
            good = client.solve(instances[1])
        assert good["ok"]

    def test_flusher_survives_internal_dispatch_errors(self):
        """Even an exception escaping _dispatch answers the batch and keeps
        the flusher alive (defense in depth for the wedged-service bug)."""

        async def scenario():
            service = SolveService(ServiceConfig(max_wait_ms=0.0))
            await service.start()
            original = service._dispatch_partition
            calls = {"n": 0}

            async def exploding(entries):
                calls["n"] += 1
                if calls["n"] == 1:
                    raise RuntimeError("synthetic dispatcher bug")
                await original(entries)

            service._dispatch_partition = exploding
            first = await service.submit(SolveRequest(instance=_instances(1)[0]))
            second = await service.submit(SolveRequest(instance=_instances(1)[0]))
            await service.close()
            return first, second

        first, second = asyncio.run(scenario())
        assert first["ok"] is False
        assert "internal dispatch error" in first["error"]
        assert second["ok"] is True

    def test_unknown_solver_answered_not_dropped(self):
        instances = _instances(1)
        with BackgroundServer(ServiceConfig(max_wait_ms=0.0)) as server:
            response = server.client().solve(instances[0],
                                             solver="no-such-engine")
        assert response["ok"] is False
        assert "no-such-engine" in response["error"]

    def test_malformed_json_gets_400_payload(self):
        from http.client import HTTPConnection

        with BackgroundServer(ServiceConfig(max_wait_ms=0.0)) as server:
            conn = HTTPConnection(server.host, server.port, timeout=30)
            conn.request("POST", "/solve", body=b"{not json",
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            payload = json.loads(response.read().decode())
            conn.close()
        assert response.status == 400
        assert payload["ok"] is False
        assert "invalid JSON" in payload["error"]

    def test_unknown_path_404(self):
        with BackgroundServer(ServiceConfig(max_wait_ms=0.0)) as server:
            payload = server.client().request("GET", "/nope")
        assert payload["ok"] is False and "unknown path" in payload["error"]

    def test_per_request_backend_failure_is_recorded(self):
        try:
            import cupy  # noqa: F401
        except Exception:
            pass
        else:
            pytest.skip("CuPy installed; the failure path is not reachable")
        instances = _instances(1)
        with BackgroundServer(ServiceConfig(max_wait_ms=0.0)) as server:
            response = server.client().solve(instances[0], backend="cupy")
        assert response["ok"] is False
        assert "cupy" in response["error"].lower()


class TestHealthz:
    def test_status_payload(self):
        config = ServiceConfig(max_batch=4, max_wait_ms=7.0, workers=None,
                               default_solver="elpc-tensor")
        with BackgroundServer(config) as server:
            status = server.client().healthz()
        assert status["status"] == "ok"
        assert status["queue_depth"] == 0
        assert status["max_batch"] == 4
        assert status["max_wait_ms"] == 7.0
        assert status["default_solver"] == "elpc-tensor"
        assert status["backend"] == "numpy"
        assert status["workers"] == 1

    def test_wait_ready_times_out_against_dead_port(self):
        client = ServiceClient(port=1)  # nothing listens there
        with pytest.raises(ServiceUnavailableError):
            client.wait_ready(timeout=0.2, interval=0.05)


class TestDeltaProtocol:
    def test_healthz_incremental_counters_start_at_zero(self):
        with BackgroundServer(ServiceConfig(max_batch=4)) as server:
            status = server.client().healthz()
        assert status["view_epoch"] == 0
        assert status["delta_patches_total"] == 0
        assert status["rebuilds_total"] == 0
        assert status["deltas_total"] == 0
        assert status["warm_solves_total"] == 0
        assert status["staleness_ms_mean"] == 0.0

    def test_delta_roundtrip_updates_counters_and_versions_ref(self):
        instances = _instances(2)
        network = instances[0].network
        link = network.links()[0]
        with BackgroundServer(ServiceConfig(max_batch=4)) as server:
            client = server.client()
            first = client.solve(instances[0])
            base_ref = first["network_ref"]
            assert "@" not in base_ref  # undrifted networks keep a bare ref
            response = client.apply_delta(base_ref, [
                {"kind": "bandwidth", "u": link.start_node,
                 "v": link.end_node,
                 "value": link.bandwidth_mbps * 0.5},
                {"kind": "power", "node": network.node_ids()[0],
                 "value": network.processing_power(network.node_ids()[0])
                 * 2.0},
            ])
            assert response["ok"] is True
            assert response["edits_applied"] == 2
            # Drifted networks answer with an epoch-versioned ref.
            assert response["network_ref"].startswith(base_ref + "@")
            assert response["view_epoch"] > 0
            # The versioned ref is accepted wherever a bare ref is.
            second = client.solve(instances[1])
            status = client.healthz()
        assert second["ok"] is True
        assert status["deltas_total"] == 1
        assert status["delta_patches_total"] == 2
        assert status["view_epoch"] == response["view_epoch"]
        # The post-delta solve on the patched network counts as warm-capable
        # traffic and closes the staleness window.
        assert status["warm_solves_total"] == 1
        assert status["staleness_ms_mean"] > 0.0

    def test_delta_is_atomic_on_invalid_edit(self):
        instances = _instances(1)
        with BackgroundServer(ServiceConfig(max_batch=4)) as server:
            client = server.client()
            first = client.solve(instances[0])
            ref = first["network_ref"]
            response = client.request("POST", "/delta", {
                "schema": WIRE_SCHEMA, "ref": ref,
                "edits": [
                    {"kind": "power", "node": instances[0].network.node_ids()[0],
                     "value": 99.0},
                    {"kind": "power", "node": 10_000, "value": 1.0},  # bad
                ]})
            status = client.healthz()
        assert response["ok"] is False
        assert "10000" in response["error"] or "10_000" in response["error"]
        # Validate-then-apply: the good edit must not have landed either.
        assert status["delta_patches_total"] == 0
        assert status["deltas_total"] == 0

    def test_delta_against_unknown_ref_is_recorded_error(self):
        with BackgroundServer(ServiceConfig(max_batch=4)) as server:
            response = server.client().request("POST", "/delta", {
                "schema": WIRE_SCHEMA, "ref": "no-such-digest",
                "edits": [{"kind": "power", "node": 0, "value": 1.0}]})
        assert response["ok"] is False
        assert "no-such-digest" in response["error"]


class TestGracefulShutdown:
    def test_close_drains_pending_requests(self):
        """Requests still queued when close() arrives are answered, not
        dropped — the max_wait window is cut short by the drain."""
        instances = _instances(3)

        async def scenario():
            service = SolveService(ServiceConfig(max_batch=100,
                                                 max_wait_ms=60_000.0))
            await service.start()
            tasks = [asyncio.ensure_future(
                service.submit(SolveRequest(instance=inst)))
                for inst in instances]
            await asyncio.sleep(0.05)  # let submissions queue, not flush
            assert service.queue_depth == 3
            await service.close(drain=True)
            return [task.result() for task in tasks]

        responses = asyncio.run(scenario())
        assert all(r["ok"] for r in responses)
        assert all(r["group_size"] == 3 for r in responses)

    def test_close_without_drain_answers_shutdown_errors(self):
        instances = _instances(2)

        async def scenario():
            service = SolveService(ServiceConfig(max_batch=100,
                                                 max_wait_ms=60_000.0))
            await service.start()
            tasks = [asyncio.ensure_future(
                service.submit(SolveRequest(instance=inst)))
                for inst in instances]
            await asyncio.sleep(0.05)
            await service.close(drain=False)
            return [task.result() for task in tasks]

        responses = asyncio.run(scenario())
        assert all(r["ok"] is False for r in responses)
        assert all("shutting down" in r["error"] for r in responses)

    def test_background_server_stop_is_graceful(self):
        instances = _instances(2)
        server = BackgroundServer(ServiceConfig(max_wait_ms=0.0)).start()
        try:
            responses = _post_all(server.client(), instances)
            assert all(r["ok"] for r in responses)
        finally:
            server.stop()
        with pytest.raises(ServiceUnavailableError):
            server.client().healthz()


class TestServiceWorkers:
    def test_parallel_runner_backs_flushes(self):
        """workers=2 keeps one persistent pool under every flush and results
        stay identical to the in-process service."""
        instances = _instances(6)
        direct = solve_many(instances, solver="elpc-tensor")
        config = ServiceConfig(max_batch=6, max_wait_ms=5000.0, workers=2)
        with BackgroundServer(config) as server:
            responses = _post_all(server.client(), instances)
            status = server.client().healthz()
        assert all(r["ok"] for r in responses)
        for item, response in zip(direct.items, responses):
            assert response["mapping"]["delay_ms"] == item.mapping.delay_ms
        assert status["workers"] == 2
        assert status["runner"]["workers"] == 2
        assert status["runner"]["pool_started"] is True
        assert status["runner"]["exported_networks"] >= 1


class TestServeCli:
    def test_backend_validated_at_startup_exit_1(self, capsys):
        from repro.cli import main

        assert main(["serve", "--backend", "cupy"]) == 1
        err = capsys.readouterr().err
        assert "cupy" in err and "installed backends" in err

    def test_unknown_backend_exit_1(self, capsys):
        from repro.cli import main

        assert main(["serve", "--backend", "tpu9000"]) == 1
        assert "unknown backend" in capsys.readouterr().err

    def test_unknown_solver_exit_1(self, capsys):
        from repro.cli import main

        assert main(["serve", "--solver", "no-such-engine"]) == 1
        assert "no-such-engine" in capsys.readouterr().err

    def test_bad_max_batch_exit_1(self, capsys):
        from repro.cli import main

        assert main(["serve", "--max-batch", "0"]) == 1
        assert "max_batch" in capsys.readouterr().err

    def test_serve_subprocess_end_to_end(self):
        """`repro serve` as a real process: announce line, client solve,
        SIGINT drain, exit 0 — the same path the CI smoke step drives."""
        import os
        import re
        import signal
        import subprocess
        import sys

        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-c",
             "from repro.cli import main; raise SystemExit("
             "main(['serve', '--port', '0', '--max-wait-ms', '1']))"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, env=env,
            text=True)
        try:
            announce = proc.stdout.readline()
            match = re.search(r"listening on 127\.0\.0\.1:(\d+)", announce)
            assert match, f"no announce line, got {announce!r}"
            client = ServiceClient(port=int(match.group(1)))
            client.wait_ready(timeout=30)
            response = client.solve(make_case(PAPER_CASE_SPECS[0]))
            assert response["ok"] and response["mapping"]["path"]
        finally:
            proc.send_signal(signal.SIGINT)
            assert proc.wait(timeout=30) == 0
        assert "drained and stopped" in proc.stdout.read()

class TestReplicaTagging:
    def test_responses_carry_replica_id_zero_by_default(self):
        """Every JSON response names its serving replica; a plain
        single-process server is replica 0 (so loadtest attribution and the
        fleet tests have one uniform field to read)."""
        instances = _instances(1)
        with BackgroundServer(ServiceConfig(max_wait_ms=0.0)) as server:
            with server.client() as client:
                response = client.solve(instances[0])
                status = client.healthz()
        assert response["ok"] and response["replica_id"] == 0
        assert status["replica_id"] == 0
        assert "fleet" not in status  # no fleet table without --replicas


class TestKeepAlive:
    def test_multi_solve_session_uses_one_connection(self):
        """Regression: a session of solves + healthz rides ONE server-side
        connection (the pre-keep-alive client opened one per request)."""
        instances = _instances(4)
        with BackgroundServer(ServiceConfig(max_wait_ms=0.0)) as server:
            with server.client() as client:
                for instance in instances:
                    assert client.solve(instance)["ok"]
                status = client.healthz()
        assert status["connections_total"] == 1
        assert status["responses_total"] == len(instances)

    def test_per_request_mode_opens_a_connection_per_request(self):
        """keep_alive=False preserves the old transport: every exchange is
        its own TCP connection (the loadtest baseline's defining cost)."""
        instances = _instances(3)
        with BackgroundServer(ServiceConfig(max_wait_ms=0.0)) as server:
            with server.client(keep_alive=False) as client:
                for instance in instances:
                    assert client.solve(instance)["ok"]
                status = client.healthz()
        assert status["connections_total"] == len(instances) + 1  # + healthz

    def test_stale_socket_reconnects_transparently(self):
        """A server that drops the socket after each response (while still
        advertising keep-alive) only costs the client a silent retry."""
        import socket as socket_module

        listener = socket_module.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(8)
        port = listener.getsockname()[1]
        accepted = []
        body = json.dumps({"ok": True, "lying": "keep-alive"}).encode()
        head = (f"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: keep-alive\r\n\r\n").encode()

        def dummy_server():
            for _ in range(2):
                conn, _addr = listener.accept()
                accepted.append(1)
                conn.settimeout(5)
                while b"\r\n\r\n" not in conn.recv(65536):
                    pass
                conn.sendall(head + body)
                conn.close()  # the lie: advertised keep-alive, closed anyway

        thread = threading.Thread(target=dummy_server, daemon=True)
        thread.start()
        try:
            with ServiceClient(port=port, timeout=5) as client:
                assert client.request("GET", "/healthz")["ok"] is True
                assert client.reconnects_total == 0
                # The persistent socket is now dead; this must retry once on
                # a fresh connection rather than surface an error.
                assert client.request("GET", "/healthz")["ok"] is True
                # ...and the silent retry is observable for monitoring.
                assert client.reconnects_total == 1
            thread.join(timeout=5)
            assert len(accepted) == 2
        finally:
            listener.close()

    def test_dead_service_still_raises_immediately(self):
        with ServiceClient(port=1, timeout=1) as client:
            with pytest.raises(ServiceUnavailableError):
                client.healthz()

    def test_http10_client_gets_connection_close(self):
        """HTTP/1.0 without an opt-in keeps the old one-shot semantics."""
        import socket as socket_module

        with BackgroundServer(ServiceConfig(max_wait_ms=0.0)) as server:
            with socket_module.create_connection(("127.0.0.1", server.port),
                                                 timeout=5) as sock:
                sock.sendall(b"GET /healthz HTTP/1.0\r\nHost: x\r\n\r\n")
                raw = b""
                while True:
                    chunk = sock.recv(65536)
                    if not chunk:
                        break  # server closed after the response
                    raw += chunk
        head = raw.split(b"\r\n\r\n", 1)[0].lower()
        assert b"connection: close" in head

    def test_http10_keep_alive_opt_in_is_honored(self):
        import socket as socket_module

        with BackgroundServer(ServiceConfig(max_wait_ms=0.0)) as server:
            with socket_module.create_connection(("127.0.0.1", server.port),
                                                 timeout=5) as sock:
                request = (b"GET /healthz HTTP/1.0\r\nHost: x\r\n"
                           b"Connection: keep-alive\r\n\r\n")
                for _ in range(2):  # second request rides the same socket
                    sock.sendall(request)
                    raw = b""
                    while b"\r\n\r\n" not in raw:
                        raw += sock.recv(65536)
                    head, _, rest = raw.partition(b"\r\n\r\n")
                    assert b"connection: keep-alive" in head.lower()
                    length = int(
                        [line.split(b":")[1] for line in head.split(b"\r\n")
                         if line.lower().startswith(b"content-length")][0])
                    while len(rest) < length:
                        rest += sock.recv(65536)
            status = server.client().healthz()
        assert status["connections_total"] == 2  # raw socket + healthz probe

    def test_shutdown_force_closes_idle_keepalive_connections(self):
        """stop() must not hang on a handler idling in its next-request read."""
        server = BackgroundServer(ServiceConfig(max_wait_ms=0.0)).start()
        client = server.client()
        try:
            assert client.solve(_instances(1)[0])["ok"]
            # The client's persistent socket is now idle server-side.
            server.stop()  # would deadlock if the handler were not closed
        finally:
            client.close()
        with pytest.raises(ServiceUnavailableError):
            server.client().healthz()


class TestBodyLimit:
    def test_oversized_body_refused_with_413(self):
        from http.client import HTTPConnection

        instance = _instances(1)[0]
        payload = SolveRequest(instance=instance).to_wire()
        body = json.dumps(payload).encode()
        config = ServiceConfig(max_wait_ms=0.0,
                               max_body_bytes=max(1024, len(body) - 1))
        with BackgroundServer(config) as server:
            connection = HTTPConnection("127.0.0.1", server.port, timeout=10)
            connection.request("POST", "/solve", body=body,
                               headers={"Content-Type": "application/json"})
            response = connection.getresponse()
            refused = json.loads(response.read())
            status_code = response.status
            will_close = response.will_close
            connection.close()
            # The refusal happens before any body buffering, and the server
            # closes the connection (framing after a refused body is
            # untrustworthy).  A fresh connection must still be served.
            follow_up = server.client().healthz()
        assert status_code == 413
        assert refused["ok"] is False
        assert "refused" in refused["error"]
        assert will_close
        assert follow_up["status"] == "ok"

    def test_body_under_limit_is_served(self):
        instance = _instances(1)[0]
        body_len = len(json.dumps(SolveRequest(instance=instance).to_wire()))
        config = ServiceConfig(max_wait_ms=0.0, max_body_bytes=body_len + 512)
        with BackgroundServer(config) as server:
            assert server.client(use_network_refs=False).solve(instance)["ok"]

    def test_max_body_bytes_validated(self):
        with pytest.raises(SpecificationError, match="max_body_bytes"):
            ServiceConfig(max_body_bytes=10)


class TestInternerConcurrency:
    def test_concurrent_interning_yields_one_object_per_topology(self):
        """N threads interning the same topologies concurrently must all get
        the identical object (a racing unlocked LRU could double-insert and
        silently split tensor groups)."""
        interner = NetworkInterner(max_entries=8)
        payloads = [random_network(6, 10, seed=seed).to_dict()
                    for seed in range(4)]
        n_threads, rounds = 8, 50
        seen = [set() for _ in payloads]
        barrier = threading.Barrier(n_threads)
        errors = []

        def worker(index):
            try:
                barrier.wait()
                for round_no in range(rounds):
                    which = (index + round_no) % len(payloads)
                    network, ref = interner.intern_with_ref(payloads[which])
                    assert interner.by_ref(ref) is network
                    seen[which].add(id(network))
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert all(len(ids) == 1 for ids in seen)  # one object per topology
        assert len(interner) == len(payloads)
        assert interner.hits + interner.misses >= n_threads * rounds

    def test_concurrent_interning_respects_lru_bound(self):
        interner = NetworkInterner(max_entries=3)
        payloads = [random_network(5, 8, seed=seed).to_dict()
                    for seed in range(10)]

        def worker(index):
            for round_no in range(30):
                interner.intern(payloads[(index + round_no) % len(payloads)])

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(interner) <= 3


class TestContinuousBatching:
    """Flush-policy behavior at the SolveService level, with a patched
    dispatch so the tests control executor busyness without wall-clock
    sleeps in any hot path."""

    @staticmethod
    def _fake_dispatch(service, batches, *, hold_s=0.0):
        """Replace _dispatch_partition: record batches, optionally simulate a
        busy executor for ``hold_s``, answer every request ok."""

        async def fake(entries):
            batches.append([request.instance.name
                            for request, _future, _arrived in entries])
            if hold_s:
                await asyncio.sleep(hold_s)
            for request, future, _arrived in entries:
                if not future.done():
                    future.set_result({"ok": True,
                                       "name": request.instance.name})
            service.responses_total += len(entries)

        service._dispatch_partition = fake

    def test_mid_flush_arrivals_dispatch_when_executor_frees(self):
        """The continuous-batching core claim: a request arriving while a
        flush is executing is dispatched the moment the executor frees —
        NOT after the max_wait_ms window (set here to a minute, so the old
        fixed-window policy would visibly hang this test)."""
        instances = _instances(3)

        async def scenario():
            service = SolveService(ServiceConfig(max_batch=2,
                                                 max_wait_ms=60_000.0))
            batches = []
            await service.start()
            self._fake_dispatch(service, batches, hold_s=0.05)
            # a1 + a2 reach max_batch -> flush starts immediately.
            first = [asyncio.ensure_future(
                service.submit(SolveRequest(instance=inst)))
                for inst in instances[:2]]
            await asyncio.sleep(0.01)  # flush is now holding the executor
            late = asyncio.ensure_future(
                service.submit(SolveRequest(instance=instances[2])))
            responses = await asyncio.wait_for(
                asyncio.gather(*first, late), timeout=5.0)
            await service.close(drain=True)
            return service, batches, responses

        service, batches, responses = asyncio.run(scenario())
        assert all(r["ok"] for r in responses)
        assert batches == [[instances[0].name, instances[1].name],
                           [instances[2].name]]
        assert service.busy_flushes_total == 1
        assert service.flush_size_max == 2

    def test_fixed_window_policy_waits_out_the_window(self):
        """continuous_batching=False really is the legacy policy: the
        mid-flush arrival stays queued until drain (its 60s window)."""
        instances = _instances(3)

        async def scenario():
            service = SolveService(ServiceConfig(
                max_batch=2, max_wait_ms=60_000.0,
                continuous_batching=False))
            batches = []
            await service.start()
            self._fake_dispatch(service, batches, hold_s=0.05)
            first = [asyncio.ensure_future(
                service.submit(SolveRequest(instance=inst)))
                for inst in instances[:2]]
            await asyncio.sleep(0.01)
            late = asyncio.ensure_future(
                service.submit(SolveRequest(instance=instances[2])))
            await asyncio.gather(*first)
            await asyncio.sleep(0.2)  # well past the flush; window still open
            still_queued = not late.done()
            await service.close(drain=True)  # drain cuts the window short
            await asyncio.wait_for(late, timeout=5.0)
            return service, still_queued

        service, still_queued = asyncio.run(scenario())
        assert still_queued
        assert service.busy_flushes_total == 0

    def test_idle_engine_flushes_within_max_wait(self):
        """With an idle executor the max_wait_ms window still bounds latency:
        a lone request is answered right after the window, without reaching
        max_batch."""
        import time as time_module

        instance = _instances(1)[0]

        async def scenario():
            service = SolveService(ServiceConfig(max_batch=32,
                                                 max_wait_ms=50.0))
            batches = []
            await service.start()
            self._fake_dispatch(service, batches)
            start = time_module.monotonic()
            response = await asyncio.wait_for(
                service.submit(SolveRequest(instance=instance)), timeout=5.0)
            elapsed = time_module.monotonic() - start
            await service.close(drain=True)
            return service, response, elapsed

        service, response, elapsed = asyncio.run(scenario())
        assert response["ok"]
        assert 0.04 <= elapsed < 5.0  # waited the window, not max_batch
        assert service.busy_flushes_total == 0
        assert service.flushes_total == 1

    def test_drain_on_close_answers_everything(self):
        """Requests parked in an open window (or accumulated behind a busy
        executor) are all answered by close(drain=True)."""
        instances = _instances(5)

        async def scenario():
            service = SolveService(ServiceConfig(max_batch=2,
                                                 max_wait_ms=60_000.0))
            batches = []
            await service.start()
            self._fake_dispatch(service, batches, hold_s=0.05)
            tasks = [asyncio.ensure_future(
                service.submit(SolveRequest(instance=inst)))
                for inst in instances]
            await asyncio.sleep(0.01)
            await service.close(drain=True)
            return service, batches, [task.result() for task in tasks]

        service, batches, responses = asyncio.run(scenario())
        assert all(r["ok"] for r in responses)
        assert sum(len(batch) for batch in batches) == len(instances)
        assert all(len(batch) <= 2 for batch in batches)  # max_batch respected
        assert service.responses_total == len(instances)

    def test_queue_wait_and_flush_counters_surface_in_healthz(self):
        instances = _instances(4)
        config = ServiceConfig(max_batch=4, max_wait_ms=5000.0)
        with BackgroundServer(config) as server:
            responses = _post_all(server.client(), instances)
            status = server.client().healthz()
        assert all(r["ok"] for r in responses)
        assert status["flushed_requests_total"] == 4
        assert status["flush_size_max"] == 4
        assert status["mean_flush_size"] == 4.0
        assert status["continuous_batching"] is True
        assert status["queue_wait_ms_mean"] >= 0.0
        assert status["queue_wait_ms_max"] >= status["queue_wait_ms_mean"]


class TestRequestParseCache:
    def test_replayed_identical_bodies_hit_the_parse_cache(self):
        """Byte-identical re-posts (the reference-path steady state) skip
        JSON decode + instance reconstruction server-side."""
        instance = _instances(1)[0]
        with BackgroundServer(ServiceConfig(max_wait_ms=0.0)) as server:
            with server.client() as client:
                first = client.solve(instance)    # full network post
                second = client.solve(instance)   # ref path
                third = client.solve(instance)    # ref path, identical bytes
                status = client.healthz()
        assert first["ok"] and second["ok"] and third["ok"]
        assert status["request_cache_hits"] == 1
        assert (first["mapping"]["delay_ms"] == second["mapping"]["delay_ms"]
                == third["mapping"]["delay_ms"])
