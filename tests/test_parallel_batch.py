"""Differential tests for the shared-memory parallel batch runtime.

Three layers:

* unit tests of the shared-memory plumbing — exporting / re-attaching a
  :class:`DenseNetworkView`, rebuilding a :class:`TransportNetwork` around an
  attached view, instance specs;
* the ``workers ∈ {1, 2, 4}`` bit-identity sweep across the three ELPC
  engines over mixed feasible/infeasible, mixed-network batches (the PR's
  headline regression: ``workers > 1`` must *compose* with the tensor
  engine's group dispatch, not silently replace it);
* the batch error policy under both the sequential and the pool path — one
  pathological item (including an item raising an *unpicklable* exception in
  a worker) must not kill the campaign.
"""

import pickle

import numpy as np
import pytest

from repro.core import Objective, register_solver, solve_many
from repro.core.parallel import ParallelBatchRunner
from repro.core.registry import _REGISTRY
from repro.exceptions import SpecificationError
from repro.generators import random_network, random_pipeline, random_request
from repro.model import ProblemInstance, TransportNetwork
from repro.model.network import attach_shared_view, export_shared_view
from repro.model.serialization import InstanceSpec

ENGINES = ("elpc", "elpc-vec", "elpc-tensor")

_VIEW_ARRAYS = ("power", "adjacency", "bandwidth", "link_delay",
                "bandwidth_bits_per_s", "edge_u", "edge_v", "edge_indptr",
                "edge_bandwidth_bits_per_s", "edge_link_delay")


def _mixed_suite(count=24, *, n_networks=3, nodes=10, links=20, seed0=0):
    """Mixed-network batch with feasible and (frame-rate-)infeasible items.

    Every third item gets an 11-module pipeline, which cannot map without
    node reuse onto a 10-node network — infeasible for the frame-rate
    objective, still feasible for min-delay.
    """
    networks = [random_network(nodes, links, seed=seed0 + s)
                for s in range(n_networks)]
    instances = []
    for i in range(count):
        network = networks[i % n_networks]
        n_modules = 11 if i % 3 == 2 else 5
        instances.append(ProblemInstance(
            pipeline=random_pipeline(n_modules, seed=seed0 + i),
            network=network,
            request=random_request(network, seed=seed0 + i, min_hop_distance=1),
            name=f"mixed-{i}"))
    return instances


class TestSharedViewExportAttach:
    def test_round_trip_is_bit_identical(self):
        network = random_network(14, 30, seed=5)
        view = network.dense_view()
        shm, spec = export_shared_view(view, network_name=network.name)
        try:
            attached, attached_shm = attach_shared_view(spec)
            try:
                for name in _VIEW_ARRAYS:
                    original = getattr(view, name)
                    copy = getattr(attached, name)
                    assert copy.dtype == original.dtype
                    assert np.array_equal(copy, original)
                    assert not copy.flags.writeable
                assert attached.node_ids == view.node_ids
                assert attached.index_of == view.index_of
                assert attached.neighbor_lists == view.neighbor_lists
            finally:
                del attached
                attached_shm.close()
        finally:
            shm.close()
            shm.unlink()

    def test_spec_is_small_and_picklable(self):
        network = random_network(20, 60, seed=6)
        shm, spec = export_shared_view(network.dense_view())
        try:
            payload = pickle.dumps(spec)
            # The point of the spec: shipping it must cost a fraction of
            # shipping the network itself.
            assert len(payload) < len(pickle.dumps(network)) / 4
        finally:
            shm.close()
            shm.unlink()

    def test_from_dense_view_rebuilds_equivalent_network(self):
        network = random_network(12, 26, seed=7)
        view = network.dense_view()
        rebuilt = TransportNetwork.from_dense_view(view, name="rebuilt")
        assert rebuilt.dense_view() is view  # zero-copy: view installed as-is
        assert rebuilt.n_nodes == network.n_nodes
        assert rebuilt.n_links == network.n_links
        for a, b in zip(network.links(), rebuilt.links()):
            assert (a.start_node, a.end_node) == (b.start_node, b.end_node)
            assert a.bandwidth_mbps == b.bandwidth_mbps
            assert a.min_delay_ms == b.min_delay_ms
        for nid in network.node_ids():
            assert rebuilt.processing_power(nid) == network.processing_power(nid)

    def test_from_dense_view_edits_never_corrupt_callers_view(self):
        """Regression: scalar edits on the reconstructed network must swap in
        a patched copy-on-write view, never write through the shared arrays
        of the caller's (still cached) view."""
        network = random_network(12, 26, seed=8)
        view = network.dense_view()
        bw_before = view.bandwidth.copy()
        power_before = view.power.copy()
        rebuilt = TransportNetwork.from_dense_view(view)
        link = next(iter(rebuilt.links()))
        rebuilt.set_bandwidth(link.start_node, link.end_node,
                              link.bandwidth_mbps * 2.0)
        node_id = next(iter(rebuilt.node_ids()))
        rebuilt.set_processing_power(node_id,
                                     rebuilt.processing_power(node_id) * 3.0)
        patched = rebuilt.dense_view()
        assert patched is not view  # edits swapped in a fresh patched view
        np.testing.assert_array_equal(view.bandwidth, bw_before)
        np.testing.assert_array_equal(view.power, power_before)
        # The donor network still serves its original, untouched view.
        assert network.dense_view() is view
        # Unchanged arrays stay shared (copy-on-write, not a rebuild).
        assert patched.adjacency is view.adjacency

    def test_tensor_engines_solve_from_attached_view(self):
        """The `view=` entry point: an attached view drives the batched DPs
        zero-copy and reproduces the regular solve bit for bit."""
        from repro.core.tensor import (
            elpc_max_frame_rate_many,
            elpc_min_delay_many,
        )

        instances = _mixed_suite(6, n_networks=1, seed0=30)
        network = instances[0].network
        shm, spec = export_shared_view(network.dense_view())
        try:
            attached, attached_shm = attach_shared_view(spec)
            try:
                pipelines = [inst.pipeline for inst in instances]
                requests = [inst.request for inst in instances]
                for many in (elpc_min_delay_many, elpc_max_frame_rate_many):
                    plain = many(pipelines, network, requests)
                    via_view = many(pipelines, network, requests,
                                    view=attached)
                    for a, b in zip(plain, via_view):
                        if isinstance(a, Exception):
                            assert str(a) == str(b)
                        else:
                            assert a.path == b.path
                            assert a.objective_value == b.objective_value
            finally:
                del attached
                attached_shm.close()
        finally:
            shm.close()
            shm.unlink()

    def test_instance_spec_round_trip(self):
        [instance] = _mixed_suite(1)
        spec = InstanceSpec.from_instance(3, instance, "shm-key")
        assert spec.index == 3 and spec.network_key == "shm-key"
        resolved = spec.resolve(instance.network)
        assert resolved.pipeline is instance.pipeline
        assert resolved.network is instance.network
        assert resolved.request == instance.request
        assert resolved.name == instance.name


class TestWorkersBitIdentity:
    """The ``workers ∈ {1, 2, 4}`` sweep: every engine, both objectives."""

    @pytest.mark.parametrize("solver", ENGINES)
    @pytest.mark.parametrize("objective",
                             [Objective.MIN_DELAY, Objective.MAX_FRAME_RATE])
    def test_values_and_errors_identical_across_worker_counts(self, solver,
                                                              objective):
        instances = _mixed_suite()
        reference = solve_many(instances, solver=solver, objective=objective)
        assert reference.n_solved > 0
        if objective is Objective.MAX_FRAME_RATE:
            assert reference.n_failed > 0  # the sweep must mix in failures
        for workers in (2, 4):
            run = solve_many(instances, solver=solver, objective=objective,
                             workers=workers)
            assert run.workers == workers
            assert run.values() == reference.values()
            assert [i.error for i in run] == [i.error for i in reference]
            assert [i.name for i in run] == [i.name for i in reference]
            assert [i.index for i in run] == list(range(len(instances)))

    def test_tensor_engine_actually_used_under_workers(self):
        """Regression: the pool branch used to shadow the tensor dispatch."""
        instances = _mixed_suite(16, n_networks=1)
        run = solve_many(instances, solver="elpc-tensor",
                         objective=Objective.MIN_DELAY, workers=2,
                         chunk_size=4)
        solved = [item for item in run if item.ok]
        assert solved, "sweep must contain feasible min-delay items"
        for item in solved:
            assert item.mapping.algorithm == "elpc-tensor"
            # tensor_batch == 4 proves each worker chunk ran the *batched*
            # engine over its whole chunk, not per-item fallback solves.
            assert item.mapping.extras["tensor_batch"] == 4
            assert item.group_id is not None and item.group_size == 4

    def test_mixed_network_chunks_group_by_network(self):
        """Tensor chunks are packed per network, so groups stay large."""
        instances = _mixed_suite(24, n_networks=3)
        run = solve_many(instances, solver="elpc-tensor",
                         objective=Objective.MIN_DELAY, workers=2,
                         chunk_size=8)
        # 24 items round-robin over 3 networks -> 8 per network; the runner
        # reorders shippable items by network, so each chunk of 8 is one
        # pure same-network tensor group.
        assert all(item.group_size == 8 for item in run)
        reference = solve_many(instances, solver="elpc-tensor",
                               objective=Objective.MIN_DELAY)
        assert run.values() == reference.values()

    def test_parallel_mappings_reference_the_callers_network(self):
        """Workers detach their rebuilt network before pickling results and
        the parent re-attaches its own — the return path ships no network
        bytes, and callers get mappings over the very objects they passed."""
        instances = _mixed_suite(8)
        run = solve_many(instances, solver="elpc-vec",
                         objective=Objective.MIN_DELAY, workers=2)
        for instance, item in zip(instances, run):
            assert item.mapping.network is instance.network
            assert item.mapping.delay_ms > 0  # recomputable after re-attach

    @pytest.mark.parametrize("bad", [0, -1])
    def test_invalid_chunk_size_rejected(self, bad):
        with pytest.raises(SpecificationError):
            solve_many(_mixed_suite(4), solver="elpc-vec",
                       objective=Objective.MIN_DELAY, workers=2,
                       chunk_size=bad)

    def test_mappings_identical_not_just_values(self):
        instances = _mixed_suite(12)
        seq = solve_many(instances, solver="elpc-vec",
                         objective=Objective.MIN_DELAY)
        par = solve_many(instances, solver="elpc-vec",
                         objective=Objective.MIN_DELAY, workers=2)
        for a, b in zip(seq, par):
            assert a.mapping.path == b.mapping.path
            assert a.mapping.groups == b.mapping.groups
            assert a.mapping.delay_ms == b.mapping.delay_ms


class TestPerGroupWallTimes:
    def test_tensor_groups_expose_wall_time(self):
        instances = _mixed_suite(18, n_networks=3)
        run = solve_many(instances, solver="elpc-tensor",
                         objective=Objective.MIN_DELAY)
        groups = run.group_times()
        assert len(groups) == 3  # one per distinct network
        assert sum(size for size, _wall in groups.values()) == len(instances)
        for item in run:
            assert item.group_wall_s is not None and item.group_wall_s >= 0.0
            size, wall = groups[item.group_id]
            assert item.group_size == size
            assert item.runtime_s == pytest.approx(wall / size)

    def test_parallel_chunks_expose_wall_time(self):
        instances = _mixed_suite(16)
        run = solve_many(instances, solver="elpc-vec",
                         objective=Objective.MIN_DELAY, workers=2,
                         chunk_size=4)
        groups = run.group_times()
        assert len(groups) == 4  # 16 items / chunk_size 4
        assert sum(size for size, _wall in groups.values()) == len(instances)
        # Chunk ids are globally unique and sized like the chunks.
        assert all(size == 4 for size, _wall in groups.values())

    def test_group_ids_unique_across_parallel_tensor_chunks(self):
        instances = _mixed_suite(24, n_networks=3)
        run = solve_many(instances, solver="elpc-tensor",
                         objective=Objective.MIN_DELAY, workers=2,
                         chunk_size=6)
        by_group = {}
        for item in run:
            by_group.setdefault(item.group_id, []).append(item)
        for group_id, items in by_group.items():
            assert len(items) == items[0].group_size
            walls = {item.group_wall_s for item in items}
            assert len(walls) == 1


class TestTensorDispatchRespectsOverrides:
    def test_override_of_tensor_name_disables_group_dispatch(self):
        """Registry overrides always win: overriding "elpc-tensor" must route
        batches through the override, not the builtin group engine —
        sequentially and under workers alike."""
        from repro.core import get_solver

        calls = []
        original = get_solver("elpc-tensor", Objective.MIN_DELAY)

        def my_tensor(pipeline, network, request, **kwargs):
            calls.append(pipeline.n_modules)
            return original(pipeline, network, request, **kwargs)

        register_solver("elpc-tensor", Objective.MIN_DELAY, my_tensor,
                        overwrite=True)
        try:
            instances = _mixed_suite(6, n_networks=1, seed0=50)
            run = solve_many(instances, solver="elpc-tensor",
                             objective=Objective.MIN_DELAY)
            assert len(calls) == len(instances)  # override called per item
            assert all(item.group_id is None for item in run)
            reference_values = run.values()
        finally:
            register_solver("elpc-tensor", Objective.MIN_DELAY, original,
                            overwrite=True)
        # With the builtin restored, group dispatch engages again and the
        # values agree (the override wrapped the builtin).
        grouped = solve_many(instances, solver="elpc-tensor",
                             objective=Objective.MIN_DELAY)
        assert all(item.group_id is not None for item in grouped)
        assert grouped.values() == reference_values


class _UnpicklableError(Exception):
    def __init__(self, message):
        super().__init__(message)
        self.payload = lambda: None  # lambdas cannot be pickled


def _exploding_solver(pipeline, network, request, **kwargs):
    if pipeline.n_modules % 2 == 0:
        raise _UnpicklableError("boom from a worker")
    from repro.core import get_solver

    return get_solver("elpc", Objective.MIN_DELAY)(pipeline, network, request,
                                                   **kwargs)


class TestErrorPolicy:
    """Unexpected exceptions are recorded per item, never raised or fatal."""

    @pytest.fixture()
    def exploding(self):
        register_solver("exploding", Objective.MIN_DELAY, _exploding_solver,
                        overwrite=True)
        yield "exploding"
        _REGISTRY.pop(("exploding", Objective.MIN_DELAY), None)

    def _suite_with_even_and_odd_pipelines(self):
        network = random_network(10, 20, seed=1)
        instances = []
        for i in range(8):
            instances.append(ProblemInstance(
                pipeline=random_pipeline(4 if i % 2 == 0 else 5, seed=i),
                network=network,
                request=random_request(network, seed=i, min_hop_distance=1),
                name=f"err-{i}"))
        return instances

    def test_sequential_records_unexpected_exception(self, exploding):
        instances = self._suite_with_even_and_odd_pipelines()
        run = solve_many(instances, solver=exploding,
                         objective=Objective.MIN_DELAY)
        assert run.n_solved == 4 and run.n_failed == 4
        for item in run:
            if item.ok:
                assert item.error is None and item.traceback is None
            else:
                assert "_UnpicklableError" in item.error
                assert "boom from a worker" in item.error
                assert "Traceback" in item.traceback

    def test_pool_records_unpicklable_exception(self, exploding):
        """The exception object cannot cross the process boundary; its
        description must — and the pool must survive."""
        instances = self._suite_with_even_and_odd_pipelines()
        run = solve_many(instances, solver=exploding,
                         objective=Objective.MIN_DELAY, workers=2)
        assert run.workers == 2
        assert run.n_solved == 4 and run.n_failed == 4
        sequential = solve_many(instances, solver=exploding,
                                objective=Objective.MIN_DELAY)
        assert [i.error for i in run] == [i.error for i in sequential]
        assert run.values() == sequential.values()

    def test_tensor_group_failure_recorded_per_item(self):
        # A malformed network (a non-numeric power smuggled past validation)
        # makes the tensor engine's dense-view build raise a plain
        # ValueError; the poisoned group must be recorded item by item while
        # the healthy group still solves.
        instances = _mixed_suite(8, n_networks=2, seed0=40)
        poisoned = instances[0].network  # items 0, 2, 4, 6
        object.__setattr__(poisoned.node(poisoned.node_ids()[0]),
                           "processing_power", "not-a-power")
        run = solve_many(instances, solver="elpc-tensor",
                         objective=Objective.MIN_DELAY)
        for i, item in enumerate(run):
            if i % 2 == 0:
                assert not item.ok
                assert "ValueError" in item.error
                assert item.traceback and "Traceback" in item.traceback
            else:
                assert item.ok


class TestPersistentRunner:
    def test_exports_cached_across_batches(self):
        instances = _mixed_suite(12, n_networks=2)
        with ParallelBatchRunner(workers=2) as runner:
            first = solve_many(instances, solver="elpc-vec",
                               objective=Objective.MIN_DELAY, runner=runner)
            assert len(runner._exports) == 2
            second = solve_many(instances, solver="elpc-tensor",
                                objective=Objective.MIN_DELAY, runner=runner)
            assert len(runner._exports) == 2  # reused, not re-exported
            assert first.values() == second.values()
            assert first.workers == second.workers == 2
        assert runner._exports == {}

    def test_mutated_network_re_exported(self):
        instances = _mixed_suite(6, n_networks=1, nodes=8, links=14)
        network = instances[0].network
        ids = network.node_ids()
        u, v = next((a, b) for a in ids for b in ids
                    if a < b and not network.has_link(a, b))
        with ParallelBatchRunner(workers=2) as runner:
            solve_many(instances, solver="elpc-vec",
                       objective=Objective.MIN_DELAY, runner=runner)
            [(_, _, stale_shm, stale_spec)] = runner._exports.values()
            network.connect(u, v, bandwidth_mbps=1000.0, min_delay_ms=0.01)
            after = solve_many(instances, solver="elpc-vec",
                               objective=Objective.MIN_DELAY, runner=runner)
            # The stale export was evicted and unlinked on re-export; only
            # the fresh block remains.
            assert len(runner._exports) == 1
            [(_, _, fresh_shm, fresh_spec)] = runner._exports.values()
            assert fresh_spec.shm_name != stale_spec.shm_name
            reference = solve_many(instances, solver="elpc-vec",
                                   objective=Objective.MIN_DELAY)
            assert after.values() == reference.values()
        assert runner._exports == {}

    def test_solver_registered_after_pool_start_falls_back_in_process(self):
        """Workers fork with a snapshot of the registry; a solver registered
        afterwards is unknown to them, and the chunk must come back for an
        in-process solve instead of recording bogus failures."""
        from repro.core import get_solver

        instances = _mixed_suite(6)
        with ParallelBatchRunner(workers=2) as runner:
            solve_many(instances, solver="elpc-vec",
                       objective=Objective.MIN_DELAY, runner=runner)  # forks
            register_solver("late-registered", Objective.MIN_DELAY,
                            get_solver("elpc-vec", Objective.MIN_DELAY),
                            overwrite=True)
            try:
                late = solve_many(instances, solver="late-registered",
                                  objective=Objective.MIN_DELAY, runner=runner)
            finally:
                _REGISTRY.pop(("late-registered", Objective.MIN_DELAY), None)
        reference = solve_many(instances, solver="elpc-vec",
                               objective=Objective.MIN_DELAY)
        assert late.n_solved == reference.n_solved == len(instances)
        assert late.values() == reference.values()

    def test_closed_runner_rejected(self):
        runner = ParallelBatchRunner(workers=2)
        runner.close()
        with pytest.raises(SpecificationError):
            runner.solve(_mixed_suite(2), solver="elpc-vec")
        runner.close()  # idempotent

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(SpecificationError):
            ParallelBatchRunner(workers=0)

    def test_malformed_network_export_falls_back_in_process(self):
        """A network whose dense view raises a *non*-ReproError during
        export must not abort the parallel campaign: the item is recorded
        exactly like workers=1 records it."""
        instances = _mixed_suite(4, seed0=60)
        poisoned_net = random_network(8, 14, seed=61)
        object.__setattr__(poisoned_net.node(poisoned_net.node_ids()[0]),
                           "processing_power", "not-a-power")
        broken = ProblemInstance(pipeline=random_pipeline(4, seed=62),
                                 network=poisoned_net,
                                 request=random_request(poisoned_net, seed=62,
                                                        min_hop_distance=1),
                                 name="malformed-net")
        batch = instances + [broken]
        sequential = solve_many(batch, solver="elpc-vec",
                                objective=Objective.MIN_DELAY)
        parallel = solve_many(batch, solver="elpc-vec",
                              objective=Objective.MIN_DELAY, workers=2)
        assert parallel.values() == sequential.values()
        assert [i.error for i in parallel] == [i.error for i in sequential]
        assert "ValueError" in parallel.items[-1].error

    def test_unexportable_network_falls_back_in_process(self):
        # An empty network has no dense view; the runner must solve such
        # items in-process with the sequential error strings.
        instances = _mixed_suite(4)
        from repro.model import EndToEndRequest

        broken = ProblemInstance(pipeline=random_pipeline(4, seed=9),
                                 network=TransportNetwork(),
                                 request=EndToEndRequest(source=0, destination=1),
                                 name="empty-net")
        batch = instances + [broken]
        sequential = solve_many(batch, solver="elpc",
                                objective=Objective.MIN_DELAY)
        parallel = solve_many(batch, solver="elpc",
                              objective=Objective.MIN_DELAY, workers=2)
        assert parallel.values() == sequential.values()
        assert [i.error for i in parallel] == [i.error for i in sequential]
        assert parallel.items[-1].error is not None


class TestComparisonHarnessUnderWorkers:
    def test_agreement_check_runs_on_pool(self):
        from repro.analysis import check_solver_agreement

        instances = _mixed_suite(9)
        report = check_solver_agreement(instances, workers=2)
        assert report.ok, [d.describe() for d in report.disagreements]
        assert report.workers == 2
        assert report.to_dict()["workers"] == 2

    def test_run_comparison_matches_sequential(self):
        from repro.analysis import run_comparison

        instances = _mixed_suite(8)
        seq = run_comparison(instances, Objective.MIN_DELAY,
                             ["elpc-tensor", "greedy"])
        par = run_comparison(instances, Objective.MIN_DELAY,
                             ["elpc-tensor", "greedy"], workers=2)
        for algorithm in ("elpc-tensor", "greedy"):
            assert seq.series(algorithm) == par.series(algorithm)


class TestStartMethodGuard:
    """Non-``fork`` start methods must fail fast, not run untested.

    The runtime is built on fork semantics (registry snapshot inheritance,
    shared resource tracker); ``_pool_context`` takes the platform and the
    platform-default start method as parameters so the spawn/forkserver
    verdicts are testable from Linux.
    """

    def test_linux_always_forks(self):
        from repro.core.parallel import _pool_context

        assert _pool_context(platform="linux").get_start_method() == "fork"

    @pytest.mark.parametrize("platform,method", [
        ("darwin", "spawn"),
        ("win32", "spawn"),
        ("darwin", "forkserver"),
    ])
    def test_spawn_and_forkserver_fail_fast(self, platform, method):
        from repro.core.parallel import _pool_context
        from repro.exceptions import UnsupportedStartMethodError

        with pytest.raises(UnsupportedStartMethodError) as excinfo:
            _pool_context(platform=platform, default_method=method)
        assert excinfo.value.start_method == method
        message = str(excinfo.value)
        assert method in message
        assert "workers=1" in message  # the actionable way out

    def test_explicit_fork_default_is_honoured_off_linux(self):
        from repro.core.parallel import _pool_context

        context = _pool_context(platform="darwin", default_method="fork")
        assert context.get_start_method() == "fork"

    def test_error_is_a_repro_error(self):
        """Callers catching ReproError (the CLI does) see the clear message."""
        from repro.exceptions import ReproError, UnsupportedStartMethodError

        assert issubclass(UnsupportedStartMethodError, ReproError)
