"""Unit tests for :mod:`repro.model.validation`."""

import pytest

from repro.exceptions import InfeasibleMappingError, SpecificationError
from repro.generators import line_network, random_pipeline
from repro.model import (
    EndToEndRequest,
    assert_no_reuse,
    check_delay_instance,
    check_framerate_instance,
    validate_mapping_structure,
)


class TestDelayFeasibility:
    def test_feasible_instance(self, simple_pipeline, simple_network, simple_request):
        report = check_delay_instance(simple_pipeline, simple_network, simple_request)
        assert report.feasible
        assert report.reason is None
        assert report.hop_distance == 2
        report.raise_if_infeasible()  # must not raise

    def test_pipeline_shorter_than_shortest_path(self):
        net = line_network(6, seed=1)
        pipeline = random_pipeline(3, seed=1)  # 3 modules but 6 hops needed
        report = check_delay_instance(pipeline, net, EndToEndRequest(0, 5))
        assert not report.feasible
        assert "shortest" in report.reason
        with pytest.raises(InfeasibleMappingError):
            report.raise_if_infeasible(source=0, destination=5)

    def test_disconnected_endpoints(self, simple_network, simple_pipeline):
        from repro.model import ComputingNode
        simple_network.add_node(ComputingNode(node_id=9, processing_power=1.0))
        report = check_delay_instance(simple_pipeline, simple_network,
                                      EndToEndRequest(0, 9))
        assert not report.feasible
        assert "disconnected" in report.reason

    def test_unknown_endpoint_raises(self, simple_pipeline, simple_network):
        with pytest.raises(SpecificationError):
            check_delay_instance(simple_pipeline, simple_network, EndToEndRequest(0, 42))


class TestFramerateFeasibility:
    def test_feasible_instance(self, simple_pipeline, simple_network, simple_request):
        report = check_framerate_instance(simple_pipeline, simple_network, simple_request)
        assert report.feasible

    def test_more_modules_than_nodes(self, simple_network, simple_request):
        pipeline = random_pipeline(10, seed=3)
        report = check_framerate_instance(pipeline, simple_network, simple_request)
        assert not report.feasible
        assert "node reuse" in report.reason

    def test_pipeline_longer_than_longest_simple_path(self):
        # Line 0-1-2-3-4 with request 0->2: longest simple path 0..2 has 3 nodes,
        # a 4-module pipeline cannot be placed without reuse.
        net = line_network(5, seed=2)
        pipeline = random_pipeline(4, seed=2)
        report = check_framerate_instance(pipeline, net, EndToEndRequest(0, 2))
        assert not report.feasible
        assert "longest" in report.reason

    def test_exact_fit_on_line(self):
        net = line_network(5, seed=2)
        pipeline = random_pipeline(5, seed=2)
        report = check_framerate_instance(pipeline, net, EndToEndRequest(0, 4))
        assert report.feasible

    def test_large_network_skips_exhaustive_check(self):
        from repro.generators import random_network
        net = random_network(40, 100, seed=9)
        pipeline = random_pipeline(10, seed=9)
        report = check_framerate_instance(pipeline, net, EndToEndRequest(0, 1),
                                          exhaustive_node_limit=10)
        # With the exhaustive check skipped the report is optimistic.
        assert report.feasible or report.reason is not None


class TestMappingStructureValidation:
    def test_valid_structure(self, simple_pipeline, simple_network, simple_request):
        validate_mapping_structure(simple_pipeline, simple_network,
                                   [[0, 1], [2], [3]], [0, 2, 3], simple_request)

    def test_wrong_source(self, simple_pipeline, simple_network, simple_request):
        with pytest.raises(SpecificationError):
            validate_mapping_structure(simple_pipeline, simple_network,
                                       [[0, 1], [2], [3]], [1, 2, 3], simple_request)

    def test_wrong_destination(self, simple_pipeline, simple_network, simple_request):
        with pytest.raises(SpecificationError):
            validate_mapping_structure(simple_pipeline, simple_network,
                                       [[0, 1], [2, 3]], [0, 2], simple_request)

    def test_bad_group_cover(self, simple_pipeline, simple_network):
        with pytest.raises(SpecificationError):
            validate_mapping_structure(simple_pipeline, simple_network,
                                       [[0, 1], [3]], [0, 1])

    def test_bad_walk(self, simple_pipeline, simple_network):
        with pytest.raises(SpecificationError):
            validate_mapping_structure(simple_pipeline, simple_network,
                                       [[0, 1], [2, 3]], [0, 3])


class TestAssertNoReuse:
    def test_accepts_distinct(self):
        assert_no_reuse([0, 4, 2, 7])

    def test_rejects_repeat(self):
        with pytest.raises(SpecificationError):
            assert_no_reuse([0, 4, 2, 4])
