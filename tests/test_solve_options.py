"""Tests for the unified SolveOptions bundle and the curated package API.

Covers the merge semantics shared by every consumer (legacy kwargs and
``options=`` must agree or raise), the acceptance points (``solve_many``,
``place_many``, ``ServiceConfig`` / ``SolveService``), the curated
``repro.__all__`` (every name resolves), and the ``_use_tensor_dispatch``
deprecation shim.
"""

from __future__ import annotations

import warnings

import pytest

import repro
from repro.core import Objective, SolveOptions, place_many, solve_many
from repro.exceptions import SpecificationError
from repro.generators import random_network, random_pipeline, random_request
from repro.model import ProblemInstance
from repro.service import ServiceConfig, SolveService


def _instances(count=3, *, seed=3):
    network = random_network(10, 24, seed=seed)
    return [
        ProblemInstance(
            pipeline=random_pipeline(5, seed=500 + i),
            network=network,
            request=random_request(network, seed=600 + i, min_hop_distance=2),
            name=f"opt-{i}")
        for i in range(count)
    ]


class TestMergeSemantics:
    def test_unset_fields_inherit_legacy_kwargs(self):
        merged = SolveOptions().merged_with(solver="elpc-vec", workers=2)
        assert merged.solver == "elpc-vec"
        assert merged.workers == 2
        assert merged.objective is None  # still unspecified

    def test_set_fields_survive_unset_kwargs(self):
        options = SolveOptions(solver="elpc-tensor", chunk_size=8)
        merged = options.merged_with()
        assert merged == options

    def test_agreeing_duplicates_are_fine(self):
        options = SolveOptions(solver="elpc-vec")
        merged = options.merged_with(solver="elpc-vec")
        assert merged.solver == "elpc-vec"

    @pytest.mark.parametrize("field,a,b", [
        ("solver", "elpc-vec", "elpc-tensor"),
        ("objective", Objective.MIN_DELAY, Objective.MAX_FRAME_RATE),
        ("backend", "numpy", "cupy"),
        ("workers", 2, 4),
        ("chunk_size", 8, 16),
    ])
    def test_conflicting_duplicates_raise(self, field, a, b):
        options = SolveOptions(**{field: a})
        with pytest.raises(SpecificationError, match=f"conflicting {field!r}"):
            options.merged_with(**{field: b})

    def test_conflict_is_a_value_error(self):
        options = SolveOptions(solver="elpc-vec")
        with pytest.raises(ValueError):
            options.merged_with(solver="elpc")

    def test_solver_kwargs_merge_key_wise(self):
        options = SolveOptions(solver_kwargs={"backend": "numpy"})
        merged = options.merged_with(solver_kwargs={"chunk": 4})
        assert merged.solver_kwargs == {"backend": "numpy", "chunk": 4}

    def test_solver_kwargs_conflict_raises(self):
        options = SolveOptions(solver_kwargs={"backend": "numpy"})
        with pytest.raises(SpecificationError, match="backend"):
            options.merged_with(solver_kwargs={"backend": "cupy"})

    def test_frozen(self):
        with pytest.raises(AttributeError):
            SolveOptions().solver = "elpc"


class TestSolveManyAcceptance:
    def test_options_equivalent_to_kwargs(self):
        instances = _instances()
        via_kwargs = solve_many(instances, solver="elpc-vec",
                                objective=Objective.MIN_DELAY)
        via_options = solve_many(instances, options=SolveOptions(
            solver="elpc-vec", objective=Objective.MIN_DELAY))
        for a, b in zip(via_kwargs.items, via_options.items):
            assert a.mapping.delay_ms == b.mapping.delay_ms
            assert list(a.mapping.path) == list(b.mapping.path)

    def test_conflict_raises(self):
        instances = _instances(1)
        with pytest.raises(SpecificationError, match="conflicting"):
            solve_many(instances, solver="elpc",
                       options=SolveOptions(solver="elpc-vec"))

    def test_bad_options_type_rejected(self):
        with pytest.raises(SpecificationError, match="SolveOptions"):
            solve_many(_instances(1), options={"solver": "elpc-vec"})

    def test_defaults_still_apply_when_unspecified(self):
        instances = _instances(2)
        result = solve_many(instances, options=SolveOptions())
        assert result.solver == "elpc-vec"
        assert all(item.ok for item in result.items)


class TestPlaceManyAcceptance:
    def test_options_solver_is_the_engine(self):
        instances = _instances()
        result = place_many(instances,
                            options=SolveOptions(solver="elpc-vec"),
                            node_capacity_factor=1e9,
                            link_capacity_factor=1e9)
        assert result.engine == "elpc-vec"

    def test_engine_conflict_raises(self):
        with pytest.raises(SpecificationError, match="conflicting"):
            place_many(_instances(1), engine="elpc",
                       options=SolveOptions(solver="elpc-vec"))

    @pytest.mark.parametrize("options", [
        SolveOptions(workers=2),
        SolveOptions(chunk_size=4),
        SolveOptions(backend="numpy"),
    ])
    def test_batch_dispatch_knobs_rejected(self, options):
        with pytest.raises(SpecificationError):
            place_many(_instances(1), options=options)


class TestServiceAcceptance:
    def test_options_feed_service_config(self):
        config = ServiceConfig(options=SolveOptions(solver="elpc-vec",
                                                    workers=None))
        assert config.default_solver == "elpc-vec"

    def test_config_conflict_raises(self):
        with pytest.raises(SpecificationError, match="conflict"):
            ServiceConfig(default_solver="elpc",
                          options=SolveOptions(solver="elpc-vec"))

    def test_unsupported_option_fields_rejected(self):
        with pytest.raises(SpecificationError):
            ServiceConfig(options=SolveOptions(
                objective=Objective.MIN_DELAY))

    def test_solve_service_accepts_options(self):
        service = SolveService(ServiceConfig(),
                               options=SolveOptions(solver="elpc-vec"))
        assert service.config.default_solver == "elpc-vec"

    def test_solve_service_double_options_conflict(self):
        config = ServiceConfig(options=SolveOptions(solver="elpc-tensor"))
        with pytest.raises(SpecificationError):
            SolveService(config, options=SolveOptions(solver="elpc-vec"))


class TestCuratedNamespace:
    def test_every_exported_name_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_placement_api_is_exported(self):
        for name in ("place_many", "ClusterState", "PlacementRequest",
                     "PlacementResult", "SolveOptions", "CapacityError",
                     "validate_placements", "available_placers"):
            assert name in repro.__all__

    def test_deprecated_alias_warns_and_resolves(self):
        from repro.core import batch

        with pytest.deprecated_call(match="_use_tensor_dispatch"):
            legacy = batch._use_tensor_dispatch
        assert legacy is batch.uses_tensor_dispatch

    def test_unknown_attribute_still_raises(self):
        from repro.core import batch

        with pytest.raises(AttributeError):
            batch.does_not_exist  # noqa: B018

    def test_no_warning_for_canonical_name(self):
        from repro.core import batch

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert callable(batch.uses_tensor_dispatch)
