"""Property-based tests (hypothesis) for the core invariants.

These complement the example-based tests with randomly generated instances:

* the ELPC delay DP always matches the exhaustive optimum (optimality),
* every solver returns structurally valid mappings (walk, endpoints, grouping),
* Eq. 1 / Eq. 2 evaluation invariants (delay ≥ bottleneck, monotonicity under
  data scaling, MLD toggling),
* serialization round-trips,
* the bandwidth estimator inverts the transport cost model.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.core import (
    Objective,
    elpc_max_frame_rate,
    elpc_min_delay,
    exhaustive_min_delay,
    mapping_from_assignment,
)
from repro.exceptions import InfeasibleMappingError
from repro.generators import (
    ParameterRanges,
    random_network,
    random_pipeline,
    random_request,
)
from repro.measurement import estimate_link, probe_link
from repro.model import (
    Pipeline,
    ProblemInstance,
    bottleneck_time_ms,
    end_to_end_delay_ms,
    instance_from_json,
    instance_to_json,
)

# A moderate profile: property tests stay fast but still explore many instances.
PROFILE = settings(max_examples=25, deadline=None,
                   suppress_health_check=[HealthCheck.too_slow])


# --------------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------------- #
@st.composite
def tiny_instances(draw):
    """Random small instances suitable for exhaustive verification."""
    seed = draw(st.integers(min_value=0, max_value=10_000))
    n_modules = draw(st.integers(min_value=3, max_value=6))
    n_nodes = draw(st.integers(min_value=4, max_value=8))
    max_links = n_nodes * (n_nodes - 1) // 2
    n_links = draw(st.integers(min_value=n_nodes - 1, max_value=max_links))
    pipeline = random_pipeline(n_modules, seed=seed)
    network = random_network(n_nodes, n_links, seed=seed + 1)
    request = random_request(network, seed=seed + 2, min_hop_distance=1)
    # Only keep instances on which the mapping problem is structurally feasible
    # (the pipeline must be at least as long as the shortest end-to-end path).
    assume(network.hop_distance(request.source, request.destination) <= n_modules - 1)
    return pipeline, network, request


@st.composite
def medium_instances(draw):
    """Random medium instances (no exhaustive verification)."""
    seed = draw(st.integers(min_value=0, max_value=10_000))
    n_modules = draw(st.integers(min_value=4, max_value=10))
    n_nodes = draw(st.integers(min_value=10, max_value=25))
    n_links = draw(st.integers(min_value=2 * n_nodes, max_value=3 * n_nodes))
    pipeline = random_pipeline(n_modules, seed=seed)
    network = random_network(n_nodes, n_links, seed=seed + 1)
    request = random_request(network, seed=seed + 2, min_hop_distance=2)
    assume(network.hop_distance(request.source, request.destination) <= n_modules - 1)
    return pipeline, network, request


# --------------------------------------------------------------------------- #
# ELPC optimality and structural invariants
# --------------------------------------------------------------------------- #
class TestElpcDelayProperties:
    @PROFILE
    @given(tiny_instances())
    def test_dp_matches_exhaustive_optimum(self, instance):
        pipeline, network, request = instance
        dp = elpc_min_delay(pipeline, network, request)
        brute = exhaustive_min_delay(pipeline, network, request)
        assert dp.delay_ms == pytest.approx(brute.delay_ms, rel=1e-9, abs=1e-9)

    @PROFILE
    @given(medium_instances())
    def test_mapping_structure_always_valid(self, instance):
        pipeline, network, request = instance
        mapping = elpc_min_delay(pipeline, network, request)
        assert mapping.path[0] == request.source
        assert mapping.path[-1] == request.destination
        assert network.is_walk(mapping.path)
        flat = [m for g in mapping.groups for m in g]
        assert flat == list(range(pipeline.n_modules))
        assert mapping.delay_ms >= mapping.bottleneck_ms - 1e-9

    @PROFILE
    @given(medium_instances())
    def test_elpc_beats_or_ties_every_baseline(self, instance):
        from repro.baselines import greedy_min_delay, streamline_min_delay
        pipeline, network, request = instance
        optimal = elpc_min_delay(pipeline, network, request).delay_ms
        for baseline in (greedy_min_delay, streamline_min_delay):
            try:
                value = baseline(pipeline, network, request).delay_ms
            except InfeasibleMappingError:
                continue
            assert value >= optimal - 1e-6

    @PROFILE
    @given(medium_instances(), st.floats(min_value=1.2, max_value=4.0))
    def test_delay_monotone_in_data_scale(self, instance, factor):
        """Scaling every message and workload up cannot reduce the optimal delay."""
        pipeline, network, request = instance
        base = elpc_min_delay(pipeline, network, request).delay_ms
        scaled = elpc_min_delay(pipeline.scaled(data=factor), network, request).delay_ms
        assert scaled >= base - 1e-6


class TestElpcFrameRateProperties:
    @PROFILE
    @given(medium_instances())
    def test_no_reuse_and_bounds(self, instance):
        pipeline, network, request = instance
        assume(pipeline.n_modules <= network.n_nodes)
        try:
            mapping = elpc_max_frame_rate(pipeline, network, request)
        except InfeasibleMappingError:
            assume(False)
            return
        assert len(mapping.path) == pipeline.n_modules
        assert len(set(mapping.path)) == len(mapping.path)
        # frame period can never beat the heaviest single component lower bound:
        # any mapping must execute the heaviest module somewhere.
        best_power = max(network.processing_power(v) for v in network.node_ids())
        heaviest = max(m.workload for m in pipeline.modules)
        assert mapping.bottleneck_ms >= heaviest / (best_power * 1e3) - 1e-9


# --------------------------------------------------------------------------- #
# Cost-model invariants
# --------------------------------------------------------------------------- #
class TestCostModelProperties:
    @PROFILE
    @given(medium_instances())
    def test_delay_at_least_bottleneck_and_mld_monotone(self, instance):
        pipeline, network, request = instance
        mapping = elpc_min_delay(pipeline, network, request)
        groups, path = mapping.groups, mapping.path
        delay = end_to_end_delay_ms(pipeline, network, groups, path)
        bottleneck = bottleneck_time_ms(pipeline, network, groups, path)
        assert delay >= bottleneck - 1e-9
        without_mld = end_to_end_delay_ms(pipeline, network, groups, path,
                                          include_link_delay=False)
        assert without_mld <= delay + 1e-12

    @PROFILE
    @given(tiny_instances(), st.integers(min_value=0, max_value=10_000))
    def test_any_feasible_assignment_evaluates_consistently(self, instance, seed):
        """mapping_from_assignment + Eq.1 equals summing the per-module costs."""
        from repro.baselines import random_min_delay
        pipeline, network, request = instance
        mapping = random_min_delay(pipeline, network, request, seed=seed)
        manual = 0.0
        assignment = mapping.assignment()
        for j in range(1, pipeline.n_modules):
            module = pipeline.modules[j]
            node = assignment[j]
            manual += module.workload / (network.processing_power(node) * 1e3)
            if assignment[j - 1] != node:
                link = network.link(assignment[j - 1], node)
                manual += link.transport_time_ms(module.input_bytes)
        assert mapping.delay_ms == pytest.approx(manual, rel=1e-9)


# --------------------------------------------------------------------------- #
# Serialization and estimation round-trips
# --------------------------------------------------------------------------- #
class TestRoundTripProperties:
    @PROFILE
    @given(medium_instances())
    def test_instance_json_roundtrip(self, instance):
        pipeline, network, request = instance
        inst = ProblemInstance(pipeline=pipeline, network=network, request=request,
                               name="prop")
        again = instance_from_json(instance_to_json(inst))
        assert again.size_signature == inst.size_signature
        assert again.pipeline.total_workload() == pytest.approx(pipeline.total_workload())
        # evaluating the same mapping on the round-tripped instance gives the same delay
        mapping = elpc_min_delay(pipeline, network, request)
        delay_again = end_to_end_delay_ms(again.pipeline, again.network,
                                          mapping.groups, mapping.path)
        assert delay_again == pytest.approx(mapping.delay_ms, rel=1e-9)

    @PROFILE
    @given(st.floats(min_value=1.0, max_value=900.0),
           st.floats(min_value=0.0, max_value=20.0))
    def test_bandwidth_estimator_inverts_cost_model(self, bandwidth, mld):
        observations = probe_link(bandwidth, mld, noise_fraction=0.0,
                                  repetitions=1, seed=0)
        estimate = estimate_link(observations)
        assert estimate.bandwidth_mbps == pytest.approx(bandwidth, rel=1e-6)
        assert estimate.min_delay_ms == pytest.approx(mld, abs=1e-6)

    @PROFILE
    @given(st.integers(min_value=2, max_value=12),
           st.integers(min_value=0, max_value=1_000))
    def test_random_pipeline_always_valid(self, n_modules, seed):
        pipeline = random_pipeline(n_modules, seed=seed)
        # construction enforces chaining; re-validate core invariants explicitly
        assert pipeline.n_modules == n_modules
        assert pipeline.source.is_forwarding
        assert pipeline.sink.output_bytes == 0.0
        for prev, nxt in zip(pipeline.modules, pipeline.modules[1:]):
            assert prev.output_bytes == nxt.input_bytes
