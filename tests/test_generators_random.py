"""Tests for the random pipeline / network generators."""

import numpy as np
import pytest

from repro.exceptions import SpecificationError
from repro.generators import (
    DEFAULT_RANGES,
    ParameterRanges,
    max_links,
    min_links_for_connectivity,
    pipeline_from_sizes,
    random_connected_edge_set,
    random_network,
    random_pipeline,
    random_pipeline_batch,
    random_request,
    rng_from_seed,
)


class TestRngHandling:
    def test_int_seed_reproducible(self):
        a = rng_from_seed(5).random(3)
        b = rng_from_seed(5).random(3)
        assert np.allclose(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(1)
        assert rng_from_seed(gen) is gen

    def test_none_gives_generator(self):
        assert hasattr(rng_from_seed(None), "random")


class TestParameterRanges:
    def test_default_ranges_positive(self):
        r = DEFAULT_RANGES
        assert r.module_complexity[0] > 0
        assert r.data_size_bytes[0] > 0
        assert r.node_power[0] > 0

    def test_invalid_ranges_rejected(self):
        with pytest.raises(SpecificationError):
            ParameterRanges(node_power=(10.0, 5.0))
        with pytest.raises(SpecificationError):
            ParameterRanges(module_complexity=(0.0, 5.0))
        with pytest.raises(SpecificationError):
            ParameterRanges(link_delay_ms=(-1.0, 5.0))

    def test_draws_within_bounds(self):
        rng = rng_from_seed(3)
        r = DEFAULT_RANGES
        values = r.draw_data_size(rng, size=200)
        assert np.all(values >= r.data_size_bytes[0])
        assert np.all(values <= r.data_size_bytes[1])
        bws = r.draw_bandwidth(rng, size=200)
        assert np.all(bws >= r.link_bandwidth_mbps[0])
        assert np.all(bws <= r.link_bandwidth_mbps[1])

    def test_homogeneous_variant_degenerate(self):
        homo = DEFAULT_RANGES.homogeneous()
        assert homo.node_power[0] == homo.node_power[1]
        assert homo.link_bandwidth_mbps[0] == homo.link_bandwidth_mbps[1]

    def test_scaled_data(self):
        scaled = DEFAULT_RANGES.scaled_data(2.0)
        assert scaled.data_size_bytes[0] == pytest.approx(2 * DEFAULT_RANGES.data_size_bytes[0])


class TestRandomPipeline:
    def test_structure(self):
        p = random_pipeline(8, seed=1)
        assert p.n_modules == 8
        assert p.source.is_forwarding
        assert p.sink.output_bytes == 0.0

    def test_reproducible(self):
        assert random_pipeline(6, seed=2) == random_pipeline(6, seed=2)
        assert random_pipeline(6, seed=2) != random_pipeline(6, seed=3)

    def test_minimum_size_enforced(self):
        with pytest.raises(SpecificationError):
            random_pipeline(1, seed=0)

    def test_values_in_ranges(self):
        p = random_pipeline(20, seed=4)
        lo_c, hi_c = DEFAULT_RANGES.module_complexity
        lo_d, hi_d = DEFAULT_RANGES.data_size_bytes
        for mod in p.modules[1:]:
            assert lo_c <= mod.complexity <= hi_c
            assert lo_d <= mod.input_bytes <= hi_d

    def test_batch(self):
        batch = random_pipeline_batch(5, 6, seed=9)
        assert len(batch) == 5
        assert len({p.modules[1].complexity for p in batch}) > 1  # actually random
        with pytest.raises(SpecificationError):
            random_pipeline_batch(0, 6, seed=9)

    def test_pipeline_from_sizes_validation(self):
        with pytest.raises(SpecificationError):
            pipeline_from_sizes([100.0], [1.0, 2.0])
        with pytest.raises(SpecificationError):
            pipeline_from_sizes([], [])


class TestRandomNetwork:
    def test_link_count_bounds(self):
        assert min_links_for_connectivity(10) == 9
        assert max_links(10) == 45

    def test_edge_set_connected_and_exact_count(self):
        rng = rng_from_seed(7)
        for n, l in [(5, 4), (8, 12), (12, 40)]:
            edges = random_connected_edge_set(n, l, rng)
            assert len(edges) == l
            import networkx as nx
            g = nx.Graph(edges)
            g.add_nodes_from(range(n))
            assert nx.is_connected(g)

    def test_edge_count_out_of_bounds_rejected(self):
        rng = rng_from_seed(1)
        with pytest.raises(SpecificationError):
            random_connected_edge_set(5, 3, rng)
        with pytest.raises(SpecificationError):
            random_connected_edge_set(5, 11, rng)

    def test_random_network_properties(self):
        net = random_network(15, 40, seed=11)
        assert net.n_nodes == 15
        assert net.n_links == 40
        assert net.is_connected()
        lo, hi = DEFAULT_RANGES.node_power
        assert all(lo <= node.processing_power <= hi for node in net.nodes())

    def test_random_network_reproducible(self):
        a = random_network(10, 20, seed=3)
        b = random_network(10, 20, seed=3)
        assert a.to_dict() == b.to_dict()

    def test_random_request_min_hop(self):
        net = random_network(20, 40, seed=5)
        request = random_request(net, seed=5, min_hop_distance=2)
        assert net.hop_distance(request.source, request.destination) >= 2

    def test_random_request_needs_two_nodes(self):
        from repro.model import ComputingNode, TransportNetwork
        net = TransportNetwork(nodes=[ComputingNode(0, 1.0)])
        with pytest.raises(SpecificationError):
            random_request(net, seed=1)
