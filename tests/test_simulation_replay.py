"""Validation tests: the simulator must agree with the analytical cost model."""

import pytest

from repro.core import elpc_max_frame_rate, elpc_min_delay, solve, Objective
from repro.exceptions import InfeasibleMappingError, SimulationError
from repro.generators import random_network, random_pipeline, random_request
from repro.simulation import simulate_interactive, simulate_streaming


class TestInteractiveReplay:
    def test_matches_eq1_exactly(self, illustration_instance):
        inst = illustration_instance
        mapping = elpc_min_delay(inst.pipeline, inst.network, inst.request)
        result = simulate_interactive(mapping)
        assert result.delay_ms == pytest.approx(result.predicted_delay_ms, rel=1e-12)
        assert result.prediction_error_relative < 1e-12
        assert result.events_processed > 0
        assert len(result.trace) > 0

    @pytest.mark.parametrize("algorithm", ["elpc", "streamline", "greedy", "source-only"])
    def test_matches_eq1_for_every_algorithm(self, medium_instance, algorithm):
        pipeline, network, request = medium_instance
        mapping = solve(algorithm, pipeline, network, request, Objective.MIN_DELAY)
        result = simulate_interactive(mapping)
        assert result.delay_ms == pytest.approx(mapping.delay_ms, rel=1e-12)

    def test_trace_has_one_record_per_stage(self, illustration_instance):
        inst = illustration_instance
        mapping = elpc_min_delay(inst.pipeline, inst.network, inst.request)
        result = simulate_interactive(mapping)
        expected_records = len(mapping.groups) + (len(mapping.path) - 1)
        assert len(result.trace) == expected_records


class TestStreamingReplay:
    def test_saturated_rate_matches_eq2(self, illustration_instance):
        inst = illustration_instance
        mapping = elpc_max_frame_rate(inst.pipeline, inst.network, inst.request)
        result = simulate_streaming(mapping, n_frames=80)
        assert result.achieved_frame_rate_fps == pytest.approx(
            result.predicted_frame_rate_fps, rel=1e-6)
        assert result.prediction_error_relative < 1e-6

    def test_paced_source_caps_the_rate(self, illustration_instance):
        inst = illustration_instance
        mapping = elpc_max_frame_rate(inst.pipeline, inst.network, inst.request)
        bottleneck_rate = mapping.frame_rate_fps
        slow_interval = 4.0 * 1e3 / bottleneck_rate  # source 4x slower than bottleneck
        result = simulate_streaming(mapping, n_frames=40, interval_ms=slow_interval)
        assert result.achieved_frame_rate_fps == pytest.approx(1e3 / slow_interval, rel=0.05)
        assert result.achieved_frame_rate_fps < bottleneck_rate

    def test_bottleneck_station_is_busiest(self, illustration_instance):
        inst = illustration_instance
        mapping = elpc_max_frame_rate(inst.pipeline, inst.network, inst.request)
        result = simulate_streaming(mapping, n_frames=60)
        breakdown = mapping.breakdown()
        if breakdown.bottleneck_kind == "node":
            expected = f"node:{mapping.path[breakdown.bottleneck_index]}"
        else:
            u = mapping.path[breakdown.bottleneck_index]
            v = mapping.path[breakdown.bottleneck_index + 1]
            expected = f"link:{min(u, v)}-{max(u, v)}"
        assert result.busiest_station == expected
        assert result.station_utilisation[expected] >= max(
            result.station_utilisation.values()) - 1e-9

    def test_latency_grows_under_saturation(self, illustration_instance):
        inst = illustration_instance
        mapping = elpc_max_frame_rate(inst.pipeline, inst.network, inst.request)
        result = simulate_streaming(mapping, n_frames=50, interval_ms=0.0)
        assert result.max_latency_ms > result.mean_latency_ms > 0

    def test_too_few_frames_rejected(self, illustration_instance):
        inst = illustration_instance
        mapping = elpc_max_frame_rate(inst.pipeline, inst.network, inst.request)
        with pytest.raises(SimulationError):
            simulate_streaming(mapping, n_frames=1)

    def test_never_completed_frame_raises_naming_the_frame(
            self, illustration_instance, monkeypatch):
        """A frame without a completion event must raise SimulationError (not
        a bare KeyError) and say which frame went missing."""
        from repro.simulation.engine import SimulationEngine

        inst = illustration_instance
        mapping = elpc_max_frame_rate(inst.pipeline, inst.network, inst.request)
        monkeypatch.setattr(SimulationEngine, "run", lambda self: None)
        with pytest.raises(SimulationError, match=r"frame 0 never completed"):
            simulate_streaming(mapping, n_frames=5)

    def test_zero_cost_pipeline_reports_infinite_rate(self):
        """All frames completing at the same instant (span_ms == 0) is the
        infinite-rate path, not a division error."""
        import math

        from repro.core import mapping_from_assignment
        from repro.model import Pipeline

        pipeline = Pipeline.from_stage_specs(
            source_bytes=0, stages=[(0.0, 0), (0.0, 0)], name="zero-cost")
        network = random_network(6, 12, seed=5)
        source = network.node_ids()[0]
        mapping = mapping_from_assignment(
            pipeline, network, [source] * pipeline.n_modules,
            objective=Objective.MAX_FRAME_RATE)
        result = simulate_streaming(mapping, n_frames=6, include_link_delay=False)
        assert math.isinf(result.achieved_frame_rate_fps)
        assert math.isinf(result.predicted_frame_rate_fps)
        assert result.prediction_error_relative == 0.0

    def test_node_reuse_mapping_respects_sharing(self):
        """A mapping that reuses a node must not stream faster than the shared
        bottleneck predicts."""
        from repro.extensions import elpc_max_frame_rate_with_reuse

        pipeline = random_pipeline(6, seed=71)
        network = random_network(10, 24, seed=71)
        request = random_request(network, seed=71, min_hop_distance=2)
        mapping = elpc_max_frame_rate_with_reuse(pipeline, network, request)
        result = simulate_streaming(mapping, n_frames=80)
        assert result.achieved_frame_rate_fps <= result.predicted_frame_rate_fps * 1.02
        assert result.achieved_frame_rate_fps == pytest.approx(
            result.predicted_frame_rate_fps, rel=0.05)


class TestCrossAlgorithmStreaming:
    @pytest.mark.parametrize("seed", [3, 5, 8])
    def test_predictions_hold_for_all_streaming_algorithms(self, seed):
        pipeline = random_pipeline(6, seed=seed)
        network = random_network(12, 30, seed=seed)
        request = random_request(network, seed=seed, min_hop_distance=2)
        for algorithm in ("elpc", "greedy", "streamline", "direct-path"):
            try:
                mapping = solve(algorithm, pipeline, network, request,
                                Objective.MAX_FRAME_RATE)
            except InfeasibleMappingError:
                continue
            result = simulate_streaming(mapping, n_frames=60)
            assert result.achieved_frame_rate_fps == pytest.approx(
                result.predicted_frame_rate_fps, rel=1e-3)
