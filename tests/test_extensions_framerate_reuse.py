"""Tests for the frame-rate-with-node-reuse extension."""

import pytest

from repro.core import Objective, elpc_max_frame_rate
from repro.exceptions import InfeasibleMappingError
from repro.extensions import elpc_max_frame_rate_with_reuse
from repro.generators import line_network, random_network, random_pipeline, random_request
from repro.model import EndToEndRequest, bottleneck_time_ms


class TestBasicBehaviour:
    def test_valid_mapping(self, simple_pipeline, simple_network, simple_request):
        mapping = elpc_max_frame_rate_with_reuse(simple_pipeline, simple_network,
                                                 simple_request)
        assert mapping.objective is Objective.MAX_FRAME_RATE
        assert mapping.algorithm == "elpc-reuse"
        assert mapping.allow_reuse
        assert mapping.path[0] == simple_request.source
        assert mapping.path[-1] == simple_request.destination

    def test_dp_estimate_matches_shared_bottleneck(self, simple_pipeline, simple_network,
                                                   simple_request):
        mapping = elpc_max_frame_rate_with_reuse(simple_pipeline, simple_network,
                                                 simple_request)
        shared = bottleneck_time_ms(simple_pipeline, simple_network,
                                    mapping.groups, mapping.path,
                                    account_node_sharing=True)
        assert mapping.extras["dp_bottleneck_ms"] == pytest.approx(shared)

    def test_feasible_where_no_reuse_variant_is_not(self):
        """On a short line, a long pipeline can only be placed with reuse."""
        network = line_network(4, seed=3)
        pipeline = random_pipeline(7, seed=3)
        request = EndToEndRequest(0, 3)
        with pytest.raises(InfeasibleMappingError):
            elpc_max_frame_rate(pipeline, network, request)
        mapping = elpc_max_frame_rate_with_reuse(pipeline, network, request)
        assert mapping.frame_rate_fps > 0

    def test_infeasible_when_disconnected(self, simple_pipeline, simple_network):
        from repro.model import ComputingNode
        simple_network.add_node(ComputingNode(node_id=9, processing_power=1.0))
        with pytest.raises(InfeasibleMappingError):
            elpc_max_frame_rate_with_reuse(simple_pipeline, simple_network,
                                           EndToEndRequest(0, 9))


class TestRelationToRestrictedVariant:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5, 6])
    def test_reuse_never_hurts(self, seed):
        """Allowing reuse can only enlarge the solution space, so the achieved
        frame rate must be at least that of the no-reuse heuristic (both are
        heuristics, so allow a tiny tolerance)."""
        pipeline = random_pipeline(6, seed=seed)
        network = random_network(12, 30, seed=seed + 300)
        request = random_request(network, seed=seed, min_hop_distance=2)
        try:
            restricted = elpc_max_frame_rate(pipeline, network, request)
        except InfeasibleMappingError:
            restricted = None
        with_reuse = elpc_max_frame_rate_with_reuse(pipeline, network, request)
        if restricted is not None:
            assert with_reuse.frame_rate_fps >= restricted.frame_rate_fps * 0.999

    def test_collapses_to_delay_feasibility(self):
        """Any delay-feasible instance is feasible for the reuse variant."""
        for seed in range(4):
            pipeline = random_pipeline(8, seed=seed)
            network = random_network(10, 20, seed=seed + 400)
            request = random_request(network, seed=seed, min_hop_distance=1)
            mapping = elpc_max_frame_rate_with_reuse(pipeline, network, request)
            assert mapping.frame_rate_fps > 0
