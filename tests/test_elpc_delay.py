"""Tests for the ELPC minimum end-to-end delay dynamic program."""

import pytest

from repro.core import (
    DPTable,
    Objective,
    elpc_min_delay,
    elpc_min_delay_vec,
    exhaustive_min_delay,
)
from repro.exceptions import InfeasibleMappingError
from repro.generators import (
    complete_network,
    line_network,
    random_network,
    random_pipeline,
    random_request,
)
from repro.model import EndToEndRequest, end_to_end_delay_ms

#: Both engines must pass every edge-case test below identically.
DELAY_SOLVERS = [pytest.param(elpc_min_delay, id="scalar"),
                 pytest.param(elpc_min_delay_vec, id="vectorized")]


class TestBasicBehaviour:
    def test_returns_valid_mapping(self, simple_pipeline, simple_network, simple_request):
        mapping = elpc_min_delay(simple_pipeline, simple_network, simple_request)
        assert mapping.objective is Objective.MIN_DELAY
        assert mapping.algorithm == "elpc"
        assert mapping.path[0] == simple_request.source
        assert mapping.path[-1] == simple_request.destination
        assert mapping.delay_ms > 0

    def test_dp_value_equals_mapping_delay(self, simple_pipeline, simple_network,
                                           simple_request):
        mapping = elpc_min_delay(simple_pipeline, simple_network, simple_request)
        assert mapping.extras["dp_value_ms"] == pytest.approx(mapping.delay_ms)

    def test_keep_table_exposes_dp_table(self, simple_pipeline, simple_network,
                                         simple_request):
        mapping = elpc_min_delay(simple_pipeline, simple_network, simple_request,
                                 keep_table=True)
        table = mapping.extras["dp_table"]
        assert isinstance(table, DPTable)
        assert table.value(simple_pipeline.n_modules - 1,
                           simple_request.destination) == pytest.approx(mapping.delay_ms)

    def test_runtime_recorded(self, simple_pipeline, simple_network, simple_request):
        mapping = elpc_min_delay(simple_pipeline, simple_network, simple_request)
        assert mapping.runtime_s >= 0.0

    def test_source_equals_destination(self, simple_pipeline, simple_network):
        mapping = elpc_min_delay(simple_pipeline, simple_network, EndToEndRequest(1, 1))
        # Optimal may keep everything on node 1 or route through faster neighbours;
        # either way it must start and end on node 1.
        assert mapping.path[0] == 1 and mapping.path[-1] == 1

    def test_client_server_two_modules(self, simple_network):
        from repro.model import Pipeline
        pipeline = Pipeline.client_server(data_bytes=400_000, sink_complexity=10.0)
        mapping = elpc_min_delay(pipeline, simple_network, EndToEndRequest(0, 1))
        assert mapping.path == [0, 1]
        expected = end_to_end_delay_ms(pipeline, simple_network, [[0], [1]], [0, 1])
        assert mapping.delay_ms == pytest.approx(expected)


class TestOptimality:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5, 6, 7])
    def test_matches_exhaustive_on_random_instances(self, seed):
        pipeline = random_pipeline(5, seed=seed)
        network = random_network(7, 13, seed=seed)
        request = random_request(network, seed=seed, min_hop_distance=1)
        dp = elpc_min_delay(pipeline, network, request)
        brute = exhaustive_min_delay(pipeline, network, request)
        assert dp.delay_ms == pytest.approx(brute.delay_ms, rel=1e-9)

    def test_matches_exhaustive_on_illustration_case(self, illustration_instance):
        inst = illustration_instance
        dp = elpc_min_delay(inst.pipeline, inst.network, inst.request)
        brute = exhaustive_min_delay(inst.pipeline, inst.network, inst.request)
        assert dp.delay_ms == pytest.approx(brute.delay_ms, rel=1e-9)

    def test_never_worse_than_single_node_or_spread(self, illustration_instance):
        inst = illustration_instance
        from repro.baselines import direct_path_min_delay, source_only_min_delay
        dp = elpc_min_delay(inst.pipeline, inst.network, inst.request)
        assert dp.delay_ms <= source_only_min_delay(
            inst.pipeline, inst.network, inst.request).delay_ms + 1e-9
        assert dp.delay_ms <= direct_path_min_delay(
            inst.pipeline, inst.network, inst.request).delay_ms + 1e-9

    def test_mld_excluded_variant_is_never_larger(self, medium_instance):
        pipeline, network, request = medium_instance
        with_mld = elpc_min_delay(pipeline, network, request)
        without = elpc_min_delay(pipeline, network, request, include_link_delay=False)
        assert without.extras["dp_value_ms"] <= with_mld.extras["dp_value_ms"] + 1e-9


class TestStructuralProperties:
    def test_node_reuse_exploited_on_line_with_fast_middle(self):
        # Line 0-1-2 where node 1 is vastly faster: the optimum should group
        # all computing modules on node 1 (reusing it for several modules).
        from repro.model import CommunicationLink, ComputingNode, Pipeline, TransportNetwork
        network = TransportNetwork(
            nodes=[ComputingNode(0, 10.0), ComputingNode(1, 1000.0), ComputingNode(2, 10.0)],
            links=[CommunicationLink(0, 1, 500.0, 0.1), CommunicationLink(1, 2, 500.0, 0.1)])
        pipeline = Pipeline.from_stage_specs(
            1_000_000, [(50.0, 500_000), (50.0, 250_000), (50.0, 100_000), (10.0, 0)])
        mapping = elpc_min_delay(pipeline, network, EndToEndRequest(0, 2))
        assert set(mapping.modules_on_node(1)) >= {1, 2, 3}

    def test_infeasible_when_disconnected(self, simple_pipeline, simple_network):
        from repro.model import ComputingNode
        simple_network.add_node(ComputingNode(node_id=9, processing_power=1.0))
        with pytest.raises(InfeasibleMappingError):
            elpc_min_delay(simple_pipeline, simple_network, EndToEndRequest(0, 9))

    def test_infeasible_when_pipeline_too_short(self):
        network = line_network(6, seed=0)
        pipeline = random_pipeline(3, seed=0)
        with pytest.raises(InfeasibleMappingError):
            elpc_min_delay(pipeline, network, EndToEndRequest(0, 5))

    def test_works_on_complete_graph(self):
        network = complete_network(8, seed=5)
        pipeline = random_pipeline(6, seed=5)
        mapping = elpc_min_delay(pipeline, network, EndToEndRequest(0, 7))
        assert mapping.path[0] == 0 and mapping.path[-1] == 7

    def test_larger_instance_runs_quickly(self, medium_instance):
        pipeline, network, request = medium_instance
        mapping = elpc_min_delay(pipeline, network, request)
        assert mapping.runtime_s < 5.0
        assert mapping.extras["dp_relaxations"] > 0


class TestEdgeCasesBothEngines:
    """Edge-case coverage shared by the scalar and vectorized solvers."""

    @pytest.mark.parametrize("solver", DELAY_SOLVERS)
    def test_without_link_delay_drops_mld_terms(self, solver, simple_pipeline,
                                                simple_network, simple_request):
        with_mld = solver(simple_pipeline, simple_network, simple_request)
        without = solver(simple_pipeline, simple_network, simple_request,
                         include_link_delay=False)
        assert without.extras["include_link_delay"] is False
        assert without.extras["dp_value_ms"] <= with_mld.extras["dp_value_ms"] + 1e-9
        # Recomputing the stripped-down mapping's cost without MLD must
        # reproduce the DP value (the solver optimised the right model).
        recomputed = end_to_end_delay_ms(simple_pipeline, simple_network,
                                         without.groups, without.path,
                                         include_link_delay=False)
        assert recomputed == pytest.approx(without.extras["dp_value_ms"])

    @pytest.mark.parametrize("solver", DELAY_SOLVERS)
    def test_keep_table_final_cell_matches(self, solver, simple_pipeline,
                                           simple_network, simple_request):
        mapping = solver(simple_pipeline, simple_network, simple_request,
                         keep_table=True)
        table = mapping.extras["dp_table"]
        assert isinstance(table, DPTable)
        assert table.value(simple_pipeline.n_modules - 1,
                           simple_request.destination) == pytest.approx(mapping.delay_ms)
        # Backtracking the kept table reproduces the mapping's walk.
        assert table.backtrack_path(simple_request.destination) == mapping.path

    @pytest.mark.parametrize("solver", DELAY_SOLVERS)
    def test_keep_table_off_by_default(self, solver, simple_pipeline,
                                       simple_network, simple_request):
        mapping = solver(simple_pipeline, simple_network, simple_request)
        assert "dp_table" not in mapping.extras

    @pytest.mark.parametrize("solver", DELAY_SOLVERS)
    def test_disconnected_destination_raises(self, solver, simple_pipeline,
                                             simple_network):
        from repro.model import ComputingNode
        simple_network.add_node(ComputingNode(node_id=9, processing_power=1.0))
        with pytest.raises(InfeasibleMappingError):
            solver(simple_pipeline, simple_network, EndToEndRequest(0, 9))

    @pytest.mark.parametrize("solver", DELAY_SOLVERS)
    def test_disconnected_source_raises(self, solver, simple_pipeline,
                                        simple_network):
        from repro.model import ComputingNode
        simple_network.add_node(ComputingNode(node_id=9, processing_power=1.0))
        with pytest.raises(InfeasibleMappingError):
            solver(simple_pipeline, simple_network, EndToEndRequest(9, 3))

    @pytest.mark.parametrize("solver", DELAY_SOLVERS)
    def test_minimal_client_server_pipeline(self, solver, simple_network):
        """The smallest legal pipeline: one source + one computing sink."""
        from repro.model import Pipeline
        pipeline = Pipeline.client_server(data_bytes=400_000, sink_complexity=10.0)
        mapping = solver(pipeline, simple_network, EndToEndRequest(0, 1))
        assert mapping.path == [0, 1]
        expected = end_to_end_delay_ms(pipeline, simple_network, [[0], [1]], [0, 1])
        assert mapping.delay_ms == pytest.approx(expected)

    @pytest.mark.parametrize("solver", DELAY_SOLVERS)
    def test_minimal_pipeline_same_endpoint(self, solver, simple_network):
        """Source == destination with the minimal pipeline stays on one node."""
        from repro.model import Pipeline
        pipeline = Pipeline.client_server(data_bytes=400_000, sink_complexity=10.0)
        mapping = solver(pipeline, simple_network, EndToEndRequest(2, 2))
        assert mapping.path[0] == 2 and mapping.path[-1] == 2

    def test_vectorized_survives_network_mutation(self, simple_pipeline,
                                                  simple_network, simple_request):
        """The dense view cache is invalidated when the topology changes."""
        before = elpc_min_delay_vec(simple_pipeline, simple_network, simple_request)
        simple_network.connect(0, 3, bandwidth_mbps=1000.0, min_delay_ms=0.01)
        after = elpc_min_delay_vec(simple_pipeline, simple_network, simple_request)
        reference = elpc_min_delay(simple_pipeline, simple_network, simple_request)
        assert after.delay_ms == pytest.approx(reference.delay_ms, rel=1e-12)
        assert after.delay_ms <= before.delay_ms + 1e-9
