"""Unit tests for :mod:`repro.model.pipeline`."""

import pytest

from repro.exceptions import SpecificationError
from repro.model import ComputingModule, Pipeline, source_module


def make_modules():
    return (
        source_module(1000.0),
        ComputingModule(1, 2.0, 1000.0, 600.0),
        ComputingModule(2, 3.0, 600.0, 200.0),
        ComputingModule(3, 5.0, 200.0, 0.0),
    )


class TestPipelineConstruction:
    def test_valid_pipeline(self):
        p = Pipeline(modules=make_modules(), name="t")
        assert p.n_modules == 4
        assert len(p) == 4
        assert p.source.module_id == 0
        assert p.sink.module_id == 3
        assert [m.module_id for m in p] == [0, 1, 2, 3]

    def test_too_few_modules_rejected(self):
        with pytest.raises(SpecificationError):
            Pipeline(modules=(source_module(10.0),))

    def test_non_consecutive_ids_rejected(self):
        mods = list(make_modules())
        mods[2] = mods[2].with_id(5)
        with pytest.raises(SpecificationError):
            Pipeline(modules=tuple(mods))

    def test_data_size_mismatch_rejected(self):
        mods = list(make_modules())
        mods[2] = ComputingModule(2, 3.0, 999.0, 200.0)  # input != predecessor output
        with pytest.raises(SpecificationError):
            Pipeline(modules=tuple(mods))

    def test_first_module_must_be_source(self):
        mods = list(make_modules())
        mods[0] = ComputingModule(0, 1.0, 0.0, 1000.0)  # computes => not a pure source
        with pytest.raises(SpecificationError):
            Pipeline(modules=tuple(mods))

    def test_last_module_must_be_terminal(self):
        mods = list(make_modules())
        mods[3] = ComputingModule(3, 5.0, 200.0, 10.0)  # emits data
        with pytest.raises(SpecificationError):
            Pipeline(modules=tuple(mods))

    def test_client_server_degenerate_pipeline(self):
        p = Pipeline.client_server(data_bytes=500.0, sink_complexity=3.0)
        assert p.n_modules == 2
        assert p.source.output_bytes == 500.0
        assert p.sink.workload == pytest.approx(1500.0)


class TestDataFlowQuantities:
    def test_message_size(self):
        p = Pipeline(modules=make_modules())
        assert p.message_size(0) == 1000.0
        assert p.message_size(1) == 600.0
        assert p.message_size(3) == 0.0

    def test_message_size_out_of_range(self):
        p = Pipeline(modules=make_modules())
        with pytest.raises(SpecificationError):
            p.message_size(9)

    def test_total_workload(self):
        p = Pipeline(modules=make_modules())
        expected = 2.0 * 1000 + 3.0 * 600 + 5.0 * 200
        assert p.total_workload() == pytest.approx(expected)

    def test_total_data_volume(self):
        p = Pipeline(modules=make_modules())
        assert p.total_data_volume() == pytest.approx(1000 + 600 + 200)

    def test_workloads_aligned_with_modules(self):
        p = Pipeline(modules=make_modules())
        assert p.workloads() == [0.0, 2000.0, 1800.0, 1000.0]


class TestGrouping:
    def test_group_workload_and_output(self):
        p = Pipeline(modules=make_modules())
        assert p.group_workload([1, 2]) == pytest.approx(2000 + 1800)
        assert p.group_output_bytes([1, 2]) == 200.0

    def test_group_output_of_empty_group_rejected(self):
        p = Pipeline(modules=make_modules())
        with pytest.raises(SpecificationError):
            p.group_output_bytes([])

    def test_group_workload_unknown_module(self):
        p = Pipeline(modules=make_modules())
        with pytest.raises(SpecificationError):
            p.group_workload([99])

    def test_contiguous_groupings_count(self):
        p = Pipeline(modules=make_modules())  # n = 4
        # number of ways to split 4 items into q contiguous groups is C(3, q-1)
        assert len(list(p.contiguous_groupings(1))) == 1
        assert len(list(p.contiguous_groupings(2))) == 3
        assert len(list(p.contiguous_groupings(3))) == 3
        assert len(list(p.contiguous_groupings(4))) == 1

    def test_contiguous_groupings_cover_all_modules(self):
        p = Pipeline(modules=make_modules())
        for q in range(1, 5):
            for grouping in p.contiguous_groupings(q):
                flat = [m for g in grouping for m in g]
                assert flat == [0, 1, 2, 3]
                assert all(g for g in grouping)

    def test_contiguous_groupings_bad_q(self):
        p = Pipeline(modules=make_modules())
        with pytest.raises(SpecificationError):
            list(p.contiguous_groupings(0))
        with pytest.raises(SpecificationError):
            list(p.contiguous_groupings(5))

    def test_split_after(self):
        p = Pipeline(modules=make_modules())
        assert p.split_after([0, 2]) == [[0], [1, 2], [3]]
        assert p.split_after([]) == [[0, 1, 2, 3]]

    def test_split_after_bad_cut(self):
        p = Pipeline(modules=make_modules())
        with pytest.raises(SpecificationError):
            p.split_after([3])  # cannot cut after the last module


class TestFromStageSpecs:
    def test_chaining(self):
        p = Pipeline.from_stage_specs(1000.0, [(2.0, 400.0), (5.0, 100.0), (1.0, 0.0)])
        assert p.n_modules == 4
        assert p.modules[1].input_bytes == 1000.0
        assert p.modules[2].input_bytes == 400.0
        assert p.modules[3].input_bytes == 100.0
        assert p.sink.output_bytes == 0.0

    def test_last_stage_output_forced_to_zero(self):
        p = Pipeline.from_stage_specs(1000.0, [(2.0, 400.0), (5.0, 12345.0)])
        assert p.sink.output_bytes == 0.0

    def test_stage_names_applied(self):
        p = Pipeline.from_stage_specs(10.0, [(1.0, 5.0), (1.0, 0.0)],
                                      stage_names=["a", "b"])
        assert p.modules[1].name == "a"
        assert p.modules[2].name == "b"

    def test_stage_names_length_mismatch(self):
        with pytest.raises(SpecificationError):
            Pipeline.from_stage_specs(10.0, [(1.0, 5.0)], stage_names=["a", "b"])

    def test_empty_stages_rejected(self):
        with pytest.raises(SpecificationError):
            Pipeline.from_stage_specs(10.0, [])


class TestTransformAndSerialize:
    def test_scaled(self):
        p = Pipeline(modules=make_modules())
        doubled = p.scaled(data=2.0)
        assert doubled.total_data_volume() == pytest.approx(2 * p.total_data_volume())
        assert doubled.total_workload() == pytest.approx(2 * p.total_workload())

    def test_renamed(self):
        p = Pipeline(modules=make_modules(), name="x")
        assert p.renamed("y").name == "y"

    def test_dict_roundtrip(self):
        p = Pipeline(modules=make_modules(), name="rt")
        again = Pipeline.from_dict(p.to_dict())
        assert again == p
        assert again.name == "rt"
