"""Tests for pre-fork service replicas (repro.service.replicas).

Covers the PR's replica acceptance surface: the shared-listener binding
modes, the shared-memory fleet table, fleet-aggregated ``/healthz`` through
a real ``repro serve --replicas 2`` subprocess, per-replica interner
independence with portable ``network_ref`` digests (a ref learned from one
replica resolves on another via the client's transparent re-post), and the
supervisor's crash-restart loop keeping clients served while a replica is
killed mid-run.
"""

from __future__ import annotations

import json
import os
import re
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.exceptions import SpecificationError
from repro.generators import random_network, random_pipeline, random_request
from repro.model import ProblemInstance
from repro.service import (
    BackgroundServer,
    FleetState,
    NetworkInterner,
    ReplicaSupervisor,
    ServiceClient,
    ServiceConfig,
    SolveService,
    bind_listeners,
)
from repro.service.replicas import FLEET_COUNTERS

requires_fork = pytest.mark.skipif(not hasattr(os, "fork"),
                                   reason="pre-fork replicas need os.fork")


def _instances(count, *, network_seed=3, n_nodes=12, n_links=30, n_modules=6):
    network = random_network(n_nodes, n_links, seed=network_seed)
    return [
        ProblemInstance(
            pipeline=random_pipeline(n_modules, seed=100 + i),
            network=network,
            request=random_request(network, seed=200 + i, min_hop_distance=2),
            name=f"replica-{i}")
        for i in range(count)
    ]


def _spawn_fleet(replicas, *extra_args):
    """``repro serve --replicas N`` as a subprocess; returns (proc, port)."""
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    args = ["serve", "--port", "0", "--replicas", str(replicas),
            "--max-wait-ms", "1", *extra_args]
    proc = subprocess.Popen(
        [sys.executable, "-c",
         "import sys; from repro.cli import main; "
         "raise SystemExit(main(sys.argv[1:]))", *args],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, env=env, text=True)
    announce = proc.stdout.readline()
    match = re.search(r"listening on 127\.0\.0\.1:(\d+)", announce)
    assert match, f"no announce line, got {announce!r}"
    if replicas > 1:
        assert f"replicas={replicas}" in announce
    return proc, int(match.group(1))


def _stop_fleet(proc):
    proc.send_signal(signal.SIGINT)
    assert proc.wait(timeout=60) == 0
    assert "drained and stopped" in proc.stdout.read()


def _wait_fleet_ready(client, replicas, timeout=30.0):
    """Poll ``/healthz`` until every replica is alive (post-fork startup)."""
    client.wait_ready(timeout=timeout)
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status = client.healthz()
        if status["fleet"]["alive"] == replicas:
            return status
        time.sleep(0.05)
    raise AssertionError(f"fleet never reached {replicas} alive replicas")


class TestBindListeners:
    def test_single_listener(self):
        socks, port, reuse = bind_listeners("127.0.0.1", 0, 1)
        try:
            assert len(socks) == 1 and port > 0 and reuse is False
        finally:
            for sock in socks:
                sock.close()

    @pytest.mark.skipif(not hasattr(socket, "SO_REUSEPORT"),
                        reason="platform lacks SO_REUSEPORT")
    def test_reuseport_gives_one_socket_per_replica(self):
        socks, port, reuse = bind_listeners("127.0.0.1", 0, 3)
        try:
            assert reuse is True
            assert len(socks) == 3
            assert all(sock.getsockname()[1] == port for sock in socks)
        finally:
            for sock in socks:
                sock.close()

    def test_rejects_bad_count(self):
        with pytest.raises(SpecificationError, match="listener count"):
            bind_listeners("127.0.0.1", 0, 0)

    def test_bound_port_conflict_raises(self):
        socks, port, _reuse = bind_listeners("127.0.0.1", 0, 1)
        try:
            with pytest.raises(OSError):
                bind_listeners("127.0.0.1", port, 1)
        finally:
            for sock in socks:
                sock.close()


class TestFleetState:
    def test_rejects_bad_replica_count(self):
        with pytest.raises(SpecificationError, match="replicas"):
            FleetState(0)

    def test_publish_and_summary_roundtrip(self):
        fleet = FleetState(2)
        fleet.mark_spawned(0, 111)
        fleet.mark_spawned(1, 222)
        fleet.publish(0, (10, 9, 4, 9, 3, 6, 1))
        fleet.publish(1, (20, 18, 7, 18, 5, 11, 2))
        rows = fleet.per_replica()
        assert [row["replica_id"] for row in rows] == [0, 1]
        assert [row["pid"] for row in rows] == [111, 222]
        assert all(row["alive"] for row in rows)
        assert rows[0]["requests_total"] == 10
        assert rows[1]["connections_total"] == 5
        assert rows[1]["admitted_total"] == 11
        summary = fleet.summary()
        assert summary["replicas"] == 2
        assert summary["alive"] == 2
        assert summary["restarts_total"] == 0
        assert summary["requests_total"] == 30
        assert summary["responses_total"] == 27
        assert summary["admitted_total"] == 17
        assert summary["rejected_total"] == 3
        assert set(FLEET_COUNTERS) <= set(summary)

    def test_death_and_restart_accounting(self):
        fleet = FleetState(2)
        fleet.mark_spawned(0, 111)
        fleet.mark_spawned(1, 222)
        fleet.mark_dead(1)
        assert fleet.summary()["alive"] == 1
        fleet.record_restart(1)
        fleet.mark_spawned(1, 333)
        summary = fleet.summary()
        assert summary["alive"] == 2
        assert summary["restarts_total"] == 1
        assert fleet.per_replica()[1]["pid"] == 333


class TestSupervisorValidation:
    @requires_fork
    def test_rejects_bad_replica_count(self):
        with pytest.raises(SpecificationError, match="replicas"):
            ReplicaSupervisor(replicas=0)

    @requires_fork
    def test_rejects_bad_backoff(self):
        with pytest.raises(SpecificationError, match="backoff"):
            ReplicaSupervisor(replicas=2, restart_backoff_s=1.0,
                              max_backoff_s=0.5)


class TestInternerIndependence:
    def test_each_service_owns_its_interner(self):
        config = ServiceConfig(max_wait_ms=0.0)
        a, b = SolveService(config), SolveService(config)
        assert a.interner is not b.interner
        payload = _instances(1)[0].network.to_dict()
        a.interner.intern(payload)
        assert len(a.interner) == 1 and len(b.interner) == 0

    def test_replica_id_tagged_on_status(self):
        service = SolveService(ServiceConfig(max_wait_ms=0.0), replica_id=3)
        assert service.replica_id == 3
        assert service.status()["replica_id"] == 3
        assert SolveService(ServiceConfig(max_wait_ms=0.0)).status()[
            "replica_id"] == 0

    @requires_fork
    def test_ref_digest_identical_across_fork(self):
        """network_ref is a pure digest of the payload, so independent
        per-replica interners assign the same ref to the same topology."""
        import multiprocessing

        payload = _instances(1)[0].network.to_dict()
        parent_ref = NetworkInterner.ref_of(payload)
        context = multiprocessing.get_context("fork")
        child_queue = context.Queue()

        def child():
            child_queue.put(NetworkInterner.ref_of(payload))

        process = context.Process(target=child)
        process.start()
        child_ref = child_queue.get(timeout=30)
        process.join(timeout=30)
        assert child_ref == parent_ref

    def test_ref_learned_on_one_server_resolves_on_another(self):
        """A client that learned a network_ref from server A keeps using it
        against server B (fresh interner): B answers unknown-ref once, the
        client re-posts in full transparently, and the re-assigned ref is
        the same digest."""
        instances = _instances(2)
        config = ServiceConfig(max_wait_ms=0.0)
        with BackgroundServer(config) as a, BackgroundServer(config) as b:
            client = ServiceClient(port=a.port)
            try:
                first = client.solve(instances[0])
                assert first["ok"] and first["network_ref"]
                # Rebind the same client object (and its learned refs) to B.
                client.close()
                client.port = b.port
                second = client.solve(instances[1])
                assert second["ok"]
                assert second["network_ref"] == first["network_ref"]
            finally:
                client.close()


@requires_fork
class TestReplicaFleet:
    @pytest.fixture(scope="class")
    def fleet(self):
        proc, port = _spawn_fleet(2)
        try:
            yield port
        finally:
            _stop_fleet(proc)

    def test_healthz_aggregates_the_fleet(self, fleet):
        with ServiceClient(port=fleet, timeout=30) as client:
            status = _wait_fleet_ready(client, 2)
        assert status["replica_id"] in (0, 1)
        assert status["fleet"]["replicas"] == 2
        assert status["fleet"]["alive"] == 2
        rows = status["per_replica"]
        assert [row["replica_id"] for row in rows] == [0, 1]
        assert all(row["alive"] for row in rows)
        pids = {row["pid"] for row in rows}
        assert len(pids) == 2 and all(pid > 0 for pid in pids)

    def test_refs_portable_across_replicas_under_kernel_balancing(self, fleet):
        """Per-request connections hash across replicas; every solve keeps
        using the ref learned from whichever replica answered first, and the
        unknown-ref re-post makes that invisible to the caller."""
        instances = _instances(6)
        seen = set()
        with ServiceClient(port=fleet, timeout=30, keep_alive=False) as client:
            _wait_fleet_ready(client, 2)
            refs = set()
            for attempt in range(40):
                response = client.solve(instances[attempt % len(instances)])
                assert response["ok"], response.get("error")
                assert "replica_id" in response
                seen.add(response["replica_id"])
                refs.add(response["network_ref"])
                if len(seen) == 2 and attempt >= 12:
                    break
        assert seen == {0, 1}, f"kernel never balanced: {seen}"
        assert len(refs) == 1  # same topology -> same digest on every replica

    def test_fleet_counters_accumulate_across_replicas(self, fleet):
        instances = _instances(3)
        with ServiceClient(port=fleet, timeout=30) as client:
            before = _wait_fleet_ready(client, 2)["fleet"]
            for instance in instances:
                assert client.solve(instance)["ok"]
            after = client.healthz()["fleet"]
        assert after["responses_total"] - before["responses_total"] \
            >= len(instances)
        assert after["requests_total"] >= after["responses_total"] - 1


@requires_fork
class TestReplicaRestart:
    def test_killed_replica_restarts_and_clients_keep_being_served(self):
        """SIGKILL one replica mid-run: the supervisor restarts it, the
        fleet returns to full strength, and a client hammering the fleet
        the whole time never hangs and never loses a request silently —
        every solve() returns (ok or a raised error), and service resumes
        within the run."""
        proc, port = _spawn_fleet(2)
        instances = _instances(4)
        outcomes = []  # (phase, ok) tuples, append-only from one thread
        phase = {"value": "before"}
        stop = threading.Event()

        def requester():
            with ServiceClient(port=port, timeout=30) as client:
                while not stop.is_set():
                    try:
                        response = client.solve(
                            instances[len(outcomes) % len(instances)])
                        outcomes.append((phase["value"],
                                         bool(response.get("ok"))))
                    except Exception:
                        # A connection torn down by the kill may surface
                        # once; what matters is that it *returns*.
                        outcomes.append((phase["value"], False))
                    time.sleep(0.01)

        try:
            with ServiceClient(port=port, timeout=30) as probe:
                status = _wait_fleet_ready(probe, 2)
                victim = status["per_replica"][1]["pid"]
                thread = threading.Thread(target=requester, daemon=True)
                thread.start()
                deadline = time.monotonic() + 5
                while time.monotonic() < deadline and not any(
                        ok for _p, ok in outcomes):
                    time.sleep(0.02)
                assert any(ok for _p, ok in outcomes), \
                    "no successful solve before the kill"
                phase["value"] = "during"
                os.kill(victim, signal.SIGKILL)
                restarted = None
                deadline = time.monotonic() + 30
                while time.monotonic() < deadline:
                    fleet = probe.healthz()["fleet"]
                    if fleet["alive"] == 2 and fleet["restarts_total"] >= 1:
                        restarted = fleet
                        break
                    time.sleep(0.05)
                assert restarted, "supervisor never restarted the replica"
                phase["value"] = "after"
                deadline = time.monotonic() + 10
                while time.monotonic() < deadline and not any(
                        p == "after" and ok for p, ok in outcomes):
                    time.sleep(0.02)
                stop.set()
                thread.join(timeout=30)
                assert not thread.is_alive(), "requester hung"
                assert any(p == "after" and ok for p, ok in outcomes), \
                    "no successful solve after the restart"
                # The kill may cost individual exchanges an error, but the
                # client as a whole kept being served.
                assert sum(ok for _p, ok in outcomes) \
                    > sum(not ok for _p, ok in outcomes)
        finally:
            stop.set()
            _stop_fleet(proc)


@requires_fork
class TestReplicaCLI:
    def test_replicas_must_be_positive(self, capsys):
        from repro.cli import main
        assert main(["serve", "--port", "0", "--replicas", "0"]) == 1
        assert "--replicas" in capsys.readouterr().err

    def test_solo_replica_stays_single_process(self):
        """--replicas 1 keeps the plain in-process server (no supervisor),
        so the non-POSIX path and the default path stay identical."""
        proc, port = _spawn_fleet(1)
        try:
            with ServiceClient(port=port, timeout=30) as client:
                client.wait_ready(timeout=30)
                status = client.healthz()
                assert status["replica_id"] == 0
                assert "fleet" not in status
        finally:
            _stop_fleet(proc)
