"""Tests for the built-in domain workloads."""

import pytest

from repro.exceptions import SpecificationError
from repro.generators import (
    named_workloads,
    remote_visualization_pipeline,
    tsi_supernova_pipeline,
    video_surveillance_pipeline,
)


class TestRemoteVisualizationPipeline:
    def test_stage_names_match_paper_narrative(self):
        p = remote_visualization_pipeline()
        names = [m.name for m in p.modules[1:]]
        assert names == ["data filtering", "isosurface extraction",
                         "geometry rendering", "image compositing", "final display"]

    def test_structure(self):
        p = remote_visualization_pipeline(dataset_bytes=2_000_000)
        assert p.n_modules == 6
        assert p.source.output_bytes == 2_000_000
        assert p.sink.output_bytes == 0.0

    def test_data_scale(self):
        base = remote_visualization_pipeline(dataset_bytes=1_000_000)
        big = remote_visualization_pipeline(dataset_bytes=1_000_000, data_scale=4.0)
        assert big.total_data_volume() == pytest.approx(4 * base.total_data_volume())

    def test_filtering_shrinks_data(self):
        p = remote_visualization_pipeline()
        # every intermediate message is no larger than the raw dataset
        sizes = [m.output_bytes for m in p.modules[:-1]]
        assert max(sizes) == sizes[0]

    def test_invalid_parameters(self):
        with pytest.raises(SpecificationError):
            remote_visualization_pipeline(dataset_bytes=-1.0)
        with pytest.raises(SpecificationError):
            remote_visualization_pipeline(data_scale=0.0)


class TestVideoSurveillancePipeline:
    def test_stage_names(self):
        p = video_surveillance_pipeline()
        names = [m.name for m in p.modules[1:]]
        assert names[0] == "feature extraction and detection"
        assert names[-1] == "identity matching"

    def test_structure(self):
        p = video_surveillance_pipeline(frame_bytes=500_000)
        assert p.n_modules == 6
        assert p.source.output_bytes == 500_000

    def test_chaining_valid(self):
        p = video_surveillance_pipeline()
        for prev, nxt in zip(p.modules, p.modules[1:]):
            assert prev.output_bytes == nxt.input_bytes


class TestTsiPipeline:
    def test_has_retrieval_stage(self):
        p = tsi_supernova_pipeline()
        assert p.n_modules == 7
        assert p.modules[1].name == "data retrieval"
        assert p.source.output_bytes == 50_000_000

    def test_bigger_than_default_visualization(self):
        assert tsi_supernova_pipeline().total_workload() > \
            remote_visualization_pipeline().total_workload()


class TestNamedWorkloads:
    def test_registry_contents(self):
        workloads = named_workloads()
        assert set(workloads) == {"visualization", "surveillance", "tsi"}
        for pipeline in workloads.values():
            assert pipeline.n_modules >= 6

    def test_workloads_are_mappable(self, complete6):
        from repro.core import elpc_min_delay
        from repro.model import EndToEndRequest
        for pipeline in named_workloads().values():
            mapping = elpc_min_delay(pipeline, complete6, EndToEndRequest(0, 5))
            assert mapping.delay_ms > 0
