"""Tests for the command-line entry points."""

import pytest

from repro.cli import main_bench, main_map


class TestReproMap:
    def test_list_algorithms(self, capsys):
        assert main_map(["--list-algorithms"]) == 0
        out = capsys.readouterr().out
        assert "elpc" in out and "greedy" in out

    def test_map_builtin_case_delay(self, capsys):
        assert main_map(["--case", "1", "--algorithm", "elpc",
                         "--objective", "delay"]) == 0
        out = capsys.readouterr().out
        assert "selected path" in out
        assert "end-to-end delay" in out

    def test_map_builtin_case_framerate(self, capsys):
        assert main_map(["--case", "2", "--algorithm", "greedy",
                         "--objective", "framerate"]) == 0
        out = capsys.readouterr().out
        assert "frame" in out

    def test_map_workload_on_random_network(self, capsys):
        assert main_map(["--workload", "surveillance", "--nodes", "15",
                         "--links", "40", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "node" in out

    def test_map_saved_instance(self, tmp_path, capsys):
        from repro.generators import make_case, PAPER_CASE_SPECS
        from repro.model import save_instance
        path = save_instance(make_case(PAPER_CASE_SPECS[0]), tmp_path / "inst.json")
        assert main_map(["--instance", str(path)]) == 0
        assert "selected path" in capsys.readouterr().out

    def test_error_when_no_input_selected(self, capsys):
        assert main_map([]) == 1
        assert "error" in capsys.readouterr().err

    def test_error_when_multiple_inputs_selected(self, capsys):
        assert main_map(["--case", "1", "--workload", "tsi"]) == 1
        assert "error" in capsys.readouterr().err

    def test_error_on_bad_case_number(self, capsys):
        assert main_map(["--case", "99"]) == 1
        assert "error" in capsys.readouterr().err

    def test_error_on_unknown_algorithm(self, capsys):
        assert main_map(["--case", "1", "--algorithm", "nope"]) == 1
        assert "error" in capsys.readouterr().err


class TestReproBench:
    def test_writes_artifacts(self, tmp_path, capsys):
        assert main_bench(["--output", str(tmp_path / "out"), "--max-cases", "2"]) == 0
        out = capsys.readouterr().out
        assert "fig2" in out
        assert (tmp_path / "out" / "fig2_table.txt").exists()
        assert (tmp_path / "out" / "fig5_delay_curves.csv").exists()

    def test_print_table_option(self, tmp_path, capsys):
        assert main_bench(["--output", str(tmp_path), "--max-cases", "2",
                           "--print-table"]) == 0
        out = capsys.readouterr().out
        assert "Mapping performance comparison" in out
