"""Tests for the command-line entry points."""

import json

import pytest

from repro.cli import (
    main,
    main_bench,
    main_bench_batch,
    main_bench_scaling,
    main_map,
)


class TestReproMap:
    def test_list_algorithms(self, capsys):
        assert main_map(["--list-algorithms"]) == 0
        out = capsys.readouterr().out
        assert "elpc" in out and "greedy" in out

    def test_map_builtin_case_delay(self, capsys):
        assert main_map(["--case", "1", "--algorithm", "elpc",
                         "--objective", "delay"]) == 0
        out = capsys.readouterr().out
        assert "selected path" in out
        assert "end-to-end delay" in out

    def test_map_builtin_case_framerate(self, capsys):
        assert main_map(["--case", "2", "--algorithm", "greedy",
                         "--objective", "framerate"]) == 0
        out = capsys.readouterr().out
        assert "frame" in out

    def test_map_workload_on_random_network(self, capsys):
        assert main_map(["--workload", "surveillance", "--nodes", "15",
                         "--links", "40", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "node" in out

    def test_map_saved_instance(self, tmp_path, capsys):
        from repro.generators import make_case, PAPER_CASE_SPECS
        from repro.model import save_instance
        path = save_instance(make_case(PAPER_CASE_SPECS[0]), tmp_path / "inst.json")
        assert main_map(["--instance", str(path)]) == 0
        assert "selected path" in capsys.readouterr().out

    def test_error_when_no_input_selected(self, capsys):
        assert main_map([]) == 1
        assert "error" in capsys.readouterr().err

    def test_error_when_multiple_inputs_selected(self, capsys):
        assert main_map(["--case", "1", "--workload", "tsi"]) == 1
        assert "error" in capsys.readouterr().err

    def test_error_on_bad_case_number(self, capsys):
        assert main_map(["--case", "99"]) == 1
        assert "error" in capsys.readouterr().err

    def test_error_on_unknown_algorithm(self, capsys):
        assert main_map(["--case", "1", "--algorithm", "nope"]) == 1
        assert "error" in capsys.readouterr().err


class TestReproBench:
    def test_writes_artifacts(self, tmp_path, capsys):
        assert main_bench(["--output", str(tmp_path / "out"), "--max-cases", "2"]) == 0
        out = capsys.readouterr().out
        assert "fig2" in out
        assert (tmp_path / "out" / "fig2_table.txt").exists()
        assert (tmp_path / "out" / "fig5_delay_curves.csv").exists()

    def test_print_table_option(self, tmp_path, capsys):
        assert main_bench(["--output", str(tmp_path), "--max-cases", "2",
                           "--print-table"]) == 0
        out = capsys.readouterr().out
        assert "Mapping performance comparison" in out

    def test_engine_agreement_reported(self, tmp_path, capsys):
        assert main_bench(["--output", str(tmp_path), "--max-cases", "2"]) == 0
        out = capsys.readouterr().out
        assert "engine agreement" in out
        assert "elpc-tensor" in out

    def test_emit_json_schema(self, tmp_path, capsys):
        json_path = tmp_path / "bench.json"
        assert main_bench(["--output", str(tmp_path / "out"), "--max-cases",
                           "2", "--emit-json", str(json_path)]) == 0
        payload = json.loads(json_path.read_text(encoding="utf-8"))
        assert payload["schema"] == "repro-bench/1"
        assert payload["agreement"]["ok"] is True
        assert payload["agreement"]["cases"] == 2
        assert any(name.startswith("bench/solver:")
                   for name in payload["metrics"])

    def test_skip_agreement(self, tmp_path, capsys):
        json_path = tmp_path / "bench.json"
        assert main_bench(["--output", str(tmp_path / "out"), "--max-cases",
                           "1", "--skip-agreement",
                           "--emit-json", str(json_path)]) == 0
        payload = json.loads(json_path.read_text(encoding="utf-8"))
        assert "agreement" not in payload
        assert "engine agreement" not in capsys.readouterr().out

    def test_disagreement_exits_nonzero(self, tmp_path, capsys):
        """A diverging solver registered under an engine name must fail bench."""
        from repro.core import Objective, get_solver, register_solver

        original = get_solver("elpc-vec", Objective.MIN_DELAY)
        greedy = get_solver("greedy", Objective.MIN_DELAY)
        register_solver("elpc-vec", Objective.MIN_DELAY, greedy,
                        overwrite=True)
        try:
            json_path = tmp_path / "bench.json"
            code = main_bench(["--output", str(tmp_path / "out"),
                               "--max-cases", "3",
                               "--emit-json", str(json_path)])
            assert code == 3
            err = capsys.readouterr().err
            assert "disagree" in err
            payload = json.loads(json_path.read_text(encoding="utf-8"))
            assert payload["agreement"]["ok"] is False
            assert payload["agreement"]["disagreements"]
        finally:
            register_solver("elpc-vec", Objective.MIN_DELAY, original,
                            overwrite=True)


class TestBenchBatch:
    def test_prints_speedup_table(self, capsys):
        assert main_bench_batch(["--batch-sizes", "2,4", "--modules", "6",
                                 "--nodes", "10", "--links", "24"]) == 0
        out = capsys.readouterr().out
        assert "Tensor batch engine speedup" in out
        assert out.count("\n") >= 5  # title + header + rule + one row per size

    def test_rejects_bad_batch_sizes(self, capsys):
        assert main_bench_batch(["--batch-sizes", "a,b"]) == 1
        assert "error" in capsys.readouterr().err
        assert main_bench_batch(["--batch-sizes", "0"]) == 1
        assert "error" in capsys.readouterr().err

    def test_via_umbrella(self, capsys):
        assert main(["bench-batch", "--batch-sizes", "2", "--modules", "5",
                     "--nodes", "8", "--links", "16"]) == 0
        assert "tensor" in capsys.readouterr().out


class TestReproUmbrella:
    def test_no_args_prints_usage(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "solve" in out and "bench-scaling" in out

    def test_unknown_command(self, capsys):
        assert main(["frobnicate"]) == 2
        assert "unknown command" in capsys.readouterr().err

    def test_solve_with_vectorized_solver(self, capsys):
        assert main(["solve", "--solver", "elpc-vec", "--case", "1"]) == 0
        out = capsys.readouterr().out
        assert "elpc-vec" in out
        assert "selected path" in out

    def test_solve_with_tensor_solver(self, capsys):
        assert main(["solve", "--solver", "elpc-tensor", "--case", "1"]) == 0
        out = capsys.readouterr().out
        assert "elpc-tensor" in out
        assert "selected path" in out

    def test_solve_lists_vectorized_and_tensor_solvers(self, capsys):
        assert main(["solve", "--list-algorithms"]) == 0
        out = capsys.readouterr().out
        assert "elpc-vec" in out
        assert "elpc-tensor" in out

    def test_map_alias(self, capsys):
        assert main(["map", "--case", "1"]) == 0
        assert "selected path" in capsys.readouterr().out

    def test_bench_subcommand(self, tmp_path, capsys):
        assert main(["bench", "--output", str(tmp_path / "out"),
                     "--max-cases", "1"]) == 0
        assert (tmp_path / "out" / "fig2_table.txt").exists()


class TestBatchSolve:
    def test_batch_seeds_summary(self, capsys):
        assert main(["solve", "--solver", "elpc-vec", "--workload",
                     "surveillance", "--nodes", "10", "--links", "24",
                     "--batch-seeds", "3"]) == 0
        out = capsys.readouterr().out
        assert "batch: 3 instances" in out
        assert "solved 3/3" in out
        assert "surveillance-seed2" in out

    def test_batch_seeds_requires_workload(self, capsys):
        assert main_map(["--case", "1", "--batch-seeds", "2"]) == 1
        assert "needs --workload" in capsys.readouterr().err

    def test_batch_seeds_must_be_positive(self, capsys):
        assert main_map(["--workload", "surveillance", "--batch-seeds", "0"]) == 1
        assert "error" in capsys.readouterr().err


class TestBenchScaling:
    def test_prints_speedup_table(self, capsys):
        assert main_bench_scaling(["--sizes", "4:8:14,5:10:20",
                                   "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "delay elpc" in out and "delay vec" in out
        assert out.count("\n") >= 4  # header + rule + one row per size

    def test_rejects_malformed_sizes(self, capsys):
        assert main_bench_scaling(["--sizes", "4x8x14"]) == 1
        assert "error" in capsys.readouterr().err
        assert main_bench_scaling(["--sizes", "a:b:c"]) == 1
        assert "error" in capsys.readouterr().err

    def test_via_umbrella(self, capsys):
        assert main(["bench-scaling", "--sizes", "4:8:14"]) == 0
        assert "Vectorized ELPC engine speedup" in capsys.readouterr().out


class TestBackendFlag:
    """The --backend flag: validated up front, actionable when unusable."""

    @staticmethod
    def _cupy_installed():
        import importlib.util

        return importlib.util.find_spec("cupy") is not None

    def test_solve_tensor_with_numpy_backend(self, capsys):
        assert main(["solve", "--solver", "elpc-tensor", "--case", "1",
                     "--backend", "numpy"]) == 0
        assert "selected path" in capsys.readouterr().out

    def test_missing_backend_exits_1_listing_installed(self, capsys):
        if self._cupy_installed():
            pytest.skip("CuPy is installed here")
        assert main(["solve", "--solver", "elpc-tensor", "--case", "1",
                     "--backend", "cupy"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "cupy" in err
        assert "installed backends" in err and "numpy" in err

    def test_unknown_backend_exits_1(self, capsys):
        assert main(["solve", "--solver", "elpc-tensor", "--case", "1",
                     "--backend", "tpu9000"]) == 1
        err = capsys.readouterr().err
        assert "unknown backend" in err and "numpy" in err

    def test_numpy_backend_is_noop_for_other_solvers(self, capsys):
        assert main(["solve", "--solver", "elpc", "--case", "1",
                     "--backend", "numpy"]) == 0
        assert "selected path" in capsys.readouterr().out

    def test_batch_seeds_with_backend(self, capsys):
        assert main(["solve", "--solver", "elpc-tensor", "--workload",
                     "surveillance", "--nodes", "10", "--links", "24",
                     "--batch-seeds", "3", "--backend", "numpy"]) == 0
        assert "solved 3/3" in capsys.readouterr().out

    def test_env_var_default_fails_like_flag(self, capsys, monkeypatch):
        if self._cupy_installed():
            pytest.skip("CuPy is installed here")
        monkeypatch.setenv("REPRO_BACKEND", "cupy")
        assert main(["solve", "--solver", "elpc-tensor", "--case", "1"]) == 1
        assert "cupy" in capsys.readouterr().err

    def test_env_var_default_fails_batch_runs_too(self, capsys, monkeypatch):
        """Regression: an unusable REPRO_BACKEND used to surface as per-item
        'infeasible' lines with a clean exit 0 on --batch-seeds runs."""
        if self._cupy_installed():
            pytest.skip("CuPy is installed here")
        monkeypatch.setenv("REPRO_BACKEND", "cupy")
        assert main(["solve", "--solver", "elpc-tensor", "--workload",
                     "surveillance", "--nodes", "10", "--links", "24",
                     "--batch-seeds", "2"]) == 1
        err = capsys.readouterr().err
        assert "cupy" in err and "installed backends" in err

    def test_env_var_ignored_for_non_aware_solvers(self, capsys, monkeypatch):
        if self._cupy_installed():
            pytest.skip("CuPy is installed here")
        monkeypatch.setenv("REPRO_BACKEND", "cupy")
        assert main(["solve", "--solver", "elpc", "--case", "1"]) == 0
        assert "selected path" in capsys.readouterr().out

    def test_bench_records_backend_in_agreement(self, tmp_path, capsys):
        json_path = tmp_path / "bench.json"
        assert main_bench(["--output", str(tmp_path / "out"), "--max-cases",
                           "2", "--backend", "numpy",
                           "--emit-json", str(json_path)]) == 0
        out = capsys.readouterr().out
        assert "tensor backend: numpy" in out
        payload = json.loads(json_path.read_text(encoding="utf-8"))
        assert payload["agreement"]["backend"] == "numpy"
        assert payload["agreement"]["ok"] is True

    def test_bench_batch_with_backend(self, capsys):
        assert main_bench_batch(["--batch-sizes", "2", "--modules", "5",
                                 "--nodes", "8", "--links", "16",
                                 "--backend", "numpy"]) == 0
        assert "Tensor batch engine speedup" in capsys.readouterr().out


class TestReproPlace:
    def test_default_run_exits_0(self, capsys):
        assert main(["place", "--placer", "place-greedy"]) == 0
        out = capsys.readouterr().out
        assert "admitted" in out and "ledger validated clean" in out
        assert "status" in out  # the per-request table header

    def test_flow_placer(self, capsys):
        assert main(["place", "--placer", "place-flow", "--count", "6",
                     "--nodes", "14", "--links", "36"]) == 0
        assert "placer=place-flow" in capsys.readouterr().out

    def test_oversubscribed_run_reports_rejections(self, capsys):
        assert main(["place", "--count", "10", "--capacity-factor", "0.05",
                     "--demand-fps", "4"]) == 0
        out = capsys.readouterr().out
        assert "rejected" in out

    def test_json_summary(self, capsys):
        assert main(["place", "--count", "4", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["placer"] == "place-greedy"
        assert payload["n_requests"] == 4
        assert payload["n_admitted"] + payload["n_rejected"] == 4
        assert "validated_utilization" in payload

    def test_framerate_objective(self, capsys):
        assert main(["place", "--count", "4", "--objective",
                     "framerate"]) == 0
        assert "objective=max_frame_rate" in capsys.readouterr().out

    def test_list_placers(self, capsys):
        assert main(["place", "--list-placers"]) == 0
        out = capsys.readouterr().out
        assert "place-greedy" in out and "place-flow" in out

    def test_unknown_placer_exits_1(self, capsys):
        assert main(["place", "--placer", "place-magic"]) == 1
        assert "unknown placer" in capsys.readouterr().err

    def test_unknown_engine_exits_1(self, capsys):
        assert main(["place", "--engine", "frobnicator"]) == 1
        assert "error" in capsys.readouterr().err

    def test_umbrella_help_lists_place(self, capsys):
        assert main([]) == 0
        assert "place" in capsys.readouterr().out


class TestServeAdmissionFlags:
    def test_flags_parse_into_config(self):
        from repro.cli import _build_serve_parser

        args = _build_serve_parser().parse_args(
            ["--admission-control", "--admission-capacity-factor", "0.5",
             "--admission-demand-fps", "2.5"])
        assert args.admission_control is True
        assert args.admission_capacity_factor == 0.5
        assert args.admission_demand_fps == 2.5

    def test_flags_default_off(self):
        from repro.cli import _build_serve_parser

        args = _build_serve_parser().parse_args([])
        assert args.admission_control is False
        assert args.admission_capacity_factor == 1.0

    def test_negative_factor_exits_1(self, capsys):
        from repro.cli import main_serve

        assert main_serve(["--admission-capacity-factor", "-2"]) == 1
        assert "admission_capacity_factor" in capsys.readouterr().err
