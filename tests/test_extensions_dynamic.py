"""Tests for the time-varying resources / adaptive re-mapping extension."""

import pytest

from repro.exceptions import SpecificationError
from repro.extensions import (
    ResourceProfile,
    compare_static_vs_adaptive,
    evaluate_adaptive,
    evaluate_static,
    network_at,
)
from repro.generators import random_network, random_pipeline, random_request
from repro.model import end_to_end_delay_ms


class TestResourceProfile:
    def test_default_factor_is_one(self):
        profile = ResourceProfile()
        assert profile.node_factor(3, 10.0) == 1.0
        assert profile.link_factor(0, 1, 10.0) == 1.0

    def test_piecewise_constant_lookup(self):
        profile = ResourceProfile()
        profile.set_node_factor(2, time_s=10.0, factor=0.5)
        profile.set_node_factor(2, time_s=30.0, factor=0.8)
        assert profile.node_factor(2, 5.0) == 1.0
        assert profile.node_factor(2, 10.0) == 0.5
        assert profile.node_factor(2, 29.9) == 0.5
        assert profile.node_factor(2, 30.0) == 0.8

    def test_link_factor_symmetric_key(self):
        profile = ResourceProfile()
        profile.set_link_factor(4, 2, time_s=0.0, factor=0.25)
        assert profile.link_factor(2, 4, 1.0) == 0.25
        assert profile.link_factor(4, 2, 1.0) == 0.25

    def test_invalid_factors_rejected(self):
        profile = ResourceProfile()
        with pytest.raises(SpecificationError):
            profile.set_node_factor(0, 0.0, 0.0)
        with pytest.raises(SpecificationError):
            profile.set_link_factor(0, 1, 0.0, -1.0)

    def test_change_times_collected(self):
        profile = ResourceProfile()
        profile.set_node_factor(0, 5.0, 0.5)
        profile.set_link_factor(0, 1, 15.0, 0.5)
        assert profile.change_times() == [5.0, 15.0]


class TestNetworkAt:
    def test_factors_applied(self, simple_network):
        profile = ResourceProfile()
        profile.set_node_factor(1, 10.0, 0.5)
        profile.set_link_factor(0, 1, 10.0, 0.1)
        before = network_at(simple_network, profile, 0.0)
        after = network_at(simple_network, profile, 20.0)
        assert before.processing_power(1) == simple_network.processing_power(1)
        assert after.processing_power(1) == pytest.approx(
            0.5 * simple_network.processing_power(1))
        assert after.bandwidth(0, 1) == pytest.approx(0.1 * simple_network.bandwidth(0, 1))
        # untouched resources keep their nominal values
        assert after.processing_power(2) == simple_network.processing_power(2)
        assert after.n_links == simple_network.n_links


class TestStaticVsAdaptive:
    @pytest.fixture
    def scenario(self):
        pipeline = random_pipeline(6, seed=55)
        network = random_network(14, 40, seed=55)
        request = random_request(network, seed=55, min_hop_distance=2)
        return pipeline, network, request

    def test_static_delays_track_profile(self, scenario):
        pipeline, network, request = scenario
        from repro.core import elpc_min_delay
        mapping = elpc_min_delay(pipeline, network, request)
        slowed_node = mapping.path[len(mapping.path) // 2]
        profile = ResourceProfile()
        profile.set_node_factor(slowed_node, 10.0, 0.25)
        delays = evaluate_static(pipeline, network, request, profile,
                                 epochs=[0.0, 5.0, 15.0])
        assert delays[0] == pytest.approx(delays[1])
        assert delays[2] >= delays[0] - 1e-9

    def test_adaptive_never_worse_on_average(self, scenario):
        pipeline, network, request = scenario
        from repro.core import elpc_min_delay
        mapping = elpc_min_delay(pipeline, network, request)
        # slow down every node the static mapping computes on (except endpoints)
        profile = ResourceProfile()
        for node in set(mapping.path) - {request.source, request.destination}:
            profile.set_node_factor(node, 10.0, 0.2)
        comparison = compare_static_vs_adaptive(pipeline, network, request, profile,
                                                horizon_s=40.0, step_s=5.0,
                                                remap_interval=10.0)
        assert comparison.mean_adaptive_ms <= comparison.mean_static_ms + 1e-6
        assert comparison.improvement_ratio >= 1.0 - 1e-9
        assert comparison.remap_count >= 1
        assert len(comparison.epochs) == len(comparison.static_delay_ms)

    def test_adaptive_equals_static_when_nothing_changes(self, scenario):
        pipeline, network, request = scenario
        profile = ResourceProfile()  # no events
        comparison = compare_static_vs_adaptive(pipeline, network, request, profile,
                                                horizon_s=20.0, step_s=5.0,
                                                remap_interval=10.0)
        assert comparison.mean_adaptive_ms == pytest.approx(comparison.mean_static_ms)
        assert comparison.improvement_ratio == pytest.approx(1.0)

    def test_parameter_validation(self, scenario):
        pipeline, network, request = scenario
        profile = ResourceProfile()
        with pytest.raises(SpecificationError):
            evaluate_adaptive(pipeline, network, request, profile, [0.0],
                              remap_interval=0.0)
        with pytest.raises(SpecificationError):
            compare_static_vs_adaptive(pipeline, network, request, profile,
                                       horizon_s=0.0)
