"""Tests for the time-varying resources / adaptive re-mapping extension."""

import pytest

from repro.exceptions import SpecificationError
from repro.extensions import (
    ResourceProfile,
    compare_static_vs_adaptive,
    delay_at_ms,
    evaluate_adaptive,
    evaluate_static,
    network_at,
)
from repro.generators import random_network, random_pipeline, random_request
from repro.model import end_to_end_delay_ms


class TestResourceProfile:
    def test_default_factor_is_one(self):
        profile = ResourceProfile()
        assert profile.node_factor(3, 10.0) == 1.0
        assert profile.link_factor(0, 1, 10.0) == 1.0

    def test_piecewise_constant_lookup(self):
        profile = ResourceProfile()
        profile.set_node_factor(2, time_s=10.0, factor=0.5)
        profile.set_node_factor(2, time_s=30.0, factor=0.8)
        assert profile.node_factor(2, 5.0) == 1.0
        assert profile.node_factor(2, 10.0) == 0.5
        assert profile.node_factor(2, 29.9) == 0.5
        assert profile.node_factor(2, 30.0) == 0.8

    def test_link_factor_symmetric_key(self):
        profile = ResourceProfile()
        profile.set_link_factor(4, 2, time_s=0.0, factor=0.25)
        assert profile.link_factor(2, 4, 1.0) == 0.25
        assert profile.link_factor(4, 2, 1.0) == 0.25

    def test_invalid_factors_rejected(self):
        profile = ResourceProfile()
        with pytest.raises(SpecificationError):
            profile.set_node_factor(0, 0.0, 0.0)
        with pytest.raises(SpecificationError):
            profile.set_link_factor(0, 1, 0.0, -1.0)

    def test_change_times_collected(self):
        profile = ResourceProfile()
        profile.set_node_factor(0, 5.0, 0.5)
        profile.set_link_factor(0, 1, 15.0, 0.5)
        assert profile.change_times() == [5.0, 15.0]


class TestNetworkAt:
    def test_factors_applied(self, simple_network):
        profile = ResourceProfile()
        profile.set_node_factor(1, 10.0, 0.5)
        profile.set_link_factor(0, 1, 10.0, 0.1)
        before = network_at(simple_network, profile, 0.0)
        after = network_at(simple_network, profile, 20.0)
        assert before.processing_power(1) == simple_network.processing_power(1)
        assert after.processing_power(1) == pytest.approx(
            0.5 * simple_network.processing_power(1))
        assert after.bandwidth(0, 1) == pytest.approx(0.1 * simple_network.bandwidth(0, 1))
        # untouched resources keep their nominal values
        assert after.processing_power(2) == simple_network.processing_power(2)
        assert after.n_links == simple_network.n_links


class TestScaledDenseViews:
    @pytest.fixture
    def base(self):
        return random_network(12, 30, seed=21)

    def test_scaled_view_matches_network_rebuild(self, base):
        profile = ResourceProfile()
        profile.set_node_factor(3, 10.0, 0.5)
        profile.set_link_factor(*base.links()[0].endpoints, time_s=10.0,
                                factor=0.25)
        for t in (0.0, 10.0, 25.0):
            scaled = profile.scaled_view(base, t)
            rebuilt = network_at(base, profile, t).dense_view()
            assert (scaled.power == rebuilt.power).all()
            assert (scaled.bandwidth == rebuilt.bandwidth).all()
            assert (scaled.bandwidth_bits_per_s
                    == rebuilt.bandwidth_bits_per_s).all()
            assert (scaled.link_delay == rebuilt.link_delay).all()
            assert (scaled.adjacency == rebuilt.adjacency).all()

    def test_scaled_view_cached_per_timestamp(self, base):
        profile = ResourceProfile()
        profile.set_node_factor(1, 5.0, 0.5)
        assert profile.scaled_view(base, 7.0) is profile.scaled_view(base, 7.0)
        assert profile.scaled_view(base, 7.0) is not profile.scaled_view(base, 2.0)

    def test_stale_view_invalidated_on_set_node_factor(self, base):
        """Regression: a cached scaled view must not survive profile mutation."""
        profile = ResourceProfile()
        before = profile.scaled_view(base, 20.0)
        idx = before.index_of[4]
        assert before.power[idx] == base.processing_power(4)
        profile.set_node_factor(4, 10.0, 0.5)
        after = profile.scaled_view(base, 20.0)
        assert after is not before
        assert after.power[idx] == pytest.approx(0.5 * base.processing_power(4))

    def test_stale_view_invalidated_on_set_link_factor(self, base):
        profile = ResourceProfile()
        u, v = base.links()[0].endpoints
        before = profile.scaled_view(base, 20.0)
        profile.set_link_factor(u, v, 10.0, 0.125)
        after = profile.scaled_view(base, 20.0)
        i, j = after.index_of[u], after.index_of[v]
        assert after.bandwidth[i, j] == pytest.approx(
            0.125 * base.bandwidth(u, v))
        assert before.bandwidth[i, j] == pytest.approx(base.bandwidth(u, v))

    def test_invalidation_is_scoped_to_the_affected_window(self, base):
        """A factor change at ``t`` drops only the cached views in
        ``[t, next event for that resource)`` — instants outside the window
        keep their (still exact) cached objects."""
        profile = ResourceProfile()
        profile.set_node_factor(4, 30.0, 0.8)
        before_window = profile.scaled_view(base, 5.0)
        inside_window = profile.scaled_view(base, 20.0)
        after_window = profile.scaled_view(base, 40.0)
        profile.set_node_factor(4, 10.0, 0.5)  # affects [10, 30) only
        assert profile.scaled_view(base, 5.0) is before_window
        assert profile.scaled_view(base, 40.0) is after_window
        refreshed = profile.scaled_view(base, 20.0)
        assert refreshed is not inside_window
        idx = refreshed.index_of[4]
        assert refreshed.power[idx] == pytest.approx(
            0.5 * base.processing_power(4))
        # An event with no later sibling invalidates everything from its
        # timestamp onward.
        profile.set_link_factor(*base.links()[0].endpoints, time_s=15.0,
                                factor=0.25)
        assert profile.scaled_view(base, 5.0) is before_window
        assert profile.scaled_view(base, 40.0) is not after_window

    def test_base_network_mutation_misses_cache(self, base):
        from repro.model import ComputingNode

        profile = ResourceProfile()
        before = profile.scaled_view(base, 0.0)
        base.add_node(ComputingNode(node_id=99, processing_power=3.0))
        after = profile.scaled_view(base, 0.0)
        assert after.n_nodes == before.n_nodes + 1

    def test_delay_at_ms_matches_rebuild_evaluation(self, base):
        from repro.core import elpc_min_delay

        pipeline = random_pipeline(5, seed=21)
        request = random_request(base, seed=21, min_hop_distance=2)
        mapping = elpc_min_delay(pipeline, base, request)
        profile = ResourceProfile()
        for node in mapping.path:
            profile.set_node_factor(node, 8.0, 0.4)
        for t in (0.0, 8.0, 30.0):
            fast = delay_at_ms(pipeline, base, profile, t, mapping)
            oracle = end_to_end_delay_ms(pipeline, network_at(base, profile, t),
                                         mapping.groups, mapping.path)
            assert fast == oracle


class TestStaticVsAdaptive:
    @pytest.fixture
    def scenario(self):
        pipeline = random_pipeline(6, seed=55)
        network = random_network(14, 40, seed=55)
        request = random_request(network, seed=55, min_hop_distance=2)
        return pipeline, network, request

    def test_static_delays_track_profile(self, scenario):
        pipeline, network, request = scenario
        from repro.core import elpc_min_delay
        mapping = elpc_min_delay(pipeline, network, request)
        slowed_node = mapping.path[len(mapping.path) // 2]
        profile = ResourceProfile()
        profile.set_node_factor(slowed_node, 10.0, 0.25)
        delays = evaluate_static(pipeline, network, request, profile,
                                 epochs=[0.0, 5.0, 15.0])
        assert delays[0] == pytest.approx(delays[1])
        assert delays[2] >= delays[0] - 1e-9

    def test_adaptive_never_worse_on_average(self, scenario):
        pipeline, network, request = scenario
        from repro.core import elpc_min_delay
        mapping = elpc_min_delay(pipeline, network, request)
        # slow down every node the static mapping computes on (except endpoints)
        profile = ResourceProfile()
        for node in set(mapping.path) - {request.source, request.destination}:
            profile.set_node_factor(node, 10.0, 0.2)
        comparison = compare_static_vs_adaptive(pipeline, network, request, profile,
                                                horizon_s=40.0, step_s=5.0,
                                                remap_interval=10.0)
        assert comparison.mean_adaptive_ms <= comparison.mean_static_ms + 1e-6
        assert comparison.improvement_ratio >= 1.0 - 1e-9
        assert comparison.remap_count >= 1
        assert len(comparison.epochs) == len(comparison.static_delay_ms)

    def test_adaptive_equals_static_when_nothing_changes(self, scenario):
        pipeline, network, request = scenario
        profile = ResourceProfile()  # no events
        comparison = compare_static_vs_adaptive(pipeline, network, request, profile,
                                                horizon_s=20.0, step_s=5.0,
                                                remap_interval=10.0)
        assert comparison.mean_adaptive_ms == pytest.approx(comparison.mean_static_ms)
        assert comparison.improvement_ratio == pytest.approx(1.0)

    def test_parameter_validation(self, scenario):
        pipeline, network, request = scenario
        profile = ResourceProfile()
        with pytest.raises(SpecificationError):
            evaluate_adaptive(pipeline, network, request, profile, [0.0],
                              remap_interval=0.0)
        with pytest.raises(SpecificationError):
            compare_static_vs_adaptive(pipeline, network, request, profile,
                                       horizon_s=0.0)
