"""Tests for the Random and naive reference mappers."""

import pytest

from repro.baselines import (
    direct_path_max_frame_rate,
    direct_path_min_delay,
    random_max_frame_rate,
    random_min_delay,
    source_only_min_delay,
)
from repro.core import elpc_min_delay
from repro.exceptions import InfeasibleMappingError
from repro.generators import line_network, random_network, random_pipeline, random_request
from repro.model import EndToEndRequest, assert_no_reuse


class TestRandomMinDelay:
    def test_structure_and_reproducibility(self, simple_pipeline, simple_network,
                                           simple_request):
        a = random_min_delay(simple_pipeline, simple_network, simple_request, seed=9)
        b = random_min_delay(simple_pipeline, simple_network, simple_request, seed=9)
        c = random_min_delay(simple_pipeline, simple_network, simple_request, seed=10)
        assert a.path == b.path and a.groups == b.groups
        assert a.path[0] == simple_request.source and a.path[-1] == simple_request.destination
        assert simple_network.is_walk(c.path)

    def test_never_better_than_elpc(self):
        for seed in range(6):
            pipeline = random_pipeline(6, seed=seed)
            network = random_network(10, 26, seed=seed + 30)
            request = random_request(network, seed=seed, min_hop_distance=2)
            rnd = random_min_delay(pipeline, network, request, seed=seed)
            opt = elpc_min_delay(pipeline, network, request)
            assert rnd.delay_ms >= opt.delay_ms - 1e-9


class TestRandomMaxFrameRate:
    def test_no_reuse_path(self, simple_pipeline, simple_network, simple_request):
        mapping = random_max_frame_rate(simple_pipeline, simple_network, simple_request,
                                        seed=1)
        assert_no_reuse(mapping.path)
        assert len(mapping.path) == simple_pipeline.n_modules
        assert "restarts" in mapping.extras

    def test_infeasible_instance_raises(self, simple_network, simple_request):
        pipeline = random_pipeline(9, seed=2)
        with pytest.raises(InfeasibleMappingError):
            random_max_frame_rate(pipeline, simple_network, simple_request, seed=2)


class TestSourceOnly:
    def test_all_compute_on_source_when_adjacent(self, simple_pipeline, simple_network):
        mapping = source_only_min_delay(simple_pipeline, simple_network,
                                        EndToEndRequest(0, 1))
        assert mapping.modules_on_node(0) == [0, 1, 2]
        assert mapping.modules_on_node(1) == [3]

    def test_relays_along_shortest_path(self, simple_pipeline, simple_network,
                                        simple_request):
        mapping = source_only_min_delay(simple_pipeline, simple_network, simple_request)
        # source 0 to destination 3: shortest path 0-2-3 (2 hops), pipeline 4 modules
        assert mapping.path[0] == 0 and mapping.path[-1] == 3
        assert mapping.modules_on_node(0) == [0, 1]

    def test_infeasible_when_pipeline_shorter_than_route(self):
        network = line_network(6, seed=0)
        pipeline = random_pipeline(3, seed=0)
        with pytest.raises(InfeasibleMappingError):
            source_only_min_delay(pipeline, network, EndToEndRequest(0, 5))

    def test_never_better_than_elpc(self, medium_instance):
        pipeline, network, request = medium_instance
        naive = source_only_min_delay(pipeline, network, request)
        opt = elpc_min_delay(pipeline, network, request)
        assert naive.delay_ms >= opt.delay_ms - 1e-9


class TestDirectPath:
    def test_even_spread_on_shortest_path(self, simple_pipeline, simple_network,
                                          simple_request):
        mapping = direct_path_min_delay(simple_pipeline, simple_network, simple_request)
        assert mapping.path[0] == simple_request.source
        assert mapping.path[-1] == simple_request.destination
        # 4 modules over a 3-node shortest route: group sizes 2,1,1
        assert sorted(len(g) for g in mapping.groups) == [1, 1, 2]

    def test_direct_path_framerate_structure(self, simple_pipeline, simple_network,
                                             simple_request):
        mapping = direct_path_max_frame_rate(simple_pipeline, simple_network,
                                             simple_request)
        assert_no_reuse(mapping.path)
        assert len(mapping.path) == simple_pipeline.n_modules

    def test_direct_path_framerate_infeasible(self):
        network = line_network(5, seed=1)
        pipeline = random_pipeline(4, seed=1)
        with pytest.raises(InfeasibleMappingError):
            direct_path_max_frame_rate(pipeline, network, EndToEndRequest(0, 2))

    def test_never_better_than_elpc(self, medium_instance):
        pipeline, network, request = medium_instance
        naive = direct_path_min_delay(pipeline, network, request)
        opt = elpc_min_delay(pipeline, network, request)
        assert naive.delay_ms >= opt.delay_ms - 1e-9
