"""Tests for the structured topology families."""

import pytest

from repro.exceptions import SpecificationError
from repro.generators import (
    complete_network,
    grid_network,
    line_network,
    ring_network,
    star_network,
    wan_cluster_network,
)


class TestCompleteNetwork:
    def test_counts_and_completeness(self):
        net = complete_network(7, seed=1)
        assert net.n_nodes == 7
        assert net.n_links == 21
        assert net.is_complete()
        assert net.is_connected()

    def test_minimum_size(self):
        with pytest.raises(SpecificationError):
            complete_network(1, seed=1)


class TestLineAndRing:
    def test_line_structure(self):
        net = line_network(6, seed=2)
        assert net.n_links == 5
        assert net.degree(0) == 1 and net.degree(5) == 1
        assert all(net.degree(i) == 2 for i in range(1, 5))
        assert net.hop_distance(0, 5) == 5

    def test_ring_structure(self):
        net = ring_network(6, seed=2)
        assert net.n_links == 6
        assert all(net.degree(i) == 2 for i in range(6))
        assert net.hop_distance(0, 3) == 3

    def test_ring_minimum_size(self):
        with pytest.raises(SpecificationError):
            ring_network(2, seed=0)


class TestStarAndGrid:
    def test_star_structure(self):
        net = star_network(5, seed=3)
        assert net.n_nodes == 6
        assert net.degree(0) == 5
        assert all(net.degree(i) == 1 for i in range(1, 6))

    def test_star_minimum(self):
        with pytest.raises(SpecificationError):
            star_network(0, seed=3)

    def test_grid_structure(self):
        net = grid_network(3, 4, seed=4)
        assert net.n_nodes == 12
        # links: 3*(4-1) horizontal + (3-1)*4 vertical = 9 + 8 = 17
        assert net.n_links == 17
        assert net.is_connected()
        # corner has degree 2, centre node degree 4
        assert net.degree(0) == 2
        assert net.degree(5) == 4

    def test_grid_minimum(self):
        with pytest.raises(SpecificationError):
            grid_network(1, 1, seed=0)


class TestWanClusterNetwork:
    def test_structure(self):
        net = wan_cluster_network(3, 4, seed=5)
        assert net.n_nodes == 12
        assert net.is_connected()
        # intra-cluster complete: 3 * C(4,2) = 18 links; WAN ring adds 3
        assert net.n_links == 21

    def test_wan_links_are_thin_and_slow(self):
        net = wan_cluster_network(3, 4, seed=5, wan_bandwidth_factor=0.05,
                                  wan_delay_ms=30.0)
        wan_links = [l for l in net.links() if l.min_delay_ms == 30.0]
        lan_links = [l for l in net.links() if l.min_delay_ms != 30.0]
        assert len(wan_links) == 3
        mean_wan = sum(l.bandwidth_mbps for l in wan_links) / len(wan_links)
        mean_lan = sum(l.bandwidth_mbps for l in lan_links) / len(lan_links)
        assert mean_wan < mean_lan

    def test_two_clusters_single_wan_link(self):
        net = wan_cluster_network(2, 3, seed=6)
        # 2 * C(3,2) intra + 1 WAN = 7
        assert net.n_links == 7

    def test_parameter_validation(self):
        with pytest.raises(SpecificationError):
            wan_cluster_network(1, 4, seed=0)
        with pytest.raises(SpecificationError):
            wan_cluster_network(3, 4, seed=0, wan_bandwidth_factor=0.0)


class TestTopologiesUsableByAlgorithms:
    @pytest.mark.parametrize("factory,kwargs,source,dest", [
        (complete_network, {"n_nodes": 6}, 0, 5),
        (ring_network, {"n_nodes": 8}, 0, 4),
        (grid_network, {"rows": 3, "cols": 3}, 0, 8),
        (wan_cluster_network, {"n_clusters": 2, "nodes_per_cluster": 3}, 0, 5),
    ])
    def test_elpc_runs_on_every_family(self, factory, kwargs, source, dest):
        from repro.core import elpc_min_delay
        from repro.generators import random_pipeline
        from repro.model import EndToEndRequest

        network = factory(seed=9, **kwargs)
        pipeline = random_pipeline(6, seed=9)
        mapping = elpc_min_delay(pipeline, network, EndToEndRequest(source, dest))
        assert mapping.path[0] == source and mapping.path[-1] == dest
