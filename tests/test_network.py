"""Unit tests for :mod:`repro.model.network`."""

import numpy as np
import pytest

from repro.exceptions import SpecificationError
from repro.model import (
    CommunicationLink,
    ComputingNode,
    EndToEndRequest,
    TransportNetwork,
)


def build_net() -> TransportNetwork:
    """Square 0-1-2-3-0 plus diagonal 0-2 with distinct bandwidths."""
    nodes = [ComputingNode(node_id=i, processing_power=10.0 * (i + 1)) for i in range(4)]
    links = [
        CommunicationLink(0, 1, bandwidth_mbps=100.0, min_delay_ms=1.0),
        CommunicationLink(1, 2, bandwidth_mbps=50.0, min_delay_ms=2.0),
        CommunicationLink(2, 3, bandwidth_mbps=200.0, min_delay_ms=0.5),
        CommunicationLink(3, 0, bandwidth_mbps=25.0, min_delay_ms=3.0),
        CommunicationLink(0, 2, bandwidth_mbps=10.0, min_delay_ms=4.0),
    ]
    return TransportNetwork(nodes=nodes, links=links, name="square")


class TestConstruction:
    def test_counts(self):
        net = build_net()
        assert net.n_nodes == 4
        assert net.n_links == 5
        assert len(net) == 4
        assert list(net) == [0, 1, 2, 3]

    def test_duplicate_node_rejected(self):
        net = build_net()
        with pytest.raises(SpecificationError):
            net.add_node(ComputingNode(node_id=0, processing_power=1.0))

    def test_duplicate_link_rejected(self):
        net = build_net()
        with pytest.raises(SpecificationError):
            net.connect(0, 1, bandwidth_mbps=5.0)
        with pytest.raises(SpecificationError):
            net.connect(1, 0, bandwidth_mbps=5.0)  # reversed duplicate

    def test_link_with_unknown_node_rejected(self):
        net = build_net()
        with pytest.raises(SpecificationError):
            net.add_link(CommunicationLink(0, 9, bandwidth_mbps=1.0))

    def test_link_ids_assigned(self):
        net = build_net()
        ids = [l.link_id for l in net.links()]
        assert len(set(ids)) == len(ids)
        assert all(i is not None for i in ids)


class TestQueries:
    def test_node_and_link_lookup(self):
        net = build_net()
        assert net.node(2).processing_power == 30.0
        assert net.link(1, 2).bandwidth_mbps == 50.0
        assert net.link(2, 1).bandwidth_mbps == 50.0  # symmetric lookup
        assert net.bandwidth(0, 2) == 10.0
        assert net.min_delay(3, 0) == 3.0

    def test_unknown_lookups_raise(self):
        net = build_net()
        with pytest.raises(SpecificationError):
            net.node(99)
        with pytest.raises(SpecificationError):
            net.link(1, 3)
        with pytest.raises(SpecificationError):
            net.neighbors(99)

    def test_neighbors_sorted(self):
        net = build_net()
        assert net.neighbors(0) == [1, 2, 3]
        assert net.neighbors(1) == [0, 2]
        assert net.degree(0) == 3

    def test_membership(self):
        net = build_net()
        assert 0 in net
        assert 99 not in net
        assert net.has_link(0, 1)
        assert not net.has_link(1, 3)

    def test_connected_and_complete(self):
        net = build_net()
        assert net.is_connected()
        assert not net.is_complete()
        k3 = TransportNetwork(
            nodes=[ComputingNode(i, 1.0) for i in range(3)],
            links=[CommunicationLink(0, 1, 1.0), CommunicationLink(1, 2, 1.0),
                   CommunicationLink(0, 2, 1.0)])
        assert k3.is_complete()

    def test_statistics(self):
        net = build_net()
        assert net.total_processing_power() == pytest.approx(10 + 20 + 30 + 40)
        assert net.mean_bandwidth() == pytest.approx(np.mean([100, 50, 200, 25, 10]))
        assert net.node_communication_capacity(0) == pytest.approx(100 + 25 + 10)
        assert 0.0 < net.density() < 1.0


class TestPathQueries:
    def test_is_walk_accepts_repeats(self):
        net = build_net()
        assert net.is_walk([0, 1, 2, 2, 3])
        assert net.is_walk([0, 0, 0])
        assert not net.is_walk([0, 3, 1])  # 3-1 not a link
        assert not net.is_walk([])
        assert not net.is_walk([0, 99])

    def test_hop_distance(self):
        net = build_net()
        assert net.hop_distance(0, 0) == 0
        assert net.hop_distance(1, 3) == 2
        with pytest.raises(SpecificationError):
            net.hop_distance(0, 99)

    def test_hop_distance_disconnected(self):
        net = build_net()
        net.add_node(ComputingNode(node_id=9, processing_power=1.0))
        assert net.hop_distance(0, 9) == -1
        assert not net.is_connected()

    def test_shortest_transfer_path(self):
        net = build_net()
        path, time_ms = net.shortest_transfer_path(1, 3, 1000.0)
        assert path[0] == 1 and path[-1] == 3
        assert net.is_walk(path)
        assert time_ms > 0
        same, zero = net.shortest_transfer_path(2, 2, 1000.0)
        assert same == [2] and zero == 0.0

    def test_widest_path(self):
        net = build_net()
        path, capacity = net.widest_path(1, 3)
        assert path[0] == 1 and path[-1] == 3
        # widest 1->3 route is 1-2-3 with bottleneck min(50, 200) = 50
        assert capacity == pytest.approx(50.0)
        _p, inf_cap = net.widest_path(2, 2)
        assert inf_cap == float("inf")

    def test_longest_simple_path_at_least(self):
        net = build_net()
        assert net.longest_simple_path_at_least(0, 3, 4)   # 0-1-2-3 exists
        assert not net.longest_simple_path_at_least(0, 3, 5)


class TestMatrices:
    def test_adjacency_matrix_symmetric(self):
        net = build_net()
        mat = net.adjacency_matrix()
        assert mat.shape == (4, 4)
        assert (mat == mat.T).all()
        assert mat[0, 1] and not mat[1, 3]

    def test_bandwidth_and_delay_matrices(self):
        net = build_net()
        bw = net.bandwidth_matrix()
        dl = net.delay_matrix()
        assert bw[1, 2] == 50.0 and bw[2, 1] == 50.0
        assert dl[0, 2] == 4.0
        assert bw[1, 3] == 0.0

    def test_from_matrices_roundtrip(self):
        net = build_net()
        again = TransportNetwork.from_matrices(
            [n.processing_power for n in net.nodes()],
            net.bandwidth_matrix(), net.delay_matrix())
        assert again.n_nodes == net.n_nodes
        assert again.n_links == net.n_links
        assert again.bandwidth(0, 2) == net.bandwidth(0, 2)
        assert again.min_delay(3, 0) == net.min_delay(3, 0)

    def test_from_matrices_validation(self):
        bad = np.array([[0.0, 1.0], [2.0, 0.0]])  # asymmetric
        with pytest.raises(SpecificationError):
            TransportNetwork.from_matrices([1.0, 1.0], bad)
        with pytest.raises(SpecificationError):
            TransportNetwork.from_matrices([1.0], np.zeros((2, 2)))


class TestSerializationAndCopy:
    def test_dict_roundtrip(self):
        net = build_net()
        again = TransportNetwork.from_dict(net.to_dict())
        assert again.n_nodes == net.n_nodes
        assert again.n_links == net.n_links
        assert again.link(0, 2).bandwidth_mbps == 10.0
        assert again.name == "square"

    def test_copy_is_independent(self):
        net = build_net()
        clone = net.copy()
        clone.add_node(ComputingNode(node_id=50, processing_power=1.0))
        assert 50 in clone
        assert 50 not in net


class TestEndToEndRequest:
    def test_validate(self):
        net = build_net()
        EndToEndRequest(source=0, destination=3).validate(net)
        with pytest.raises(SpecificationError):
            EndToEndRequest(source=0, destination=99).validate(net)
        with pytest.raises(SpecificationError):
            EndToEndRequest(source=77, destination=3).validate(net)


class TestDenseView:
    def test_matrices_match_scalar_queries(self):
        net = build_net()
        view = net.dense_view()
        assert view.n_nodes == 4
        assert view.node_ids == (0, 1, 2, 3)
        assert view.index_of == {0: 0, 1: 1, 2: 2, 3: 3}
        assert np.array_equal(view.power, [10.0, 20.0, 30.0, 40.0])
        assert np.array_equal(view.adjacency, net.adjacency_matrix())
        assert np.array_equal(view.bandwidth, net.bandwidth_matrix())
        assert np.array_equal(view.link_delay, net.delay_matrix())

    def test_view_is_cached_until_mutation(self):
        net = build_net()
        first = net.dense_view()
        assert net.dense_view() is first
        net.add_node(ComputingNode(node_id=9, processing_power=5.0))
        second = net.dense_view()
        assert second is not first
        assert second.n_nodes == 5
        assert net.dense_view() is second
        net.connect(9, 0, bandwidth_mbps=80.0)
        third = net.dense_view()
        assert third is not second
        assert third.adjacency[third.index_of[9], third.index_of[0]]

    def test_transport_matrix_matches_link_model(self):
        from repro.model import transport_time_ms

        net = build_net()
        view = net.dense_view()
        mat = view.transport_matrix_ms(500_000.0)
        bare = view.transport_matrix_ms(500_000.0, include_link_delay=False)
        for u in net.node_ids():
            for v in net.node_ids():
                i, j = view.index_of[u], view.index_of[v]
                if net.has_link(u, v):
                    assert mat[i, j] == transport_time_ms(net, u, v, 500_000.0)
                    assert bare[i, j] == transport_time_ms(
                        net, u, v, 500_000.0, include_link_delay=False)
                else:
                    assert np.isinf(mat[i, j]) and np.isinf(bare[i, j])

    def test_transport_matrix_zero_message_has_no_nan(self):
        net = build_net()
        mat = net.dense_view().transport_matrix_ms(0.0)
        assert not np.isnan(mat).any()
        # Zero bytes over a link costs exactly the minimum link delay.
        view = net.dense_view()
        assert mat[view.index_of[0], view.index_of[1]] == 1.0

    def test_view_arrays_are_read_only(self):
        """The cached view is shared; mutating it must fail loudly, not
        silently corrupt later vectorized solves."""
        view = build_net().dense_view()
        for arr in (view.power, view.adjacency, view.bandwidth,
                    view.link_delay, view.bandwidth_bits_per_s):
            with pytest.raises(ValueError):
                arr[0] = 0

    def test_rejects_negative_message_and_empty_network(self):
        net = build_net()
        with pytest.raises(SpecificationError):
            net.dense_view().transport_matrix_ms(-1.0)
        with pytest.raises(SpecificationError):
            TransportNetwork().dense_view()
