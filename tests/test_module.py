"""Unit tests for :mod:`repro.model.module`."""

import pytest

from repro.exceptions import SpecificationError
from repro.model import ComputingModule, sink_module, source_module


class TestComputingModuleConstruction:
    def test_basic_fields(self):
        mod = ComputingModule(module_id=3, complexity=12.5, input_bytes=1000.0,
                              output_bytes=400.0, name="render")
        assert mod.module_id == 3
        assert mod.complexity == 12.5
        assert mod.input_bytes == 1000.0
        assert mod.output_bytes == 400.0
        assert mod.name == "render"

    def test_negative_complexity_rejected(self):
        with pytest.raises(SpecificationError):
            ComputingModule(module_id=0, complexity=-1.0, input_bytes=10, output_bytes=5)

    def test_negative_input_rejected(self):
        with pytest.raises(SpecificationError):
            ComputingModule(module_id=0, complexity=1.0, input_bytes=-10, output_bytes=5)

    def test_negative_output_rejected(self):
        with pytest.raises(SpecificationError):
            ComputingModule(module_id=0, complexity=1.0, input_bytes=10, output_bytes=-5)

    def test_negative_id_rejected(self):
        with pytest.raises(SpecificationError):
            ComputingModule(module_id=-1, complexity=1.0, input_bytes=10, output_bytes=5)

    def test_zero_values_allowed(self):
        mod = ComputingModule(module_id=0, complexity=0.0, input_bytes=0.0, output_bytes=0.0)
        assert mod.workload == 0.0
        assert mod.is_forwarding


class TestDerivedQuantities:
    def test_workload_is_complexity_times_input(self):
        mod = ComputingModule(module_id=1, complexity=7.0, input_bytes=300.0,
                              output_bytes=100.0)
        assert mod.workload == pytest.approx(2100.0)

    def test_is_forwarding_true_only_for_zero_workload(self):
        assert ComputingModule(0, 0.0, 100.0, 50.0).is_forwarding
        assert not ComputingModule(0, 2.0, 100.0, 50.0).is_forwarding

    def test_compression_ratio(self):
        mod = ComputingModule(module_id=1, complexity=1.0, input_bytes=200.0,
                              output_bytes=50.0)
        assert mod.compression_ratio == pytest.approx(0.25)

    def test_compression_ratio_zero_input(self):
        assert ComputingModule(0, 0.0, 0.0, 10.0).compression_ratio == float("inf")
        assert ComputingModule(0, 0.0, 0.0, 0.0).compression_ratio == 1.0


class TestTransformers:
    def test_renamed_keeps_other_fields(self):
        mod = ComputingModule(1, 2.0, 10.0, 5.0, name="a")
        renamed = mod.renamed("b")
        assert renamed.name == "b"
        assert renamed.complexity == mod.complexity
        assert mod.name == "a"  # original untouched (frozen dataclass)

    def test_with_id(self):
        mod = ComputingModule(1, 2.0, 10.0, 5.0)
        assert mod.with_id(7).module_id == 7

    def test_scaled_data_and_complexity(self):
        mod = ComputingModule(1, 2.0, 10.0, 5.0)
        scaled = mod.scaled(complexity=3.0, data=2.0)
        assert scaled.complexity == pytest.approx(6.0)
        assert scaled.input_bytes == pytest.approx(20.0)
        assert scaled.output_bytes == pytest.approx(10.0)

    def test_scaled_rejects_negative_factor(self):
        with pytest.raises(SpecificationError):
            ComputingModule(1, 2.0, 10.0, 5.0).scaled(data=-1.0)


class TestSerialization:
    def test_roundtrip(self):
        mod = ComputingModule(4, 3.5, 123.0, 45.0, name="x", metadata={"k": 1})
        again = ComputingModule.from_dict(mod.to_dict())
        assert again == mod
        assert again.metadata == {"k": 1}

    def test_from_dict_defaults(self):
        again = ComputingModule.from_dict(
            {"module_id": 1, "complexity": 2, "input_bytes": 3, "output_bytes": 4})
        assert again.name is None
        assert again.metadata == {}


class TestConvenienceConstructors:
    def test_source_module_shape(self):
        src = source_module(5000.0)
        assert src.module_id == 0
        assert src.complexity == 0.0
        assert src.input_bytes == 0.0
        assert src.output_bytes == 5000.0
        assert src.is_forwarding

    def test_sink_module_shape(self):
        sink = sink_module(25.0, 800.0, module_id=6)
        assert sink.module_id == 6
        assert sink.output_bytes == 0.0
        assert sink.workload == pytest.approx(25.0 * 800.0)
