"""Tests for the loadtest harness (repro.service.loadtest).

The throughput acceptance bars (keep-alive vs baseline, replica scaling)
live in ``benchmarks/test_bench_loadtest.py`` and
``benchmarks/test_bench_replicas.py``; this file covers the harness itself:
workload generation/recording, open-loop arrival schedules (seeded Poisson
and recorded timestamped traces), the statistics (including the small-``n``
percentile clamp), result identity with direct ``solve_many``, the
bench-JSON schema, and the ``repro loadtest`` CLI with its exit-code
contract (1 = could not start, 2 = ran but produced nothing usable).
"""

from __future__ import annotations

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Objective, solve_many
from repro.exceptions import SpecificationError
from repro.service import (
    BackgroundServer,
    ServiceConfig,
    generate_workload,
    load_trace,
    load_workload,
    poisson_schedule,
    run_loadtest,
)
from repro.service.loadtest import (
    BENCH_JSON_SCHEMA,
    _percentile,
    _percentile_is_clamped,
)


class TestWorkloads:
    def test_generated_workload_shares_one_network(self):
        instances = generate_workload(6, n_modules=4, n_nodes=8, n_links=16,
                                      seed=7)
        assert len(instances) == 6
        assert len({id(inst.network) for inst in instances}) == 1
        assert len({inst.name for inst in instances}) == 6

    def test_generated_workload_is_deterministic(self):
        first = generate_workload(3, n_modules=4, n_nodes=8, n_links=16,
                                  seed=7)
        second = generate_workload(3, n_modules=4, n_nodes=8, n_links=16,
                                   seed=7)
        for a, b in zip(first, second):
            assert a.to_dict() == b.to_dict()

    def test_generated_workload_rejects_bad_count(self):
        with pytest.raises(SpecificationError, match="count"):
            generate_workload(0)

    def test_recorded_workload_roundtrip(self, tmp_path):
        instances = generate_workload(3, n_modules=4, n_nodes=8, n_links=16,
                                      seed=7)
        path = tmp_path / "workload.jsonl"
        path.write_text(
            "\n".join(json.dumps(inst.to_dict()) for inst in instances)
            + "\n\n", encoding="utf-8")  # trailing blank line is tolerated
        again = load_workload(path)
        assert [a.to_dict() for a in again] == [i.to_dict() for i in instances]

    def test_recorded_workload_bad_line_is_located(self, tmp_path):
        path = tmp_path / "workload.jsonl"
        path.write_text('{"not": "an instance"}\n', encoding="utf-8")
        with pytest.raises(SpecificationError, match="workload.jsonl:1"):
            load_workload(path)

    def test_recorded_workload_missing_file(self, tmp_path):
        with pytest.raises(SpecificationError, match="cannot read"):
            load_workload(tmp_path / "nope.jsonl")


class TestArrivalSchedule:
    """The open-loop Poisson scheduler and recorded-trace replay."""

    @given(seed=st.integers(0, 2**31), rate=st.floats(1.0, 500.0),
           duration=st.floats(0.1, 5.0))
    @settings(max_examples=50, deadline=None)
    def test_same_seed_reproduces_the_schedule(self, seed, rate, duration):
        first = poisson_schedule(rate, duration, seed=seed)
        second = poisson_schedule(rate, duration, seed=seed)
        assert first == second  # bit-identical, not approximately equal

    @given(seed=st.integers(0, 2**31))
    @settings(max_examples=50, deadline=None)
    def test_offsets_are_increasing_and_in_window(self, seed):
        offsets = poisson_schedule(50.0, 2.0, seed=seed)
        assert all(0.0 < offset < 2.0 for offset in offsets)
        assert all(b > a for a, b in zip(offsets, offsets[1:]))

    def test_mean_interarrival_matches_rate(self):
        """At n ~ 4000 the sample mean gap is within a few std-errors of
        1/rate (std-error of the mean gap = (1/rate)/sqrt(n))."""
        rate = 500.0
        offsets = poisson_schedule(rate, 8.0, seed=123)
        gaps = [b - a for a, b in zip([0.0] + offsets[:-1], offsets)]
        assert len(gaps) > 3000
        mean_gap = sum(gaps) / len(gaps)
        tolerance = 5.0 * (1.0 / rate) / math.sqrt(len(gaps))
        assert abs(mean_gap - 1.0 / rate) < tolerance

    def test_rejects_bad_parameters(self):
        with pytest.raises(SpecificationError, match="rate"):
            poisson_schedule(0.0, 1.0)
        with pytest.raises(SpecificationError, match="rate"):
            poisson_schedule(float("nan"), 1.0)
        with pytest.raises(SpecificationError, match="duration"):
            poisson_schedule(10.0, 0.0)


class TestTraceReplay:
    def _write_trace(self, path, entries):
        path.write_text("\n".join(json.dumps(e) for e in entries) + "\n",
                        encoding="utf-8")

    def test_trace_is_sorted_by_timestamp_stably(self, tmp_path):
        instances = generate_workload(4, n_modules=4, n_nodes=8, n_links=16,
                                      seed=7)
        path = tmp_path / "trace.jsonl"
        # Out of order, with a timestamp tie: the tie must keep file order.
        self._write_trace(path, [
            {"t": 0.5, "instance": instances[0].to_dict()},
            {"t": 0.1, "instance": instances[1].to_dict()},
            {"t": 0.1, "instance": instances[2].to_dict()},
            {"timestamp": 0.0, "instance": instances[3].to_dict()},  # alias
        ])
        trace = load_trace(path)
        assert [stamp for stamp, _inst in trace] == [0.0, 0.1, 0.1, 0.5]
        assert [inst.name for _stamp, inst in trace] == [
            instances[3].name, instances[1].name, instances[2].name,
            instances[0].name]

    @pytest.mark.parametrize("line,needle", [
        ('not json', "bad trace JSON"),
        ('[1, 2]', "must be an object"),
        ('{"instance": {}}', "needs a finite non-negative 't'"),
        ('{"t": -1.0, "instance": {}}', "needs a finite non-negative 't'"),
        ('{"t": true, "instance": {}}', "needs a finite non-negative 't'"),
        ('{"t": "NaN", "instance": {}}', "needs a finite non-negative 't'"),
        ('{"t": 0.5}', "needs an 'instance' object"),
        ('{"t": 0.5, "instance": {"bogus": 1}}', "bad instance payload"),
    ])
    def test_bad_entries_are_line_located(self, tmp_path, line, needle):
        instances = generate_workload(1, n_modules=4, n_nodes=8, n_links=16,
                                      seed=7)
        path = tmp_path / "trace.jsonl"
        good = json.dumps({"t": 0.0, "instance": instances[0].to_dict()})
        path.write_text(good + "\n" + line + "\n", encoding="utf-8")
        with pytest.raises(SpecificationError, match="trace.jsonl:2") as exc:
            load_trace(path)
        assert needle in str(exc.value)

    def test_empty_trace_rejected(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text("\n\n", encoding="utf-8")
        with pytest.raises(SpecificationError, match="no entries"):
            load_trace(path)

    def test_missing_trace_file(self, tmp_path):
        with pytest.raises(SpecificationError, match="cannot read"):
            load_trace(tmp_path / "nope.jsonl")


class TestPercentile:
    def test_edges_and_interpolation(self):
        assert _percentile([], 50.0) == 0.0
        assert _percentile([3.0], 99.0) == 3.0
        values = [1.0, 2.0, 3.0, 4.0]
        assert _percentile(values, 0.0) == 1.0
        assert _percentile(values, 100.0) == 4.0
        assert _percentile(values, 50.0) == pytest.approx(2.5)

    def test_small_samples_clamp_high_percentiles_to_max(self):
        """p99 of a dozen requests is just the max; report it as exactly
        that instead of interpolating a fictional tail."""
        values = [float(i) for i in range(50)]
        assert _percentile_is_clamped(50, 99.0)
        assert _percentile(values, 99.0) == values[-1]
        # p50 has plenty of resolution at n=50 and still interpolates.
        assert not _percentile_is_clamped(50, 50.0)
        assert _percentile(values, 50.0) == pytest.approx(24.5)

    def test_clamp_boundary_is_n_times_tail_mass(self):
        # n * (100 - q) < 100 is the rule: p99 needs n >= 100.
        assert _percentile_is_clamped(99, 99.0)
        assert not _percentile_is_clamped(100, 99.0)
        large = [float(i) for i in range(200)]
        assert _percentile(large, 99.0) < large[-1]


class TestRunLoadtest:
    def test_smoke_and_result_identity_with_solve_many(self):
        """A short run completes without errors, reports server-side flush
        deltas, and — the wire contract — every kept response is identical
        to the direct solve_many answer for that instance."""
        instances = generate_workload(8, n_modules=4, n_nodes=8, n_links=16,
                                      seed=7)
        with BackgroundServer(ServiceConfig()) as server:
            result = run_loadtest(host="127.0.0.1", port=server.port,
                                  clients=2, duration_s=0.4,
                                  instances=instances, keep_responses=True)
        assert result.requests_total > 0
        assert result.errors_total == 0
        assert result.throughput_rps > 0
        assert result.latency_p99_ms >= result.latency_p50_ms >= 0
        assert result.mean_group_size >= 1.0
        assert result.server["responses"] >= result.requests_total
        assert result.server["flushes"] >= 1
        # Admission deltas are always reported; zero without --admission-control.
        assert result.server["admitted"] == 0
        assert result.server["rejected"] == 0
        assert result.responses, "keep_responses=True must record responses"

        direct = solve_many(instances, solver="elpc-tensor",
                            objective=Objective.MIN_DELAY)
        for instance_index, response in result.responses:
            item = direct.items[instance_index]
            assert response["ok"]
            assert response["name"] == item.name
            assert response["mapping"]["groups"] == [
                list(group) for group in item.mapping.groups]
            assert response["mapping"]["path"] == list(item.mapping.path)
            assert response["mapping"]["delay_ms"] == item.mapping.delay_ms

    def test_admission_deltas_reported(self):
        """Against an admission-control server the report carries the
        admitted/rejected healthz deltas and the table gains an admission
        line.  Admitted tenants hold their capacity for the service
        lifetime, so a sustained loadtest inevitably drains the ledger and
        later requests bounce — those rejections surface as ``ok: false``
        errors AND as the rejected delta."""
        instances = generate_workload(6, n_modules=4, n_nodes=8, n_links=16,
                                      seed=7)
        with BackgroundServer(ServiceConfig(admission_control=True)) as server:
            result = run_loadtest(host="127.0.0.1", port=server.port,
                                  clients=2, duration_s=0.4,
                                  instances=instances)
        assert result.server["admitted"] > 0
        assert result.server["admitted"] + result.server["rejected"] \
            >= result.requests_total
        # Every capacity rejection is an ok:false response.
        assert result.errors_total >= result.server["rejected"] > 0
        assert "admission" in result.table_text()
        metrics = result.to_bench_json()["metrics"]["loadtest/request_latency"]
        assert metrics["extra:admitted"] == result.server["admitted"]
        assert metrics["extra:rejected"] == result.server["rejected"]

    def test_parameter_validation(self):
        with pytest.raises(SpecificationError, match="clients"):
            run_loadtest(clients=0)
        with pytest.raises(SpecificationError, match="duration"):
            run_loadtest(duration_s=0.0)
        with pytest.raises(SpecificationError, match="not both"):
            run_loadtest(arrival_rate=10.0, trace=[])
        with pytest.raises(SpecificationError, match="max_connections"):
            run_loadtest(arrival_rate=10.0, max_connections=0)
        with pytest.raises(SpecificationError, match="empty"):
            run_loadtest(trace=[])

    def test_open_loop_poisson_run(self):
        """Open-loop mode answers every scheduled arrival, records schedule
        lag, attributes responses to replicas, and stays deterministic in
        its offered schedule."""
        instances = generate_workload(6, n_modules=4, n_nodes=8, n_links=16,
                                      seed=7)
        with BackgroundServer(ServiceConfig()) as server:
            result = run_loadtest(host="127.0.0.1", port=server.port,
                                  duration_s=0.5, instances=instances,
                                  arrival_rate=60.0, max_connections=4,
                                  seed=11, keep_responses=True)
        expected = poisson_schedule(60.0, 0.5, seed=11)
        assert result.mode == "open"
        assert result.scheduled_total == len(expected)
        assert result.requests_total == len(expected)  # none dropped
        assert result.errors_total == 0
        assert result.offered_rps == pytest.approx(len(expected) / 0.5)
        assert result.clients == min(4, len(expected))
        assert result.lag_ms_max >= result.lag_ms_mean >= 0.0
        # A single in-process server is replica 0 for every response.
        assert result.per_replica == {"0": result.requests_total}
        table = result.table_text()
        assert "open-loop" in table and "schedule lag" in table
        metric = result.to_bench_json()["metrics"]["loadtest/request_latency"]
        assert metric["extra:open_loop"] == 1
        assert metric["extra:offered_rps"] == pytest.approx(
            result.offered_rps, abs=0.01)
        assert metric["extra:replicas_observed"] == 1

    def test_open_loop_trace_run_preserves_instance_mapping(self, tmp_path):
        """Trace replay solves each entry's own instance (responses match
        the trace's instance at that index, not a round-robin workload)."""
        instances = generate_workload(3, n_modules=4, n_nodes=8, n_links=16,
                                      seed=7)
        path = tmp_path / "trace.jsonl"
        entries = [{"t": 0.05 * i, "instance": inst.to_dict()}
                   for i, inst in enumerate(instances)]
        path.write_text("\n".join(json.dumps(e) for e in entries) + "\n",
                        encoding="utf-8")
        trace = load_trace(path)
        with BackgroundServer(ServiceConfig()) as server:
            result = run_loadtest(host="127.0.0.1", port=server.port,
                                  duration_s=1.0, trace=trace,
                                  max_connections=2, keep_responses=True)
        assert result.mode == "open"
        assert result.requests_total == len(instances)
        assert result.errors_total == 0
        names = {index: response["name"]
                 for index, response in result.responses}
        assert names == {i: inst.name for i, inst in enumerate(instances)}

    def test_bench_json_schema(self):
        instances = generate_workload(4, n_modules=4, n_nodes=8, n_links=16,
                                      seed=7)
        with BackgroundServer(ServiceConfig()) as server:
            result = run_loadtest(host="127.0.0.1", port=server.port,
                                  clients=2, duration_s=0.3,
                                  instances=instances)
        payload = result.to_bench_json(sha="abc123")
        assert payload["schema"] == BENCH_JSON_SCHEMA
        assert payload["sha"] == "abc123"
        metric = payload["metrics"]["loadtest/request_latency"]
        assert metric["mean_s"] > 0
        assert metric["rounds"] == result.requests_total
        assert metric["extra:throughput_rps"] > 0
        assert metric["extra:clients"] == 2
        assert metric["extra:keep_alive"] == 1
        # table_text renders without raising and mentions the headline stats
        table = result.table_text()
        assert "throughput" in table and "p99" in table


class TestLoadtestCli:
    def test_cli_end_to_end_with_emit_json(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "loadtest.json"
        with BackgroundServer(ServiceConfig()) as server:
            code = main(["loadtest", "--port", str(server.port),
                         "--clients", "2", "--duration", "0.3",
                         "--instances", "4", "--modules", "4",
                         "--nodes", "8", "--links", "16",
                         "--emit-json", str(out)])
        assert code == 0
        captured = capsys.readouterr().out
        assert "closed-loop clients" in captured
        payload = json.loads(out.read_text())
        assert payload["schema"] == BENCH_JSON_SCHEMA
        assert "loadtest/request_latency" in payload["metrics"]

    def test_cli_exit_1_when_no_server(self, capsys):
        from repro.cli import main

        code = main(["loadtest", "--port", "1", "--duration", "0.2",
                     "--clients", "1", "--instances", "2",
                     "--modules", "4", "--nodes", "8", "--links", "16"])
        assert code == 1
        err = capsys.readouterr().err
        assert "error:" in err
        # Unreachable is named as such, distinguishable from a server that
        # answered but failed every request (exit 2).
        assert "server unreachable" in err

    def test_cli_exit_2_when_every_request_fails(self, capsys):
        """A reachable server that rejects every solve (unknown solver) is a
        different failure class than an unreachable one: exit 2, not 1."""
        from repro.cli import main

        with BackgroundServer(ServiceConfig()) as server:
            code = main(["loadtest", "--port", str(server.port),
                         "--clients", "1", "--duration", "0.3",
                         "--instances", "2", "--modules", "4",
                         "--nodes", "8", "--links", "16",
                         "--solver", "no-such-solver", "--no-warmup"])
        assert code == 2
        captured = capsys.readouterr()
        assert "every request failed" in captured.err
        assert "loadtest:" in captured.out  # the summary still printed

    def test_cli_open_loop_arrival_rate(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "open.json"
        with BackgroundServer(ServiceConfig()) as server:
            code = main(["loadtest", "--port", str(server.port),
                         "--arrival-rate", "40", "--duration", "0.5",
                         "--max-connections", "4", "--instances", "4",
                         "--modules", "4", "--nodes", "8", "--links", "16",
                         "--seed", "3", "--emit-json", str(out)])
        assert code == 0
        assert "open-loop" in capsys.readouterr().out
        metric = json.loads(out.read_text())["metrics"][
            "loadtest/request_latency"]
        assert metric["extra:open_loop"] == 1
        assert metric["rounds"] == len(poisson_schedule(40.0, 0.5, seed=3))

    def test_cli_open_loop_trace(self, tmp_path, capsys):
        from repro.cli import main

        instances = generate_workload(3, n_modules=4, n_nodes=8, n_links=16,
                                      seed=7)
        path = tmp_path / "trace.jsonl"
        path.write_text(
            "\n".join(json.dumps({"t": 0.05 * i, "instance": inst.to_dict()})
                      for i, inst in enumerate(instances)) + "\n",
            encoding="utf-8")
        with BackgroundServer(ServiceConfig()) as server:
            code = main(["loadtest", "--port", str(server.port),
                         "--trace", str(path)])
        assert code == 0
        assert "3 scheduled arrivals" in capsys.readouterr().out

    def test_cli_rejects_rate_plus_trace(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "trace.jsonl"
        path.write_text("{}\n", encoding="utf-8")
        code = main(["loadtest", "--arrival-rate", "10",
                     "--trace", str(path)])
        assert code == 1
        assert "mutually exclusive" in capsys.readouterr().err

    def test_cli_bad_trace_exit_1(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "trace.jsonl"
        path.write_text("not json\n", encoding="utf-8")
        code = main(["loadtest", "--trace", str(path), "--port", "1"])
        assert code == 1
        assert "trace.jsonl:1" in capsys.readouterr().err

    def test_cli_replay_workload(self, tmp_path):
        from repro.cli import main

        instances = generate_workload(3, n_modules=4, n_nodes=8, n_links=16,
                                      seed=7)
        path = tmp_path / "recorded.jsonl"
        path.write_text(
            "\n".join(json.dumps(inst.to_dict()) for inst in instances),
            encoding="utf-8")
        with BackgroundServer(ServiceConfig()) as server:
            code = main(["loadtest", "--port", str(server.port),
                         "--clients", "2", "--duration", "0.3",
                         "--replay", str(path)])
        assert code == 0
