"""Tests for the closed-loop loadtest harness (repro.service.loadtest).

The throughput acceptance bar (keep-alive continuous batching vs the
one-connection-per-request fixed-window baseline) lives in
``benchmarks/test_bench_loadtest.py``; this file covers the harness itself:
workload generation/recording, the statistics, result identity with direct
``solve_many``, the bench-JSON schema, and the ``repro loadtest`` CLI.
"""

from __future__ import annotations

import json

import pytest

from repro.core import Objective, solve_many
from repro.exceptions import SpecificationError
from repro.service import (
    BackgroundServer,
    ServiceConfig,
    generate_workload,
    load_workload,
    run_loadtest,
)
from repro.service.loadtest import BENCH_JSON_SCHEMA, _percentile


class TestWorkloads:
    def test_generated_workload_shares_one_network(self):
        instances = generate_workload(6, n_modules=4, n_nodes=8, n_links=16,
                                      seed=7)
        assert len(instances) == 6
        assert len({id(inst.network) for inst in instances}) == 1
        assert len({inst.name for inst in instances}) == 6

    def test_generated_workload_is_deterministic(self):
        first = generate_workload(3, n_modules=4, n_nodes=8, n_links=16,
                                  seed=7)
        second = generate_workload(3, n_modules=4, n_nodes=8, n_links=16,
                                   seed=7)
        for a, b in zip(first, second):
            assert a.to_dict() == b.to_dict()

    def test_generated_workload_rejects_bad_count(self):
        with pytest.raises(SpecificationError, match="count"):
            generate_workload(0)

    def test_recorded_workload_roundtrip(self, tmp_path):
        instances = generate_workload(3, n_modules=4, n_nodes=8, n_links=16,
                                      seed=7)
        path = tmp_path / "workload.jsonl"
        path.write_text(
            "\n".join(json.dumps(inst.to_dict()) for inst in instances)
            + "\n\n", encoding="utf-8")  # trailing blank line is tolerated
        again = load_workload(path)
        assert [a.to_dict() for a in again] == [i.to_dict() for i in instances]

    def test_recorded_workload_bad_line_is_located(self, tmp_path):
        path = tmp_path / "workload.jsonl"
        path.write_text('{"not": "an instance"}\n', encoding="utf-8")
        with pytest.raises(SpecificationError, match="workload.jsonl:1"):
            load_workload(path)

    def test_recorded_workload_missing_file(self, tmp_path):
        with pytest.raises(SpecificationError, match="cannot read"):
            load_workload(tmp_path / "nope.jsonl")


class TestPercentile:
    def test_edges_and_interpolation(self):
        assert _percentile([], 50.0) == 0.0
        assert _percentile([3.0], 99.0) == 3.0
        values = [1.0, 2.0, 3.0, 4.0]
        assert _percentile(values, 0.0) == 1.0
        assert _percentile(values, 100.0) == 4.0
        assert _percentile(values, 50.0) == pytest.approx(2.5)


class TestRunLoadtest:
    def test_smoke_and_result_identity_with_solve_many(self):
        """A short run completes without errors, reports server-side flush
        deltas, and — the wire contract — every kept response is identical
        to the direct solve_many answer for that instance."""
        instances = generate_workload(8, n_modules=4, n_nodes=8, n_links=16,
                                      seed=7)
        with BackgroundServer(ServiceConfig()) as server:
            result = run_loadtest(host="127.0.0.1", port=server.port,
                                  clients=2, duration_s=0.4,
                                  instances=instances, keep_responses=True)
        assert result.requests_total > 0
        assert result.errors_total == 0
        assert result.throughput_rps > 0
        assert result.latency_p99_ms >= result.latency_p50_ms >= 0
        assert result.mean_group_size >= 1.0
        assert result.server["responses"] >= result.requests_total
        assert result.server["flushes"] >= 1
        assert result.responses, "keep_responses=True must record responses"

        direct = solve_many(instances, solver="elpc-tensor",
                            objective=Objective.MIN_DELAY)
        for instance_index, response in result.responses:
            item = direct.items[instance_index]
            assert response["ok"]
            assert response["name"] == item.name
            assert response["mapping"]["groups"] == [
                list(group) for group in item.mapping.groups]
            assert response["mapping"]["path"] == list(item.mapping.path)
            assert response["mapping"]["delay_ms"] == item.mapping.delay_ms

    def test_parameter_validation(self):
        with pytest.raises(SpecificationError, match="clients"):
            run_loadtest(clients=0)
        with pytest.raises(SpecificationError, match="duration"):
            run_loadtest(duration_s=0.0)

    def test_bench_json_schema(self):
        instances = generate_workload(4, n_modules=4, n_nodes=8, n_links=16,
                                      seed=7)
        with BackgroundServer(ServiceConfig()) as server:
            result = run_loadtest(host="127.0.0.1", port=server.port,
                                  clients=2, duration_s=0.3,
                                  instances=instances)
        payload = result.to_bench_json(sha="abc123")
        assert payload["schema"] == BENCH_JSON_SCHEMA
        assert payload["sha"] == "abc123"
        metric = payload["metrics"]["loadtest/request_latency"]
        assert metric["mean_s"] > 0
        assert metric["rounds"] == result.requests_total
        assert metric["extra:throughput_rps"] > 0
        assert metric["extra:clients"] == 2
        assert metric["extra:keep_alive"] == 1
        # table_text renders without raising and mentions the headline stats
        table = result.table_text()
        assert "throughput" in table and "p99" in table


class TestLoadtestCli:
    def test_cli_end_to_end_with_emit_json(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "loadtest.json"
        with BackgroundServer(ServiceConfig()) as server:
            code = main(["loadtest", "--port", str(server.port),
                         "--clients", "2", "--duration", "0.3",
                         "--instances", "4", "--modules", "4",
                         "--nodes", "8", "--links", "16",
                         "--emit-json", str(out)])
        assert code == 0
        captured = capsys.readouterr().out
        assert "closed-loop clients" in captured
        payload = json.loads(out.read_text())
        assert payload["schema"] == BENCH_JSON_SCHEMA
        assert "loadtest/request_latency" in payload["metrics"]

    def test_cli_exit_1_when_no_server(self, capsys):
        from repro.cli import main

        code = main(["loadtest", "--port", "1", "--duration", "0.2",
                     "--clients", "1", "--instances", "2",
                     "--modules", "4", "--nodes", "8", "--links", "16"])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_cli_replay_workload(self, tmp_path):
        from repro.cli import main

        instances = generate_workload(3, n_modules=4, n_nodes=8, n_links=16,
                                      seed=7)
        path = tmp_path / "recorded.jsonl"
        path.write_text(
            "\n".join(json.dumps(inst.to_dict()) for inst in instances),
            encoding="utf-8")
        with BackgroundServer(ServiceConfig()) as server:
            code = main(["loadtest", "--port", str(server.port),
                         "--clients", "2", "--duration", "0.3",
                         "--replay", str(path)])
        assert code == 0
