"""Tests for the linear-regression primitives (:mod:`repro.measurement.regression`)."""

import numpy as np
import pytest

from repro.exceptions import MeasurementError
from repro.measurement import fit_line, fit_line_robust


class TestFitLine:
    def test_perfect_line_recovered(self):
        x = [1.0, 2.0, 3.0, 4.0]
        y = [2.0 * xi + 5.0 for xi in x]
        fit = fit_line(x, y)
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(5.0)
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.n_samples == 4
        assert fit.predict(10.0) == pytest.approx(25.0)

    def test_noisy_line_close(self):
        rng = np.random.default_rng(0)
        x = np.linspace(1, 100, 50)
        y = 3.0 * x + 7.0 + rng.normal(0, 0.5, size=50)
        fit = fit_line(x, y)
        assert fit.slope == pytest.approx(3.0, rel=0.05)
        assert fit.intercept == pytest.approx(7.0, abs=2.0)
        assert fit.r_squared > 0.99

    def test_needs_two_points(self):
        with pytest.raises(MeasurementError):
            fit_line([1.0], [2.0])

    def test_mismatched_lengths(self):
        with pytest.raises(MeasurementError):
            fit_line([1.0, 2.0], [2.0])

    def test_constant_x_rejected(self):
        with pytest.raises(MeasurementError):
            fit_line([3.0, 3.0, 3.0], [1.0, 2.0, 3.0])

    def test_flat_line_r_squared_one(self):
        fit = fit_line([1.0, 2.0, 3.0], [5.0, 5.0, 5.0])
        assert fit.slope == pytest.approx(0.0)
        assert fit.r_squared == pytest.approx(1.0)


class TestFitLineRobust:
    def test_perfect_line(self):
        x = list(range(1, 11))
        y = [4.0 * xi - 2.0 for xi in x]
        fit = fit_line_robust(x, y)
        assert fit.slope == pytest.approx(4.0)
        assert fit.intercept == pytest.approx(-2.0)

    def test_resists_outliers(self):
        x = np.linspace(1, 50, 40)
        y = 2.0 * x + 1.0
        y_outliers = y.copy()
        y_outliers[::10] += 500.0  # 10 % wild outliers
        robust = fit_line_robust(x, y_outliers)
        ols = fit_line(x, y_outliers)
        assert abs(robust.slope - 2.0) < abs(ols.slope - 2.0)
        assert robust.slope == pytest.approx(2.0, rel=0.05)

    def test_subsampling_path(self):
        rng = np.random.default_rng(1)
        x = np.linspace(1, 10, 200)
        y = 1.5 * x + rng.normal(0, 0.01, 200)
        fit = fit_line_robust(x, y, max_pairs=500)
        assert fit.slope == pytest.approx(1.5, rel=0.02)

    def test_degenerate_input_rejected(self):
        with pytest.raises(MeasurementError):
            fit_line_robust([2.0, 2.0], [1.0, 5.0])
