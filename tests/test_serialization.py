"""Unit tests for :mod:`repro.model.serialization`."""

import pytest

from repro.exceptions import SpecificationError
from repro.model import (
    EndToEndRequest,
    ProblemInstance,
    instance_from_json,
    instance_from_table_text,
    instance_to_json,
    instance_to_table_text,
    load_instance,
    save_instance,
)


@pytest.fixture
def instance(simple_pipeline, simple_network, simple_request):
    return ProblemInstance(pipeline=simple_pipeline, network=simple_network,
                           request=simple_request, name="unit-case")


class TestProblemInstance:
    def test_size_signature(self, instance):
        assert instance.size_signature == (4, 4, 4)

    def test_dict_roundtrip(self, instance):
        again = ProblemInstance.from_dict(instance.to_dict())
        assert again.name == "unit-case"
        assert again.pipeline == instance.pipeline
        assert again.request == instance.request
        assert again.network.n_links == instance.network.n_links


class TestJsonRoundtrip:
    def test_json_roundtrip(self, instance):
        text = instance_to_json(instance)
        again = instance_from_json(text)
        assert again.pipeline == instance.pipeline
        assert again.request == instance.request
        assert again.network.bandwidth(0, 2) == instance.network.bandwidth(0, 2)

    def test_invalid_json_rejected(self):
        with pytest.raises(SpecificationError):
            instance_from_json("{not json")

    def test_file_roundtrip(self, instance, tmp_path):
        path = save_instance(instance, tmp_path / "case.json")
        assert path.exists()
        again = load_instance(path)
        assert again.name == instance.name
        assert again.size_signature == instance.size_signature


class TestTableTextFormat:
    def test_contains_paper_parameter_names(self, instance):
        text = instance_to_table_text(instance)
        for token in ("ModuleID", "ModuleComplexity", "InputDataInBytes",
                      "OutputDataInBytes", "NodeID", "NodeIP", "ProcessingPower",
                      "startNodeID", "endNodeID", "LinkID", "LinkBWInMbps",
                      "LinkDelayInMilliseconds"):
            assert token in text

    def test_table_roundtrip(self, instance):
        text = instance_to_table_text(instance)
        again = instance_from_table_text(text)
        assert again.name == instance.name
        assert again.size_signature == instance.size_signature
        assert again.request == instance.request
        assert again.pipeline.total_workload() == pytest.approx(
            instance.pipeline.total_workload())
        assert again.network.bandwidth(0, 2) == pytest.approx(
            instance.network.bandwidth(0, 2))

    def test_roundtrip_preserves_module_names(self, instance):
        again = instance_from_table_text(instance_to_table_text(instance))
        assert again.pipeline.modules[1].name == instance.pipeline.modules[1].name

    def test_missing_request_rejected(self, instance):
        text = instance_to_table_text(instance)
        stripped = "\n".join(line for line in text.splitlines()
                             if not line.startswith(("source", "destination")))
        with pytest.raises(SpecificationError):
            instance_from_table_text(stripped)

    def test_malformed_record_rejected(self):
        with pytest.raises(SpecificationError):
            instance_from_table_text("[nodes]\n1 2\n")

    def test_record_outside_section_rejected(self):
        with pytest.raises(SpecificationError):
            instance_from_table_text("0 1 2 3\n")

    def test_generated_case_roundtrips(self):
        from repro.generators import make_case, PAPER_CASE_SPECS
        inst = make_case(PAPER_CASE_SPECS[0])
        again = instance_from_table_text(instance_to_table_text(inst))
        assert again.size_signature == inst.size_signature
        json_again = instance_from_json(instance_to_json(inst))
        assert json_again.size_signature == inst.size_signature
