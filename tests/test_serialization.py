"""Unit tests for :mod:`repro.model.serialization`."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SpecificationError
from repro.model import (
    CommunicationLink,
    ComputingModule,
    ComputingNode,
    EndToEndRequest,
    ProblemInstance,
    TransportNetwork,
    instance_from_json,
    instance_from_table_text,
    instance_to_json,
    instance_to_table_text,
    load_instance,
    save_instance,
)
from repro.model.serialization import _MODULE_HEADER as _MODULE_HEADER_LINE


@pytest.fixture
def instance(simple_pipeline, simple_network, simple_request):
    return ProblemInstance(pipeline=simple_pipeline, network=simple_network,
                           request=simple_request, name="unit-case")


class TestProblemInstance:
    def test_size_signature(self, instance):
        assert instance.size_signature == (4, 4, 4)

    def test_dict_roundtrip(self, instance):
        again = ProblemInstance.from_dict(instance.to_dict())
        assert again.name == "unit-case"
        assert again.pipeline == instance.pipeline
        assert again.request == instance.request
        assert again.network.n_links == instance.network.n_links


class TestJsonRoundtrip:
    def test_json_roundtrip(self, instance):
        text = instance_to_json(instance)
        again = instance_from_json(text)
        assert again.pipeline == instance.pipeline
        assert again.request == instance.request
        assert again.network.bandwidth(0, 2) == instance.network.bandwidth(0, 2)

    def test_invalid_json_rejected(self):
        with pytest.raises(SpecificationError):
            instance_from_json("{not json")

    def test_file_roundtrip(self, instance, tmp_path):
        path = save_instance(instance, tmp_path / "case.json")
        assert path.exists()
        again = load_instance(path)
        assert again.name == instance.name
        assert again.size_signature == instance.size_signature


class TestTableTextFormat:
    def test_contains_paper_parameter_names(self, instance):
        text = instance_to_table_text(instance)
        for token in ("ModuleID", "ModuleComplexity", "InputDataInBytes",
                      "OutputDataInBytes", "NodeID", "NodeIP", "ProcessingPower",
                      "startNodeID", "endNodeID", "LinkID", "LinkBWInMbps",
                      "LinkDelayInMilliseconds"):
            assert token in text

    def test_table_roundtrip(self, instance):
        text = instance_to_table_text(instance)
        again = instance_from_table_text(text)
        assert again.name == instance.name
        assert again.size_signature == instance.size_signature
        assert again.request == instance.request
        assert again.pipeline.total_workload() == pytest.approx(
            instance.pipeline.total_workload())
        assert again.network.bandwidth(0, 2) == pytest.approx(
            instance.network.bandwidth(0, 2))

    def test_roundtrip_preserves_module_names(self, instance):
        again = instance_from_table_text(instance_to_table_text(instance))
        assert again.pipeline.modules[1].name == instance.pipeline.modules[1].name

    def test_missing_request_rejected(self, instance):
        text = instance_to_table_text(instance)
        stripped = "\n".join(line for line in text.splitlines()
                             if not line.startswith(("source", "destination")))
        with pytest.raises(SpecificationError):
            instance_from_table_text(stripped)

    def test_malformed_record_rejected(self):
        with pytest.raises(SpecificationError):
            instance_from_table_text("[nodes]\n1 2\n")

    def test_record_outside_section_rejected(self):
        with pytest.raises(SpecificationError):
            instance_from_table_text("0 1 2 3\n")

    def test_generated_case_roundtrips(self):
        from repro.generators import make_case, PAPER_CASE_SPECS
        inst = make_case(PAPER_CASE_SPECS[0])
        again = instance_from_table_text(instance_to_table_text(inst))
        assert again.size_signature == inst.size_signature
        json_again = instance_from_json(instance_to_json(inst))
        assert json_again.size_signature == inst.size_signature

    @pytest.mark.parametrize("name", [
        "#leading-hash", "with # hash", "  padded  ", "\ttabbed\t",
        "[pipeline]", "[nodes]", _MODULE_HEADER_LINE, "unnamed", "-", "",
        "two  spaces", "newline\nname", "ünïcode名前", "100% done",
    ])
    def test_hostile_names_roundtrip(self, name):
        """Names containing '#', padding whitespace, or text equal to a
        section/header line must survive the tabular round-trip verbatim."""
        inst = _instance_with_names(instance_name=name, module_name=name)
        again = instance_from_table_text(instance_to_table_text(inst))
        assert again.name == name
        assert again.pipeline.modules[1].name == name

    def test_legacy_unquoted_tables_still_parse(self):
        """Files written before percent-quoting (verbatim names, 'unnamed'
        header sentinel) keep parsing."""
        legacy = (
            "# instance: unnamed\n"
            "[pipeline]\n"
            "ModuleID ModuleComplexity InputDataInBytes OutputDataInBytes Name\n"
            "0 0 0 1000 -\n"
            "1 2 1000 0 isosurface extraction\n"
            "[nodes]\n"
            "NodeID NodeIP ProcessingPower\n"
            "0 10.0.0.1 100\n"
            "1 10.0.0.2 200\n"
            "[links]\n"
            "startNodeID endNodeID LinkID LinkBWInMbps LinkDelayInMilliseconds\n"
            "0 1 0 80 1\n"
            "[request]\n"
            "source 0\n"
            "destination 1\n")
        inst = instance_from_table_text(legacy)
        assert inst.name is None
        assert inst.pipeline.modules[1].name == "isosurface extraction"
        assert inst.network.nodes()[0].ip_address == "10.0.0.1"

    def test_invalid_percent_sequences_pass_through(self):
        """A legacy verbatim name with an *invalid* % sequence (e.g. a bare
        trailing percent) is not mangled by the unquoting."""
        legacy = (
            "[pipeline]\n"
            "0 0 0 1000 -\n"
            "1 2 1000 0 done-100%\n"
            "[nodes]\n"
            "0 10.0.0.1 100\n"
            "1 10.0.0.2 200\n"
            "[links]\n"
            "0 1 0 80 1\n"
            "[request]\n"
            "source 0\n"
            "destination 1\n")
        inst = instance_from_table_text(legacy)
        assert inst.pipeline.modules[1].name == "done-100%"


def _instance_with_names(*, instance_name, module_name, pipeline_name=None,
                         network_name=None, complexity=2.0, payload=1000.0,
                         bandwidth=80.0, delay=1.0, power=(100.0, 200.0)):
    """A 2-node / 3-module instance with controllable names and floats."""
    from repro.model import Pipeline as P

    modules = (
        ComputingModule(module_id=0, complexity=0.0, input_bytes=0.0,
                        output_bytes=payload),
        ComputingModule(module_id=1, complexity=complexity, input_bytes=payload,
                        output_bytes=payload, name=module_name),
        ComputingModule(module_id=2, complexity=complexity, input_bytes=payload,
                        output_bytes=0.0),
    )
    nodes = [ComputingNode(node_id=0, processing_power=power[0]),
             ComputingNode(node_id=1, processing_power=power[1])]
    links = [CommunicationLink(start_node=0, end_node=1, link_id=0,
                               bandwidth_mbps=bandwidth, min_delay_ms=delay)]
    return ProblemInstance(
        pipeline=P(modules=modules, name=pipeline_name),
        network=TransportNetwork(nodes=nodes, links=links, name=network_name),
        request=EndToEndRequest(source=0, destination=1),
        name=instance_name)


class TestTableTextRoundtripProperty:
    """Hypothesis: table-text round-trip is the identity on valid instances."""

    names = st.one_of(st.none(), st.text(max_size=24))
    positive = st.floats(min_value=1e-9, max_value=1e12, allow_nan=False,
                         allow_infinity=False)
    non_negative = st.floats(min_value=0.0, max_value=1e12, allow_nan=False,
                             allow_infinity=False)

    @settings(max_examples=60, deadline=None)
    @given(instance_name=names, module_name=names, pipeline_name=names,
           network_name=names, complexity=non_negative, payload=non_negative,
           bandwidth=positive, delay=non_negative, power_a=positive,
           power_b=positive)
    def test_roundtrip_identity(self, instance_name, module_name, pipeline_name,
                                network_name, complexity, payload, bandwidth,
                                delay, power_a, power_b):
        inst = _instance_with_names(
            instance_name=instance_name, module_name=module_name,
            pipeline_name=pipeline_name, network_name=network_name,
            complexity=complexity, payload=payload, bandwidth=bandwidth,
            delay=delay, power=(power_a, power_b))
        again = instance_from_table_text(instance_to_table_text(inst))
        assert again.name == inst.name
        assert again.pipeline == inst.pipeline
        assert again.request == inst.request
        assert again.network.name == inst.network.name
        assert again.network.nodes() == inst.network.nodes()
        assert again.network.links() == inst.network.links()
