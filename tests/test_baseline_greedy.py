"""Tests for the Greedy baseline mapper."""

import pytest

from repro.baselines import greedy_max_frame_rate, greedy_min_delay
from repro.core import elpc_max_frame_rate, elpc_min_delay
from repro.exceptions import InfeasibleMappingError
from repro.generators import line_network, random_network, random_pipeline, random_request
from repro.model import EndToEndRequest, assert_no_reuse


class TestGreedyMinDelay:
    def test_valid_mapping_structure(self, simple_pipeline, simple_network, simple_request):
        mapping = greedy_min_delay(simple_pipeline, simple_network, simple_request)
        assert mapping.algorithm == "greedy"
        assert mapping.path[0] == simple_request.source
        assert mapping.path[-1] == simple_request.destination
        assert simple_network.is_walk(mapping.path)

    def test_never_better_than_elpc(self):
        """ELPC is optimal, so Greedy can never beat it (may tie)."""
        for seed in range(10):
            pipeline = random_pipeline(6, seed=seed)
            network = random_network(12, 30, seed=seed)
            request = random_request(network, seed=seed, min_hop_distance=2)
            greedy = greedy_min_delay(pipeline, network, request)
            optimal = elpc_min_delay(pipeline, network, request)
            assert greedy.delay_ms >= optimal.delay_ms - 1e-9

    def test_single_hop_instance(self, simple_pipeline, simple_network):
        mapping = greedy_min_delay(simple_pipeline, simple_network, EndToEndRequest(0, 1))
        assert mapping.path[0] == 0 and mapping.path[-1] == 1

    def test_line_network_forced_route(self):
        network = line_network(4, seed=7)
        pipeline = random_pipeline(6, seed=7)
        mapping = greedy_min_delay(pipeline, network, EndToEndRequest(0, 3))
        # every node of the line must appear (in order) since it is the only route
        assert [n for i, n in enumerate(mapping.path) if i == 0 or n != mapping.path[i - 1]] \
            == [0, 1, 2, 3]

    def test_infeasible_short_pipeline(self):
        network = line_network(6, seed=7)
        pipeline = random_pipeline(3, seed=7)
        with pytest.raises(InfeasibleMappingError):
            greedy_min_delay(pipeline, network, EndToEndRequest(0, 5))


class TestGreedyMaxFrameRate:
    def test_no_reuse_and_endpoints(self, simple_pipeline, simple_network, simple_request):
        mapping = greedy_max_frame_rate(simple_pipeline, simple_network, simple_request)
        assert_no_reuse(mapping.path)
        assert len(mapping.path) == simple_pipeline.n_modules
        assert mapping.path[0] == simple_request.source
        assert mapping.path[-1] == simple_request.destination

    def test_never_better_than_exhaustive(self):
        from repro.core import exhaustive_max_frame_rate
        for seed in range(8):
            pipeline = random_pipeline(4, seed=seed)
            network = random_network(8, 18, seed=seed + 40)
            request = random_request(network, seed=seed, min_hop_distance=2)
            try:
                exact = exhaustive_max_frame_rate(pipeline, network, request)
                greedy = greedy_max_frame_rate(pipeline, network, request)
            except InfeasibleMappingError:
                continue
            assert greedy.frame_rate_fps <= exact.frame_rate_fps + 1e-9

    def test_destination_reserved_for_last_module(self):
        for seed in range(5):
            pipeline = random_pipeline(5, seed=seed)
            network = random_network(10, 25, seed=seed + 60)
            request = random_request(network, seed=seed, min_hop_distance=2)
            try:
                mapping = greedy_max_frame_rate(pipeline, network, request)
            except InfeasibleMappingError:
                continue
            assert request.destination not in mapping.path[:-1]

    def test_infeasible_when_not_enough_nodes(self, simple_network, simple_request):
        pipeline = random_pipeline(9, seed=3)
        with pytest.raises(InfeasibleMappingError):
            greedy_max_frame_rate(pipeline, simple_network, simple_request)

    def test_runtime_recorded(self, simple_pipeline, simple_network, simple_request):
        mapping = greedy_max_frame_rate(simple_pipeline, simple_network, simple_request)
        assert mapping.runtime_s >= 0.0
        assert mapping.extras["include_link_delay"] is True
