"""Unit tests for the ledger storage seam (repro.placement.ledger).

Covers the two :class:`LedgerStore` implementations behind
:class:`ClusterState`: the default in-process :class:`LocalStore` (must stay
bit-identical to the pre-seam ledger) and the :class:`SharedStore` slots of a
:class:`SharedLedger` slab (cross-holder budget visibility, per-replica
holdings journals, crash-release refunds, snapshot/restore that only rolls
back the caller's own delta).  Also the concurrency fix that the seam
required: ``snapshot()``/``restore()`` hold the store lock for the whole
copy, proven by a threaded race test, and a forked-child attach test proving
the segment-name protocol the replica supervisor relies on.
"""

from __future__ import annotations

import os
import threading

import numpy as np
import pytest

from repro.exceptions import CapacityError, SpecificationError
from repro.generators import random_network, random_pipeline, random_request
from repro.placement import ClusterState, LocalStore, SharedLedger, SharedStore

requires_fork = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="shared-segment attach test needs fork")


def _network(seed=1, n_nodes=6, n_links=10):
    return random_network(n_nodes, n_links, seed=seed)


def _mapping(network, *, pipe_seed=2, req_seed=3, n_modules=3):
    import repro
    from repro.core import Objective

    pipeline = random_pipeline(n_modules=n_modules, seed=pipe_seed)
    request = random_request(network, seed=req_seed)
    return repro.solve("elpc", pipeline, network, request, Objective.MIN_DELAY)


@pytest.fixture
def fleet():
    ledger = SharedLedger.create(replicas=2)
    yield ledger
    ledger.close()
    ledger.unlink()


def _shared_cluster(fleet, network, replica_id, key="net0"):
    def factory(node_cap, link_cap, link_keys):
        return fleet.store_for(key, replica_id, node_cap, link_cap, link_keys)

    return ClusterState.from_network(network, store_factory=factory)


# ---------------------------------------------------------------------- #
# LocalStore (the default)
# ---------------------------------------------------------------------- #
class TestLocalStore:
    def test_default_store_is_local(self):
        cluster = ClusterState.from_network(_network())
        assert isinstance(cluster.store, LocalStore)
        assert cluster.store.kind == "local"

    def test_node_remaining_is_live_and_writable(self):
        cluster = ClusterState.from_network(_network())
        cluster.node_remaining[0] = 0.0
        assert cluster.node_remaining[0] == 0.0
        assert cluster.remaining_node(cluster.view.node_ids[0]) == 0.0

    def test_link_remaining_behaves_like_the_old_dict(self):
        cluster = ClusterState.from_network(_network())
        view = cluster.link_remaining
        assert set(view) == set(cluster.link_capacity)
        assert len(view) == len(cluster.link_capacity)
        assert dict(view) == {k: cluster.link_capacity[k] for k in view}
        assert view == {k: cluster.link_capacity[k] for k in view}
        key = next(iter(view))
        view[key] = 1.5
        assert cluster.link_remaining[key] == 1.5
        assert key in view

    def test_budget_queries_match_arrays(self):
        network = _network()
        cluster = ClusterState.from_network(network)
        mapping = _mapping(network)
        cluster.commit(cluster.demand_of(mapping, demand_fps=3.0))
        for node_id, remaining, slack in cluster.node_budgets():
            assert remaining == cluster.remaining_node(node_id)
            assert slack == cluster.node_slack(node_id)
        for key, remaining, slack in cluster.link_budgets():
            assert remaining == cluster.link_remaining[key]
            assert slack == cluster.link_slack(*key)
        vec = cluster.node_remaining_vector()
        assert np.array_equal(vec, np.asarray(cluster.node_remaining))
        vec[0] = -1.0  # a copy, not the live array
        assert cluster.node_remaining[0] != -1.0


# ---------------------------------------------------------------------- #
# SharedStore / SharedLedger
# ---------------------------------------------------------------------- #
class TestSharedStore:
    def test_commits_visible_across_holders(self, fleet):
        network = _network()
        c0 = _shared_cluster(fleet, network, 0)
        c1 = _shared_cluster(fleet, network, 1)
        assert isinstance(c0.store, SharedStore)
        mapping = _mapping(network)
        before = c1.node_remaining_vector()
        c0.commit(c0.demand_of(mapping, demand_fps=4.0))
        after = c1.node_remaining_vector()
        assert not np.array_equal(before, after)
        assert np.array_equal(after, c0.node_remaining_vector())

    def test_bit_identical_with_local_store(self, fleet):
        network = _network()
        shared = _shared_cluster(fleet, network, 0)
        local = ClusterState.from_network(network)
        mapping = _mapping(network)
        for fps in (5.0, 1.0, 0.25):
            shared.commit(shared.demand_of(mapping, demand_fps=fps))
            local.commit(local.demand_of(mapping, demand_fps=fps))
        assert np.array_equal(np.asarray(shared.node_remaining),
                              np.asarray(local.node_remaining))
        assert dict(shared.link_remaining) == dict(local.link_remaining)

    def test_rejoining_a_slot_keeps_drained_budgets(self, fleet):
        network = _network()
        c0 = _shared_cluster(fleet, network, 0)
        mapping = _mapping(network)
        c0.commit(c0.demand_of(mapping, demand_fps=4.0))
        drained = c0.node_remaining_vector()
        # A later holder of the same network key (e.g. a replica whose
        # interner evicted and re-interned the topology) must land on the
        # same slot with the fleet's commitments intact.
        rejoined = _shared_cluster(fleet, network, 1)
        assert np.array_equal(rejoined.node_remaining_vector(), drained)

    def test_capacity_mismatch_is_configuration_drift(self, fleet):
        network = _network()
        _shared_cluster(fleet, network, 0)

        def bad_factory(node_cap, link_cap, link_keys):
            return fleet.store_for("net0", 1, node_cap * 2.0, link_cap,
                                   link_keys)

        with pytest.raises(SpecificationError, match="disagree"):
            ClusterState.from_network(network, store_factory=bad_factory)

    def test_slab_geometry_overflow_is_capacity_error(self):
        small = SharedLedger.create(replicas=1, max_nodes=2, max_links=2)
        try:
            network = _network()
            with pytest.raises(CapacityError, match="geometry"):
                _shared_cluster(small, network, 0)
        finally:
            small.close()
            small.unlink()

    def test_full_registry_is_capacity_error(self):
        small = SharedLedger.create(replicas=1, max_networks=1)
        try:
            _shared_cluster(small, _network(seed=1), 0, key="a")
            with pytest.raises(CapacityError, match="full"):
                _shared_cluster(small, _network(seed=2), 0, key="b")
        finally:
            small.close()
            small.unlink()

    def test_validate_sees_fleet_wide_usage(self, fleet):
        network = _network()
        c0 = _shared_cluster(fleet, network, 0)
        c1 = _shared_cluster(fleet, network, 1)
        mapping = _mapping(network)
        c0.commit(c0.demand_of(mapping, demand_fps=2.0))
        c1.commit(c1.demand_of(mapping, demand_fps=3.0))
        # Each holder only has its own committed list, but validate() must
        # reconcile against the *sum* of every replica's journal.
        c0.validate()
        c1.validate()

    def test_release_replica_refunds_and_is_idempotent(self, fleet):
        network = _network()
        c0 = _shared_cluster(fleet, network, 0)
        c1 = _shared_cluster(fleet, network, 1)
        mapping = _mapping(network)
        c1.commit(c1.demand_of(mapping, demand_fps=3.0))
        pristine = ClusterState.from_network(network)
        assert fleet.release_replica(1) > 0.0
        assert np.array_equal(c0.node_remaining_vector(),
                              np.asarray(pristine.node_remaining))
        assert fleet.release_replica(1) == 0.0
        assert fleet.occupancy()["released_total"] == 1.0

    def test_restore_refunds_own_delta_only(self, fleet):
        network = _network()
        c0 = _shared_cluster(fleet, network, 0)
        c1 = _shared_cluster(fleet, network, 1)
        mapping = _mapping(network)
        snap = c0.snapshot()
        c0.commit(c0.demand_of(mapping, demand_fps=1.0))
        other = c1.commit(c1.demand_of(mapping, demand_fps=2.0))
        c0.restore(snap)
        # c1's commit survives c0's rollback...
        c0.validate()
        c1.validate()
        assert c0.committed == []
        expected = ClusterState.from_network(network)
        expected.commit(expected.demand_of(mapping, demand_fps=2.0))
        assert np.array_equal(c0.node_remaining_vector(),
                              np.asarray(expected.node_remaining))
        # ...and releasing it returns the slab to pristine.
        c1.release(other)
        pristine = ClusterState.from_network(network)
        assert np.array_equal(c1.node_remaining_vector(),
                              np.asarray(pristine.node_remaining))

    def test_shared_store_refuses_rebase(self, fleet):
        network = _network()
        c0 = _shared_cluster(fleet, network, 0)
        node = network.nodes()[0]
        network.set_processing_power(node.node_id,
                                     node.processing_power * 2.0)
        with pytest.raises(SpecificationError, match="shared"):
            c0.rebase()

    def test_occupancy_totals(self, fleet):
        network = _network()
        c0 = _shared_cluster(fleet, network, 0)
        mapping = _mapping(network)
        c0.commit(c0.demand_of(mapping, demand_fps=5.0))
        occ = fleet.occupancy()
        assert occ["networks"] == 1.0
        assert occ["node_capacity"] == pytest.approx(
            float(c0.node_capacity.sum()))
        used = occ["node_capacity"] - occ["node_remaining"]
        assert used == pytest.approx(c0.committed[0].total_node_ops)

    @requires_fork
    def test_forked_child_attaches_by_name(self, fleet):
        network = _network()
        c0 = _shared_cluster(fleet, network, 0)
        mapping = _mapping(network)
        demand = c0.demand_of(mapping, demand_fps=3.0)
        read_fd, write_fd = os.pipe()
        pid = os.fork()
        if pid == 0:  # child: attach by segment name, commit, exit
            code = 1
            try:
                os.close(read_fd)
                attached = fleet.attach()
                child = _shared_cluster(attached, network, 1)
                child.commit(child.demand_of(mapping, demand_fps=3.0))
                attached.close()
                os.write(write_fd, b"ok")
                code = 0
            except BaseException:
                import traceback

                traceback.print_exc()
            finally:
                os._exit(code)
        os.close(write_fd)
        assert os.read(read_fd, 2) == b"ok"
        os.close(read_fd)
        _pid, status = os.waitpid(pid, 0)
        assert os.waitstatus_to_exitcode(status) == 0
        # The child's charge must be visible here, and must equal one local
        # commit of the same demand.
        expected = ClusterState.from_network(network)
        expected.commit(expected.demand_of(mapping, demand_fps=3.0))
        assert np.array_equal(c0.node_remaining_vector(),
                              np.asarray(expected.node_remaining))
        # The supervisor reaps the "crashed" child's journal.
        assert fleet.release_replica(1) > 0.0
        pristine = ClusterState.from_network(network)
        assert np.array_equal(c0.node_remaining_vector(),
                              np.asarray(pristine.node_remaining))


# ---------------------------------------------------------------------- #
# snapshot()/restore() under concurrent committers (the satellite fix)
# ---------------------------------------------------------------------- #
class TestSnapshotConcurrency:
    def test_snapshot_never_tears_under_concurrent_commits(self):
        network = _network(seed=5, n_nodes=8, n_links=16)
        cluster = ClusterState.from_network(network)
        mapping = _mapping(network, pipe_seed=6, req_seed=7)
        demand = cluster.demand_of(mapping, demand_fps=0.5)
        stop = threading.Event()
        failures: list = []

        def churn():
            while not stop.is_set():
                try:
                    held = cluster.commit(demand)
                    cluster.release(held)
                except CapacityError:
                    pass
                except Exception as exc:  # pragma: no cover - the failure
                    failures.append(exc)
                    return

        workers = [threading.Thread(target=churn) for _ in range(3)]
        for t in workers:
            t.start()
        try:
            for _ in range(300):
                snap = cluster.snapshot()
                # Internal consistency: the snapshot's budgets must equal
                # capacity minus exactly the demands in the snapshot's
                # committed tuple.  A snapshot torn between a commit's charge
                # and its committed-list append (or vice versa) breaks this.
                node_used = np.zeros_like(cluster.node_capacity)
                for d in snap.committed:
                    for node_id, needed in d.nodes.items():
                        node_used[cluster.view.index_of[node_id]] += needed
                expected = cluster.node_capacity - node_used
                assert np.allclose(snap.node_remaining, expected,
                                   rtol=1e-9, atol=1e-6), \
                    "snapshot tore between budgets and committed list"
        finally:
            stop.set()
            for t in workers:
                t.join()
        assert not failures

    def test_restore_is_atomic_against_committers(self):
        network = _network(seed=9)
        cluster = ClusterState.from_network(network)
        mapping = _mapping(network, pipe_seed=10, req_seed=11)
        demand = cluster.demand_of(mapping, demand_fps=0.25)
        snap = cluster.snapshot()
        stop = threading.Event()
        failures: list = []

        def churn():
            while not stop.is_set():
                try:
                    cluster.commit(demand)
                except CapacityError:
                    pass
                except Exception as exc:  # pragma: no cover
                    failures.append(exc)
                    return

        worker = threading.Thread(target=churn)
        worker.start()
        try:
            for _ in range(100):
                cluster.restore(snap)
                cluster.validate()
        finally:
            stop.set()
            worker.join()
        cluster.restore(snap)
        cluster.validate()
        assert not failures
