"""Tier-1 enforcement of the docs subsystem.

Runs the same checks as the CI ``docs`` job (``docs/check_docs.py``): every
relative markdown link in ``docs/`` and the README resolves, and every public
definition under ``repro.core`` carries a docstring — plus negative cases
proving the checker actually detects rot, so a silently-degraded checker
cannot green-light broken docs.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS_DIR = REPO_ROOT / "docs"

_spec = importlib.util.spec_from_file_location("check_docs",
                                               DOCS_DIR / "check_docs.py")
check_docs = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("check_docs", check_docs)
_spec.loader.exec_module(check_docs)


def _markdown_files():
    files = sorted(DOCS_DIR.glob("*.md"))
    files.append(REPO_ROOT / "README.md")
    return files


class TestDocsExist:
    def test_architecture_and_benchmarks_docs_present(self):
        assert (DOCS_DIR / "ARCHITECTURE.md").exists()
        assert (DOCS_DIR / "BENCHMARKS.md").exists()

    def test_readme_links_into_docs(self):
        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        assert "docs/ARCHITECTURE.md" in readme
        assert "docs/BENCHMARKS.md" in readme

    def test_architecture_covers_the_promised_sections(self):
        text = (DOCS_DIR / "ARCHITECTURE.md").read_text(encoding="utf-8")
        for phrase in ("Layer map", "solver registry contract",
                       "shared-memory lifecycle", "Engine selection guide",
                       "array-backend seam", "UnsupportedStartMethodError"):
            assert phrase in text, phrase

    def test_benchmarks_doc_covers_schema_and_gate(self):
        text = (DOCS_DIR / "BENCHMARKS.md").read_text(encoding="utf-8")
        for phrase in ("repro-bench/1", "check_regression.py",
                       "bench_baseline.json", "BENCH_"):
            assert phrase in text, phrase


class TestLinkCheck:
    def test_repository_docs_have_no_broken_links(self):
        findings = check_docs.check_links(_markdown_files(), REPO_ROOT)
        assert findings == []

    def test_detects_missing_file_target(self, tmp_path):
        md = tmp_path / "page.md"
        md.write_text("see [gone](no/such/file.md)", encoding="utf-8")
        findings = check_docs.check_links([md], tmp_path)
        assert len(findings) == 1 and "no such file" in findings[0]

    def test_detects_unknown_anchor(self, tmp_path):
        other = tmp_path / "other.md"
        other.write_text("# Real Heading\n", encoding="utf-8")
        md = tmp_path / "page.md"
        md.write_text("see [x](other.md#fake-heading)", encoding="utf-8")
        findings = check_docs.check_links([md], tmp_path)
        assert len(findings) == 1 and "anchor" in findings[0]

    def test_accepts_valid_anchor_and_external_links(self, tmp_path):
        other = tmp_path / "other.md"
        other.write_text("## Engine selection guide\n", encoding="utf-8")
        md = tmp_path / "page.md"
        md.write_text("[a](other.md#engine-selection-guide) "
                      "[b](https://example.org/404)", encoding="utf-8")
        assert check_docs.check_links([md], tmp_path) == []


class TestDocstringCheck:
    def test_repro_core_is_fully_documented(self):
        assert check_docs.check_docstrings("repro.core") == []

    def test_detects_missing_docstrings(self, tmp_path, monkeypatch):
        package = tmp_path / "fakepkg"
        package.mkdir()
        (package / "__init__.py").write_text('"""Package."""\n',
                                             encoding="utf-8")
        (package / "bare.py").write_text(
            "def documented():\n"
            '    """Has one."""\n'
            "def undocumented():\n"
            "    pass\n", encoding="utf-8")
        monkeypatch.syspath_prepend(str(tmp_path))
        findings = check_docs.check_docstrings("fakepkg")
        assert any("fakepkg.bare: missing module docstring" in f
                   for f in findings)
        assert "fakepkg.bare.undocumented: missing docstring" in findings
        assert "fakepkg.bare.documented: missing docstring" not in findings
