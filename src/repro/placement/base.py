"""Request/result dataclasses shared by every placer.

A placer consumes :class:`PlacementRequest` objects (a problem instance plus
its steady-state frame-rate demand and a scheduling priority) and produces a
:class:`PlacementResult` whose per-request :class:`PlacementItem` entries are
in *input order* regardless of the order the placer actually solved them in —
the same contract :func:`repro.solve_many` keeps for batches.  Rejections are
recorded (``mapping is None``, ``error`` holds the reason), never raised, so
one infeasible tenant cannot take down the batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..core.mapping import Objective, PipelineMapping
from ..exceptions import SpecificationError
from ..model.serialization import ProblemInstance
from .ledger import ClusterState, PlacementDemand

__all__ = ["PlacementRequest", "PlacementItem", "PlacementResult"]

#: What :meth:`PlacementRequest.coerce` accepts.
RequestLike = Union["PlacementRequest", ProblemInstance, tuple]


@dataclass(frozen=True)
class PlacementRequest:
    """One tenant's placement request: an instance plus demand and priority.

    Attributes
    ----------
    instance:
        The pipeline-mapping problem to solve (pipeline, network, request).
    demand_fps:
        Steady-state frame rate the placement must sustain; scales the
        resource demand charged to the ledger (see
        :meth:`repro.placement.ClusterState.demand_of`).
    priority:
        Larger = more important.  Priority order decides who is packed first
        and who wins when the cluster cannot fit everyone; ties break by
        input position (earlier wins), so the order is deterministic.
    """

    instance: ProblemInstance
    demand_fps: float = 1.0
    priority: float = 0.0

    def __post_init__(self) -> None:
        if not isinstance(self.instance, ProblemInstance):
            raise SpecificationError(
                "PlacementRequest.instance must be a ProblemInstance")
        if self.demand_fps < 0:
            raise SpecificationError(
                f"demand_fps must be >= 0, got {self.demand_fps!r}")

    @classmethod
    def coerce(cls, index: int, item: RequestLike, *,
               demand_fps: float = 1.0) -> "PlacementRequest":
        """Normalise batch items like :func:`repro.solve_many` does.

        Accepts a ready :class:`PlacementRequest`, a
        :class:`~repro.ProblemInstance`, or a ``(pipeline, network, request)``
        triple; the latter two get ``demand_fps`` (the batch default) and
        priority 0.
        """
        if isinstance(item, cls):
            return item
        if isinstance(item, ProblemInstance):
            return cls(instance=item, demand_fps=demand_fps)
        try:
            pipeline, network, request = item
        except (TypeError, ValueError):
            raise SpecificationError(
                f"placement item {index} is neither a PlacementRequest, a "
                "ProblemInstance, nor a (pipeline, network, request) triple"
            ) from None
        instance = ProblemInstance(pipeline=pipeline, network=network,
                                   request=request)
        return cls(instance=instance, demand_fps=demand_fps)


@dataclass(frozen=True)
class PlacementItem:
    """Outcome of one request: an admitted mapping or a recorded rejection.

    ``admitted`` items carry the mapping, the demand that was committed to the
    ledger, and the engine runtime; rejected items carry ``error`` (the
    :class:`~repro.exceptions.CapacityError` /
    :class:`~repro.exceptions.InfeasibleMappingError` explaining why).
    ``attempts`` counts residual-solve iterations the placer spent on the
    request (1 = first solve fit; more = the repair loop re-solved on a
    further-reduced network).
    """

    index: int
    name: Optional[str]
    mapping: Optional[PipelineMapping] = None
    error: Optional[Exception] = None
    demand: Optional[PlacementDemand] = None
    priority: float = 0.0
    demand_fps: float = 1.0
    runtime_s: float = 0.0
    attempts: int = 0

    @property
    def admitted(self) -> bool:
        """``True`` when the request got a committed, capacity-feasible mapping."""
        return self.mapping is not None


@dataclass
class PlacementResult:
    """A full batch placement: per-request items plus the final ledger.

    ``items`` are in input order.  ``cluster`` is the ledger *after* all
    commits, so callers can inspect residual capacity, keep placing follow-up
    batches on it, or hand it to
    :func:`repro.placement.validate_placements`.
    """

    placer: str
    objective: Objective
    engine: str
    items: List[PlacementItem]
    cluster: ClusterState
    wall_time_s: float = 0.0
    extras: Dict[str, Any] = field(default_factory=dict)

    @property
    def n_admitted(self) -> int:
        """Number of requests that received a committed mapping."""
        return sum(1 for item in self.items if item.admitted)

    @property
    def n_rejected(self) -> int:
        """Number of requests rejected (capacity or infeasibility)."""
        return len(self.items) - self.n_admitted

    def admitted_items(self) -> List[PlacementItem]:
        """The admitted items, in input order."""
        return [item for item in self.items if item.admitted]

    def rejected_items(self) -> List[PlacementItem]:
        """The rejected items, in input order."""
        return [item for item in self.items if not item.admitted]

    def objective_total(self, subset: Optional[Sequence[int]] = None) -> float:
        """Sum of the objective over admitted items (delay: lower is better).

        For :attr:`Objective.MIN_DELAY` this is total end-to-end delay (ms);
        for :attr:`Objective.MAX_FRAME_RATE` it is total achievable frame
        rate (fps, higher is better).  ``subset`` restricts the sum to the
        given request indices — the differential tests use it to compare two
        placers over their *common* admitted set.
        """
        chosen = set(subset) if subset is not None else None
        total = 0.0
        for item in self.items:
            if not item.admitted:
                continue
            if chosen is not None and item.index not in chosen:
                continue
            if self.objective is Objective.MIN_DELAY:
                total += item.mapping.delay_ms
            else:
                total += item.mapping.frame_rate_fps
        return total

    def admitted_indices(self) -> List[int]:
        """Input indices of the admitted requests."""
        return [item.index for item in self.items if item.admitted]

    def summary(self) -> Dict[str, Any]:
        """Aggregate statistics (what ``repro place`` prints as JSON)."""
        util = self.cluster.utilization()
        return {
            "placer": self.placer,
            "engine": self.engine,
            "objective": self.objective.value,
            "n_requests": len(self.items),
            "n_admitted": self.n_admitted,
            "n_rejected": self.n_rejected,
            "objective_total": self.objective_total(),
            "node_utilization": util["node_utilization"],
            "link_utilization": util["link_utilization"],
            "wall_time_s": self.wall_time_s,
        }

    def table(self) -> str:
        """Fixed-width per-request report (what ``repro place`` prints by default)."""
        header = (f"{'idx':>4}  {'name':<18} {'prio':>6}  {'fps':>7}  "
                  f"{'status':<8} {'objective':>12}  reason")
        lines = [header, "-" * len(header)]
        for item in self.items:
            if item.admitted:
                value = (item.mapping.delay_ms
                         if self.objective is Objective.MIN_DELAY
                         else item.mapping.frame_rate_fps)
                status, obj_text, reason = "placed", f"{value:12.4f}", ""
            else:
                status, obj_text = "rejected", f"{'-':>12}"
                reason = str(item.error) if item.error is not None else ""
                if len(reason) > 60:
                    reason = reason[:57] + "..."
            name = (item.name or "")[:18]
            lines.append(f"{item.index:>4}  {name:<18} {item.priority:>6.2f}  "
                         f"{item.demand_fps:>7.2f}  {status:<8} {obj_text}  "
                         f"{reason}")
        return "\n".join(lines)
