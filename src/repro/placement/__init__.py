"""Multi-tenant joint placement: many pipelines on one capacity-limited cluster.

Every solver in :mod:`repro.core` places *one* pipeline against an
uncontended network, so B pipelines solved independently can all pick the
same "best" node.  This package adds the missing notion of **contention**: a
batch of pipelines is placed jointly on a shared cluster whose nodes have a
finite compute budget (ops/s) and whose links have a finite bandwidth budget
(bits/s).  A placement is *admitted* only if the cluster can actually sustain
its steady-state load; otherwise the request is rejected with a recorded
reason — never a silent oversubscription.

Building blocks
---------------
* :class:`ClusterState` (:mod:`repro.placement.ledger`) — the capacity
  ledger layered over :meth:`repro.TransportNetwork.dense_view`: per-node /
  per-link remaining capacity arrays, atomic ``commit`` / ``release``,
  ``snapshot`` / ``restore`` for rollback, and the invariant validator.
* :func:`place_greedy` (:mod:`repro.placement.packing`) — the capacity-aware
  **sequential packing** baseline: pipelines are solved one at a time through
  the ordinary solver registry against the *residual* cluster (capacity-
  exhausted nodes and links are masked out, violations trigger a bounded
  repair loop), in a configurable priority order.
* :func:`place_flow` (:mod:`repro.placement.flow`) — the **joint flow-based
  optimizer**: a min-cost max-flow network built over the dense CSR view
  (source → pipeline stages → nodes → sink; capacities from the ledger,
  costs from the delay model) is solved with pure-NumPy/stdlib successive
  shortest paths (no networkx), and the flow is rounded into per-pipeline
  mappings — unroutable remainders fall back to the packing path.
* :func:`validate_placements` — the batch-level validator: recomputes every
  admitted mapping's demand on a fresh ledger and asserts that no committed
  placement ever exceeds any node or link capacity.
* The placer registry (:func:`register_placer` / :func:`get_placer` /
  :func:`available_placers`) mirrors the solver registry so placement
  strategies are addressable by name from :func:`repro.place_many`, the
  ``repro place`` CLI and the service admission hook.

In the uncontended limit (capacities ≥ total demand) both placers reproduce
per-pipeline :func:`repro.solve_many` results exactly — the differential
tests in ``tests/test_placement_differential.py`` pin this the same way the
engines are pinned against each other.
"""

from .base import PlacementItem, PlacementRequest, PlacementResult
from .flow import MinCostFlow, place_flow
from .ledger import (
    CapacityViolation,
    ClusterState,
    LedgerStore,
    LocalStore,
    PlacementDemand,
    SharedLedger,
    SharedLedgerSpec,
    SharedStore,
    validate_placements,
)
from .packing import place_greedy, solve_on_residual
from .registry import available_placers, get_placer, register_placer

__all__ = [
    "PlacementRequest",
    "PlacementItem",
    "PlacementResult",
    "ClusterState",
    "LedgerStore",
    "LocalStore",
    "SharedStore",
    "SharedLedger",
    "SharedLedgerSpec",
    "PlacementDemand",
    "CapacityViolation",
    "validate_placements",
    "place_greedy",
    "place_flow",
    "solve_on_residual",
    "MinCostFlow",
    "register_placer",
    "get_placer",
    "available_placers",
]
