"""Capacity-aware sequential packing — the ``place-greedy`` baseline.

The packing placer reuses the per-pipeline engines unchanged: each request is
solved through :func:`repro.core.registry.get_solver` against the *residual*
cluster.  :func:`solve_on_residual` is the per-request primitive that both
placers share:

1. **Prefilter** — non-endpoint nodes whose remaining compute budget cannot
   host even the lightest inner module, and links whose remaining bandwidth
   cannot carry even the smallest inter-group message, are removed up front
   (they could never appear in a feasible placement at this demand).
2. **Solve** — the engine runs on the reduced network (or on the original
   network object when nothing is filtered, so the uncontended limit returns
   the engine's exact result and reuses the cached dense view).
3. **Repair** — the candidate mapping's demand is checked against the ledger.
   Violated non-endpoint nodes and violated links are excluded and the engine
   re-runs, a bounded number of times.  A violation at the pinned source or
   destination node is terminal: no mapping can avoid an endpoint, so the
   request is rejected with :class:`~repro.exceptions.CapacityError`.

Because the engine itself is delay/rate-optimal on whatever network it is
given, packing degrades gracefully: contention only ever *shrinks* the
network a request gets to use, never distorts the cost model.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.mapping import Objective, PipelineMapping
from ..core.registry import get_solver
from ..exceptions import CapacityError, InfeasibleMappingError, SpecificationError
from ..model.link import BITS_PER_BYTE
from ..model.network import TransportNetwork
from ..types import NodeId
from .base import PlacementItem, PlacementRequest, PlacementResult, RequestLike
from .ledger import ClusterState, PlacementDemand, _link_key

__all__ = ["solve_on_residual", "place_greedy"]

#: How many exclude-and-re-solve rounds :func:`solve_on_residual` will spend
#: on one request before giving up with :class:`CapacityError`.
DEFAULT_MAX_REPAIR_ROUNDS = 4


def _reduced_network(network: TransportNetwork,
                     excluded_nodes: Set[NodeId],
                     excluded_links: Set[Tuple[NodeId, NodeId]]
                     ) -> TransportNetwork:
    """A copy of ``network`` without the excluded nodes and undirected links."""
    nodes = [n for n in network.nodes() if n.node_id not in excluded_nodes]
    links = [l for l in network.links()
             if l.start_node not in excluded_nodes
             and l.end_node not in excluded_nodes
             and _link_key(l.start_node, l.end_node) not in excluded_links]
    return TransportNetwork(nodes=nodes, links=links,
                            name=f"{network.name or 'network'}-residual")


def _prefilter(request: PlacementRequest, cluster: ClusterState
               ) -> Tuple[Set[NodeId], Set[Tuple[NodeId, NodeId]]]:
    """Nodes/links that cannot possibly serve this request at its demand.

    A non-endpoint node on any feasible path hosts at least one inner module,
    so it needs at least ``demand_fps * min(inner workloads)`` ops/s; a used
    link carries at least the smallest inter-group message, so it needs at
    least ``demand_fps * 8 * min(positive output bytes)`` bits/s.  Both bounds
    are conservative (real groups are supersets), so the filter never removes
    a node or link a feasible placement could have used.
    """
    pipeline = request.instance.pipeline
    req = request.instance.request
    fps = request.demand_fps
    excluded_nodes: Set[NodeId] = set()
    excluded_links: Set[Tuple[NodeId, NodeId]] = set()
    if fps <= 0:
        return excluded_nodes, excluded_links

    inner = pipeline.workloads()[1:]
    min_inner = min((w for w in inner if w > 0), default=0.0)
    if min_inner > 0:
        min_node_need = fps * min_inner
        for node_id, remaining, slack in cluster.node_budgets():
            if node_id in (req.source, req.destination):
                continue
            if remaining + slack < min_node_need:
                excluded_nodes.add(node_id)

    messages = [pipeline.message_size(j)
                for j in range(pipeline.n_modules - 1)]
    min_bytes = min((b for b in messages if b > 0), default=0.0)
    if min_bytes > 0:
        min_link_need = fps * min_bytes * BITS_PER_BYTE
        for key, remaining, slack in cluster.link_budgets():
            if remaining + slack < min_link_need:
                excluded_links.add(key)
    return excluded_nodes, excluded_links


def solve_on_residual(request: PlacementRequest, cluster: ClusterState, *,
                      objective: Objective = Objective.MIN_DELAY,
                      engine: str = "elpc-vec",
                      max_repair_rounds: int = DEFAULT_MAX_REPAIR_ROUNDS,
                      excluded_nodes: Optional[Set[NodeId]] = None,
                      excluded_links: Optional[Set[Tuple[NodeId, NodeId]]] = None,
                      **solver_kwargs
                      ) -> Tuple[PipelineMapping, PlacementDemand, int]:
    """Solve one request against the residual cluster (without committing).

    Returns ``(mapping, demand, attempts)`` where the mapping's demand is
    guaranteed to fit the ledger *right now*; the caller decides whether to
    :meth:`~repro.placement.ClusterState.commit` it.  Raises
    :class:`~repro.exceptions.CapacityError` when no capacity-feasible mapping
    exists (endpoint budget exhausted, or the repair budget ran out) and
    propagates :class:`~repro.exceptions.InfeasibleMappingError` when the
    residual network has no feasible mapping at all.  Extra ``excluded_nodes``
    / ``excluded_links`` seed the exclusion sets (the flow placer uses this to
    steer the engine toward its flow assignment).
    """
    instance = request.instance
    if instance.network is not cluster.network:
        raise SpecificationError(
            "placement request's network is not the cluster's network: all "
            "requests in a placement batch must share one TransportNetwork "
            "object")
    req = instance.request
    for label, node_id in (("source", req.source),
                           ("destination", req.destination)):
        # An endpoint with a fully drained compute budget can never host its
        # pinned module; fail fast with the real reason instead of a generic
        # infeasibility from a network missing the endpoint.
        if (cluster.remaining_node(node_id) + cluster.node_slack(node_id) <= 0
                and request.demand_fps > 0):
            workloads = instance.pipeline.workloads()
            pinned = workloads[0] if label == "source" else workloads[-1]
            if pinned > 0:
                raise CapacityError(
                    f"{label} node {node_id} has no remaining compute "
                    "capacity")

    bad_nodes, bad_links = _prefilter(request, cluster)
    if excluded_nodes:
        bad_nodes |= {n for n in excluded_nodes
                      if n not in (req.source, req.destination)}
    if excluded_links:
        bad_links |= {_link_key(*key) for key in excluded_links}

    solver = get_solver(engine, objective)
    attempts = 0
    while True:
        attempts += 1
        if bad_nodes or bad_links:
            network = _reduced_network(cluster.network, bad_nodes, bad_links)
            if not (network.has_node(req.source)
                    and network.has_node(req.destination)):
                raise CapacityError(
                    "residual cluster no longer contains the request's "
                    "endpoints")
        else:
            network = cluster.network
        candidate = solver(instance.pipeline, network, req, **solver_kwargs)
        if network is not cluster.network:
            # Re-anchor the mapping on the original network so ledger lookups,
            # result reporting and downstream consumers all see one network.
            candidate = PipelineMapping(
                pipeline=candidate.pipeline, network=cluster.network,
                groups=candidate.groups, path=candidate.path,
                objective=candidate.objective, algorithm=candidate.algorithm,
                runtime_s=candidate.runtime_s,
                allow_reuse=candidate.allow_reuse, extras=candidate.extras)
        demand = cluster.demand_of(candidate, demand_fps=request.demand_fps)
        violations = cluster.violations(demand)
        if not violations:
            return candidate, demand, attempts
        if attempts > max_repair_rounds:
            raise CapacityError(
                f"no capacity-feasible mapping after {attempts} attempts: "
                + "; ".join(v.describe() for v in violations))
        for violation in violations:
            if violation.kind == "node":
                if violation.where in (req.source, req.destination):
                    raise CapacityError(
                        f"endpoint budget exhausted — {violation.describe()}")
                bad_nodes.add(violation.where)
            else:
                bad_links.add(violation.where)


def _ordered_indices(requests: Sequence[PlacementRequest],
                     order: str) -> List[int]:
    if order == "input":
        return list(range(len(requests)))
    if order == "priority":
        return sorted(range(len(requests)),
                      key=lambda i: (-requests[i].priority, i))
    raise SpecificationError(
        f"unknown packing order {order!r}; expected 'priority' or 'input'")


def _pack_in_order(coerced: Sequence[PlacementRequest],
                   cluster: ClusterState,
                   indices: Sequence[int], *,
                   objective: Objective,
                   engine: str,
                   max_repair_rounds: int = DEFAULT_MAX_REPAIR_ROUNDS,
                   **solver_kwargs) -> List[PlacementItem]:
    """Solve-and-commit each request in the given order; items in input order.

    The shared packing loop: ``place_greedy`` drives it with a priority
    order, ``place_flow`` with its flow-derived rounding order.  Failures
    are recorded per item, never raised; ``cluster`` is mutated.
    """
    items: List[Optional[PlacementItem]] = [None] * len(coerced)
    for i in indices:
        request = coerced[i]
        name = request.instance.name
        t0 = time.perf_counter()
        try:
            mapping, demand, attempts = solve_on_residual(
                request, cluster, objective=objective, engine=engine,
                max_repair_rounds=max_repair_rounds, **solver_kwargs)
            cluster.commit(demand)
            items[i] = PlacementItem(
                index=i, name=name, mapping=mapping, demand=demand,
                priority=request.priority, demand_fps=request.demand_fps,
                runtime_s=time.perf_counter() - t0, attempts=attempts)
        except (CapacityError, InfeasibleMappingError) as exc:
            items[i] = PlacementItem(
                index=i, name=name, error=exc, priority=request.priority,
                demand_fps=request.demand_fps,
                runtime_s=time.perf_counter() - t0)
    return [item for item in items if item is not None]


def place_greedy(requests: Sequence[RequestLike],
                 cluster: ClusterState, *,
                 objective: Objective = Objective.MIN_DELAY,
                 engine: str = "elpc-vec",
                 order: str = "priority",
                 demand_fps: float = 1.0,
                 max_repair_rounds: int = DEFAULT_MAX_REPAIR_ROUNDS,
                 **solver_kwargs) -> PlacementResult:
    """Sequential capacity-aware packing of a batch onto ``cluster``.

    Requests are solved one at a time in ``order`` (``"priority"`` — higher
    priority first, input position breaking ties — or ``"input"``), each
    against the residual cluster left by its predecessors, and committed on
    success.  Failures (capacity or infeasibility) are recorded per item,
    never raised.  Items come back in input order; ``cluster`` is mutated —
    snapshot it first if you need to roll back.
    """
    coerced = [PlacementRequest.coerce(i, r, demand_fps=demand_fps)
               for i, r in enumerate(requests)]
    start = time.perf_counter()
    items = _pack_in_order(
        coerced, cluster, _ordered_indices(coerced, order),
        objective=objective, engine=engine,
        max_repair_rounds=max_repair_rounds, **solver_kwargs)
    return PlacementResult(
        placer="place-greedy", objective=objective, engine=engine,
        items=items, cluster=cluster,
        wall_time_s=time.perf_counter() - start,
        extras={"order": order})
