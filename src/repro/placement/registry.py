"""Registry of placement strategies, keyed by name.

Mirrors the solver registry (:mod:`repro.core.registry`) so placers are
addressable by name from :func:`repro.place_many`, the ``repro place`` CLI
and the service admission hook.  A *placer* is any callable with the uniform
signature::

    placer(requests, cluster, *, objective, engine, **kwargs) -> PlacementResult

Unlike solvers, placers are not keyed by objective — every placer must handle
both objectives (it receives ``objective=`` and forwards it to the engine).
Builtins load with *setdefault* semantics, so a user registration made before
the first lookup is never clobbered; overriding a builtin explicitly requires
``overwrite=True``.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..exceptions import SpecificationError
from .base import PlacementResult

__all__ = ["Placer", "register_placer", "get_placer", "available_placers"]

Placer = Callable[..., PlacementResult]

_REGISTRY: Dict[str, Placer] = {}
_BUILTINS_LOADED = False


def _load_builtins() -> None:
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True  # set first: register_placer() re-enters this
    try:
        from .flow import place_flow
        from .packing import place_greedy
        _REGISTRY.setdefault("place-greedy", place_greedy)
        _REGISTRY.setdefault("place-flow", place_flow)
    except BaseException:
        _BUILTINS_LOADED = False
        raise


def register_placer(name: str, placer: Placer, *,
                    overwrite: bool = False) -> None:
    """Register ``placer`` under ``name`` (case-insensitive).

    Raises :class:`SpecificationError` on duplicate registration unless
    ``overwrite`` is given; builtins are loaded first so overriding one always
    requires ``overwrite=True`` and the override always wins.
    """
    _load_builtins()
    key = name.lower()
    if key in _REGISTRY and not overwrite:
        raise SpecificationError(f"placer {name!r} is already registered")
    _REGISTRY[key] = placer


def get_placer(name: str) -> Placer:
    """Look up a registered placer; raises :class:`SpecificationError` if unknown."""
    _load_builtins()
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        raise SpecificationError(
            f"unknown placer {name!r}; known placers: {sorted(_REGISTRY)}"
        ) from None


def available_placers() -> List[str]:
    """Names of all registered placers."""
    _load_builtins()
    return sorted(_REGISTRY)
