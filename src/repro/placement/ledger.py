"""The cluster capacity ledger: who is using how much of which resource.

:class:`ClusterState` layers two budget arrays over a network's cached dense
view (:meth:`repro.TransportNetwork.dense_view`):

* ``node_remaining`` — per-node compute budget in **operations per second**.
  The cost model says a module of workload :math:`w = c\\,m` operations takes
  :math:`w / (p \\cdot 10^3)` ms on a node of power :math:`p` (millions of
  ops/s), so a node of power :math:`p` sustains :math:`p \\cdot 10^6` ops/s —
  that is its default capacity, scaled by ``node_capacity_factor``.
* ``link_remaining`` — per-link bandwidth budget in **bits per second**
  (``bandwidth_mbps * 1e6``, scaled by ``link_capacity_factor``), one shared
  budget per *undirected* link: traffic in both directions draws from it.

A placed pipeline streaming at ``demand_fps`` frames per second demands
``demand_fps * workload(modules on v)`` ops/s from every node it computes on
and ``demand_fps * 8 * message_bytes`` bits/s from every link its path
crosses (:meth:`ClusterState.demand_of`).  ``commit`` is atomic — it checks
every component first and raises :class:`~repro.exceptions.CapacityError`
without mutating anything when one budget would go negative — and every
committed demand is retained so :meth:`ClusterState.validate` can re-derive
the remaining arrays from scratch and the batch validator
(:func:`validate_placements`) can replay a whole placement result against a
fresh ledger.

Floating-point note: budgets are compared with a relative slack of
``1e-9 * capacity`` so a pipeline whose demand *exactly* equals the budget is
admitted despite rounding; the validator applies the same slack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from ..core.mapping import PipelineMapping
from ..exceptions import CapacityError, SpecificationError
from ..model.link import BITS_PER_BYTE, MEGABIT
from ..model.network import TransportNetwork
from ..types import NodeId

__all__ = ["PlacementDemand", "CapacityViolation", "ClusterState",
           "validate_placements"]

#: Relative slack applied to every budget comparison (see module notes).
_REL_SLACK = 1e-9


def _link_key(u: NodeId, v: NodeId) -> Tuple[NodeId, NodeId]:
    """Canonical undirected key of the link ``u``–``v``."""
    return (u, v) if u <= v else (v, u)


@dataclass(frozen=True)
class PlacementDemand:
    """Steady-state resource demand of one mapping at a given frame rate.

    Attributes
    ----------
    nodes:
        ``node_id -> ops/s`` drawn from each node the mapping computes on
        (zero-workload entries are dropped).
    links:
        ``(u, v) -> bits/s`` drawn from each undirected link the mapping's
        path crosses, both directions pooled (zero-byte messages dropped).
    demand_fps:
        The frame rate the demand was computed at.
    """

    nodes: Mapping[NodeId, float]
    links: Mapping[Tuple[NodeId, NodeId], float]
    demand_fps: float = 1.0

    @property
    def total_node_ops(self) -> float:
        """Total compute demand over all nodes, ops/s."""
        return float(sum(self.nodes.values()))

    @property
    def total_link_bits(self) -> float:
        """Total bandwidth demand over all links, bits/s."""
        return float(sum(self.links.values()))


@dataclass(frozen=True)
class CapacityViolation:
    """One budget a demand would overdraw.

    ``kind`` is ``"node"`` or ``"link"``; ``where`` is the node id or the
    canonical ``(u, v)`` link key; ``needed``/``remaining`` are in the
    resource's own unit (ops/s, bits/s).
    """

    kind: str
    where: Any
    needed: float
    remaining: float

    def describe(self) -> str:
        """Human-readable one-liner (used in rejection reasons)."""
        unit = "ops/s" if self.kind == "node" else "bits/s"
        return (f"{self.kind} {self.where}: needs {self.needed:.6g} {unit}, "
                f"only {max(self.remaining, 0.0):.6g} remaining")


@dataclass
class _Snapshot:
    """Opaque ledger snapshot returned by :meth:`ClusterState.snapshot`."""

    node_remaining: np.ndarray
    link_remaining: Dict[Tuple[NodeId, NodeId], float]
    committed: Tuple[PlacementDemand, ...] = ()


class ClusterState:
    """Per-node / per-link remaining-capacity ledger over one network.

    Build one with :meth:`from_network`; hand it to a placer
    (:func:`repro.place_many`) or drive it directly:
    :meth:`demand_of` → :meth:`fits` / :meth:`violations` → :meth:`commit` /
    :meth:`release`, with :meth:`snapshot` / :meth:`restore` bracketing any
    speculative sequence.  All arrays are indexed like the network's dense
    view (``view.index_of[node_id]``).
    """

    def __init__(self, network: TransportNetwork,
                 node_capacity: np.ndarray,
                 link_capacity: Dict[Tuple[NodeId, NodeId], float]) -> None:
        self.network = network
        self.view = network.dense_view()
        self.node_capacity = np.asarray(node_capacity, dtype=float).copy()
        if self.node_capacity.shape != (self.view.n_nodes,):
            raise SpecificationError(
                f"node_capacity must have shape ({self.view.n_nodes},), got "
                f"{self.node_capacity.shape}")
        if np.any(self.node_capacity < 0):
            raise SpecificationError("node capacities must be >= 0")
        self.link_capacity = dict(link_capacity)
        for key, cap in self.link_capacity.items():
            if cap < 0:
                raise SpecificationError(
                    f"link capacity of {key} must be >= 0, got {cap!r}")
        self.node_remaining = self.node_capacity.copy()
        self.link_remaining = dict(self.link_capacity)
        #: Every currently-committed demand, in commit order (the validator's
        #: ground truth; release removes the entry by identity).
        self.committed: List[PlacementDemand] = []
        self.commits_total = 0
        self.releases_total = 0
        #: How the capacities were derived (set by :meth:`from_network`);
        #: ``None`` for explicit-capacity ledgers, which cannot
        #: :meth:`rebase` — their budgets carry no recipe to re-derive.
        self._capacity_policy: Optional[Dict[str, Any]] = None
        self.rebases_total = 0

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_network(cls, network: TransportNetwork, *,
                     node_capacity_factor: float = 1.0,
                     link_capacity_factor: float = 1.0,
                     node_capacity: Optional[Mapping[NodeId, float]] = None,
                     link_capacity: Optional[Mapping[Tuple[NodeId, NodeId],
                                                     float]] = None
                     ) -> "ClusterState":
        """Budgets derived from the network's own powers and bandwidths.

        Defaults: node budget = ``power * 1e6 * node_capacity_factor`` ops/s
        (a factor of 1.0 means the node may be loaded to exactly its rated
        power), link budget = ``bandwidth_mbps * 1e6 * link_capacity_factor``
        bits/s.  Factors < 1 model headroom policies; factors > 1 model
        deliberate oversubscription.  Explicit per-node / per-link overrides
        (``node_capacity`` / ``link_capacity`` mappings) replace the derived
        value for the listed entries only — the zero-capacity-node tests use
        this to drain individual nodes.
        """
        if node_capacity_factor < 0 or link_capacity_factor < 0:
            raise SpecificationError("capacity factors must be >= 0")
        view = network.dense_view()
        node_cap = view.power * (MEGABIT * node_capacity_factor)
        node_cap = np.asarray(node_cap, dtype=float).copy()
        if node_capacity:
            for node_id, cap in node_capacity.items():
                if node_id not in view.index_of:
                    raise SpecificationError(
                        f"node_capacity names unknown node {node_id!r}")
                node_cap[view.index_of[node_id]] = float(cap)
        link_cap: Dict[Tuple[NodeId, NodeId], float] = {}
        for link in network.links():
            key = _link_key(link.start_node, link.end_node)
            link_cap[key] = link.bandwidth_mbps * MEGABIT * link_capacity_factor
        if link_capacity:
            for raw_key, cap in link_capacity.items():
                key = _link_key(*raw_key)
                if key not in link_cap:
                    raise SpecificationError(
                        f"link_capacity names unknown link {raw_key!r}")
                link_cap[key] = float(cap)
        state = cls(network, node_cap, link_cap)
        state._capacity_policy = {
            "node_capacity_factor": float(node_capacity_factor),
            "link_capacity_factor": float(link_capacity_factor),
            "node_capacity": dict(node_capacity) if node_capacity else {},
            "link_capacity": ({_link_key(*k): float(v)
                               for k, v in link_capacity.items()}
                              if link_capacity else {}),
        }
        return state

    # ------------------------------------------------------------------ #
    # Incremental re-derivation
    # ------------------------------------------------------------------ #
    def rebase(self) -> List[CapacityViolation]:
        """Re-derive the budgets from the network's *current* dense view.

        After the network drifts through scalar edits (or is structurally
        rebuilt), a :meth:`from_network` ledger can rebase instead of being
        thrown away: capacities are recomputed with the stored policy
        (factors + overrides), every committed demand is **replayed onto the
        new budgets** — admissions survive the drift — and the remaining
        arrays are re-derived as ``capacity − Σ committed``.  Returns the
        budgets the surviving commitments now overdraw (capacity shrank under
        load); callers decide whether to evict (:meth:`release`) or tolerate
        the debt.  A no-op (empty list) when the view is unchanged.

        Raises
        ------
        SpecificationError
            If the ledger was built with explicit capacity arrays (no stored
            policy to re-derive from).
        CapacityError
            If a committed demand names a node or link the drifted network no
            longer has — structural churn must release placements first.
        """
        if self._capacity_policy is None:
            raise SpecificationError(
                "this ledger was built from explicit capacity arrays; only "
                "ClusterState.from_network ledgers can rebase()")
        view = self.network.dense_view()
        if view is self.view:
            return []
        policy = self._capacity_policy
        fresh = ClusterState.from_network(
            self.network,
            node_capacity_factor=policy["node_capacity_factor"],
            link_capacity_factor=policy["link_capacity_factor"],
            node_capacity=policy["node_capacity"] or None,
            link_capacity=policy["link_capacity"] or None)
        for demand in self.committed:
            for node_id in demand.nodes:
                if node_id not in fresh.view.index_of:
                    raise CapacityError(
                        f"committed demand draws on node {node_id!r}, which "
                        "the drifted network no longer has — release the "
                        "placement before rebasing")
            for key in demand.links:
                if key not in fresh.link_capacity:
                    raise CapacityError(
                        f"committed demand draws on link {key!r}, which the "
                        "drifted network no longer has — release the "
                        "placement before rebasing")
        self.view = fresh.view
        self.node_capacity = fresh.node_capacity
        self.link_capacity = fresh.link_capacity
        node_used = np.zeros_like(self.node_capacity)
        link_used: Dict[Tuple[NodeId, NodeId], float] = {}
        for demand in self.committed:
            for node_id, needed in demand.nodes.items():
                node_used[self.view.index_of[node_id]] += needed
            for key, needed in demand.links.items():
                link_used[key] = link_used.get(key, 0.0) + needed
        self.node_remaining = self.node_capacity - node_used
        self.link_remaining = {key: cap - link_used.get(key, 0.0)
                               for key, cap in self.link_capacity.items()}
        violations: List[CapacityViolation] = []
        for index in np.flatnonzero(
                node_used > self.node_capacity
                + np.maximum(_REL_SLACK, _REL_SLACK * self.node_capacity)):
            node_id = self.view.node_ids[int(index)]
            violations.append(CapacityViolation(
                "node", node_id, float(node_used[index]),
                float(self.node_capacity[index] - node_used[index])))
        for key, used in link_used.items():
            cap = self.link_capacity[key]
            if used > cap + self._slack(cap):
                violations.append(CapacityViolation(
                    "link", key, used, cap - used))
        self.rebases_total += 1
        return violations

    # ------------------------------------------------------------------ #
    # Demand model
    # ------------------------------------------------------------------ #
    def demand_of(self, mapping: PipelineMapping, *,
                  demand_fps: float = 1.0) -> PlacementDemand:
        """The steady-state demand of ``mapping`` streaming at ``demand_fps``.

        Node demand pools every visit of a reused node (the same aggregation
        :func:`repro.model.cost.bottleneck_time_ms` applies with
        ``account_node_sharing=True``); link demand pools every crossing of a
        link in either direction.
        """
        if demand_fps < 0:
            raise SpecificationError(
                f"demand_fps must be >= 0, got {demand_fps!r}")
        pipeline = mapping.pipeline
        nodes: Dict[NodeId, float] = {}
        for group, node_id in zip(mapping.groups, mapping.path):
            load = pipeline.group_workload(group) * demand_fps
            if load > 0:
                nodes[node_id] = nodes.get(node_id, 0.0) + load
        links: Dict[Tuple[NodeId, NodeId], float] = {}
        for i in range(len(mapping.path) - 1):
            u, v = mapping.path[i], mapping.path[i + 1]
            if u == v:
                continue
            bits = (pipeline.group_output_bytes(mapping.groups[i])
                    * BITS_PER_BYTE * demand_fps)
            if bits > 0:
                key = _link_key(u, v)
                links[key] = links.get(key, 0.0) + bits
        return PlacementDemand(nodes=nodes, links=links, demand_fps=demand_fps)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def remaining_node(self, node_id: NodeId) -> float:
        """Remaining compute budget of a node, ops/s."""
        return float(self.node_remaining[self.view.index_of[node_id]])

    def remaining_link(self, u: NodeId, v: NodeId) -> float:
        """Remaining bandwidth budget of the undirected link ``u``–``v``, bits/s."""
        try:
            return self.link_remaining[_link_key(u, v)]
        except KeyError:
            raise SpecificationError(f"no link {u}–{v} in the cluster") from None

    def _slack(self, capacity: float) -> float:
        return max(_REL_SLACK, _REL_SLACK * capacity)

    def violations(self, demand: PlacementDemand) -> List[CapacityViolation]:
        """Every budget ``demand`` would overdraw (empty = it fits)."""
        out: List[CapacityViolation] = []
        for node_id, needed in demand.nodes.items():
            index = self.view.index_of.get(node_id)
            if index is None:
                raise SpecificationError(
                    f"demand names unknown node {node_id!r}")
            remaining = float(self.node_remaining[index])
            if needed > remaining + self._slack(self.node_capacity[index]):
                out.append(CapacityViolation("node", node_id, needed, remaining))
        for key, needed in demand.links.items():
            if key not in self.link_remaining:
                raise SpecificationError(f"demand names unknown link {key!r}")
            remaining = self.link_remaining[key]
            if needed > remaining + self._slack(self.link_capacity[key]):
                out.append(CapacityViolation("link", key, needed, remaining))
        return out

    def fits(self, demand: PlacementDemand) -> bool:
        """``True`` when :meth:`commit` would succeed right now."""
        return not self.violations(demand)

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def commit(self, demand: PlacementDemand) -> PlacementDemand:
        """Atomically subtract ``demand`` from the remaining budgets.

        Raises :class:`~repro.exceptions.CapacityError` — without mutating
        any budget — when one component does not fit; the message lists every
        violated budget so rejection reasons are actionable.  Returns the
        demand so callers can retain it for a later :meth:`release`.
        """
        violations = self.violations(demand)
        if violations:
            raise CapacityError(
                "placement exceeds remaining cluster capacity: "
                + "; ".join(v.describe() for v in violations))
        for node_id, needed in demand.nodes.items():
            self.node_remaining[self.view.index_of[node_id]] -= needed
        for key, needed in demand.links.items():
            self.link_remaining[key] -= needed
        self.committed.append(demand)
        self.commits_total += 1
        return demand

    def release(self, demand: PlacementDemand) -> None:
        """Return a previously committed demand's budgets to the pool.

        The demand must be one of :attr:`committed` (matched by object
        identity — the object :meth:`commit` returned); anything else raises
        :class:`SpecificationError` rather than silently inflating capacity.
        """
        for i, entry in enumerate(self.committed):
            if entry is demand:
                del self.committed[i]
                break
        else:
            raise SpecificationError(
                "release() got a demand that is not currently committed")
        for node_id, needed in demand.nodes.items():
            self.node_remaining[self.view.index_of[node_id]] += needed
        for key, needed in demand.links.items():
            self.link_remaining[key] += needed
        self.releases_total += 1

    def snapshot(self) -> _Snapshot:
        """A restorable copy of the ledger's entire mutable state."""
        return _Snapshot(node_remaining=self.node_remaining.copy(),
                         link_remaining=dict(self.link_remaining),
                         committed=tuple(self.committed))

    def restore(self, snap: _Snapshot) -> None:
        """Roll the ledger back to a :meth:`snapshot` (budgets and commits)."""
        self.node_remaining = snap.node_remaining.copy()
        self.link_remaining = dict(snap.link_remaining)
        self.committed = list(snap.committed)

    # ------------------------------------------------------------------ #
    # Invariants and reporting
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Assert the ledger's invariant: remaining = capacity − Σ committed.

        Raises :class:`~repro.exceptions.CapacityError` when a budget is
        overdrawn or the remaining arrays disagree with the committed-demand
        ground truth (which would mean a bookkeeping bug, not a bad input).
        """
        node_used = np.zeros_like(self.node_capacity)
        link_used: Dict[Tuple[NodeId, NodeId], float] = {}
        for demand in self.committed:
            for node_id, needed in demand.nodes.items():
                node_used[self.view.index_of[node_id]] += needed
            for key, needed in demand.links.items():
                link_used[key] = link_used.get(key, 0.0) + needed
        slack = np.maximum(_REL_SLACK, _REL_SLACK * self.node_capacity)
        if np.any(node_used > self.node_capacity + slack):
            index = int(np.argmax(node_used - self.node_capacity))
            raise CapacityError(
                f"node {self.view.node_ids[index]} is overdrawn: "
                f"{node_used[index]:.6g} ops/s committed against a capacity "
                f"of {self.node_capacity[index]:.6g}")
        expected = self.node_capacity - node_used
        if not np.allclose(self.node_remaining, expected,
                           rtol=1e-6, atol=1e-6):
            raise CapacityError(
                "node_remaining disagrees with the committed demands "
                "(ledger bookkeeping bug)")
        for key, cap in self.link_capacity.items():
            used = link_used.get(key, 0.0)
            if used > cap + self._slack(cap):
                raise CapacityError(
                    f"link {key} is overdrawn: {used:.6g} bits/s committed "
                    f"against a capacity of {cap:.6g}")
            if abs(self.link_remaining[key] - (cap - used)) > max(
                    1e-6, 1e-6 * cap):
                raise CapacityError(
                    f"link_remaining[{key}] disagrees with the committed "
                    "demands (ledger bookkeeping bug)")

    def utilization(self) -> Dict[str, float]:
        """Aggregate utilisation summary (for ``repro place`` and healthz)."""
        node_cap = float(self.node_capacity.sum())
        node_used = float((self.node_capacity - self.node_remaining).sum())
        link_cap = float(sum(self.link_capacity.values()))
        link_used = float(sum(self.link_capacity[k] - self.link_remaining[k]
                              for k in self.link_capacity))
        return {
            "committed": float(len(self.committed)),
            "node_utilization": node_used / node_cap if node_cap else 0.0,
            "link_utilization": link_used / link_cap if link_cap else 0.0,
            "node_remaining_min": float(self.node_remaining.min())
            if len(self.node_remaining) else 0.0,
        }


def validate_placements(items: Iterable, cluster: ClusterState,
                        ) -> Dict[str, float]:
    """Replay a placement result's admitted mappings against a fresh ledger.

    ``items`` is any iterable of objects carrying ``mapping`` and
    ``demand_fps`` attributes (:class:`repro.placement.PlacementItem`;
    rejected items with ``mapping=None`` are skipped).  A fresh
    :class:`ClusterState` with the same capacities as ``cluster`` is built,
    every admitted mapping's demand is *recomputed from the mapping itself*
    and committed in order — so the check is independent of whatever demands
    the placer recorded — and :class:`~repro.exceptions.CapacityError`
    propagates if any commit fails.  Returns the fresh ledger's utilisation
    summary, so benches can assert on it.
    """
    fresh = ClusterState(cluster.network, cluster.node_capacity,
                         cluster.link_capacity)
    for item in items:
        mapping = getattr(item, "mapping", None)
        if mapping is None:
            continue
        demand_fps = float(getattr(item, "demand_fps", 1.0))
        fresh.commit(fresh.demand_of(mapping, demand_fps=demand_fps))
    fresh.validate()
    return fresh.utilization()
