"""The cluster capacity ledger: who is using how much of which resource.

:class:`ClusterState` layers two budget arrays over a network's cached dense
view (:meth:`repro.TransportNetwork.dense_view`):

* ``node_remaining`` — per-node compute budget in **operations per second**.
  The cost model says a module of workload :math:`w = c\\,m` operations takes
  :math:`w / (p \\cdot 10^3)` ms on a node of power :math:`p` (millions of
  ops/s), so a node of power :math:`p` sustains :math:`p \\cdot 10^6` ops/s —
  that is its default capacity, scaled by ``node_capacity_factor``.
* ``link_remaining`` — per-link bandwidth budget in **bits per second**
  (``bandwidth_mbps * 1e6``, scaled by ``link_capacity_factor``), one shared
  budget per *undirected* link: traffic in both directions draws from it.

A placed pipeline streaming at ``demand_fps`` frames per second demands
``demand_fps * workload(modules on v)`` ops/s from every node it computes on
and ``demand_fps * 8 * message_bytes`` bits/s from every link its path
crosses (:meth:`ClusterState.demand_of`).  ``commit`` is atomic — it checks
every component first and raises :class:`~repro.exceptions.CapacityError`
without mutating anything when one budget would go negative — and every
committed demand is retained so :meth:`ClusterState.validate` can re-derive
the remaining arrays from scratch and the batch validator
(:func:`validate_placements`) can replay a whole placement result against a
fresh ledger.

Storage seam
------------
``ClusterState`` does not own its remaining-budget arrays directly: all
reads and writes go through a :class:`LedgerStore`.  Two implementations:

* :class:`LocalStore` — plain in-process numpy arrays guarded by a
  ``threading.RLock``; the default everywhere (``repro place``, single
  -process admission control) and bit-identical to the pre-seam ledger.
* :class:`SharedStore` — one network slot inside a :class:`SharedLedger`, a
  ``multiprocessing.shared_memory`` slab guarded by a cross-process
  ``multiprocessing.RLock``.  Every pre-fork service replica charges the
  *same* remaining arrays, so an N-replica fleet admits exactly what one
  ledger allows, and each replica additionally journals its own holdings
  per slot (``node_held`` / ``link_held`` rows) so the supervisor can
  refund a crashed replica's reservations on reap
  (:meth:`SharedLedger.release_replica`).

The supervisor *creates* the slab (:meth:`SharedLedger.create`) before
forking and unlinks it on drain; replicas re-attach by segment name
(:meth:`SharedLedger.attach`, the lock rides the fork).  Network slots are
allocated lazily under the lock, keyed by the digest of the network's wire
ref, so every replica that interns the same topology lands on the same slot.

Floating-point note: budgets are compared with a relative slack of
``1e-9 * capacity`` so a pipeline whose demand *exactly* equals the budget is
admitted despite rounding; the validator applies the same slack.  Both
stores do the same ``-=``/``+=`` IEEE-double arithmetic in the same order,
so local and shared ledgers admit identical request sequences identically.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass
from typing import (Any, Callable, Dict, Iterable, Iterator, List, Mapping,
                    Optional, Sequence, Tuple)

import numpy as np

from ..core.mapping import PipelineMapping
from ..exceptions import CapacityError, SpecificationError
from ..model.link import BITS_PER_BYTE, MEGABIT
from ..model.network import TransportNetwork
from ..types import NodeId

__all__ = ["PlacementDemand", "CapacityViolation", "ClusterState",
           "LedgerStore", "LocalStore", "SharedStore", "SharedLedger",
           "SharedLedgerSpec", "validate_placements"]

#: Relative slack applied to every budget comparison (see module notes).
_REL_SLACK = 1e-9


def _link_key(u: NodeId, v: NodeId) -> Tuple[NodeId, NodeId]:
    """Canonical undirected key of the link ``u``–``v``."""
    return (u, v) if u <= v else (v, u)


@dataclass(frozen=True)
class PlacementDemand:
    """Steady-state resource demand of one mapping at a given frame rate.

    Attributes
    ----------
    nodes:
        ``node_id -> ops/s`` drawn from each node the mapping computes on
        (zero-workload entries are dropped).
    links:
        ``(u, v) -> bits/s`` drawn from each undirected link the mapping's
        path crosses, both directions pooled (zero-byte messages dropped).
    demand_fps:
        The frame rate the demand was computed at.
    """

    nodes: Mapping[NodeId, float]
    links: Mapping[Tuple[NodeId, NodeId], float]
    demand_fps: float = 1.0

    @property
    def total_node_ops(self) -> float:
        """Total compute demand over all nodes, ops/s."""
        return float(sum(self.nodes.values()))

    @property
    def total_link_bits(self) -> float:
        """Total bandwidth demand over all links, bits/s."""
        return float(sum(self.links.values()))


@dataclass(frozen=True)
class CapacityViolation:
    """One budget a demand would overdraw.

    ``kind`` is ``"node"`` or ``"link"``; ``where`` is the node id or the
    canonical ``(u, v)`` link key; ``needed``/``remaining`` are in the
    resource's own unit (ops/s, bits/s).
    """

    kind: str
    where: Any
    needed: float
    remaining: float

    def describe(self) -> str:
        """Human-readable one-liner (used in rejection reasons)."""
        unit = "ops/s" if self.kind == "node" else "bits/s"
        return (f"{self.kind} {self.where}: needs {self.needed:.6g} {unit}, "
                f"only {max(self.remaining, 0.0):.6g} remaining")


@dataclass
class _Snapshot:
    """Opaque ledger snapshot returned by :meth:`ClusterState.snapshot`."""

    node_remaining: np.ndarray
    link_remaining: Dict[Tuple[NodeId, NodeId], float]
    committed: Tuple[PlacementDemand, ...] = ()


# ---------------------------------------------------------------------- #
# The storage seam
# ---------------------------------------------------------------------- #
class LedgerStore:
    """Where a :class:`ClusterState`'s remaining budgets physically live.

    The contract every implementation honours:

    * ``node_remaining`` / ``link_remaining`` — *live* float64 arrays (dense
      -view node order / ``ClusterState.link_keys`` order).  Mutations made
      through :meth:`charge` / :meth:`refund` are visible to every holder of
      the same store (other threads for :class:`LocalStore`, other
      processes for :class:`SharedStore`).
    * ``lock`` — a re-entrant context manager serialising every compound
      read-modify-write; :class:`ClusterState` takes it around ``commit``,
      ``release``, ``snapshot``, ``restore`` and every multi-element query.
    * :meth:`charge` / :meth:`refund` subtract / add ``(index, amount)``
      deltas in the given order with plain ``-=`` / ``+=`` IEEE arithmetic —
      both stores produce bit-identical budget trajectories.
    """

    kind = "abstract"
    node_remaining: np.ndarray
    link_remaining: np.ndarray

    @property
    def lock(self):
        raise NotImplementedError

    def charge(self, node_deltas: Sequence[Tuple[int, float]],
               link_deltas: Sequence[Tuple[int, float]]) -> None:
        raise NotImplementedError

    def refund(self, node_deltas: Sequence[Tuple[int, float]],
               link_deltas: Sequence[Tuple[int, float]]) -> None:
        raise NotImplementedError

    def restore_remaining(self, node_values: np.ndarray,
                          link_values: np.ndarray,
                          node_delta: np.ndarray,
                          link_delta: np.ndarray) -> None:
        """Roll budgets back to a snapshot.

        ``node_values``/``link_values`` are the snapshot's absolute arrays;
        ``node_delta``/``link_delta`` are *this committer's* usage growth
        since the snapshot (current own usage − snapshot own usage).  A
        private store overwrites with the absolute values; a shared store
        must only refund the caller's own delta — other replicas' commits
        made since the snapshot are not this committer's to roll back.
        """
        raise NotImplementedError

    def total_used(self, node_capacity: np.ndarray, link_capacity: np.ndarray,
                   own_node_used: np.ndarray, own_link_used: np.ndarray
                   ) -> Tuple[np.ndarray, np.ndarray]:
        """Fleet-wide usage arrays for :meth:`ClusterState.validate`.

        For a private store that is exactly the caller's own usage; a shared
        store returns the sum of every replica's holdings journal and
        additionally cross-checks the caller's journal row against
        ``own_*_used`` (raising :class:`CapacityError` on divergence — a
        bookkeeping bug, not a bad input).
        """
        raise NotImplementedError

    def close(self) -> None:
        """Detach from any external resources (no-op for local stores)."""


class LocalStore(LedgerStore):
    """In-process numpy budgets behind a ``threading.RLock`` (the default)."""

    kind = "local"

    def __init__(self, node_remaining: np.ndarray,
                 link_remaining: np.ndarray) -> None:
        self.node_remaining = np.asarray(node_remaining, dtype=float).copy()
        self.link_remaining = np.asarray(link_remaining, dtype=float).copy()
        self._lock = threading.RLock()

    @property
    def lock(self):
        return self._lock

    def charge(self, node_deltas, link_deltas) -> None:
        for index, amount in node_deltas:
            self.node_remaining[index] -= amount
        for index, amount in link_deltas:
            self.link_remaining[index] -= amount

    def refund(self, node_deltas, link_deltas) -> None:
        for index, amount in node_deltas:
            self.node_remaining[index] += amount
        for index, amount in link_deltas:
            self.link_remaining[index] += amount

    def restore_remaining(self, node_values, link_values,
                          node_delta, link_delta) -> None:
        # Private budgets: nobody else could have moved them, so the
        # snapshot's absolute arrays are the whole truth (this also restores
        # any direct out-of-band edits, e.g. the drain-a-node test pattern
        # ``cluster.node_remaining[i] = 0.0``).
        self.node_remaining[:] = node_values
        self.link_remaining[:] = link_values

    def total_used(self, node_capacity, link_capacity,
                   own_node_used, own_link_used):
        return own_node_used, own_link_used


@dataclass(frozen=True)
class SharedLedgerSpec:
    """Geometry + segment name of one :class:`SharedLedger` slab.

    Travels from the supervisor to its replicas (it rides the fork inside
    the :class:`SharedLedger` object); :meth:`SharedLedger.attach` maps the
    named segment again in the child, proving the by-name protocol any
    non-fork transport would need.
    """

    name: str
    replicas: int
    max_networks: int
    max_nodes: int
    max_links: int


#: Slab global header, in float64 slots: [layout version, released_total].
_HDR_FLOATS = 2
#: Per-slot meta, in float64 slots: [in_use, n_nodes, n_links].
_SLOT_META_FLOATS = 3
_DIGEST_BYTES = 32


class SharedLedger:
    """One ``multiprocessing.shared_memory`` slab of fleet capacity ledgers.

    The supervisor :meth:`create`\\ s the slab **before forking** — networks
    only become known at request time, so the slab is a registry of
    ``max_networks`` fixed-geometry slots, each holding one network's
    capacity/remaining arrays plus one holdings-journal row per replica.
    Replicas :meth:`attach` by segment name and call :meth:`store_for` to
    allocate-or-join the slot of an interned network (keyed by the digest of
    its wire ref, which is a pure function of the network payload — so every
    replica lands on the same slot without coordination beyond the lock).

    Crash-release: each commit/release also updates the committing replica's
    journal row.  When the supervisor reaps a dead replica it calls
    :meth:`release_replica`, which refunds the row into ``remaining`` and
    zeroes it — reservations die with their holder instead of leaking until
    restart.

    The slab lock is a ``multiprocessing.RLock`` created with the slab; it
    is inherited through ``fork`` (it cannot be attached by name — only the
    memory segment can), which matches the pre-fork, POSIX-only replica
    design.
    """

    def __init__(self, spec: SharedLedgerSpec, shm, lock, *,
                 owner: bool) -> None:
        self.spec = spec
        self._shm = shm
        self._lock = lock
        self._owner = owner
        self._unlinked = False
        floats = (2 * spec.max_nodes + 2 * spec.max_links
                  + spec.replicas * (spec.max_nodes + spec.max_links))
        self._slot_bytes = (_SLOT_META_FLOATS * 8 + _DIGEST_BYTES + floats * 8)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @classmethod
    def create(cls, *, replicas: int, max_networks: int = 16,
               max_nodes: int = 512, max_links: int = 4096) -> "SharedLedger":
        """Create the slab (supervisor side, pre-fork); zero-initialised."""
        import multiprocessing
        from multiprocessing import shared_memory

        if replicas < 1:
            raise SpecificationError(
                f"shared ledger needs replicas >= 1, got {replicas!r}")
        if max_networks < 1 or max_nodes < 1 or max_links < 1:
            raise SpecificationError(
                "shared ledger geometry must be >= 1 in every dimension")
        floats = (2 * max_nodes + 2 * max_links
                  + replicas * (max_nodes + max_links))
        slot_bytes = _SLOT_META_FLOATS * 8 + _DIGEST_BYTES + floats * 8
        size = _HDR_FLOATS * 8 + max_networks * slot_bytes
        shm = shared_memory.SharedMemory(create=True, size=size)
        shm.buf[:size] = bytes(size)
        spec = SharedLedgerSpec(name=shm.name, replicas=replicas,
                                max_networks=max_networks,
                                max_nodes=max_nodes, max_links=max_links)
        ledger = cls(spec, shm, multiprocessing.RLock(), owner=True)
        ledger._header()[0] = 1.0  # layout version
        return ledger

    def attach(self) -> "SharedLedger":
        """Re-map the named segment (replica side, post-fork).

        The returned ledger shares this one's lock object — locks ride the
        fork; only the memory travels by name.  The attachment is
        unregistered from the ``resource_tracker`` so a replica's exit (or
        crash) never unlinks the supervisor-owned segment underneath the
        rest of the fleet.
        """
        from multiprocessing import resource_tracker, shared_memory

        shm = shared_memory.SharedMemory(name=self.spec.name)
        try:  # attach registers on this Python; creator-only cleanup wanted
            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker API drift
            pass
        return SharedLedger(self.spec, shm, self._lock, owner=False)

    def close(self) -> None:
        """Drop this process's mapping (the segment itself survives)."""
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - a live view pins the map
            pass

    def unlink(self) -> None:
        """Destroy the segment (owner/supervisor, at drain)."""
        if self._unlinked:
            return
        self._unlinked = True
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - raced cleanup
            pass

    @property
    def lock(self):
        return self._lock

    # ------------------------------------------------------------------ #
    # Slab views
    # ------------------------------------------------------------------ #
    def _header(self) -> np.ndarray:
        return np.frombuffer(self._shm.buf, dtype=np.float64,
                             count=_HDR_FLOATS, offset=0)

    def _slot_meta(self, slot: int) -> np.ndarray:
        base = _HDR_FLOATS * 8 + slot * self._slot_bytes
        return np.frombuffer(self._shm.buf, dtype=np.float64,
                             count=_SLOT_META_FLOATS, offset=base)

    def _slot_digest(self, slot: int) -> bytes:
        base = (_HDR_FLOATS * 8 + slot * self._slot_bytes
                + _SLOT_META_FLOATS * 8)
        return bytes(self._shm.buf[base:base + _DIGEST_BYTES])

    def _write_slot_digest(self, slot: int, digest: bytes) -> None:
        base = (_HDR_FLOATS * 8 + slot * self._slot_bytes
                + _SLOT_META_FLOATS * 8)
        self._shm.buf[base:base + _DIGEST_BYTES] = digest

    def _slot_arrays(self, slot: int) -> Dict[str, np.ndarray]:
        """Full-geometry views of one slot's budget/journal arrays."""
        spec = self.spec
        base = (_HDR_FLOATS * 8 + slot * self._slot_bytes
                + _SLOT_META_FLOATS * 8 + _DIGEST_BYTES)

        def view(count: int) -> np.ndarray:
            nonlocal base
            arr = np.frombuffer(self._shm.buf, dtype=np.float64,
                                count=count, offset=base)
            base += count * 8
            return arr

        return {
            "node_capacity": view(spec.max_nodes),
            "link_capacity": view(spec.max_links),
            "node_remaining": view(spec.max_nodes),
            "link_remaining": view(spec.max_links),
            "node_held": view(spec.replicas * spec.max_nodes
                              ).reshape(spec.replicas, spec.max_nodes),
            "link_held": view(spec.replicas * spec.max_links
                              ).reshape(spec.replicas, spec.max_links),
        }

    @staticmethod
    def _digest_of(key: str) -> bytes:
        return hashlib.sha256(key.encode("utf-8")).digest()

    # ------------------------------------------------------------------ #
    # Slot allocation (replica side)
    # ------------------------------------------------------------------ #
    def store_for(self, key: str, replica_id: int,
                  node_capacity: np.ndarray, link_capacity: np.ndarray,
                  link_keys: Optional[Sequence] = None) -> "SharedStore":
        """Allocate-or-join the slot of network ``key``; returns its store.

        The first caller initialises the slot (capacities written, remaining
        = capacity, journals zeroed); later callers — other replicas, or the
        same replica after an interner re-intern — join it with the drained
        budgets intact, verifying the stored capacities match their own
        derivation (a mismatch means configuration drift across the fleet,
        :class:`SpecificationError`).  Raises
        :class:`~repro.exceptions.CapacityError` when the network exceeds
        the slab geometry or every slot is taken — callers surface that as
        an admission rejection, not a crash.
        """
        spec = self.spec
        if not 0 <= int(replica_id) < spec.replicas:
            raise SpecificationError(
                f"replica_id must be in [0, {spec.replicas}), got "
                f"{replica_id!r}")
        node_capacity = np.asarray(node_capacity, dtype=float)
        link_capacity = np.asarray(link_capacity, dtype=float)
        n_nodes, n_links = len(node_capacity), len(link_capacity)
        if n_nodes > spec.max_nodes or n_links > spec.max_links:
            raise CapacityError(
                f"network ({n_nodes} nodes, {n_links} links) exceeds the "
                f"fleet ledger slot geometry ({spec.max_nodes} nodes, "
                f"{spec.max_links} links); raise the supervisor's ledger "
                "geometry")
        digest = self._digest_of(key)
        with self._lock:
            free: Optional[int] = None
            for slot in range(spec.max_networks):
                meta = self._slot_meta(slot)
                if not meta[0]:
                    if free is None:
                        free = slot
                    continue
                if self._slot_digest(slot) != digest:
                    continue
                if int(meta[1]) != n_nodes or int(meta[2]) != n_links:
                    raise SpecificationError(
                        f"fleet ledger slot for {key!r} has "
                        f"{int(meta[1])} nodes/{int(meta[2])} links but this "
                        f"replica derived {n_nodes}/{n_links} — replicas "
                        "disagree about the network")
                arrays = self._slot_arrays(slot)
                if (not np.array_equal(arrays["node_capacity"][:n_nodes],
                                       node_capacity)
                        or not np.array_equal(
                            arrays["link_capacity"][:n_links],
                            link_capacity)):
                    raise SpecificationError(
                        f"fleet ledger slot for {key!r} was initialised with "
                        "different capacities — replicas disagree about the "
                        "admission configuration")
                return SharedStore(self, slot, int(replica_id),
                                   n_nodes, n_links)
            if free is None:
                raise CapacityError(
                    f"fleet ledger registry is full ({spec.max_networks} "
                    "networks); raise the supervisor's max_networks")
            arrays = self._slot_arrays(free)
            arrays["node_capacity"][:] = 0.0
            arrays["link_capacity"][:] = 0.0
            arrays["node_capacity"][:n_nodes] = node_capacity
            arrays["link_capacity"][:n_links] = link_capacity
            arrays["node_remaining"][:] = arrays["node_capacity"]
            arrays["link_remaining"][:] = arrays["link_capacity"]
            arrays["node_held"][:] = 0.0
            arrays["link_held"][:] = 0.0
            self._write_slot_digest(free, digest)
            meta = self._slot_meta(free)
            meta[1], meta[2] = float(n_nodes), float(n_links)
            meta[0] = 1.0  # published last: the slot is fully initialised
            return SharedStore(self, free, int(replica_id), n_nodes, n_links)

    # ------------------------------------------------------------------ #
    # Supervisor side
    # ------------------------------------------------------------------ #
    def release_replica(self, replica_id: int) -> float:
        """Refund a dead replica's journalled holdings on every slot.

        Returns the total capacity refunded (ops/s + bits/s, only useful as
        a "was anything held" signal); bumps the slab's ``released_total``
        once per reap that actually refunded something.  Idempotent: a
        second call finds zeroed journals and refunds nothing.
        """
        spec = self.spec
        if not 0 <= int(replica_id) < spec.replicas:
            raise SpecificationError(
                f"replica_id must be in [0, {spec.replicas}), got "
                f"{replica_id!r}")
        refunded = 0.0
        with self._lock:
            for slot in range(spec.max_networks):
                if not self._slot_meta(slot)[0]:
                    continue
                arrays = self._slot_arrays(slot)
                node_row = arrays["node_held"][int(replica_id)]
                link_row = arrays["link_held"][int(replica_id)]
                refunded += float(node_row.sum()) + float(link_row.sum())
                arrays["node_remaining"] += node_row
                arrays["link_remaining"] += link_row
                node_row[:] = 0.0
                link_row[:] = 0.0
            if refunded > 0.0:
                self._header()[1] += 1.0
        return refunded

    def occupancy(self) -> Dict[str, float]:
        """Raw fleet-wide sums for the healthz occupancy block.

        Keys: ``networks`` (slots in use), ``node_capacity`` /
        ``node_remaining`` / ``link_capacity`` / ``link_remaining`` (summed
        over slots, the resource units) and ``released_total`` (crash
        -release reaps that refunded holdings).  The service layer turns
        these into residual/occupancy fractions
        (:func:`repro.service.wire.occupancy_to_wire`).
        """
        totals = {"networks": 0.0, "node_capacity": 0.0,
                  "node_remaining": 0.0, "link_capacity": 0.0,
                  "link_remaining": 0.0}
        with self._lock:
            for slot in range(self.spec.max_networks):
                meta = self._slot_meta(slot)
                if not meta[0]:
                    continue
                n_nodes, n_links = int(meta[1]), int(meta[2])
                arrays = self._slot_arrays(slot)
                totals["networks"] += 1.0
                totals["node_capacity"] += float(
                    arrays["node_capacity"][:n_nodes].sum())
                totals["node_remaining"] += float(
                    arrays["node_remaining"][:n_nodes].sum())
                totals["link_capacity"] += float(
                    arrays["link_capacity"][:n_links].sum())
                totals["link_remaining"] += float(
                    arrays["link_remaining"][:n_links].sum())
            totals["released_total"] = float(self._header()[1])
        return totals


class SharedStore(LedgerStore):
    """One replica's handle on one :class:`SharedLedger` network slot.

    ``node_remaining``/``link_remaining`` are live views into the shared
    slab — every replica's commits are immediately visible to every other.
    :meth:`charge`/:meth:`refund` additionally maintain this replica's
    holdings-journal row, the supervisor's crash-release ground truth.
    """

    kind = "shared"

    def __init__(self, ledger: SharedLedger, slot: int, replica_id: int,
                 n_nodes: int, n_links: int) -> None:
        self.ledger = ledger
        self.slot = int(slot)
        self.replica_id = int(replica_id)
        arrays = ledger._slot_arrays(self.slot)
        self.node_remaining = arrays["node_remaining"][:n_nodes]
        self.link_remaining = arrays["link_remaining"][:n_links]
        self._node_held = arrays["node_held"][self.replica_id][:n_nodes]
        self._link_held = arrays["link_held"][self.replica_id][:n_links]

    @property
    def lock(self):
        return self.ledger.lock

    def charge(self, node_deltas, link_deltas) -> None:
        for index, amount in node_deltas:
            self.node_remaining[index] -= amount
            self._node_held[index] += amount
        for index, amount in link_deltas:
            self.link_remaining[index] -= amount
            self._link_held[index] += amount

    def refund(self, node_deltas, link_deltas) -> None:
        for index, amount in node_deltas:
            self.node_remaining[index] += amount
            self._node_held[index] -= amount
        for index, amount in link_deltas:
            self.link_remaining[index] += amount
            self._link_held[index] -= amount

    def restore_remaining(self, node_values, link_values,
                          node_delta, link_delta) -> None:
        # Shared budgets: other replicas may have committed since the
        # snapshot, so only this committer's own growth is refunded — the
        # absolute snapshot arrays would clobber the rest of the fleet.
        self.node_remaining += node_delta
        self.link_remaining += link_delta
        self._node_held -= node_delta
        self._link_held -= link_delta

    def total_used(self, node_capacity, link_capacity,
                   own_node_used, own_link_used):
        arrays = self.ledger._slot_arrays(self.slot)
        n_nodes, n_links = len(self.node_remaining), len(self.link_remaining)
        if not (np.allclose(self._node_held, own_node_used,
                            rtol=1e-6, atol=1e-6)
                and np.allclose(self._link_held, own_link_used,
                                rtol=1e-6, atol=1e-6)):
            raise CapacityError(
                "this replica's holdings journal disagrees with its "
                "committed demands (ledger bookkeeping bug)")
        node_total = arrays["node_held"][:, :n_nodes].sum(axis=0)
        link_total = arrays["link_held"][:, :n_links].sum(axis=0)
        return node_total, link_total

    def close(self) -> None:
        self.node_remaining = self.link_remaining = None  # drop slab views
        self._node_held = self._link_held = None


class _LinkBudgetView(Mapping):
    """Live dict-like face of the store's link-remaining array.

    Keeps ``cluster.link_remaining[key]`` / ``.items()`` working unchanged
    while the budgets themselves live in the store.  Item assignment writes
    through (the drain-a-link test pattern); keys are the ledger's canonical
    undirected link keys in capacity order.
    """

    def __init__(self, keys: Sequence[Tuple[NodeId, NodeId]],
                 index: Dict[Tuple[NodeId, NodeId], int],
                 store: LedgerStore) -> None:
        self._keys = keys
        self._index = index
        self._store = store

    def __getitem__(self, key: Tuple[NodeId, NodeId]) -> float:
        return float(self._store.link_remaining[self._index[key]])

    def __setitem__(self, key: Tuple[NodeId, NodeId], value: float) -> None:
        self._store.link_remaining[self._index[key]] = float(value)

    def __iter__(self) -> Iterator[Tuple[NodeId, NodeId]]:
        return iter(self._keys)

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key: object) -> bool:
        return key in self._index

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_LinkBudgetView({dict(self)!r})"


class ClusterState:
    """Per-node / per-link remaining-capacity ledger over one network.

    Build one with :meth:`from_network`; hand it to a placer
    (:func:`repro.place_many`) or drive it directly:
    :meth:`demand_of` → :meth:`fits` / :meth:`violations` → :meth:`commit` /
    :meth:`release`, with :meth:`snapshot` / :meth:`restore` bracketing any
    speculative sequence.  All arrays are indexed like the network's dense
    view (``view.index_of[node_id]``).

    Storage is delegated to a :class:`LedgerStore` (see the module notes):
    by default a private :class:`LocalStore`; pass ``store_factory`` — a
    callable ``(node_capacity, link_capacity, link_keys) -> LedgerStore`` —
    to back the ledger with e.g. a :meth:`SharedLedger.store_for` slot so
    several processes charge one set of budgets.
    """

    def __init__(self, network: TransportNetwork,
                 node_capacity: np.ndarray,
                 link_capacity: Dict[Tuple[NodeId, NodeId], float],
                 store_factory: Optional[Callable[..., LedgerStore]] = None
                 ) -> None:
        self.network = network
        self.view = network.dense_view()
        self.node_capacity = np.asarray(node_capacity, dtype=float).copy()
        if self.node_capacity.shape != (self.view.n_nodes,):
            raise SpecificationError(
                f"node_capacity must have shape ({self.view.n_nodes},), got "
                f"{self.node_capacity.shape}")
        if np.any(self.node_capacity < 0):
            raise SpecificationError("node capacities must be >= 0")
        self.link_capacity = dict(link_capacity)
        for key, cap in self.link_capacity.items():
            if cap < 0:
                raise SpecificationError(
                    f"link capacity of {key} must be >= 0, got {cap!r}")
        self._rebuild_link_layout()
        link_cap_arr = np.array(
            [self.link_capacity[key] for key in self._link_keys], dtype=float)
        if store_factory is not None:
            self._store = store_factory(self.node_capacity, link_cap_arr,
                                        list(self._link_keys))
        else:
            self._store = LocalStore(self.node_capacity, link_cap_arr)
        #: Every currently-committed demand, in commit order (the validator's
        #: ground truth; release removes the entry by identity).  Per holder:
        #: a shared store's other replicas keep their own lists (and
        #: journals).
        self.committed: List[PlacementDemand] = []
        self.commits_total = 0
        self.releases_total = 0
        #: How the capacities were derived (set by :meth:`from_network`);
        #: ``None`` for explicit-capacity ledgers, which cannot
        #: :meth:`rebase` — their budgets carry no recipe to re-derive.
        self._capacity_policy: Optional[Dict[str, Any]] = None
        self.rebases_total = 0

    def _rebuild_link_layout(self) -> None:
        self._link_keys: List[Tuple[NodeId, NodeId]] = list(self.link_capacity)
        self._link_index: Dict[Tuple[NodeId, NodeId], int] = {
            key: i for i, key in enumerate(self._link_keys)}

    # ------------------------------------------------------------------ #
    # Storage seam accessors
    # ------------------------------------------------------------------ #
    @property
    def store(self) -> LedgerStore:
        """The :class:`LedgerStore` this ledger reads and writes through."""
        return self._store

    @property
    def node_remaining(self) -> np.ndarray:
        """Live per-node remaining budgets (dense-view order), ops/s."""
        return self._store.node_remaining

    @node_remaining.setter
    def node_remaining(self, values) -> None:
        self._store.node_remaining[:] = np.asarray(values, dtype=float)

    @property
    def link_remaining(self) -> _LinkBudgetView:
        """Live per-link remaining budgets as a mapping over canonical keys."""
        return _LinkBudgetView(self._link_keys, self._link_index, self._store)

    @link_remaining.setter
    def link_remaining(self, values: Mapping[Tuple[NodeId, NodeId], float]
                       ) -> None:
        arr = self._store.link_remaining
        for key, value in values.items():
            arr[self._link_index[key]] = float(value)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_network(cls, network: TransportNetwork, *,
                     node_capacity_factor: float = 1.0,
                     link_capacity_factor: float = 1.0,
                     node_capacity: Optional[Mapping[NodeId, float]] = None,
                     link_capacity: Optional[Mapping[Tuple[NodeId, NodeId],
                                                     float]] = None,
                     store_factory: Optional[Callable[..., LedgerStore]]
                     = None) -> "ClusterState":
        """Budgets derived from the network's own powers and bandwidths.

        Defaults: node budget = ``power * 1e6 * node_capacity_factor`` ops/s
        (a factor of 1.0 means the node may be loaded to exactly its rated
        power), link budget = ``bandwidth_mbps * 1e6 * link_capacity_factor``
        bits/s.  Factors < 1 model headroom policies; factors > 1 model
        deliberate oversubscription.  Explicit per-node / per-link overrides
        (``node_capacity`` / ``link_capacity`` mappings) replace the derived
        value for the listed entries only — the zero-capacity-node tests use
        this to drain individual nodes.  ``store_factory`` passes through to
        the constructor (shared fleet ledgers; default private LocalStore).
        """
        if node_capacity_factor < 0 or link_capacity_factor < 0:
            raise SpecificationError("capacity factors must be >= 0")
        view = network.dense_view()
        node_cap = view.power * (MEGABIT * node_capacity_factor)
        node_cap = np.asarray(node_cap, dtype=float).copy()
        if node_capacity:
            for node_id, cap in node_capacity.items():
                if node_id not in view.index_of:
                    raise SpecificationError(
                        f"node_capacity names unknown node {node_id!r}")
                node_cap[view.index_of[node_id]] = float(cap)
        link_cap: Dict[Tuple[NodeId, NodeId], float] = {}
        for link in network.links():
            key = _link_key(link.start_node, link.end_node)
            link_cap[key] = link.bandwidth_mbps * MEGABIT * link_capacity_factor
        if link_capacity:
            for raw_key, cap in link_capacity.items():
                key = _link_key(*raw_key)
                if key not in link_cap:
                    raise SpecificationError(
                        f"link_capacity names unknown link {raw_key!r}")
                link_cap[key] = float(cap)
        state = cls(network, node_cap, link_cap, store_factory=store_factory)
        state._capacity_policy = {
            "node_capacity_factor": float(node_capacity_factor),
            "link_capacity_factor": float(link_capacity_factor),
            "node_capacity": dict(node_capacity) if node_capacity else {},
            "link_capacity": ({_link_key(*k): float(v)
                               for k, v in link_capacity.items()}
                              if link_capacity else {}),
        }
        return state

    # ------------------------------------------------------------------ #
    # Incremental re-derivation
    # ------------------------------------------------------------------ #
    def rebase(self) -> List[CapacityViolation]:
        """Re-derive the budgets from the network's *current* dense view.

        After the network drifts through scalar edits (or is structurally
        rebuilt), a :meth:`from_network` ledger can rebase instead of being
        thrown away: capacities are recomputed with the stored policy
        (factors + overrides), every committed demand is **replayed onto the
        new budgets** — admissions survive the drift — and the remaining
        arrays are re-derived as ``capacity − Σ committed``.  Returns the
        budgets the surviving commitments now overdraw (capacity shrank under
        load); callers decide whether to evict (:meth:`release`) or tolerate
        the debt.  A no-op (empty list) when the view is unchanged.

        Local-store only: a shared fleet ledger cannot be rebased by one
        replica (the other replicas' holdings are not its to replay);
        capacity drift under replicated admission needs a fleet restart.

        Raises
        ------
        SpecificationError
            If the ledger was built with explicit capacity arrays (no stored
            policy to re-derive from), or its store is shared.
        CapacityError
            If a committed demand names a node or link the drifted network no
            longer has — structural churn must release placements first.
        """
        if self._capacity_policy is None:
            raise SpecificationError(
                "this ledger was built from explicit capacity arrays; only "
                "ClusterState.from_network ledgers can rebase()")
        if self._store.kind == "shared":
            raise SpecificationError(
                "a shared fleet ledger cannot rebase(): other replicas' "
                "holdings are not this one's to replay — restart the fleet "
                "to change admission capacities")
        view = self.network.dense_view()
        if view is self.view:
            return []
        policy = self._capacity_policy
        fresh = ClusterState.from_network(
            self.network,
            node_capacity_factor=policy["node_capacity_factor"],
            link_capacity_factor=policy["link_capacity_factor"],
            node_capacity=policy["node_capacity"] or None,
            link_capacity=policy["link_capacity"] or None)
        for demand in self.committed:
            for node_id in demand.nodes:
                if node_id not in fresh.view.index_of:
                    raise CapacityError(
                        f"committed demand draws on node {node_id!r}, which "
                        "the drifted network no longer has — release the "
                        "placement before rebasing")
            for key in demand.links:
                if key not in fresh.link_capacity:
                    raise CapacityError(
                        f"committed demand draws on link {key!r}, which the "
                        "drifted network no longer has — release the "
                        "placement before rebasing")
        self.view = fresh.view
        self.node_capacity = fresh.node_capacity
        self.link_capacity = fresh.link_capacity
        self._rebuild_link_layout()
        node_used = np.zeros_like(self.node_capacity)
        link_used: Dict[Tuple[NodeId, NodeId], float] = {}
        for demand in self.committed:
            for node_id, needed in demand.nodes.items():
                node_used[self.view.index_of[node_id]] += needed
            for key, needed in demand.links.items():
                link_used[key] = link_used.get(key, 0.0) + needed
        # The drifted geometry may have a different link set: swap in a fresh
        # local store sized to it, holding the re-derived residual budgets.
        self._store = LocalStore(
            self.node_capacity - node_used,
            np.array([self.link_capacity[key] - link_used.get(key, 0.0)
                      for key in self._link_keys], dtype=float))
        violations: List[CapacityViolation] = []
        for index in np.flatnonzero(
                node_used > self.node_capacity
                + np.maximum(_REL_SLACK, _REL_SLACK * self.node_capacity)):
            node_id = self.view.node_ids[int(index)]
            violations.append(CapacityViolation(
                "node", node_id, float(node_used[index]),
                float(self.node_capacity[index] - node_used[index])))
        for key, used in link_used.items():
            cap = self.link_capacity[key]
            if used > cap + self._slack(cap):
                violations.append(CapacityViolation(
                    "link", key, used, cap - used))
        self.rebases_total += 1
        return violations

    # ------------------------------------------------------------------ #
    # Demand model
    # ------------------------------------------------------------------ #
    def demand_of(self, mapping: PipelineMapping, *,
                  demand_fps: float = 1.0) -> PlacementDemand:
        """The steady-state demand of ``mapping`` streaming at ``demand_fps``.

        Node demand pools every visit of a reused node (the same aggregation
        :func:`repro.model.cost.bottleneck_time_ms` applies with
        ``account_node_sharing=True``); link demand pools every crossing of a
        link in either direction.
        """
        if demand_fps < 0:
            raise SpecificationError(
                f"demand_fps must be >= 0, got {demand_fps!r}")
        pipeline = mapping.pipeline
        nodes: Dict[NodeId, float] = {}
        for group, node_id in zip(mapping.groups, mapping.path):
            load = pipeline.group_workload(group) * demand_fps
            if load > 0:
                nodes[node_id] = nodes.get(node_id, 0.0) + load
        links: Dict[Tuple[NodeId, NodeId], float] = {}
        for i in range(len(mapping.path) - 1):
            u, v = mapping.path[i], mapping.path[i + 1]
            if u == v:
                continue
            bits = (pipeline.group_output_bytes(mapping.groups[i])
                    * BITS_PER_BYTE * demand_fps)
            if bits > 0:
                key = _link_key(u, v)
                links[key] = links.get(key, 0.0) + bits
        return PlacementDemand(nodes=nodes, links=links, demand_fps=demand_fps)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def remaining_node(self, node_id: NodeId) -> float:
        """Remaining compute budget of a node, ops/s."""
        return float(self._store.node_remaining[self.view.index_of[node_id]])

    def remaining_link(self, u: NodeId, v: NodeId) -> float:
        """Remaining bandwidth budget of the undirected link ``u``–``v``, bits/s."""
        try:
            index = self._link_index[_link_key(u, v)]
        except KeyError:
            raise SpecificationError(f"no link {u}–{v} in the cluster") from None
        return float(self._store.link_remaining[index])

    def node_slack(self, node_id: NodeId) -> float:
        """The admission slack of a node's budget comparisons."""
        return self._slack(self.node_capacity[self.view.index_of[node_id]])

    def link_slack(self, u: NodeId, v: NodeId) -> float:
        """The admission slack of a link's budget comparisons."""
        key = _link_key(u, v)
        if key not in self.link_capacity:
            raise SpecificationError(f"no link {u}–{v} in the cluster")
        return self._slack(self.link_capacity[key])

    def node_budgets(self) -> List[Tuple[NodeId, float, float]]:
        """``(node_id, remaining, slack)`` per node — one consistent read.

        The placers' prefilters iterate this instead of reaching into the
        remaining arrays; the whole scan happens under the store lock, so a
        shared store cannot change mid-iteration.
        """
        with self._store.lock:
            return [(node_id,
                     float(self._store.node_remaining[index]),
                     self._slack(self.node_capacity[index]))
                    for index, node_id in enumerate(self.view.node_ids)]

    def link_budgets(self) -> List[Tuple[Tuple[NodeId, NodeId], float, float]]:
        """``(link_key, remaining, slack)`` per link — one consistent read."""
        with self._store.lock:
            return [(key,
                     float(self._store.link_remaining[index]),
                     self._slack(self.link_capacity[key]))
                    for index, key in enumerate(self._link_keys)]

    def node_remaining_vector(self) -> np.ndarray:
        """A consistent *copy* of the per-node remaining budgets.

        The flow placer builds its arc capacities from this one read instead
        of sampling the live array per arc — against a shared store the live
        array can move between arcs.
        """
        with self._store.lock:
            return self._store.node_remaining.copy()

    def _slack(self, capacity: float) -> float:
        return max(_REL_SLACK, _REL_SLACK * capacity)

    def violations(self, demand: PlacementDemand) -> List[CapacityViolation]:
        """Every budget ``demand`` would overdraw (empty = it fits)."""
        out: List[CapacityViolation] = []
        with self._store.lock:
            for node_id, needed in demand.nodes.items():
                index = self.view.index_of.get(node_id)
                if index is None:
                    raise SpecificationError(
                        f"demand names unknown node {node_id!r}")
                remaining = float(self._store.node_remaining[index])
                if needed > remaining + self._slack(self.node_capacity[index]):
                    out.append(CapacityViolation("node", node_id, needed,
                                                 remaining))
            for key, needed in demand.links.items():
                link_index = self._link_index.get(key)
                if link_index is None:
                    raise SpecificationError(
                        f"demand names unknown link {key!r}")
                remaining = float(self._store.link_remaining[link_index])
                if needed > remaining + self._slack(self.link_capacity[key]):
                    out.append(CapacityViolation("link", key, needed,
                                                 remaining))
        return out

    def fits(self, demand: PlacementDemand) -> bool:
        """``True`` when :meth:`commit` would succeed right now."""
        return not self.violations(demand)

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def commit(self, demand: PlacementDemand) -> PlacementDemand:
        """Atomically subtract ``demand`` from the remaining budgets.

        Raises :class:`~repro.exceptions.CapacityError` — without mutating
        any budget — when one component does not fit; the message lists every
        violated budget so rejection reasons are actionable.  Returns the
        demand so callers can retain it for a later :meth:`release`.  The
        check-then-charge sequence holds the store lock, so concurrent
        committers (threads, or replicas on a shared store) cannot jointly
        overdraw a budget both saw as free.
        """
        with self._store.lock:
            violations = self.violations(demand)
            if violations:
                raise CapacityError(
                    "placement exceeds remaining cluster capacity: "
                    + "; ".join(v.describe() for v in violations))
            self._store.charge(
                [(self.view.index_of[node_id], needed)
                 for node_id, needed in demand.nodes.items()],
                [(self._link_index[key], needed)
                 for key, needed in demand.links.items()])
            self.committed.append(demand)
            self.commits_total += 1
        return demand

    def release(self, demand: PlacementDemand) -> None:
        """Return a previously committed demand's budgets to the pool.

        The demand must be one of :attr:`committed` (matched by object
        identity — the object :meth:`commit` returned); anything else raises
        :class:`SpecificationError` rather than silently inflating capacity.
        """
        with self._store.lock:
            for i, entry in enumerate(self.committed):
                if entry is demand:
                    del self.committed[i]
                    break
            else:
                raise SpecificationError(
                    "release() got a demand that is not currently committed")
            self._store.refund(
                [(self.view.index_of[node_id], needed)
                 for node_id, needed in demand.nodes.items()],
                [(self._link_index[key], needed)
                 for key, needed in demand.links.items()])
            self.releases_total += 1

    def _usage_arrays(self, demands: Iterable[PlacementDemand]
                      ) -> Tuple[np.ndarray, np.ndarray]:
        """Summed node/link usage of a demand list, in store array layout."""
        node_used = np.zeros_like(self.node_capacity)
        link_used = np.zeros(len(self._link_keys), dtype=float)
        for demand in demands:
            for node_id, needed in demand.nodes.items():
                node_used[self.view.index_of[node_id]] += needed
            for key, needed in demand.links.items():
                link_used[self._link_index[key]] += needed
        return node_used, link_used

    def snapshot(self) -> _Snapshot:
        """A restorable copy of the ledger's entire mutable state.

        The whole copy — both budget arrays and the committed list — is
        taken under the store lock, so a concurrent committer can never
        produce a torn snapshot (budgets from after a commit paired with a
        committed list from before it).
        """
        with self._store.lock:
            return _Snapshot(
                node_remaining=self._store.node_remaining.copy(),
                link_remaining={key: float(self._store.link_remaining[index])
                                for index, key in enumerate(self._link_keys)},
                committed=tuple(self.committed))

    def restore(self, snap: _Snapshot) -> None:
        """Roll the ledger back to a :meth:`snapshot` (budgets and commits).

        On a private local store the snapshot arrays are restored verbatim.
        On a shared store only *this holder's* usage growth since the
        snapshot is refunded — commits other replicas made in between stay
        charged (they are not this ledger's to roll back).
        """
        with self._store.lock:
            now_nodes, now_links = self._usage_arrays(self.committed)
            snap_nodes, snap_links = self._usage_arrays(snap.committed)
            self._store.restore_remaining(
                np.asarray(snap.node_remaining, dtype=float),
                np.array([snap.link_remaining[key]
                          for key in self._link_keys], dtype=float),
                now_nodes - snap_nodes, now_links - snap_links)
            self.committed = list(snap.committed)

    # ------------------------------------------------------------------ #
    # Invariants and reporting
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Assert the ledger's invariant: remaining = capacity − Σ committed.

        Raises :class:`~repro.exceptions.CapacityError` when a budget is
        overdrawn or the remaining arrays disagree with the committed-demand
        ground truth (which would mean a bookkeeping bug, not a bad input).
        Against a shared store the committed ground truth is fleet-wide: the
        sum of every replica's holdings journal, with this replica's row
        additionally cross-checked against its own committed list.
        """
        with self._store.lock:
            own_node_used, own_link_used = self._usage_arrays(self.committed)
            link_cap_arr = np.array(
                [self.link_capacity[key] for key in self._link_keys],
                dtype=float)
            node_used, link_used = self._store.total_used(
                self.node_capacity, link_cap_arr,
                own_node_used, own_link_used)
            slack = np.maximum(_REL_SLACK, _REL_SLACK * self.node_capacity)
            if np.any(node_used > self.node_capacity + slack):
                index = int(np.argmax(node_used - self.node_capacity))
                raise CapacityError(
                    f"node {self.view.node_ids[index]} is overdrawn: "
                    f"{node_used[index]:.6g} ops/s committed against a "
                    f"capacity of {self.node_capacity[index]:.6g}")
            expected = self.node_capacity - node_used
            if not np.allclose(self._store.node_remaining, expected,
                               rtol=1e-6, atol=1e-6):
                raise CapacityError(
                    "node_remaining disagrees with the committed demands "
                    "(ledger bookkeeping bug)")
            for index, key in enumerate(self._link_keys):
                cap = self.link_capacity[key]
                used = float(link_used[index])
                if used > cap + self._slack(cap):
                    raise CapacityError(
                        f"link {key} is overdrawn: {used:.6g} bits/s "
                        f"committed against a capacity of {cap:.6g}")
                if abs(float(self._store.link_remaining[index])
                       - (cap - used)) > max(1e-6, 1e-6 * cap):
                    raise CapacityError(
                        f"link_remaining[{key}] disagrees with the committed "
                        "demands (ledger bookkeeping bug)")

    def utilization(self) -> Dict[str, float]:
        """Aggregate utilisation summary (for ``repro place`` and healthz).

        Against a shared store the used fractions are fleet-wide (capacity −
        the shared remaining covers every replica's commits), while
        ``committed`` counts only this holder's demands.
        """
        with self._store.lock:
            node_cap = float(self.node_capacity.sum())
            node_used = float(
                (self.node_capacity - self._store.node_remaining).sum())
            link_cap = float(sum(self.link_capacity.values()))
            link_used = link_cap - float(self._store.link_remaining.sum())
            node_remaining_min = (float(self._store.node_remaining.min())
                                  if len(self._store.node_remaining) else 0.0)
        return {
            "committed": float(len(self.committed)),
            "node_utilization": node_used / node_cap if node_cap else 0.0,
            "link_utilization": link_used / link_cap if link_cap else 0.0,
            "node_remaining_min": node_remaining_min,
        }


def validate_placements(items: Iterable, cluster: ClusterState,
                        ) -> Dict[str, float]:
    """Replay a placement result's admitted mappings against a fresh ledger.

    ``items`` is any iterable of objects carrying ``mapping`` and
    ``demand_fps`` attributes (:class:`repro.placement.PlacementItem`;
    rejected items with ``mapping=None`` are skipped).  A fresh
    :class:`ClusterState` with the same capacities as ``cluster`` is built
    (always on a private :class:`LocalStore`, whatever backed the original),
    every admitted mapping's demand is *recomputed from the mapping itself*
    and committed in order — so the check is independent of whatever demands
    the placer recorded — and :class:`~repro.exceptions.CapacityError`
    propagates if any commit fails.  Returns the fresh ledger's utilisation
    summary, so benches can assert on it.
    """
    fresh = ClusterState(cluster.network, cluster.node_capacity,
                         cluster.link_capacity)
    for item in items:
        mapping = getattr(item, "mapping", None)
        if mapping is None:
            continue
        demand_fps = float(getattr(item, "demand_fps", 1.0))
        fresh.commit(fresh.demand_of(mapping, demand_fps=demand_fps))
    fresh.validate()
    return fresh.utilization()
