"""Joint flow-based placement — the ``place-flow`` optimizer.

Where packing commits to one request at a time, the flow placer first looks
at the *whole* batch at once.  It builds a min-cost max-flow network over the
cluster's dense view:

.. code-block:: text

    source ──► pipeline P_i ──► stage (i, j) ──► cluster node v ──► sink
           cap: Σ_j d_ij     cap: d_ij        cap: d_ij          cap: node
           cost: 0           cost: 0          cost: delay proxy  remaining

One unit of flow is one op/s of steady-state compute demand; ``d_ij =
demand_fps_i × workload_j`` is stage *j*'s demand.  A stage connects to node
``v`` only inside its **hop-feasibility window** — ``hop(src_i, v) ≤ j`` and
``hop(v, dst_i) ≤ n_i − 1 − j`` — so flow can only land where a real mapping
could place the module.  Arc costs combine the node's per-op compute time
(``1 / (power · 10³)`` ms) with a small hop-distance penalty standing in for
transport delay; node→sink capacities are the ledger's *remaining* budgets,
so the optimum respects cluster contention globally.

The fractional optimum is solved by :class:`MinCostFlow` — successive
shortest paths over a paired-arc residual graph, Dijkstra with Johnson
potentials (pure NumPy + stdlib ``heapq``; **no networkx**) — and then
*rounded*: requests are packed through
:func:`repro.placement.packing.solve_on_residual` in flow order (priority
first, then most-completely-routed, then cheapest), so every admitted mapping
is a real engine-optimal mapping on the residual cluster and the capacity
ledger stays exact.  Requests the flow could not route still get a packing
attempt at the back of the order (the "fall back to packing" path), and the
whole flow-guided plan is compared against plain priority packing on the same
starting ledger — the better batch wins — so ``place-flow`` never admits
fewer requests (or a worse total objective at equal admissions) than
``place-greedy``.
"""

from __future__ import annotations

import heapq
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.mapping import Objective
from ..exceptions import AlgorithmError, SpecificationError
from .base import PlacementItem, PlacementRequest, PlacementResult, RequestLike
from .ledger import ClusterState
from .packing import DEFAULT_MAX_REPAIR_ROUNDS, _ordered_indices, _pack_in_order

__all__ = ["MinCostFlow", "place_flow"]

#: Flow below this is treated as numerical noise and not augmented further.
_FLOW_EPS = 1e-9


class MinCostFlow:
    """Min-cost max-flow on a paired-arc residual graph (float capacities).

    Arcs are added with :meth:`add_edge`, which returns the forward arc's
    index; the reverse (residual) arc is always ``index ^ 1``.  The solver is
    successive shortest paths: repeatedly find the cheapest augmenting
    source→sink path with Dijkstra over *reduced* costs (Johnson potentials
    keep them non-negative even after arcs are reversed) and push the
    bottleneck along it.  All arc costs must be non-negative at build time —
    true here, since they are delays.
    """

    def __init__(self, n_vertices: int) -> None:
        if n_vertices < 2:
            raise SpecificationError("a flow network needs at least 2 vertices")
        self.n = n_vertices
        self.adjacency: List[List[int]] = [[] for _ in range(n_vertices)]
        self.to: List[int] = []
        self.cap: List[float] = []
        self.cost: List[float] = []
        self._original_cap: Dict[int, float] = {}

    def add_edge(self, u: int, v: int, cap: float, cost: float) -> int:
        """Add arc ``u → v``; returns the arc index (reverse is ``index ^ 1``)."""
        if not (0 <= u < self.n and 0 <= v < self.n):
            raise SpecificationError(f"arc {u}→{v} out of range 0..{self.n - 1}")
        if cap < 0 or cost < 0:
            raise SpecificationError(
                "arc capacities and costs must be non-negative")
        index = len(self.to)
        self.to.append(v)
        self.cap.append(float(cap))
        self.cost.append(float(cost))
        self.adjacency[u].append(index)
        self.to.append(u)
        self.cap.append(0.0)
        self.cost.append(-float(cost))
        self.adjacency[v].append(index + 1)
        self._original_cap[index] = float(cap)
        return index

    def flow_on(self, arc: int) -> float:
        """Flow currently pushed through forward arc ``arc``."""
        original = self._original_cap.get(arc)
        if original is None:
            raise SpecificationError(f"{arc} is not a forward arc index")
        return original - self.cap[arc]

    def solve(self, source: int, sink: int,
              max_flow: float = float("inf")) -> Tuple[float, float]:
        """Push up to ``max_flow`` units at minimum cost; returns (flow, cost)."""
        if source == sink:
            raise SpecificationError("source and sink must differ")
        potential = [0.0] * self.n
        total_flow = 0.0
        total_cost = 0.0
        infinity = float("inf")
        while total_flow < max_flow - _FLOW_EPS:
            dist = [infinity] * self.n
            prev_arc = [-1] * self.n
            dist[source] = 0.0
            heap = [(0.0, source)]
            while heap:
                d, u = heapq.heappop(heap)
                if d > dist[u] + _FLOW_EPS:
                    continue
                for arc in self.adjacency[u]:
                    if self.cap[arc] <= _FLOW_EPS:
                        continue
                    v = self.to[arc]
                    reduced = self.cost[arc] + potential[u] - potential[v]
                    if reduced < -1e-6:
                        raise AlgorithmError(
                            "negative reduced cost in min-cost-flow Dijkstra "
                            "(potentials out of sync)")
                    nd = d + max(reduced, 0.0)
                    if nd < dist[v] - _FLOW_EPS:
                        dist[v] = nd
                        prev_arc[v] = arc
                        heapq.heappush(heap, (nd, v))
            if dist[sink] == infinity or prev_arc[sink] == -1:
                break
            for v in range(self.n):
                if dist[v] < infinity:
                    potential[v] += dist[v]
            bottleneck = max_flow - total_flow
            v = sink
            while v != source:
                arc = prev_arc[v]
                bottleneck = min(bottleneck, self.cap[arc])
                v = self.to[arc ^ 1]
            if bottleneck <= _FLOW_EPS:
                break
            v = sink
            while v != source:
                arc = prev_arc[v]
                self.cap[arc] -= bottleneck
                self.cap[arc ^ 1] += bottleneck
                total_cost += bottleneck * self.cost[arc]
                v = self.to[arc ^ 1]
            total_flow += bottleneck
        return total_flow, total_cost


def _build_flow_network(coerced: Sequence[PlacementRequest],
                        cluster: ClusterState
                        ) -> Tuple[MinCostFlow, List[int], List[List[Tuple[int, int]]], List[float]]:
    """Assemble the stage-layer MCMF network over the cluster's dense view.

    Returns ``(mcmf, supply_arcs, stage_node_arcs, supplies)`` where
    ``supply_arcs[i]`` is the S→P_i arc index, ``stage_node_arcs[i]`` lists
    ``(arc, node_index)`` pairs for request *i*'s stage→node arcs, and
    ``supplies[i]`` is request *i*'s total compute demand (ops/s).
    """
    view = cluster.view
    k = view.n_nodes

    endpoint_indices: List[int] = []
    endpoint_pos: Dict[int, int] = {}
    for request in coerced:
        req = request.instance.request
        for node_id in (req.source, req.destination):
            index = view.index_of[node_id]
            if index not in endpoint_pos:
                endpoint_pos[index] = len(endpoint_indices)
                endpoint_indices.append(index)
    hops = view.hop_levels(endpoint_indices) if endpoint_indices else \
        np.zeros((0, k), dtype=np.int64)

    # Vertex layout: 0 = S, 1 = T, 2..2+k-1 = cluster nodes, then one vertex
    # per pipeline and one per (pipeline, stage).
    n_vertices = 2 + k
    pipeline_vertex: List[int] = []
    stage_vertices: List[List[Tuple[int, int]]] = []  # per request: (module, vertex)
    for request in coerced:
        pipeline_vertex.append(n_vertices)
        n_vertices += 1
        workloads = request.instance.pipeline.workloads()
        stages = [(j, 0) for j, w in enumerate(workloads)
                  if w > 0 and request.demand_fps > 0]
        stages = [(j, n_vertices + offset) for offset, (j, _v) in enumerate(stages)]
        stage_vertices.append(stages)
        n_vertices += len(stages)

    mcmf = MinCostFlow(n_vertices)
    node_vertex = lambda index: 2 + index

    per_op_ms = 1.0 / (np.maximum(view.power, 1e-12) * 1e3)
    # A per-hop transport penalty a fraction of the median compute cost keeps
    # the cost scale consistent: flow prefers fast nodes first, nearby ones
    # among equals.
    hop_penalty = 0.1 * float(np.median(per_op_ms))

    # One consistent read of the budgets: against a shared store the live
    # array can move while the flow network is being built.
    remaining_vec = cluster.node_remaining_vector()
    for index in range(k):
        remaining = float(remaining_vec[index])
        if remaining > 0:
            mcmf.add_edge(node_vertex(index), 1, remaining, 0.0)

    supply_arcs: List[int] = []
    stage_node_arcs: List[List[Tuple[int, int]]] = []
    supplies: List[float] = []
    for i, request in enumerate(coerced):
        pipeline = request.instance.pipeline
        req = request.instance.request
        fps = request.demand_fps
        workloads = pipeline.workloads()
        n_modules = pipeline.n_modules
        hop_src = hops[endpoint_pos[view.index_of[req.source]]]
        hop_dst = hops[endpoint_pos[view.index_of[req.destination]]]
        supply = sum(fps * workloads[j] for j, _v in stage_vertices[i])
        supplies.append(supply)
        if supply <= 0:
            supply_arcs.append(-1)
            stage_node_arcs.append([])
            continue
        supply_arcs.append(mcmf.add_edge(0, pipeline_vertex[i], supply, 0.0))
        arcs_i: List[Tuple[int, int]] = []
        for j, stage_vertex in stage_vertices[i]:
            demand = fps * workloads[j]
            mcmf.add_edge(pipeline_vertex[i], stage_vertex, demand, 0.0)
            for v_index in range(k):
                if remaining_vec[v_index] <= 0:
                    continue
                hs, hd = int(hop_src[v_index]), int(hop_dst[v_index])
                if hs < 0 or hd < 0:
                    continue
                if hs > j or hd > n_modules - 1 - j:
                    continue
                cost = per_op_ms[v_index] + hop_penalty * (hs + hd)
                arc = mcmf.add_edge(stage_vertex, node_vertex(v_index),
                                    demand, cost)
                arcs_i.append((arc, v_index))
        stage_node_arcs.append(arcs_i)
    return mcmf, supply_arcs, stage_node_arcs, supplies


def _batch_score(items: Sequence[PlacementItem],
                 objective: Objective) -> Tuple[int, float]:
    """(admitted count, signed objective total) — larger is better for both."""
    admitted = [item for item in items if item.admitted]
    if objective is Objective.MIN_DELAY:
        total = -sum(item.mapping.delay_ms for item in admitted)
    else:
        total = sum(item.mapping.frame_rate_fps for item in admitted)
    return len(admitted), total


def place_flow(requests: Sequence[RequestLike],
               cluster: ClusterState, *,
               objective: Objective = Objective.MIN_DELAY,
               engine: str = "elpc-vec",
               demand_fps: float = 1.0,
               max_repair_rounds: int = DEFAULT_MAX_REPAIR_ROUNDS,
               **solver_kwargs) -> PlacementResult:
    """Jointly place a batch via min-cost max-flow + rounding.

    See the module docstring for the formulation.  The returned items are in
    input order; ``cluster`` ends in the state of the *winning* plan
    (flow-guided or the packing fallback — ``extras["used_fallback"]`` says
    which, ``extras["flow_routed_fraction"]`` how much of the total demand the
    fractional optimum managed to route).
    """
    coerced = [PlacementRequest.coerce(i, r, demand_fps=demand_fps)
               for i, r in enumerate(requests)]
    start = time.perf_counter()

    routed_fraction = [1.0] * len(coerced)
    unit_cost = [0.0] * len(coerced)
    total_supply = 0.0
    total_routed = 0.0
    if coerced:
        for request in coerced:
            if request.instance.network is not cluster.network:
                raise SpecificationError(
                    "placement request's network is not the cluster's "
                    "network: all requests in a placement batch must share "
                    "one TransportNetwork object")
        mcmf, supply_arcs, stage_node_arcs, supplies = _build_flow_network(
            coerced, cluster)
        total_supply = sum(supplies)
        if total_supply > 0:
            mcmf.solve(0, 1, max_flow=total_supply)
        for i in range(len(coerced)):
            if supply_arcs[i] < 0:
                continue
            routed = mcmf.flow_on(supply_arcs[i])
            total_routed += routed
            routed_fraction[i] = routed / supplies[i] if supplies[i] else 1.0
            if routed > _FLOW_EPS:
                cost_i = sum(mcmf.flow_on(arc) * mcmf.cost[arc]
                             for arc, _v in stage_node_arcs[i])
                unit_cost[i] = cost_i / routed
            else:
                unit_cost[i] = float("inf")

    # Rounding order: priority first (admission policy), then the requests the
    # fractional optimum routed most completely (they are the ones the joint
    # solution says fit), cheapest first among equals, input index as the
    # deterministic tie-break.
    order = sorted(range(len(coerced)),
                   key=lambda i: (-coerced[i].priority, -routed_fraction[i],
                                  unit_cost[i], i))

    before = cluster.snapshot()
    flow_items = _pack_in_order(
        coerced, cluster, order, objective=objective, engine=engine,
        max_repair_rounds=max_repair_rounds, **solver_kwargs)
    after_flow = cluster.snapshot()

    # Safety net: the flow-guided order must never do worse than plain
    # priority packing — re-run packing from the same starting ledger and keep
    # the better batch.
    cluster.restore(before)
    packed_items = _pack_in_order(
        coerced, cluster, _ordered_indices(coerced, "priority"),
        objective=objective, engine=engine,
        max_repair_rounds=max_repair_rounds, **solver_kwargs)
    used_fallback = _batch_score(packed_items, objective) > _batch_score(
        flow_items, objective)
    if used_fallback:
        items = packed_items
    else:
        cluster.restore(after_flow)
        items = flow_items

    return PlacementResult(
        placer="place-flow", objective=objective, engine=engine,
        items=items, cluster=cluster,
        wall_time_s=time.perf_counter() - start,
        extras={
            "used_fallback": used_fallback,
            "flow_routed_fraction": (total_routed / total_supply
                                     if total_supply > 0 else 1.0),
            "rounding_order": order,
        })
