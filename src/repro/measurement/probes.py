"""Synthetic active-measurement probes.

The paper assumes that "the bandwidth of a network transport path can be
measured using active traffic measurement technique based on a linear
regression model" and that module processing times can be profiled similarly.
Real WAN probing obviously cannot run inside this offline reproduction, so the
probe *generator* here synthesises the observations such a measurement
campaign would produce: given a link's (or node's) true parameters it emits
noisy timing samples for a sweep of message (or input) sizes.  The estimators
in :mod:`repro.measurement.bandwidth` / :mod:`repro.measurement.profiling`
then recover the parameters from those observations — the same code path a
deployment against real measurements would use (see DESIGN.md,
"Substitutions").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..exceptions import MeasurementError
from ..generators.random_state import SeedLike, rng_from_seed
from ..model.link import transfer_time_ms

__all__ = [
    "ProbeObservation",
    "default_probe_sizes",
    "probe_link",
    "probe_module_on_node",
]


@dataclass(frozen=True)
class ProbeObservation:
    """One timed probe: ``size_bytes`` transferred/processed in ``time_ms``."""

    size_bytes: float
    time_ms: float

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise MeasurementError("probe size must be non-negative")
        if self.time_ms < 0:
            raise MeasurementError("probe time must be non-negative")


def default_probe_sizes(*, n_sizes: int = 10, smallest_bytes: float = 10_000.0,
                        largest_bytes: float = 2_000_000.0) -> List[float]:
    """A geometric sweep of probe message sizes (small enough to finish quickly,
    large enough that the bandwidth term dominates the minimum link delay)."""
    if n_sizes < 2:
        raise MeasurementError("need at least two probe sizes")
    if not 0 < smallest_bytes < largest_bytes:
        raise MeasurementError("probe size bounds must satisfy 0 < smallest < largest")
    return list(np.geomspace(smallest_bytes, largest_bytes, num=n_sizes))


def probe_link(true_bandwidth_mbps: float, true_min_delay_ms: float, *,
               sizes_bytes: Optional[Sequence[float]] = None,
               repetitions: int = 3,
               noise_fraction: float = 0.05,
               seed: SeedLike = None) -> List[ProbeObservation]:
    """Synthesise active-probe observations for one link.

    Each probe of ``s`` bytes takes ``s/b + d`` milliseconds plus multiplicative
    Gaussian noise of relative magnitude ``noise_fraction`` (cross-traffic,
    host scheduling jitter).  ``repetitions`` probes are generated per size.
    """
    if repetitions < 1:
        raise MeasurementError("repetitions must be at least 1")
    if noise_fraction < 0:
        raise MeasurementError("noise_fraction must be non-negative")
    rng = rng_from_seed(seed)
    sizes = list(sizes_bytes) if sizes_bytes is not None else default_probe_sizes()
    observations: List[ProbeObservation] = []
    for size in sizes:
        ideal = transfer_time_ms(size, true_bandwidth_mbps, true_min_delay_ms)
        for _ in range(repetitions):
            noisy = ideal * float(1.0 + noise_fraction * rng.standard_normal())
            observations.append(ProbeObservation(size_bytes=float(size),
                                                 time_ms=max(noisy, 0.0)))
    return observations


def probe_module_on_node(true_complexity: float, true_power: float, *,
                         sizes_bytes: Optional[Sequence[float]] = None,
                         repetitions: int = 3,
                         noise_fraction: float = 0.05,
                         overhead_ms: float = 0.0,
                         seed: SeedLike = None) -> List[ProbeObservation]:
    """Synthesise module-execution timing samples on a node of known power.

    Each run over ``s`` input bytes takes ``c·s/(p·10³) + overhead`` ms plus
    multiplicative noise; the profiling estimator recovers ``c`` (and the
    fixed overhead) by linear regression on ``s``.
    """
    if repetitions < 1:
        raise MeasurementError("repetitions must be at least 1")
    if true_power <= 0:
        raise MeasurementError("node power must be positive")
    if noise_fraction < 0 or overhead_ms < 0:
        raise MeasurementError("noise_fraction and overhead_ms must be non-negative")
    rng = rng_from_seed(seed)
    sizes = list(sizes_bytes) if sizes_bytes is not None else default_probe_sizes()
    observations: List[ProbeObservation] = []
    for size in sizes:
        ideal = true_complexity * size / (true_power * 1e3) + overhead_ms
        for _ in range(repetitions):
            noisy = ideal * float(1.0 + noise_fraction * rng.standard_normal())
            observations.append(ProbeObservation(size_bytes=float(size),
                                                 time_ms=max(noisy, 0.0)))
    return observations
