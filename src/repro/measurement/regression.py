"""Ordinary-least-squares and robust linear regression used by the estimators.

The paper points to an "active traffic measurement technique based on a linear
regression model" for estimating link bandwidth and minimum link delay
([Wu & Rao 2005], reference [14]) and to analogous profiling for module
processing times ([13]).  Those measurement papers are out of the reproduced
paper's scope, but the estimators need a fitting primitive; this module
provides one with no dependency beyond numpy:

* :func:`fit_line` — ordinary least squares ``y = intercept + slope * x`` with
  an R² quality measure,
* :func:`fit_line_robust` — a Theil–Sen style median-of-slopes fit that
  tolerates a minority of outliers (bursty cross-traffic during a probe).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..exceptions import MeasurementError

__all__ = ["LinearFit", "fit_line", "fit_line_robust"]


@dataclass(frozen=True)
class LinearFit:
    """Result of a linear fit ``y ≈ intercept + slope · x``.

    ``r_squared`` is the coefficient of determination of the fit on the data
    it was computed from (1.0 for a perfect fit; 0.0 when the fit explains
    nothing beyond the mean).
    """

    slope: float
    intercept: float
    r_squared: float
    n_samples: int

    def predict(self, x: float) -> float:
        """Predicted ``y`` at ``x``."""
        return self.intercept + self.slope * float(x)


def _validate(x: Sequence[float], y: Sequence[float]) -> tuple:
    xs = np.asarray(x, dtype=float)
    ys = np.asarray(y, dtype=float)
    if xs.shape != ys.shape or xs.ndim != 1:
        raise MeasurementError("x and y must be one-dimensional and equally long")
    if xs.size < 2:
        raise MeasurementError("need at least two observations to fit a line")
    if np.allclose(xs, xs[0]):
        raise MeasurementError("all x values are identical; the slope is undefined")
    return xs, ys


def _r_squared(xs: np.ndarray, ys: np.ndarray, slope: float, intercept: float) -> float:
    predicted = intercept + slope * xs
    ss_res = float(np.sum((ys - predicted) ** 2))
    ss_tot = float(np.sum((ys - ys.mean()) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return max(0.0, 1.0 - ss_res / ss_tot)


def fit_line(x: Sequence[float], y: Sequence[float]) -> LinearFit:
    """Ordinary-least-squares fit of ``y`` on ``x``."""
    xs, ys = _validate(x, y)
    x_mean, y_mean = xs.mean(), ys.mean()
    cov = float(np.sum((xs - x_mean) * (ys - y_mean)))
    var = float(np.sum((xs - x_mean) ** 2))
    slope = cov / var
    intercept = y_mean - slope * x_mean
    return LinearFit(slope=slope, intercept=intercept,
                     r_squared=_r_squared(xs, ys, slope, intercept),
                     n_samples=int(xs.size))


def fit_line_robust(x: Sequence[float], y: Sequence[float], *,
                    max_pairs: int = 10_000) -> LinearFit:
    """Theil–Sen style robust fit: median pairwise slope, median-based intercept.

    For more than ``max_pairs`` point pairs a deterministic subsample of pairs
    is used (every k-th pair), keeping the estimator O(``max_pairs``) while
    remaining reproducible.
    """
    xs, ys = _validate(x, y)
    n = xs.size
    slopes = []
    pair_count = n * (n - 1) // 2
    stride = max(1, pair_count // max_pairs)
    idx = 0
    for i in range(n - 1):
        for j in range(i + 1, n):
            if idx % stride == 0 and xs[j] != xs[i]:
                slopes.append((ys[j] - ys[i]) / (xs[j] - xs[i]))
            idx += 1
    if not slopes:
        raise MeasurementError("could not form any slope estimate (degenerate x values)")
    slope = float(np.median(slopes))
    intercept = float(np.median(ys - slope * xs))
    return LinearFit(slope=slope, intercept=intercept,
                     r_squared=_r_squared(xs, ys, slope, intercept),
                     n_samples=int(n))
