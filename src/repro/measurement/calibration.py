"""End-to-end calibration: from synthetic measurements to an estimated network.

This ties the measurement substrate together: given a *true* transport network
(which in a real deployment would be the physical WAN), a calibration campaign
probes every link and every node, fits the cost-model parameters, and returns
an *estimated* network plus error statistics.  Mapping a pipeline on the
estimated network and evaluating it on the true one quantifies how measurement
noise propagates into mapping quality — the concern raised in the paper's
conclusions about time-varying and imperfectly known resources.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..exceptions import MeasurementError
from ..generators.random_state import SeedLike, rng_from_seed
from ..model.link import CommunicationLink
from ..model.network import TransportNetwork
from ..model.node import ComputingNode
from .bandwidth import estimate_link
from .probes import probe_link, probe_module_on_node
from .profiling import estimate_node_power

__all__ = ["CalibrationReport", "calibrate_network"]

#: Complexity of the synthetic reference module used to benchmark node power.
_REFERENCE_COMPLEXITY = 50.0


@dataclass(frozen=True)
class CalibrationReport:
    """Result of a calibration campaign.

    Attributes
    ----------
    estimated_network:
        Network whose node powers / link bandwidths / link delays come from
        the fitted estimates.
    bandwidth_errors:
        Per-link relative bandwidth estimation error, keyed by (u, v).
    power_errors:
        Per-node relative processing-power estimation error.
    """

    estimated_network: TransportNetwork
    bandwidth_errors: Dict[Tuple[int, int], float]
    power_errors: Dict[int, float]

    @property
    def max_bandwidth_error(self) -> float:
        """Worst per-link relative bandwidth error (0 when there are no links)."""
        return max(self.bandwidth_errors.values(), default=0.0)

    @property
    def max_power_error(self) -> float:
        """Worst per-node relative power error (0 when there are no nodes)."""
        return max(self.power_errors.values(), default=0.0)

    @property
    def mean_bandwidth_error(self) -> float:
        """Mean per-link relative bandwidth error."""
        if not self.bandwidth_errors:
            return 0.0
        return float(np.mean(list(self.bandwidth_errors.values())))

    @property
    def mean_power_error(self) -> float:
        """Mean per-node relative power error."""
        if not self.power_errors:
            return 0.0
        return float(np.mean(list(self.power_errors.values())))


def calibrate_network(true_network: TransportNetwork, *,
                      noise_fraction: float = 0.05,
                      repetitions: int = 3,
                      robust: bool = False,
                      seed: SeedLike = None) -> CalibrationReport:
    """Probe every node and link of ``true_network`` and build an estimated copy.

    Parameters
    ----------
    noise_fraction:
        Relative measurement noise injected into every synthetic probe.
    repetitions:
        Probes per message size (per link) / per input size (per node).
    robust:
        Use the robust Theil–Sen regression instead of ordinary least squares.
    seed:
        Seed for the synthetic noise.
    """
    if noise_fraction < 0:
        raise MeasurementError("noise_fraction must be non-negative")
    rng = rng_from_seed(seed)

    nodes: List[ComputingNode] = []
    power_errors: Dict[int, float] = {}
    for node in true_network.nodes():
        observations = probe_module_on_node(
            _REFERENCE_COMPLEXITY, node.processing_power,
            repetitions=repetitions, noise_fraction=noise_fraction, seed=rng)
        estimate = estimate_node_power(observations, _REFERENCE_COMPLEXITY)
        power_errors[node.node_id] = estimate.relative_error(node.processing_power)
        nodes.append(ComputingNode(node_id=node.node_id,
                                   processing_power=estimate.processing_power,
                                   ip_address=node.ip_address, name=node.name))

    links: List[CommunicationLink] = []
    bandwidth_errors: Dict[Tuple[int, int], float] = {}
    for link in true_network.links():
        observations = probe_link(link.bandwidth_mbps, link.min_delay_ms,
                                  repetitions=repetitions,
                                  noise_fraction=noise_fraction, seed=rng)
        estimate = estimate_link(observations, robust=robust)
        bandwidth_errors[(link.start_node, link.end_node)] = (
            estimate.relative_bandwidth_error(link.bandwidth_mbps))
        links.append(CommunicationLink(
            start_node=link.start_node, end_node=link.end_node,
            bandwidth_mbps=estimate.bandwidth_mbps,
            min_delay_ms=estimate.min_delay_ms,
            link_id=link.link_id))

    estimated = TransportNetwork(nodes=nodes, links=links,
                                 name=f"{true_network.name or 'network'}-estimated")
    return CalibrationReport(estimated_network=estimated,
                             bandwidth_errors=bandwidth_errors,
                             power_errors=power_errors)
