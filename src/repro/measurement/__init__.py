"""Measurement substrate: synthetic active probing and cost-model estimation.

Stands in for the real-network measurement techniques the paper references
([13], [14]) — see DESIGN.md, "Substitutions".  The estimation code path is
exactly what a deployment against real probes would use; only the probe
*generator* is synthetic.
"""

from .bandwidth import (
    LinkEstimate,
    bandwidth_mbps_to_slope,
    estimate_link,
    slope_to_bandwidth_mbps,
)
from .calibration import CalibrationReport, calibrate_network
from .probes import (
    ProbeObservation,
    default_probe_sizes,
    probe_link,
    probe_module_on_node,
)
from .profiling import (
    ComplexityEstimate,
    NodePowerEstimate,
    estimate_complexity,
    estimate_node_power,
)
from .regression import LinearFit, fit_line, fit_line_robust

__all__ = [
    "ProbeObservation", "default_probe_sizes", "probe_link", "probe_module_on_node",
    "LinearFit", "fit_line", "fit_line_robust",
    "LinkEstimate", "estimate_link", "slope_to_bandwidth_mbps", "bandwidth_mbps_to_slope",
    "ComplexityEstimate", "NodePowerEstimate", "estimate_complexity", "estimate_node_power",
    "CalibrationReport", "calibrate_network",
]
