"""Module-complexity and node-power estimation from execution-time samples.

The computing cost model is :math:`T(m) = c\\,m / (p \\cdot 10^3)` milliseconds
for ``m`` input bytes on a node of power ``p``.  Two estimation directions are
supported, mirroring how a deployment would calibrate itself:

* :func:`estimate_complexity` — the node's power is known (e.g. from a
  micro-benchmark); regressing observed run times on input sizes yields the
  module's complexity (slope × p × 10³) and any fixed per-invocation overhead
  (intercept).
* :func:`estimate_node_power` — the module's complexity is known (calibrated
  once on a reference node); timing it on a new node yields that node's
  relative processing power.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..exceptions import MeasurementError
from .probes import ProbeObservation
from .regression import LinearFit, fit_line, fit_line_robust

__all__ = ["ComplexityEstimate", "NodePowerEstimate",
           "estimate_complexity", "estimate_node_power"]


@dataclass(frozen=True)
class ComplexityEstimate:
    """Estimated module complexity (ops/byte) and per-invocation overhead (ms)."""

    complexity: float
    overhead_ms: float
    fit: LinearFit

    def relative_error(self, true_complexity: float) -> float:
        """Relative error against a known ground-truth complexity."""
        if true_complexity <= 0:
            raise MeasurementError("true complexity must be positive")
        return abs(self.complexity - true_complexity) / true_complexity


@dataclass(frozen=True)
class NodePowerEstimate:
    """Estimated node processing power (millions of operations per second)."""

    processing_power: float
    n_samples: int
    dispersion: float

    def relative_error(self, true_power: float) -> float:
        """Relative error against a known ground-truth power."""
        if true_power <= 0:
            raise MeasurementError("true power must be positive")
        return abs(self.processing_power - true_power) / true_power


def estimate_complexity(observations: Sequence[ProbeObservation],
                        node_power: float, *, robust: bool = False) -> ComplexityEstimate:
    """Estimate a module's complexity from run times on a node of known power.

    The regression slope is ``c / (p·10³)`` ms per byte, so
    ``c = slope · p · 10³``; the intercept is the fixed overhead.
    """
    if node_power <= 0:
        raise MeasurementError("node power must be positive")
    if len(observations) < 2:
        raise MeasurementError("need at least two timing observations")
    sizes = [o.size_bytes for o in observations]
    times = [o.time_ms for o in observations]
    fit = fit_line_robust(sizes, times) if robust else fit_line(sizes, times)
    if fit.slope <= 0:
        raise MeasurementError(
            "fitted slope is non-positive; the samples do not grow with input size")
    return ComplexityEstimate(complexity=fit.slope * node_power * 1e3,
                              overhead_ms=max(fit.intercept, 0.0),
                              fit=fit)


def estimate_node_power(observations: Sequence[ProbeObservation],
                        module_complexity: float) -> NodePowerEstimate:
    """Estimate a node's power from run times of a module of known complexity.

    Each observation yields an independent estimate
    ``p = c · m / (T · 10³)``; the returned power is their median and
    ``dispersion`` is the interquartile range divided by the median (a robust
    spread measure — large values indicate the node's availability fluctuated
    during profiling, the situation the paper's future-work section worries
    about).
    """
    if module_complexity <= 0:
        raise MeasurementError("module complexity must be positive")
    estimates = []
    for obs in observations:
        if obs.time_ms <= 0 or obs.size_bytes <= 0:
            continue
        estimates.append(module_complexity * obs.size_bytes / (obs.time_ms * 1e3))
    if not estimates:
        raise MeasurementError("no usable observations (need positive sizes and times)")
    arr = np.asarray(estimates, dtype=float)
    median = float(np.median(arr))
    q75, q25 = np.percentile(arr, [75, 25])
    dispersion = float((q75 - q25) / median) if median > 0 else float("inf")
    return NodePowerEstimate(processing_power=median,
                             n_samples=len(estimates),
                             dispersion=dispersion)
