"""Link bandwidth / minimum-link-delay estimation from probe observations.

Inverts the transport cost model :math:`T(m) = m/b + d`: a linear regression
of observed transfer times on message sizes yields a slope of :math:`1/b`
(converted from our byte/ms units) and an intercept of :math:`d`.  This is the
estimation technique the paper cites from [14] for real deployments; here it
runs on synthetic probes from :mod:`repro.measurement.probes`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..exceptions import MeasurementError
from ..model.link import BITS_PER_BYTE, MEGABIT
from .probes import ProbeObservation
from .regression import LinearFit, fit_line, fit_line_robust

__all__ = ["LinkEstimate", "estimate_link", "slope_to_bandwidth_mbps",
           "bandwidth_mbps_to_slope"]

#: Milliseconds per byte for a 1 Mbit/s link: 8 bits / 1e6 bit/s * 1e3 ms/s.
_MS_PER_BYTE_AT_1MBPS = BITS_PER_BYTE / MEGABIT * 1e3


def slope_to_bandwidth_mbps(slope_ms_per_byte: float) -> float:
    """Convert a fitted slope (ms per byte) into a bandwidth in Mbit/s."""
    if slope_ms_per_byte <= 0:
        raise MeasurementError(
            "fitted slope must be positive to correspond to a finite bandwidth")
    return _MS_PER_BYTE_AT_1MBPS / slope_ms_per_byte


def bandwidth_mbps_to_slope(bandwidth_mbps: float) -> float:
    """Convert a bandwidth in Mbit/s into the transfer-time slope (ms per byte)."""
    if bandwidth_mbps <= 0:
        raise MeasurementError("bandwidth must be positive")
    return _MS_PER_BYTE_AT_1MBPS / bandwidth_mbps


@dataclass(frozen=True)
class LinkEstimate:
    """Estimated link parameters and the quality of the underlying fit.

    Attributes
    ----------
    bandwidth_mbps:
        Estimated bandwidth (from the regression slope).
    min_delay_ms:
        Estimated minimum link delay (from the regression intercept, clipped
        at zero — a slightly negative intercept is measurement noise).
    fit:
        The underlying :class:`~repro.measurement.regression.LinearFit`.
    """

    bandwidth_mbps: float
    min_delay_ms: float
    fit: LinearFit

    def relative_bandwidth_error(self, true_bandwidth_mbps: float) -> float:
        """Relative error against a known ground-truth bandwidth."""
        if true_bandwidth_mbps <= 0:
            raise MeasurementError("true bandwidth must be positive")
        return abs(self.bandwidth_mbps - true_bandwidth_mbps) / true_bandwidth_mbps


def estimate_link(observations: Sequence[ProbeObservation], *,
                  robust: bool = False) -> LinkEstimate:
    """Estimate a link's bandwidth and MLD from timed probe observations.

    Parameters
    ----------
    observations:
        At least two probes of distinct sizes.
    robust:
        Use the Theil–Sen robust fit instead of ordinary least squares
        (recommended when a minority of probes hit transient congestion).
    """
    if len(observations) < 2:
        raise MeasurementError("need at least two probe observations")
    sizes = [o.size_bytes for o in observations]
    times = [o.time_ms for o in observations]
    fit = fit_line_robust(sizes, times) if robust else fit_line(sizes, times)
    bandwidth = slope_to_bandwidth_mbps(fit.slope)
    return LinkEstimate(bandwidth_mbps=bandwidth,
                        min_delay_ms=max(fit.intercept, 0.0),
                        fit=fit)
