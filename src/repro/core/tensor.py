"""Tensor batch engine: the ELPC dynamic programs for *many* pipelines over
one shared network, solved in a single pass of stacked array operations.

The paper's experiment campaigns (delay / frame-rate curves versus pipeline
length and network size, the Fig. 5 / Fig. 6 sweeps) repeatedly solve many
pipelines against one topology.  After PR 1 each of those solves still ran its
DP column-by-column per pipeline through :mod:`repro.core.vectorized`.  The
functions here stack the DP columns of ``B`` pipelines sharing one
:meth:`TransportNetwork.dense_view` into ``(B, k)`` state arrays and advance
every pipeline's DP one module stage at a time:

* :func:`elpc_min_delay_many` — exact batched min-delay recurrence,
* :func:`elpc_max_frame_rate_many` — the batched min-max frame-rate heuristic
  with the per-pipeline visited-path guard kept as a ``(B, k, k)`` mask.

Conceptually each stage is the ``(B, k, k)`` candidate tensor
``cand[b, u, v] = T_b^{j-1}(u) ⊕ cost_b(u, v)`` reduced over ``u``.
Materialising that tensor, however, is memory-bound and only ~2× faster than
the loop; the implementation instead evaluates the candidates on the view's
CSR edge layout (:attr:`DenseNetworkView.edge_u` et al.) — :math:`O(B |E|)`
entries per stage, reduced per destination node with
``np.minimum.reduceat`` — which is what delivers the ≥5× batched-throughput
win asserted in ``benchmarks/test_bench_tensor_batch.py``.  The best
predecessor (lowest node index on ties, exactly like ``np.argmin`` in the
vectorized engine) is recovered by a second segment reduction over the edge
source indices of the entries equal to the segment minimum.

Every floating-point operation is performed element-wise in the same order as
the scalar and vectorized solvers (``(T_prev + compute) + trans`` for the
delay DP, ``max(max(T_prev, compute), trans)`` for the frame-rate DP, with
the transport term ``(m · 8 / b) · 10³ + d``), so the produced values, DP
tables and backtracked assignments are **bit-identical** to both — the
differential suite in ``tests/test_tensor_equivalence.py`` extends the PR-1
harness verbatim.

Batch semantics: infeasible items do not abort the batch.  The ``*_many``
functions return one entry per input — a :class:`PipelineMapping` or the
:class:`InfeasibleMappingError` that a scalar solve of the same instance
would have raised — and :func:`repro.core.batch.solve_many` dispatches
same-network groups of a batch through this path when the ``"elpc-tensor"``
solver is requested.  The single-instance wrappers
:func:`elpc_min_delay_tensor` / :func:`elpc_max_frame_rate_tensor` (what the
registry serves under ``"elpc-tensor"``) run a batch of one and raise the
error entry, giving the uniform solver signature.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Union

import numpy as np

from ..exceptions import InfeasibleMappingError, ReproError
from ..model.link import BITS_PER_BYTE
from ..model.network import DenseNetworkView, EndToEndRequest, TransportNetwork
from ..model.pipeline import Pipeline
from ..model.validation import check_delay_instance, check_framerate_instance
from .mapping import Objective, PipelineMapping, mapping_from_assignment
from .vectorized import _as_dp_table, _backtrack

__all__ = [
    "elpc_min_delay_many",
    "elpc_max_frame_rate_many",
    "elpc_min_delay_tensor",
    "elpc_max_frame_rate_tensor",
]

#: One entry of a batched solve: the mapping, or the error a scalar solve of
#: the same instance would have raised (infeasibility, or a specification
#: error such as an unknown endpoint node).
BatchEntry = Union[PipelineMapping, ReproError]


def _broadcast_requests(requests: Union[EndToEndRequest, Sequence[EndToEndRequest]],
                        count: int) -> List[EndToEndRequest]:
    if isinstance(requests, EndToEndRequest):
        return [requests] * count
    requests = list(requests)
    if len(requests) != count:
        from ..exceptions import SpecificationError

        raise SpecificationError(
            f"{count} pipelines but {len(requests)} requests; pass one request "
            "per pipeline or a single shared request")
    return requests


def _batched_feasibility(pipelines: Sequence[Pipeline],
                         network: TransportNetwork,
                         requests: Sequence[EndToEndRequest],
                         results: List[Optional[BatchEntry]],
                         *, framerate: bool,
                         view: Optional[DenseNetworkView] = None) -> List[int]:
    """Run the per-instance feasibility checks with one batched BFS.

    Fills ``results`` with per-item error entries for the failing items —
    :class:`InfeasibleMappingError` for infeasible instances,
    :class:`~repro.exceptions.SpecificationError` for malformed ones (unknown
    endpoint nodes) — and returns the indices of the surviving ones: one
    pathological item must not abort the batch, the same policy as the looped
    ``solve_many`` path.  The verdicts and messages are produced by the same
    :func:`check_delay_instance` / :func:`check_framerate_instance` functions
    the scalar solvers call — only the hop distances are precomputed, one BFS
    level per array pass for all distinct sources at once (items with unknown
    endpoints fall back to the checks' own lookups, which raise the scalar
    solvers' exact errors).
    """
    if view is None:
        view = network.dense_view()
    sources = sorted({r.source for r in requests
                      if r.source in view.index_of
                      and r.destination in view.index_of})
    levels = view.hop_levels([view.index_of[s] for s in sources])
    level_of = {s: levels[i] for i, s in enumerate(sources)}
    check = check_framerate_instance if framerate else check_delay_instance
    alive: List[int] = []
    for i, (pipeline, request) in enumerate(zip(pipelines, requests)):
        hop_row = level_of.get(request.source)
        hops = None
        if hop_row is not None and request.destination in view.index_of:
            hops = int(hop_row[view.index_of[request.destination]])
        try:
            check(pipeline, network, request, hops=hops).raise_if_infeasible(
                source=request.source, destination=request.destination)
        except ReproError as exc:
            results[i] = exc
        else:
            alive.append(i)
    return alive


def _stage_arrays(pipelines: Sequence[Pipeline], alive: Sequence[int],
                  n_max: int) -> tuple:
    """(n_max, A) workload and message-size arrays, zero-padded past each end."""
    A = len(alive)
    workload = np.zeros((n_max, A))
    message = np.zeros((n_max, A))
    for a, i in enumerate(alive):
        for j, module in enumerate(pipelines[i].modules):
            workload[j, a] = module.complexity * module.input_bytes
            message[j, a] = module.input_bytes
    return workload, message


def _segment_min(values: np.ndarray, view: DenseNetworkView,
                 nonempty_starts: np.ndarray, nonempty_nodes: np.ndarray,
                 k: int) -> tuple:
    """Per-destination-node minimum and lowest-u argmin over edge values.

    ``values`` is ``(A, 2|E|)`` of candidate costs in CSR order; returns
    ``(best, best_u)`` of shape ``(A, k)`` where ``best`` is ``inf`` (and
    ``best_u`` is 0, matching ``np.argmin`` over an all-``inf`` column) for
    nodes with no incoming edge or no finite candidate.
    """
    A = values.shape[0]
    best = np.full((A, k), np.inf)
    best[:, nonempty_nodes] = np.minimum.reduceat(values, nonempty_starts, axis=1)
    # Lowest edge-source index attaining the minimum: replace non-minimal
    # entries by the sentinel k and take the segment minimum of the indices.
    is_min = values == np.take(best, view.edge_v, axis=1)
    u_or_k = np.where(is_min, view.edge_u[None, :], k)
    best_u = np.zeros((A, k), dtype=np.int64)
    best_u[:, nonempty_nodes] = np.minimum.reduceat(u_or_k, nonempty_starts, axis=1)
    # All-inf segments compare inf == inf and pick the lowest edge u; the
    # vectorized engine's argmin over a full all-inf column yields 0 instead.
    # The value is inf either way, so the index never reaches a mapping, but
    # normalise for bit-identical predecessor arrays.
    best_u[~np.isfinite(best)] = 0
    return best, best_u


def _edge_transport_ms(view: DenseNetworkView, message_bytes: np.ndarray, *,
                       include_link_delay: bool) -> np.ndarray:
    """``(A, 2|E|)`` per-directed-edge transport times for per-item messages.

    Mirrors :meth:`DenseNetworkView.transport_matrix_ms` (and therefore
    :func:`repro.model.link.transfer_time_ms`) element-wise: the gathered
    edge entries go through exactly the operations the dense matrix entries
    would, so the values are bit-identical.
    """
    seconds = (message_bytes[:, None] * BITS_PER_BYTE
               / view.edge_bandwidth_bits_per_s[None, :])
    times = seconds * 1e3
    if include_link_delay:
        times = times + view.edge_link_delay[None, :]
    return times


def elpc_min_delay_many(pipelines: Sequence[Pipeline],
                        network: TransportNetwork,
                        requests: Union[EndToEndRequest, Sequence[EndToEndRequest]],
                        *, include_link_delay: bool = True,
                        keep_table: bool = False,
                        view: Optional[DenseNetworkView] = None) -> List[BatchEntry]:
    """Batched exact minimum-delay mappings of many pipelines over one network.

    Solves the same problem as ``B`` calls of
    :func:`repro.core.vectorized.elpc_min_delay_vec` — same optima, same
    feasibility verdicts, same tie-breaking, bit-identical DP tables — but
    advances all ``B`` dynamic programs together, one module stage per pass of
    CSR edge-array operations.  Pipelines of different lengths are supported;
    an item stops participating once its last column is filled.

    Parameters
    ----------
    pipelines:
        The pipelines to map.
    network:
        The shared transport network.
    requests:
        One :class:`EndToEndRequest` per pipeline, or a single request shared
        by all of them.
    include_link_delay, keep_table:
        As in the scalar and vectorized solvers; ``keep_table`` attaches each
        item's :class:`~repro.core.dp_table.DPTable` under
        ``mapping.extras["dp_table"]``.
    view:
        Optional dense view to advance the DP over in place of
        ``network.dense_view()`` — the solve-from-attached-view entry point
        for callers holding a view re-wrapped from a shared-memory block
        (:func:`repro.model.network.attach_shared_view`): the solve is
        zero-copy, and since the arrays are byte-identical to the exporting
        process's view, so are the results.  (The parallel runtime itself
        reaches the same effect by installing the attached view on a rebuilt
        network via :meth:`TransportNetwork.from_dense_view`, so plain
        ``solve_many`` batches need no extra argument.)  ``view`` must
        describe ``network``'s topology.

    Returns
    -------
    list
        One entry per pipeline, in input order: the
        :class:`~repro.core.mapping.PipelineMapping`, or the
        :class:`~repro.exceptions.ReproError` a scalar solve of that instance
        would have raised (:class:`InfeasibleMappingError` for infeasible
        items, ``SpecificationError`` for malformed ones such as unknown
        endpoint nodes).  Nothing is raised per item — one pathological
        instance must not abort the batch.
    """
    start = time.perf_counter()
    pipelines = list(pipelines)
    B = len(pipelines)
    requests = _broadcast_requests(requests, B)
    results: List[Optional[BatchEntry]] = [None] * B
    if B == 0:
        return []
    alive = _batched_feasibility(pipelines, network, requests, results,
                                 framerate=False, view=view)
    if not alive:
        return results  # type: ignore[return-value]

    if view is None:
        view = network.dense_view()
    k = view.n_nodes
    A = len(alive)
    n_arr = np.array([pipelines[i].n_modules for i in alive])
    n_max = int(n_arr.max())
    src = np.array([view.index_of[requests[i].source] for i in alive])
    dst = np.array([view.index_of[requests[i].destination] for i in alive])
    workload, message = _stage_arrays(pipelines, alive, n_max)
    power_ms = view.power * 1e3
    rows = np.arange(k)

    values = np.full((A, n_max, k), np.inf)
    pred = np.full((A, n_max, k), -1, dtype=np.int64)
    same = np.zeros((A, n_max, k), dtype=bool)
    values[np.arange(A), 0, src] = 0.0

    # Scratch buffers reused across stages: one stage is ~12 array passes over
    # (A, 2|E|) / (A, k) operands, so recycling the storage (and taking the
    # slice fast path while every pipeline is still running) removes a third
    # of the batched DP's wall time without touching any arithmetic.
    #
    # The per-node minimum runs over a padded dense layout instead of CSR
    # segment reductions: edge costs scatter into an (A, k, max_deg) tensor
    # (inf-padded, slots ordered by ascending u inside each node), whose
    # contiguous min/argmin over the last axis is both faster than
    # np.minimum.reduceat on small segments and preserves the lowest-u
    # tie-break (np.argmin keeps the first minimal slot).
    E2 = view.n_directed_edges
    counts = np.diff(view.edge_indptr)
    max_deg = int(counts.max()) if E2 else 0
    slot_within = np.arange(E2) - np.repeat(view.edge_indptr[:-1], counts)
    flat_slot = view.edge_v * max_deg + slot_within
    slot_to_u_flat = np.zeros(k * max(max_deg, 1), dtype=np.intp)
    slot_to_u_flat[flat_slot] = view.edge_u
    row_base = (rows * max_deg).astype(np.intp)
    buf_cost = np.empty((A, E2))
    buf_gather = np.empty((A, E2))
    # Padding slots are written once and never touched again: every stage's
    # scatter overwrites exactly the real-edge slots, so the inf padding (and
    # therefore the min/argmin semantics) persists across stages for free.
    buf_pad = np.full((A, k * max(max_deg, 1)), np.inf)
    buf_compute = np.empty((A, k))
    buf_best = np.empty((A, k))
    buf_arg = np.empty((A, k), dtype=np.intp)
    buf_best_u = np.empty((A, k), dtype=np.intp)
    buf_take_cross = np.empty((A, k), dtype=bool)
    edge_u_i = view.edge_u
    edge_v_i = view.edge_v
    bw_bits_e = view.edge_bandwidth_bits_per_s
    delay_e = view.edge_link_delay
    n_min = int(n_arr.min())

    with np.errstate(divide="ignore", invalid="ignore"):
        for j in range(1, n_max):
            if j < n_min:  # every pipeline still running: pure slice paths
                act = None
                A_j = A
                prev = values[:, j - 1]
                stage_workload = workload[j]
                stage_message = message[j]
            else:
                act = np.flatnonzero(n_arr > j)
                A_j = act.size
                if A_j == 0:
                    break
                prev = values[act, j - 1]
                stage_workload = workload[j][act]
                stage_message = message[j][act]
            cost = buf_cost[:A_j]
            gather = buf_gather[:A_j]
            pad = buf_pad[:A_j]
            compute = buf_compute[:A_j]
            cross_best = buf_best[:A_j]
            arg = buf_arg[:A_j]
            best_u = buf_best_u[:A_j]
            take_cross = buf_take_cross[:A_j]
            np.divide(stage_workload[:, None], power_ms[None, :], out=compute)
            # Transport term (m·8/b)·10³ + d on the directed-edge list, the
            # exact operation chain of transport_matrix_ms / transfer_time_ms.
            msg8 = stage_message * BITS_PER_BYTE
            np.divide(msg8[:, None], bw_bits_e[None, :], out=cost)
            np.multiply(cost, 1e3, out=cost)
            if include_link_delay:
                np.add(cost, delay_e[None, :], out=cost)
            # Sub-case (ii) on edges: (T_prev(u) + compute(v)) + trans(u, v),
            # summed in the scalar solver's order so values match bit for bit.
            prev.take(edge_u_i, axis=1, out=gather)
            np.add(gather, compute.take(edge_v_i, axis=1), out=gather)
            np.add(gather, cost, out=cost)
            if max_deg:
                pad[:, flat_slot] = cost
                pad3 = pad.reshape(A_j, k, max_deg)
                # Slots are ordered by ascending u inside each node, so the
                # first minimal slot is the lowest predecessor index —
                # np.argmin's tie-break in the vectorized engine.  The minimum
                # itself is gathered back from the winning slot (cheaper than
                # a second 9-element-axis reduction).
                np.argmin(pad3, axis=2, out=arg)
                np.add(arg, row_base[None, :], out=arg)
                slot_to_u_flat.take(arg, out=best_u)
                cross_best = np.take_along_axis(pad, arg, axis=1)
            else:  # edgeless network: only same-node transitions exist
                cross_best.fill(np.inf)
                best_u.fill(0)
            # Sub-case (i): stay on the node running module j-1.  Strict "<"
            # mirrors DPTable.relax, so ties keep the same-node transition.
            # The column is written in place: same-node result first, then the
            # cross-link result where it strictly won (the selection
            # np.where(take_cross, cross_best, same_cand) would make).
            col = values[:, j] if act is None else np.empty((A_j, k))
            np.add(prev, compute, out=col)
            np.less(cross_best, col, out=take_cross)
            np.copyto(col, cross_best, where=take_cross)
            pcol = pred[:, j] if act is None else np.empty((A_j, k),
                                                           dtype=np.int64)
            pcol[:] = rows[None, :]
            np.copyto(pcol, best_u, where=take_cross)
            scol = same[:, j] if act is None else np.empty((A_j, k),
                                                           dtype=bool)
            np.invert(take_cross, out=scol)
            if act is not None:
                values[act, j] = col
                pred[act, j] = pcol
                same[act, j] = scol

    # Unreachable cells (inf value) carry pred = -1 / same = False in the
    # scalar and vectorized tables; normalising once after the sweep replaces
    # an isfinite pass per stage.  Cells beyond an item's own length are
    # untouched inf/-1/False padding, so the same mask covers them too.
    reachable = np.isfinite(values)
    pred[~reachable] = -1
    same[~reachable] = False
    finite_cells = reachable.sum(axis=(1, 2))

    dp_elapsed = time.perf_counter() - start
    per_item_runtime = dp_elapsed / A
    for a, i in enumerate(alive):
        n = int(n_arr[a])
        best = float(values[a, n - 1, dst[a]])
        if not np.isfinite(best):
            results[i] = InfeasibleMappingError(
                "ELPC-tensor (min delay) found no feasible mapping reaching "
                "the destination",
                source=requests[i].source, destination=requests[i].destination,
                n_modules=n)
            continue
        assignment = _backtrack(view, pred[a, :n], int(dst[a]))
        mapping = mapping_from_assignment(
            pipelines[i], network, assignment,
            objective=Objective.MIN_DELAY, algorithm="elpc-tensor",
            runtime_s=per_item_runtime, allow_reuse=True)
        extras = {
            "dp_value_ms": best,
            "dp_finite_cells": int(finite_cells[a]),
            "include_link_delay": include_link_delay,
            "vectorized": True,
            "tensor_batch": B,
        }
        if keep_table:
            extras["dp_table"] = _as_dp_table(view, values[a, :n], pred[a, :n],
                                              same[a, :n])
        mapping.extras.update(extras)
        results[i] = mapping
    return results  # type: ignore[return-value]


def elpc_max_frame_rate_many(pipelines: Sequence[Pipeline],
                             network: TransportNetwork,
                             requests: Union[EndToEndRequest, Sequence[EndToEndRequest]],
                             *, include_link_delay: bool = True,
                             keep_table: bool = False,
                             view: Optional[DenseNetworkView] = None) -> List[BatchEntry]:
    """Batched maximum-frame-rate heuristic for many pipelines over one network.

    The batched counterpart of
    :func:`repro.core.vectorized.elpc_max_frame_rate_vec`: the min-max column
    update runs on the CSR edge layout, the per-pipeline visited-path guard is
    a ``(B, k, k)`` boolean tensor gathered along each stage's chosen
    predecessors, and the destination-as-intermediate exclusion is applied per
    item (pipelines of different lengths reach their last column at different
    stages).  Values, feasibility outcomes and backtracked assignments are
    bit-identical to the scalar and vectorized heuristics.

    See :func:`elpc_min_delay_many` for parameters and batch semantics.
    """
    start = time.perf_counter()
    pipelines = list(pipelines)
    B = len(pipelines)
    requests = _broadcast_requests(requests, B)
    results: List[Optional[BatchEntry]] = [None] * B
    if B == 0:
        return []
    alive = _batched_feasibility(pipelines, network, requests, results,
                                 framerate=True, view=view)
    if not alive:
        return results  # type: ignore[return-value]

    if view is None:
        view = network.dense_view()
    k = view.n_nodes
    A = len(alive)
    n_arr = np.array([pipelines[i].n_modules for i in alive])
    n_max = int(n_arr.max())
    src = np.array([view.index_of[requests[i].source] for i in alive])
    dst = np.array([view.index_of[requests[i].destination] for i in alive])
    workload, message = _stage_arrays(pipelines, alive, n_max)
    power_ms = view.power * 1e3
    rows = np.arange(k)
    counts = np.diff(view.edge_indptr)
    nonempty_nodes = np.flatnonzero(counts > 0)
    nonempty_starts = view.edge_indptr[:-1][nonempty_nodes]
    arange_A = np.arange(A)

    values = np.full((A, n_max, k), np.inf)
    pred = np.full((A, n_max, k), -1, dtype=np.int64)
    values[arange_A, 0, src] = 0.0
    # visited[a, u, w]: node w lies on the partial path realising T^{j-1}(u).
    visited = np.zeros((A, k, k), dtype=bool)
    visited[arange_A, src, src] = True

    with np.errstate(divide="ignore", invalid="ignore"):
        for j in range(1, n_max):
            act = np.flatnonzero(n_arr > j)
            if act.size == 0:
                break
            compute = workload[j][act, None] / power_ms[None, :]
            trans_e = _edge_transport_ms(view, message[j][act],
                                         include_link_delay=include_link_delay)
            prev = values[act, j - 1]
            # Min-max update on edges: max(T_prev(u), compute(v), trans(u, v)),
            # nested exactly like the vectorized engine's np.maximum calls.
            cand_e = np.maximum(
                np.maximum(np.take(prev, view.edge_u, axis=1),
                           np.take(compute, view.edge_v, axis=1)), trans_e)
            # Visited-path guard: u -> v is forbidden when v already lies on
            # u's partial path (node reuse is not allowed in this variant).
            cand_e[visited[act][:, view.edge_u, view.edge_v]] = np.inf
            # Intermediate modules never sit on the destination; pipelines of
            # different lengths hit their last stage at different j.
            last = n_arr[act] - 1 == j
            notlast = ~last
            if notlast.any():
                mask = notlast[:, None] & (view.edge_v[None, :]
                                           == dst[act][:, None])
                cand_e[mask] = np.inf
            col, best_u = _segment_min(cand_e, view, nonempty_starts,
                                       nonempty_nodes, k)
            if last.any():
                # Only the destination cell of an item's last column matters.
                li = np.flatnonzero(last)
                dst_vals = col[li, dst[act][li]]
                col[li] = np.inf
                col[li, dst[act][li]] = dst_vals
            values[act, j] = col
            reachable = np.isfinite(col)
            pcol = np.full((act.size, k), -1, dtype=np.int64)
            pcol[reachable] = best_u[reachable]
            pred[act, j] = pcol
            new_visited = np.take_along_axis(visited[act], best_u[:, :, None],
                                             axis=1)
            new_visited[:, rows, rows] = True
            visited[act] = new_visited

    dp_elapsed = time.perf_counter() - start
    per_item_runtime = dp_elapsed / A
    for a, i in enumerate(alive):
        n = int(n_arr[a])
        best = float(values[a, n - 1, dst[a]])
        if not np.isfinite(best):
            results[i] = InfeasibleMappingError(
                "ELPC-tensor (max frame rate) found no simple path with "
                f"exactly {n} nodes from {requests[i].source} to "
                f"{requests[i].destination}",
                source=requests[i].source, destination=requests[i].destination,
                n_modules=n)
            continue
        assignment = _backtrack(view, pred[a, :n], int(dst[a]))
        mapping = mapping_from_assignment(
            pipelines[i], network, assignment,
            objective=Objective.MAX_FRAME_RATE, algorithm="elpc-tensor",
            runtime_s=per_item_runtime, allow_reuse=False)
        extras = {
            "dp_bottleneck_ms": best,
            "dp_finite_cells": int(np.isfinite(values[a, :n]).sum()),
            "include_link_delay": include_link_delay,
            "vectorized": True,
            "tensor_batch": B,
        }
        if keep_table:
            extras["dp_table"] = _as_dp_table(
                view, values[a, :n], pred[a, :n],
                np.zeros((n, k), dtype=bool))
        mapping.extras.update(extras)
        results[i] = mapping
    return results  # type: ignore[return-value]


def elpc_min_delay_tensor(pipeline: Pipeline, network: TransportNetwork,
                          request: EndToEndRequest, *,
                          include_link_delay: bool = True,
                          keep_table: bool = False) -> PipelineMapping:
    """Single-instance front of :func:`elpc_min_delay_many` (``"elpc-tensor"``).

    Runs a batch of one so the tensor engine satisfies the registry's uniform
    solver signature; for real batches use
    :func:`repro.core.batch.solve_many`, which groups a batch by network and
    hands each group to the batched function in one call.
    """
    [entry] = elpc_min_delay_many([pipeline], network, [request],
                                  include_link_delay=include_link_delay,
                                  keep_table=keep_table)
    if isinstance(entry, ReproError):
        raise entry
    return entry


def elpc_max_frame_rate_tensor(pipeline: Pipeline, network: TransportNetwork,
                               request: EndToEndRequest, *,
                               include_link_delay: bool = True,
                               keep_table: bool = False) -> PipelineMapping:
    """Single-instance front of :func:`elpc_max_frame_rate_many` (``"elpc-tensor"``)."""
    [entry] = elpc_max_frame_rate_many([pipeline], network, [request],
                                       include_link_delay=include_link_delay,
                                       keep_table=keep_table)
    if isinstance(entry, ReproError):
        raise entry
    return entry
