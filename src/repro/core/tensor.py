"""Tensor batch engine: the ELPC dynamic programs for *many* pipelines over
one shared network, solved in a single pass of stacked array operations.

:func:`elpc_min_delay_many` and :func:`elpc_max_frame_rate_many` stack the DP
columns of ``B`` pipelines sharing one
:meth:`~repro.model.network.TransportNetwork.dense_view` into ``(B, k)``
state arrays and advance every pipeline's DP one module stage per pass over
the view's CSR edge layout — :math:`O(B\\,|E|)` entries per stage, reduced
per destination node with the padded-slot segment minimum of
:meth:`repro.core.backend.ArrayBackend.segment_min`.  Every floating-point
operation runs element-wise in the same order as the scalar and vectorized
solvers, so values, DP tables and backtracked assignments are
**bit-identical** to both (``tests/test_tensor_equivalence.py``).

Every DP-stage operand and operation is routed through a pluggable
:class:`~repro.core.backend.ArrayBackend` (``backend=`` parameter, default
resolved from ``REPRO_BACKEND``/NumPy): the network's arrays are staged on
the backend's device once per view, the stages run in its array namespace,
and only the finished state arrays cross back to the host.  The native NumPy
backend additionally takes an in-place scratch-buffer fast path for the
min-delay stages; all other backends — CuPy, JAX, or a NumPy backend forced
onto the generic path in tests — run the functional equivalent with the same
operation order (``tests/test_backend_equivalence.py`` pins the bit-identity
of that seam).  See ``docs/ARCHITECTURE.md`` for the engine layer map, the
batch semantics shared with :func:`repro.core.batch.solve_many`, and the
guide to choosing an engine/backend combination.

Batch semantics in one line: infeasible or malformed items never abort a
batch — each input slot gets either a
:class:`~repro.core.mapping.PipelineMapping` or the
:class:`~repro.exceptions.ReproError` a scalar solve of the same instance
would have raised.  The single-instance wrappers
:func:`elpc_min_delay_tensor` / :func:`elpc_max_frame_rate_tensor` (what the
registry serves under ``"elpc-tensor"``) run a batch of one and raise the
error entry, giving the uniform solver signature.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..exceptions import InfeasibleMappingError, ReproError
from ..model.link import BITS_PER_BYTE
from ..model.network import DenseNetworkView, EndToEndRequest, TransportNetwork
from ..model.pipeline import Pipeline
from ..model.validation import check_delay_instance, check_framerate_instance
from .backend import ArrayBackend, BackendLike, StagedView, get_backend
from .mapping import Objective, PipelineMapping, mapping_from_assignment
from .vectorized import _as_dp_table, _backtrack

__all__ = [
    "elpc_min_delay_many",
    "elpc_max_frame_rate_many",
    "elpc_min_delay_tensor",
    "elpc_max_frame_rate_tensor",
]

#: One entry of a batched solve: the mapping, or the error a scalar solve of
#: the same instance would have raised (infeasibility, or a specification
#: error such as an unknown endpoint node).
BatchEntry = Union[PipelineMapping, ReproError]


def _broadcast_requests(requests: Union[EndToEndRequest, Sequence[EndToEndRequest]],
                        count: int) -> List[EndToEndRequest]:
    if isinstance(requests, EndToEndRequest):
        return [requests] * count
    requests = list(requests)
    if len(requests) != count:
        from ..exceptions import SpecificationError

        raise SpecificationError(
            f"{count} pipelines but {len(requests)} requests; pass one request "
            "per pipeline or a single shared request")
    return requests


def _batched_feasibility(pipelines: Sequence[Pipeline],
                         network: TransportNetwork,
                         requests: Sequence[EndToEndRequest],
                         results: List[Optional[BatchEntry]],
                         *, framerate: bool,
                         view: Optional[DenseNetworkView] = None) -> List[int]:
    """Run the per-instance feasibility checks with one batched BFS.

    Fills ``results`` with per-item error entries for the failing items —
    :class:`InfeasibleMappingError` for infeasible instances,
    :class:`~repro.exceptions.SpecificationError` for malformed ones (unknown
    endpoint nodes) — and returns the indices of the surviving ones: one
    pathological item must not abort the batch, the same policy as the looped
    ``solve_many`` path.  The verdicts and messages are produced by the same
    :func:`check_delay_instance` / :func:`check_framerate_instance` functions
    the scalar solvers call — only the hop distances are precomputed, one BFS
    level per array pass for all distinct sources at once (items with unknown
    endpoints fall back to the checks' own lookups, which raise the scalar
    solvers' exact errors).
    """
    if view is None:
        view = network.dense_view()
    sources = sorted({r.source for r in requests
                      if r.source in view.index_of
                      and r.destination in view.index_of})
    levels = view.hop_levels([view.index_of[s] for s in sources])
    level_of = {s: levels[i] for i, s in enumerate(sources)}
    check = check_framerate_instance if framerate else check_delay_instance
    alive: List[int] = []
    for i, (pipeline, request) in enumerate(zip(pipelines, requests)):
        hop_row = level_of.get(request.source)
        hops = None
        if hop_row is not None and request.destination in view.index_of:
            hops = int(hop_row[view.index_of[request.destination]])
        try:
            check(pipeline, network, request, hops=hops).raise_if_infeasible(
                source=request.source, destination=request.destination)
        except ReproError as exc:
            results[i] = exc
        else:
            alive.append(i)
    return alive


def _stage_arrays(pipelines: Sequence[Pipeline], alive: Sequence[int],
                  n_max: int) -> tuple:
    """(n_max, A) workload and message-size arrays, zero-padded past each end."""
    A = len(alive)
    workload = np.zeros((n_max, A))
    message = np.zeros((n_max, A))
    for a, i in enumerate(alive):
        for j, module in enumerate(pipelines[i].modules):
            workload[j, a] = module.complexity * module.input_bytes
            message[j, a] = module.input_bytes
    return workload, message


# --------------------------------------------------------------------------- #
# Min-delay DP stage sweeps
# --------------------------------------------------------------------------- #
def _min_delay_stages_inplace(staged: StagedView, A: int, n_arr: np.ndarray,
                              src: np.ndarray, workload: np.ndarray,
                              message: np.ndarray, *,
                              include_link_delay: bool) -> Tuple[np.ndarray,
                                                                 np.ndarray,
                                                                 np.ndarray]:
    """The native-NumPy min-delay sweep: in-place kernels on scratch buffers.

    One stage is ~12 array passes over ``(A, 2|E|)`` / ``(A, k)`` operands,
    so recycling the storage (and taking the slice fast path while every
    pipeline is still running) removes a third of the batched DP's wall time
    without touching any arithmetic — which is why this path stays alongside
    :func:`_min_delay_stages_generic`: ``out=`` / ``np.copyto`` kernels are
    not expressible in the portable array API.  Only selected when the
    backend reports ``supports_inplace`` (native NumPy); the generic sweep
    performs the same operations in the same order, so both produce
    bit-identical ``(values, pred, same)`` state arrays.
    """
    k = staged.k
    n_max = int(n_arr.max())
    rows = np.arange(k)

    values = np.full((A, n_max, k), np.inf)
    pred = np.full((A, n_max, k), -1, dtype=np.int64)
    same = np.zeros((A, n_max, k), dtype=bool)
    values[np.arange(A), 0, src] = 0.0

    # The per-node minimum runs over the staged padded-slot layout (see
    # ArrayBackend.segment_min): edge costs scatter into an (A, k, max_deg)
    # tensor (inf-padded, slots ordered by ascending u inside each node),
    # whose contiguous min/argmin over the last axis is both faster than
    # np.minimum.reduceat on small segments and preserves the lowest-u
    # tie-break (np.argmin keeps the first minimal slot).
    E2 = staged.n_directed_edges
    max_deg = staged.max_deg
    flat_slot = staged.flat_slot
    slot_to_u_flat = staged.slot_to_u_flat
    row_base = staged.row_base
    power_ms = staged.power_ms
    buf_cost = np.empty((A, E2))
    buf_gather = np.empty((A, E2))
    # Padding slots are written once and never touched again: every stage's
    # scatter overwrites exactly the real-edge slots, so the inf padding (and
    # therefore the min/argmin semantics) persists across stages for free.
    buf_pad = np.full((A, k * max(max_deg, 1)), np.inf)
    buf_compute = np.empty((A, k))
    buf_best = np.empty((A, k))
    buf_arg = np.empty((A, k), dtype=np.intp)
    buf_best_u = np.empty((A, k), dtype=np.intp)
    buf_take_cross = np.empty((A, k), dtype=bool)
    edge_u_i = staged.edge_u
    edge_v_i = staged.edge_v
    bw_bits_e = staged.edge_bandwidth_bits_per_s
    delay_e = staged.edge_link_delay
    n_min = int(n_arr.min())

    with np.errstate(divide="ignore", invalid="ignore"):
        for j in range(1, n_max):
            if j < n_min:  # every pipeline still running: pure slice paths
                act = None
                A_j = A
                prev = values[:, j - 1]
                stage_workload = workload[j]
                stage_message = message[j]
            else:
                act = np.flatnonzero(n_arr > j)
                A_j = act.size
                if A_j == 0:
                    break
                prev = values[act, j - 1]
                stage_workload = workload[j][act]
                stage_message = message[j][act]
            cost = buf_cost[:A_j]
            gather = buf_gather[:A_j]
            pad = buf_pad[:A_j]
            compute = buf_compute[:A_j]
            cross_best = buf_best[:A_j]
            arg = buf_arg[:A_j]
            best_u = buf_best_u[:A_j]
            take_cross = buf_take_cross[:A_j]
            np.divide(stage_workload[:, None], power_ms[None, :], out=compute)
            # Transport term (m·8/b)·10³ + d on the directed-edge list, the
            # exact operation chain of transport_matrix_ms / transfer_time_ms.
            msg8 = stage_message * BITS_PER_BYTE
            np.divide(msg8[:, None], bw_bits_e[None, :], out=cost)
            np.multiply(cost, 1e3, out=cost)
            if include_link_delay:
                np.add(cost, delay_e[None, :], out=cost)
            # Sub-case (ii) on edges: (T_prev(u) + compute(v)) + trans(u, v),
            # summed in the scalar solver's order so values match bit for bit.
            prev.take(edge_u_i, axis=1, out=gather)
            np.add(gather, compute.take(edge_v_i, axis=1), out=gather)
            np.add(gather, cost, out=cost)
            if max_deg:
                pad[:, flat_slot] = cost
                pad3 = pad.reshape(A_j, k, max_deg)
                # Slots are ordered by ascending u inside each node, so the
                # first minimal slot is the lowest predecessor index —
                # np.argmin's tie-break in the vectorized engine.  The minimum
                # itself is gathered back from the winning slot (cheaper than
                # a second 9-element-axis reduction).
                np.argmin(pad3, axis=2, out=arg)
                np.add(arg, row_base[None, :], out=arg)
                slot_to_u_flat.take(arg, out=best_u)
                cross_best = np.take_along_axis(pad, arg, axis=1)
            else:  # edgeless network: only same-node transitions exist
                cross_best.fill(np.inf)
                best_u.fill(0)
            # Sub-case (i): stay on the node running module j-1.  Strict "<"
            # mirrors DPTable.relax, so ties keep the same-node transition.
            # The column is written in place: same-node result first, then the
            # cross-link result where it strictly won (the selection
            # np.where(take_cross, cross_best, same_cand) would make).
            col = values[:, j] if act is None else np.empty((A_j, k))
            np.add(prev, compute, out=col)
            np.less(cross_best, col, out=take_cross)
            np.copyto(col, cross_best, where=take_cross)
            pcol = pred[:, j] if act is None else np.empty((A_j, k),
                                                           dtype=np.int64)
            pcol[:] = rows[None, :]
            np.copyto(pcol, best_u, where=take_cross)
            scol = same[:, j] if act is None else np.empty((A_j, k),
                                                           dtype=bool)
            np.invert(take_cross, out=scol)
            if act is not None:
                values[act, j] = col
                pred[act, j] = pcol
                same[act, j] = scol
    return values, pred, same


def _min_delay_stages_generic(backend: ArrayBackend, staged: StagedView,
                              A: int, n_arr: np.ndarray, src: np.ndarray,
                              workload: np.ndarray, message: np.ndarray, *,
                              include_link_delay: bool) -> Tuple[np.ndarray,
                                                                 np.ndarray,
                                                                 np.ndarray]:
    """The backend-portable min-delay sweep: functional ops in ``backend.xp``.

    Performs exactly the operations of :func:`_min_delay_stages_inplace`, in
    the same order, expressed through the array-API subset every backend
    offers (no ``out=`` buffers, scatters via
    :meth:`~repro.core.backend.ArrayBackend.scatter_set` for JAX's immutable
    arrays).  Host arrays cross to the device per stage; the finished state
    arrays cross back once.  Bit-identity against the in-place sweep is
    pinned by ``tests/test_backend_equivalence.py`` with a NumPy backend
    forced onto this path.
    """
    xp = backend.xp
    k = staged.k
    n_max = int(n_arr.max())
    int64 = xp.int64

    values = xp.full((A, n_max, k), float("inf"))
    pred = xp.full((A, n_max, k), -1, dtype=int64)
    same = xp.zeros((A, n_max, k), dtype=bool)
    values = backend.scatter_set(
        values, (xp.arange(A), 0, backend.asarray(src)), 0.0)

    with np.errstate(divide="ignore", invalid="ignore"):
        for j in range(1, n_max):
            act_host = np.flatnonzero(n_arr > j)
            if act_host.size == 0:
                break
            full = act_host.size == A
            if full:
                prev = values[:, j - 1]
                stage_workload = workload[j]
                stage_message = message[j]
            else:
                act = backend.asarray(act_host)
                prev = values[act, j - 1]
                stage_workload = workload[j][act_host]
                stage_message = message[j][act_host]
            w = backend.asarray(stage_workload)
            m = backend.asarray(stage_message)
            compute = w[:, None] / staged.power_ms[None, :]
            # Transport term (m·8/b)·10³ + d, the exact operation chain of
            # transport_matrix_ms / transfer_time_ms.
            cost = ((m * BITS_PER_BYTE)[:, None]
                    / staged.edge_bandwidth_bits_per_s[None, :])
            cost = cost * 1e3
            if include_link_delay:
                cost = cost + staged.edge_link_delay[None, :]
            # Sub-case (ii) on edges: (T_prev(u) + compute(v)) + trans(u, v).
            gather = xp.take(prev, staged.edge_u, axis=1)
            cand = (gather + xp.take(compute, staged.edge_v, axis=1)) + cost
            cross_best, best_u = backend.segment_min(cand, staged)
            # Sub-case (i): same-node transition wins ties (strict "<").
            same_cand = prev + compute
            take_cross = cross_best < same_cand
            col = xp.where(take_cross, cross_best, same_cand)
            pcol = xp.where(take_cross, best_u, staged.rows[None, :])
            scol = ~take_cross
            index = (slice(None), j) if full else (act, j)
            values = backend.scatter_set(values, index, col)
            pred = backend.scatter_set(pred, index, pcol)
            same = backend.scatter_set(same, index, scol)
    return (backend.to_numpy(values), backend.to_numpy(pred),
            backend.to_numpy(same))


def elpc_min_delay_many(pipelines: Sequence[Pipeline],
                        network: TransportNetwork,
                        requests: Union[EndToEndRequest, Sequence[EndToEndRequest]],
                        *, include_link_delay: bool = True,
                        keep_table: bool = False,
                        view: Optional[DenseNetworkView] = None,
                        backend: BackendLike = None) -> List[BatchEntry]:
    """Batched exact minimum-delay mappings of many pipelines over one network.

    Solves the same problem as ``B`` calls of
    :func:`repro.core.vectorized.elpc_min_delay_vec` — same optima, same
    feasibility verdicts, same tie-breaking, bit-identical DP tables — but
    advances all ``B`` dynamic programs together, one module stage per pass of
    CSR edge-array operations.  Pipelines of different lengths are supported;
    an item stops participating once its last column is filled.

    Parameters
    ----------
    pipelines:
        The pipelines to map.
    network:
        The shared transport network.
    requests:
        One :class:`EndToEndRequest` per pipeline, or a single request shared
        by all of them.
    include_link_delay, keep_table:
        As in the scalar and vectorized solvers; ``keep_table`` attaches each
        item's :class:`~repro.core.dp_table.DPTable` under
        ``mapping.extras["dp_table"]``.
    view:
        Optional dense view to advance the DP over in place of
        ``network.dense_view()`` — the solve-from-attached-view entry point
        for callers holding a view re-wrapped from a shared-memory block
        (:func:`repro.model.network.attach_shared_view`): the solve is
        zero-copy, and since the arrays are byte-identical to the exporting
        process's view, so are the results.  (The parallel runtime itself
        reaches the same effect by installing the attached view on a rebuilt
        network via :meth:`TransportNetwork.from_dense_view`, so plain
        ``solve_many`` batches need no extra argument.)  ``view`` must
        describe ``network``'s topology.
    backend:
        Array backend to run the DP stages on: a name (``"numpy"``,
        ``"cupy"``, ``"jax"``), an
        :class:`~repro.core.backend.ArrayBackend` instance, or ``None`` to
        resolve through the ``REPRO_BACKEND`` environment variable (default
        NumPy).  Results are bit-identical across backends wherever their
        IEEE-754 arithmetic is; an unusable backend raises
        :class:`~repro.exceptions.BackendUnavailableError` before any work.

    Returns
    -------
    list
        One entry per pipeline, in input order: the
        :class:`~repro.core.mapping.PipelineMapping`, or the
        :class:`~repro.exceptions.ReproError` a scalar solve of that instance
        would have raised (:class:`InfeasibleMappingError` for infeasible
        items, ``SpecificationError`` for malformed ones such as unknown
        endpoint nodes).  Nothing is raised per item — one pathological
        instance must not abort the batch.
    """
    start = time.perf_counter()
    backend = get_backend(backend)
    pipelines = list(pipelines)
    B = len(pipelines)
    requests = _broadcast_requests(requests, B)
    results: List[Optional[BatchEntry]] = [None] * B
    if B == 0:
        return []
    alive = _batched_feasibility(pipelines, network, requests, results,
                                 framerate=False, view=view)
    if not alive:
        return results  # type: ignore[return-value]

    if view is None:
        view = network.dense_view()
    A = len(alive)
    n_arr = np.array([pipelines[i].n_modules for i in alive])
    src = np.array([view.index_of[requests[i].source] for i in alive])
    dst = np.array([view.index_of[requests[i].destination] for i in alive])
    workload, message = _stage_arrays(pipelines, alive, int(n_arr.max()))
    staged = backend.stage_view(view)
    sweep = (_min_delay_stages_inplace if backend.supports_inplace
             else lambda *args, **kwargs: _min_delay_stages_generic(
                 backend, *args, **kwargs))
    values, pred, same = sweep(staged, A, n_arr, src, workload, message,
                               include_link_delay=include_link_delay)

    # Unreachable cells (inf value) carry pred = -1 / same = False in the
    # scalar and vectorized tables; normalising once after the sweep replaces
    # an isfinite pass per stage.  Cells beyond an item's own length are
    # untouched inf/-1/False padding, so the same mask covers them too.
    reachable = np.isfinite(values)
    pred[~reachable] = -1
    same[~reachable] = False
    finite_cells = reachable.sum(axis=(1, 2))

    dp_elapsed = time.perf_counter() - start
    per_item_runtime = dp_elapsed / A
    for a, i in enumerate(alive):
        n = int(n_arr[a])
        best = float(values[a, n - 1, dst[a]])
        if not np.isfinite(best):
            results[i] = InfeasibleMappingError(
                "ELPC-tensor (min delay) found no feasible mapping reaching "
                "the destination",
                source=requests[i].source, destination=requests[i].destination,
                n_modules=n)
            continue
        assignment = _backtrack(view, pred[a, :n], int(dst[a]))
        mapping = mapping_from_assignment(
            pipelines[i], network, assignment,
            objective=Objective.MIN_DELAY, algorithm="elpc-tensor",
            runtime_s=per_item_runtime, allow_reuse=True)
        extras = {
            "dp_value_ms": best,
            "dp_finite_cells": int(finite_cells[a]),
            "include_link_delay": include_link_delay,
            "vectorized": True,
            "tensor_batch": B,
            "backend": backend.name,
        }
        if keep_table:
            extras["dp_table"] = _as_dp_table(view, values[a, :n], pred[a, :n],
                                              same[a, :n])
        mapping.extras.update(extras)
        results[i] = mapping
    return results  # type: ignore[return-value]


# --------------------------------------------------------------------------- #
# Frame-rate DP stage sweep (backend-portable; no reduceat anywhere)
# --------------------------------------------------------------------------- #
def _framerate_stages(backend: ArrayBackend, staged: StagedView, A: int,
                      n_arr: np.ndarray, src: np.ndarray, dst: np.ndarray,
                      workload: np.ndarray, message: np.ndarray, *,
                      include_link_delay: bool) -> Tuple[np.ndarray,
                                                         np.ndarray]:
    """The frame-rate min-max sweep, generic over the backend's namespace.

    Unlike the min-delay sweep this is the *only* implementation — the
    heuristic allocates per stage anyway, so the former NumPy-specific
    ``np.minimum.reduceat`` reduction was replaced outright by the portable
    padded-slot :meth:`~repro.core.backend.ArrayBackend.segment_min` (which
    is also faster on the small per-node segments real topologies have).
    The per-pipeline visited-path guard is an ``(A, k, k)`` boolean tensor
    gathered along each stage's chosen predecessors; returns the host
    ``(values, pred)`` state arrays.
    """
    xp = backend.xp
    k = staged.k
    n_max = int(n_arr.max())
    int64 = xp.int64
    inf = float("inf")

    arange_A = xp.arange(A)
    src_dev = backend.asarray(src)
    values = xp.full((A, n_max, k), inf)
    pred = xp.full((A, n_max, k), -1, dtype=int64)
    values = backend.scatter_set(values, (arange_A, 0, src_dev), 0.0)
    # visited[a, u, w]: node w lies on the partial path realising T^{j-1}(u).
    visited = xp.zeros((A, k, k), dtype=bool)
    visited = backend.scatter_set(visited, (arange_A, src_dev, src_dev), True)

    with np.errstate(divide="ignore", invalid="ignore"):
        for j in range(1, n_max):
            act_host = np.flatnonzero(n_arr > j)
            if act_host.size == 0:
                break
            act = backend.asarray(act_host)
            compute = (backend.asarray(workload[j][act_host])[:, None]
                       / staged.power_ms[None, :])
            trans = (backend.asarray(message[j][act_host])[:, None]
                     * BITS_PER_BYTE
                     / staged.edge_bandwidth_bits_per_s[None, :]) * 1e3
            if include_link_delay:
                trans = trans + staged.edge_link_delay[None, :]
            prev = values[act, j - 1]
            # Min-max update on edges: max(T_prev(u), compute(v), trans(u, v)),
            # nested exactly like the vectorized engine's np.maximum calls.
            cand = xp.maximum(
                xp.maximum(xp.take(prev, staged.edge_u, axis=1),
                           xp.take(compute, staged.edge_v, axis=1)), trans)
            # Visited-path guard: u -> v is forbidden when v already lies on
            # u's partial path (node reuse is not allowed in this variant).
            vis_e = visited[act][:, staged.edge_u, staged.edge_v]
            cand = xp.where(vis_e, inf, cand)
            # Intermediate modules never sit on the destination; pipelines of
            # different lengths hit their last stage at different j.
            last_host = n_arr[act_host] - 1 == j
            notlast_host = ~last_host
            if notlast_host.any():
                mask = (backend.asarray(notlast_host)[:, None]
                        & (staged.edge_v[None, :]
                           == backend.asarray(dst[act_host])[:, None]))
                cand = xp.where(mask, inf, cand)
            col, best_u = backend.segment_min(cand, staged)
            if last_host.any():
                # Only the destination cell of an item's last column matters.
                li_host = np.flatnonzero(last_host)
                li = backend.asarray(li_host)
                dst_li = backend.asarray(dst[act_host][li_host])
                dst_vals = col[li, dst_li]
                col = backend.scatter_set(col, (li,), inf)
                col = backend.scatter_set(col, (li, dst_li), dst_vals)
            values = backend.scatter_set(values, (act, j), col)
            reachable = xp.isfinite(col)
            pcol = xp.where(reachable, best_u, -1)
            pred = backend.scatter_set(pred, (act, j), pcol)
            new_visited = xp.take_along_axis(visited[act],
                                             best_u[:, :, None], axis=1)
            new_visited = backend.scatter_set(
                new_visited, (slice(None), staged.rows, staged.rows), True)
            visited = backend.scatter_set(visited, (act,), new_visited)
    return backend.to_numpy(values), backend.to_numpy(pred)


def elpc_max_frame_rate_many(pipelines: Sequence[Pipeline],
                             network: TransportNetwork,
                             requests: Union[EndToEndRequest, Sequence[EndToEndRequest]],
                             *, include_link_delay: bool = True,
                             keep_table: bool = False,
                             view: Optional[DenseNetworkView] = None,
                             backend: BackendLike = None) -> List[BatchEntry]:
    """Batched maximum-frame-rate heuristic for many pipelines over one network.

    The batched counterpart of
    :func:`repro.core.vectorized.elpc_max_frame_rate_vec`: the min-max column
    update runs on the CSR edge layout through the backend's padded-slot
    segment minimum, the per-pipeline visited-path guard is a ``(B, k, k)``
    boolean tensor gathered along each stage's chosen predecessors, and the
    destination-as-intermediate exclusion is applied per item (pipelines of
    different lengths reach their last column at different stages).  Values,
    feasibility outcomes and backtracked assignments are bit-identical to the
    scalar and vectorized heuristics.

    See :func:`elpc_min_delay_many` for parameters (including ``backend=``)
    and batch semantics.
    """
    start = time.perf_counter()
    backend = get_backend(backend)
    pipelines = list(pipelines)
    B = len(pipelines)
    requests = _broadcast_requests(requests, B)
    results: List[Optional[BatchEntry]] = [None] * B
    if B == 0:
        return []
    alive = _batched_feasibility(pipelines, network, requests, results,
                                 framerate=True, view=view)
    if not alive:
        return results  # type: ignore[return-value]

    if view is None:
        view = network.dense_view()
    k = view.n_nodes
    A = len(alive)
    n_arr = np.array([pipelines[i].n_modules for i in alive])
    src = np.array([view.index_of[requests[i].source] for i in alive])
    dst = np.array([view.index_of[requests[i].destination] for i in alive])
    workload, message = _stage_arrays(pipelines, alive, int(n_arr.max()))
    staged = backend.stage_view(view)
    values, pred = _framerate_stages(backend, staged, A, n_arr, src, dst,
                                     workload, message,
                                     include_link_delay=include_link_delay)

    dp_elapsed = time.perf_counter() - start
    per_item_runtime = dp_elapsed / A
    for a, i in enumerate(alive):
        n = int(n_arr[a])
        best = float(values[a, n - 1, dst[a]])
        if not np.isfinite(best):
            results[i] = InfeasibleMappingError(
                "ELPC-tensor (max frame rate) found no simple path with "
                f"exactly {n} nodes from {requests[i].source} to "
                f"{requests[i].destination}",
                source=requests[i].source, destination=requests[i].destination,
                n_modules=n)
            continue
        assignment = _backtrack(view, pred[a, :n], int(dst[a]))
        mapping = mapping_from_assignment(
            pipelines[i], network, assignment,
            objective=Objective.MAX_FRAME_RATE, algorithm="elpc-tensor",
            runtime_s=per_item_runtime, allow_reuse=False)
        extras = {
            "dp_bottleneck_ms": best,
            "dp_finite_cells": int(np.isfinite(values[a, :n]).sum()),
            "include_link_delay": include_link_delay,
            "vectorized": True,
            "tensor_batch": B,
            "backend": backend.name,
        }
        if keep_table:
            extras["dp_table"] = _as_dp_table(
                view, values[a, :n], pred[a, :n],
                np.zeros((n, k), dtype=bool))
        mapping.extras.update(extras)
        results[i] = mapping
    return results  # type: ignore[return-value]


def elpc_min_delay_tensor(pipeline: Pipeline, network: TransportNetwork,
                          request: EndToEndRequest, *,
                          include_link_delay: bool = True,
                          keep_table: bool = False,
                          backend: BackendLike = None) -> PipelineMapping:
    """Single-instance front of :func:`elpc_min_delay_many` (``"elpc-tensor"``).

    Runs a batch of one so the tensor engine satisfies the registry's uniform
    solver signature; for real batches use
    :func:`repro.core.batch.solve_many`, which groups a batch by network and
    hands each group to the batched function in one call.
    """
    [entry] = elpc_min_delay_many([pipeline], network, [request],
                                  include_link_delay=include_link_delay,
                                  keep_table=keep_table, backend=backend)
    if isinstance(entry, ReproError):
        raise entry
    return entry


def elpc_max_frame_rate_tensor(pipeline: Pipeline, network: TransportNetwork,
                               request: EndToEndRequest, *,
                               include_link_delay: bool = True,
                               keep_table: bool = False,
                               backend: BackendLike = None) -> PipelineMapping:
    """Single-instance front of :func:`elpc_max_frame_rate_many` (``"elpc-tensor"``)."""
    [entry] = elpc_max_frame_rate_many([pipeline], network, [request],
                                       include_link_delay=include_link_delay,
                                       keep_table=keep_table, backend=backend)
    if isinstance(entry, ReproError):
        raise entry
    return entry
