"""The two-dimensional dynamic-programming table used by the ELPC algorithms.

The paper's Fig. 1 depicts ELPC as filling a table whose columns are the
pipeline modules :math:`M_1..M_n` and whose rows are the network nodes
:math:`v_1..v_k`: cell :math:`T^j(v_i)` holds the optimal objective value for
mapping the first :math:`j` modules onto a path from the source node to node
:math:`v_i`, and is computed from the cells in column :math:`j-1` (the same
node for the "extend the current group" sub-case, and the node's neighbours
for the "start a new group over a link" sub-case).

:class:`DPTable` stores the values together with predecessor pointers so a
completed table can be back-tracked into a per-module node assignment, and can
be rendered / exported for inspection (the Fig. 1 illustration and the DP
ablation benches use this).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import AlgorithmError
from ..types import NodeId

__all__ = ["DPCell", "DPTable"]

#: Value representing an unreachable / not-yet-computed cell.
INFINITY = math.inf


@dataclass(frozen=True)
class DPCell:
    """One cell :math:`T^j(v_i)` of the ELPC dynamic-programming table.

    Attributes
    ----------
    value:
        Optimal objective value (total delay or bottleneck time, in ms) of the
        sub-problem "map modules ``0..module_index`` onto a path from the
        source to ``node_id``"; ``inf`` when the sub-problem is infeasible.
    predecessor:
        Node id of the cell in the previous column this value was derived
        from, or ``None`` for base-column cells / unreachable cells.
    same_node:
        ``True`` when the transition kept the new module on the same node as
        the previous one (sub-case (i): group extension, no link crossed);
        ``False`` when a link ``predecessor -> node_id`` was crossed
        (sub-case (ii): new group).
    """

    value: float
    predecessor: Optional[NodeId]
    same_node: bool


class DPTable:
    """Dense DP table indexed by ``(module_index, node_id)``.

    ``module_index`` runs from 0 (the data source, base column) to
    ``n_modules - 1`` (the end user).  All cells start at ``inf`` with no
    predecessor.
    """

    def __init__(self, n_modules: int, node_ids: Sequence[NodeId]) -> None:
        if n_modules < 2:
            raise AlgorithmError("DP table needs at least 2 module columns")
        if not node_ids:
            raise AlgorithmError("DP table needs at least one node row")
        self.n_modules = int(n_modules)
        self.node_ids: List[NodeId] = list(node_ids)
        self._row_of: Dict[NodeId, int] = {nid: i for i, nid in enumerate(self.node_ids)}
        self._values = np.full((len(self.node_ids), self.n_modules), INFINITY, dtype=float)
        self._pred: List[List[Optional[NodeId]]] = [
            [None] * self.n_modules for _ in self.node_ids]
        self._same: List[List[bool]] = [
            [False] * self.n_modules for _ in self.node_ids]
        #: number of cell relaxations performed (diagnostic, used by benches)
        self.relaxations = 0

    # ------------------------------------------------------------------ #
    # Cell access
    # ------------------------------------------------------------------ #
    def _row(self, node_id: NodeId) -> int:
        try:
            return self._row_of[node_id]
        except KeyError:
            raise AlgorithmError(f"node {node_id} is not a row of this DP table") from None

    def set(self, module_index: int, node_id: NodeId, value: float,
            predecessor: Optional[NodeId] = None, *, same_node: bool = False) -> None:
        """Unconditionally write a cell (used for base-column initialisation)."""
        row = self._row(node_id)
        self._values[row, module_index] = value
        self._pred[row][module_index] = predecessor
        self._same[row][module_index] = same_node

    def relax(self, module_index: int, node_id: NodeId, value: float,
              predecessor: Optional[NodeId], *, same_node: bool = False) -> bool:
        """Write a cell only if ``value`` improves (strictly lowers) it.

        Returns ``True`` when the cell was updated.  Both ELPC variants
        minimise their cell values (total delay, or bottleneck time whose
        reciprocal is the frame rate), so "improve" always means "decrease".
        """
        self.relaxations += 1
        row = self._row(node_id)
        if value < self._values[row, module_index]:
            self._values[row, module_index] = value
            self._pred[row][module_index] = predecessor
            self._same[row][module_index] = same_node
            return True
        return False

    def value(self, module_index: int, node_id: NodeId) -> float:
        """Current value of cell ``T^{module_index}(node_id)``."""
        return float(self._values[self._row(node_id), module_index])

    def cell(self, module_index: int, node_id: NodeId) -> DPCell:
        """Full cell contents (value + predecessor information)."""
        row = self._row(node_id)
        return DPCell(value=float(self._values[row, module_index]),
                      predecessor=self._pred[row][module_index],
                      same_node=self._same[row][module_index])

    def is_reachable(self, module_index: int, node_id: NodeId) -> bool:
        """``True`` if the sub-problem for this cell has a feasible solution."""
        return math.isfinite(self.value(module_index, node_id))

    def column(self, module_index: int) -> Dict[NodeId, float]:
        """All finite values of one column, as ``{node_id: value}``."""
        out: Dict[NodeId, float] = {}
        for nid in self.node_ids:
            v = self.value(module_index, nid)
            if math.isfinite(v):
                out[nid] = v
        return out

    def reachable_nodes(self, module_index: int) -> List[NodeId]:
        """Node ids whose cell in the given column is finite."""
        return sorted(self.column(module_index))

    # ------------------------------------------------------------------ #
    # Back-tracking
    # ------------------------------------------------------------------ #
    def backtrack_assignment(self, node_id: NodeId,
                             module_index: Optional[int] = None) -> List[NodeId]:
        """Reconstruct the per-module node assignment ending at ``node_id``.

        Follows predecessor pointers from column ``module_index`` (default:
        the last column) back to column 0 and returns a list ``assignment``
        with ``assignment[j]`` = node executing module ``j``.
        """
        j = self.n_modules - 1 if module_index is None else module_index
        if not self.is_reachable(j, node_id):
            raise AlgorithmError(
                f"cannot backtrack from unreachable cell (module {j}, node {node_id})")
        assignment: List[NodeId] = [0] * (j + 1)
        current = node_id
        for col in range(j, 0, -1):
            assignment[col] = current
            cell = self.cell(col, current)
            if cell.predecessor is None:
                raise AlgorithmError(
                    f"broken predecessor chain at (module {col}, node {current})")
            # For a same-node transition the predecessor stores the same node id,
            # so a single unconditional hop works for both sub-cases.
            current = cell.predecessor
        assignment[0] = current
        return assignment

    def backtrack_path(self, node_id: NodeId,
                       module_index: Optional[int] = None) -> List[NodeId]:
        """Reconstruct the node *walk* (one entry per group) ending at ``node_id``.

        Consecutive modules kept on the same node collapse into a single walk
        entry, matching the grouping semantics of
        :func:`repro.core.mapping.mapping_from_assignment`.
        """
        assignment = self.backtrack_assignment(node_id, module_index)
        path: List[NodeId] = []
        for nid in assignment:
            if not path or path[-1] != nid:
                path.append(nid)
        return path

    # ------------------------------------------------------------------ #
    # Export / inspection
    # ------------------------------------------------------------------ #
    def to_array(self) -> np.ndarray:
        """Dense copy of the value matrix (rows = nodes, columns = modules)."""
        return self._values.copy()

    def finite_cell_count(self) -> int:
        """Number of reachable cells in the whole table."""
        return int(np.isfinite(self._values).sum())

    def render(self, *, max_nodes: int = 12, max_modules: int = 10,
               fmt: str = "{:9.2f}") -> str:
        """ASCII rendering of (a corner of) the table, in the style of Fig. 1.

        Rows are nodes, columns are modules; unreachable cells show ``inf``.
        Intended for debugging and the small-instance walkthrough example.
        """
        node_ids = self.node_ids[:max_nodes]
        cols = list(range(min(self.n_modules, max_modules)))
        header = "node\\module |" + "".join(f"{f'M{c}':>10}" for c in cols)
        lines = [header, "-" * len(header)]
        for nid in node_ids:
            cells = []
            for c in cols:
                v = self.value(c, nid)
                cells.append(f"{'inf':>10}" if math.isinf(v) else f"{fmt.format(v):>10}")
            lines.append(f"{f'v{nid}':>11} |" + "".join(cells))
        if len(self.node_ids) > max_nodes or self.n_modules > max_modules:
            lines.append(f"... ({len(self.node_ids)} nodes x {self.n_modules} modules total)")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"DPTable(nodes={len(self.node_ids)}, modules={self.n_modules}, "
                f"finite={self.finite_cell_count()})")
