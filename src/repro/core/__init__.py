"""The paper's primary contribution: the ELPC mapping algorithms.

* :func:`elpc_min_delay` — optimal dynamic program for minimum end-to-end
  delay with node reuse (interactive applications).
* :func:`elpc_max_frame_rate` — dynamic-programming heuristic for maximum
  frame rate without node reuse (streaming applications).
* :mod:`repro.core.vectorized` — dense NumPy engines for both DPs
  (:func:`elpc_min_delay_vec` / :func:`elpc_max_frame_rate_vec`, registered as
  ``"elpc-vec"``), differentially tested against the scalar references.
* :mod:`repro.core.tensor` — the batched engines
  (:func:`elpc_min_delay_many` / :func:`elpc_max_frame_rate_many`, registered
  as ``"elpc-tensor"``) that advance many pipelines' DPs over one network in
  stacked array passes, bit-identical to the scalar and vectorized solvers.
* :mod:`repro.core.backend` — the pluggable array-API backends the tensor
  engine runs on (:func:`get_backend` / :class:`ArrayBackend`: NumPy
  reference, optional CuPy and JAX), selected per solve via ``backend=``,
  the ``--backend`` CLI flag, or the ``REPRO_BACKEND`` environment variable.
* :mod:`repro.core.batch` — :func:`solve_many`, the batch API behind the
  experiment sweeps and the CLI; same-network groups of an ``"elpc-tensor"``
  batch run through the tensor engine in one call per group, sequentially and
  inside every worker chunk alike.
* :mod:`repro.core.parallel` — :class:`ParallelBatchRunner`, the
  shared-memory worker-pool runtime behind ``solve_many(workers=N)``:
  networks are exported once per topology, instances travel as lightweight
  chunked specs, and results stay bit-identical to sequential solves.
* :mod:`repro.core.exact` — exponential optimality oracles used by the tests
  and the ablation benchmarks.
* :mod:`repro.core.reduction` — the Hamiltonian-Path → ENSP reduction behind
  the NP-completeness theorem.
* :class:`PipelineMapping` / :class:`Objective` — the result types shared by
  every solver, and :mod:`repro.core.registry` to look solvers up by name.
"""

from .backend import (
    ArrayBackend,
    CupyBackend,
    JaxBackend,
    NumpyBackend,
    available_backends,
    get_backend,
    register_backend,
)
from .alternatives import (
    FailureImpact,
    FaultTolerancePlan,
    fault_tolerance_plan,
    k_alternative_mappings,
    remove_nodes,
    solve_excluding_nodes,
)
from .dp_table import DPCell, DPTable
from .elpc_delay import elpc_min_delay
from .elpc_framerate import elpc_max_frame_rate
from .exact import (
    enumerate_exact_hop_paths,
    exhaustive_max_frame_rate,
    exhaustive_min_delay,
)
from .mapping import Objective, PipelineMapping, mapping_from_assignment
from .reduction import (
    ENSPInstance,
    hamiltonian_path_to_ensp,
    has_hamiltonian_path,
    solve_ensp_exact,
    verify_ensp_certificate,
)
from .batch import (
    BatchItemResult,
    BatchRunResult,
    SolveOptions,
    place_many,
    solve_many,
)
from .parallel import ParallelBatchRunner
from .registry import available_solvers, get_solver, register_solver, solve
from .tensor import (
    elpc_max_frame_rate_many,
    elpc_max_frame_rate_tensor,
    elpc_min_delay_many,
    elpc_min_delay_tensor,
)
from .vectorized import elpc_max_frame_rate_vec, elpc_min_delay_vec
from .warm import WarmState, elpc_max_frame_rate_warm, elpc_min_delay_warm

__all__ = [
    "DPCell", "DPTable",
    "elpc_min_delay", "elpc_max_frame_rate",
    "elpc_min_delay_vec", "elpc_max_frame_rate_vec",
    "WarmState", "elpc_min_delay_warm", "elpc_max_frame_rate_warm",
    "elpc_min_delay_many", "elpc_max_frame_rate_many",
    "elpc_min_delay_tensor", "elpc_max_frame_rate_tensor",
    "BatchItemResult", "BatchRunResult", "SolveOptions", "solve_many",
    "place_many", "ParallelBatchRunner",
    "ArrayBackend", "NumpyBackend", "CupyBackend", "JaxBackend",
    "get_backend", "available_backends", "register_backend",
    "exhaustive_min_delay", "exhaustive_max_frame_rate", "enumerate_exact_hop_paths",
    "Objective", "PipelineMapping", "mapping_from_assignment",
    "ENSPInstance", "hamiltonian_path_to_ensp", "verify_ensp_certificate",
    "solve_ensp_exact", "has_hamiltonian_path",
    "register_solver", "get_solver", "available_solvers", "solve",
    "FailureImpact", "FaultTolerancePlan", "fault_tolerance_plan",
    "k_alternative_mappings", "remove_nodes", "solve_excluding_nodes",
]
