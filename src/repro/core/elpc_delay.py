"""ELPC dynamic program for minimum end-to-end delay with node reuse
(paper Section 3.1.1).

For interactive applications a single dataset flows through the pipeline, so
at any instant only one module is executing; nodes may therefore be *reused*
(two or more modules, contiguous or not, run on the same node) without
resource contention.  Under this model the mapping problem is solved exactly
in polynomial time by a dynamic program over the table

.. math::

   T^j(v_i) = \\min\\begin{cases}
       T^{j-1}(v_i) + c_j m_{j-1} / p_{v_i} & \\text{(sub-case i: same node)}\\\\
       \\min_{u \\in adj(v_i)}\\left( T^{j-1}(u) + c_j m_{j-1}/p_{v_i}
           + m_{j-1}/b_{u,v_i} \\right) & \\text{(sub-case ii: cross a link)}
   \\end{cases}

with :math:`T^1(v_s) = 0` and every other base cell infinite.  The answer is
:math:`T^n(v_d)`, back-tracked into a concrete module→node assignment.  The
complexity is :math:`O(n\\,(|E| + k))` — the paper states :math:`O(n|E|)`, the
extra :math:`k` term being the same-node transitions.

Two small deviations from the literal formulas, both documented in DESIGN.md:

* the base condition in the paper excludes mapping module 2 onto the source
  node, yet its own Fig. 3 example does exactly that; starting the recursion
  from :math:`T^1(v_s) = 0` (module 1 is the data source and computes nothing)
  subsumes the paper's base case and allows source reuse;
* the transport term optionally includes the minimum link delay
  (``include_link_delay=True``, default) because the Section 2.2 cost model
  defines it, even though Eq. 3 writes only the bandwidth term.
"""

from __future__ import annotations

import math
import time
from typing import Optional

from ..exceptions import InfeasibleMappingError
from ..model.cost import computing_time_ms, transport_time_ms
from ..model.network import EndToEndRequest, TransportNetwork
from ..model.pipeline import Pipeline
from ..model.validation import check_delay_instance
from .dp_table import DPTable
from .mapping import Objective, PipelineMapping, mapping_from_assignment

__all__ = ["elpc_min_delay"]


def elpc_min_delay(pipeline: Pipeline, network: TransportNetwork,
                   request: EndToEndRequest, *,
                   include_link_delay: bool = True,
                   keep_table: bool = False) -> PipelineMapping:
    """Optimal minimum end-to-end delay mapping with node reuse (ELPC).

    Parameters
    ----------
    pipeline, network, request:
        The problem instance; the first module is pinned to
        ``request.source`` and the last to ``request.destination``.
    include_link_delay:
        Include each link's minimum link delay in transport costs (default).
    keep_table:
        Store the filled :class:`~repro.core.dp_table.DPTable` under
        ``mapping.extras["dp_table"]`` for inspection (Fig. 1 walkthrough).

    Returns
    -------
    PipelineMapping
        The optimal mapping.  Its :attr:`~repro.core.mapping.PipelineMapping.delay_ms`
        equals the DP optimum.

    Raises
    ------
    InfeasibleMappingError
        If the source and destination are disconnected or the pipeline has
        fewer modules than the shortest source→destination path has nodes.
    """
    start = time.perf_counter()
    report = check_delay_instance(pipeline, network, request)
    report.raise_if_infeasible(source=request.source, destination=request.destination)

    n = pipeline.n_modules
    node_ids = network.node_ids()
    table = DPTable(n_modules=n, node_ids=node_ids)

    # Base column: module 0 is the data source, it performs no computation and
    # must sit on the designated source node.
    table.set(0, request.source, 0.0, predecessor=None, same_node=False)

    for j in range(1, n):
        module = pipeline.modules[j]
        message_in = module.input_bytes  # m_{j-1}
        prev_col = table.column(j - 1)
        if not prev_col:
            break  # nothing reachable, final feasibility check will fire
        for v in node_ids:
            compute = computing_time_ms(network, v, module.complexity, module.input_bytes)
            # Sub-case (i): module j stays on the node running module j-1.
            prev_same = prev_col.get(v)
            if prev_same is not None:
                table.relax(j, v, prev_same + compute, predecessor=v, same_node=True)
            # Sub-case (ii): module j starts a new group on v, data crosses a link.
            for u in network.neighbors(v):
                prev_u = prev_col.get(u)
                if prev_u is None:
                    continue
                link_time = transport_time_ms(network, u, v, message_in,
                                              include_link_delay=include_link_delay)
                table.relax(j, v, prev_u + compute + link_time,
                            predecessor=u, same_node=False)

    best = table.value(n - 1, request.destination)
    if not math.isfinite(best):
        raise InfeasibleMappingError(
            "ELPC (min delay) found no feasible mapping reaching the destination",
            source=request.source, destination=request.destination, n_modules=n)

    assignment = table.backtrack_assignment(request.destination)
    runtime = time.perf_counter() - start
    mapping = mapping_from_assignment(
        pipeline, network, assignment,
        objective=Objective.MIN_DELAY, algorithm="elpc",
        runtime_s=runtime, allow_reuse=True)
    extras = {
        "dp_value_ms": best,
        "dp_relaxations": table.relaxations,
        "dp_finite_cells": table.finite_cell_count(),
        "include_link_delay": include_link_delay,
    }
    if keep_table:
        extras["dp_table"] = table
    mapping.extras.update(extras)
    return mapping
