"""Exhaustive optimality oracles for small problem instances.

These brute-force solvers exist to *verify* the polynomial-time algorithms:

* :func:`exhaustive_min_delay` enumerates every per-module node assignment in
  which consecutive modules sit on identical or adjacent nodes (node reuse
  allowed) and returns the assignment with the smallest Eq. 1 delay.  The
  ELPC delay DP is provably optimal, so on any instance both must agree —
  the property-based tests and the A1 ablation bench rely on this oracle.
* :func:`exhaustive_max_frame_rate` enumerates every simple source→destination
  path with exactly ``n`` nodes (the exact-n-hop widest path problem, which is
  NP-complete — see :mod:`repro.core.reduction`) and returns the one with the
  smallest bottleneck.  The ELPC frame-rate DP is a heuristic, so this oracle
  quantifies its optimality gap.

Both raise :class:`~repro.exceptions.SpecificationError` when the instance is
larger than ``node_limit`` / ``module_limit`` — they are exponential by design
and must never be called on benchmark-sized inputs.
"""

from __future__ import annotations

import itertools
import math
import time
from typing import Iterator, List, Optional, Sequence, Tuple

from ..exceptions import InfeasibleMappingError, SpecificationError
from ..model.cost import bottleneck_time_ms, end_to_end_delay_ms
from ..model.network import EndToEndRequest, TransportNetwork
from ..model.pipeline import Pipeline
from .mapping import Objective, PipelineMapping, mapping_from_assignment

__all__ = [
    "exhaustive_min_delay",
    "exhaustive_max_frame_rate",
    "enumerate_exact_hop_paths",
]

#: Default safety limits for the exponential searches.
DEFAULT_NODE_LIMIT = 12
DEFAULT_MODULE_LIMIT = 8


def _feasible_assignments(pipeline: Pipeline, network: TransportNetwork,
                          request: EndToEndRequest) -> Iterator[List[int]]:
    """Yield every module→node assignment respecting adjacency (reuse allowed).

    Module 0 is pinned to the source, module ``n-1`` to the destination, and
    each later module must run on the same node as its predecessor or on one
    of that node's neighbours.
    """
    n = pipeline.n_modules

    def extend(prefix: List[int]) -> Iterator[List[int]]:
        j = len(prefix)
        if j == n:
            if prefix[-1] == request.destination:
                yield list(prefix)
            return
        last = prefix[-1]
        choices = [last] + network.neighbors(last)
        for v in choices:
            prefix.append(v)
            yield from extend(prefix)
            prefix.pop()

    yield from extend([request.source])


def exhaustive_min_delay(pipeline: Pipeline, network: TransportNetwork,
                         request: EndToEndRequest, *,
                         include_link_delay: bool = True,
                         node_limit: int = DEFAULT_NODE_LIMIT,
                         module_limit: int = DEFAULT_MODULE_LIMIT) -> PipelineMapping:
    """Brute-force optimal minimum-delay mapping (node reuse allowed).

    Exponential in the pipeline length; guarded by ``node_limit`` and
    ``module_limit``.
    """
    if network.n_nodes > node_limit:
        raise SpecificationError(
            f"exhaustive_min_delay limited to networks with <= {node_limit} nodes")
    if pipeline.n_modules > module_limit:
        raise SpecificationError(
            f"exhaustive_min_delay limited to pipelines with <= {module_limit} modules")
    request.validate(network)

    start = time.perf_counter()
    best_delay = math.inf
    best_assignment: Optional[List[int]] = None
    explored = 0
    for assignment in _feasible_assignments(pipeline, network, request):
        explored += 1
        mapping = mapping_from_assignment(
            pipeline, network, assignment,
            objective=Objective.MIN_DELAY, algorithm="exhaustive")
        delay = end_to_end_delay_ms(pipeline, network, mapping.groups, mapping.path,
                                    include_link_delay=include_link_delay)
        if delay < best_delay:
            best_delay = delay
            best_assignment = assignment

    if best_assignment is None:
        raise InfeasibleMappingError(
            "no feasible assignment reaches the destination",
            source=request.source, destination=request.destination,
            n_modules=pipeline.n_modules)

    runtime = time.perf_counter() - start
    mapping = mapping_from_assignment(
        pipeline, network, best_assignment,
        objective=Objective.MIN_DELAY, algorithm="exhaustive",
        runtime_s=runtime, allow_reuse=True)
    mapping.extras.update({
        "assignments_explored": explored,
        "optimal_delay_ms": best_delay,
        "include_link_delay": include_link_delay,
    })
    return mapping


def enumerate_exact_hop_paths(network: TransportNetwork, source: int,
                              destination: int, n_nodes: int) -> Iterator[List[int]]:
    """Yield every *simple* path from source to destination with exactly ``n_nodes`` nodes.

    This is the solution space of the restricted frame-rate problem (one
    module per node).  The enumeration is a depth-first search that prunes
    branches which cannot reach the destination in the remaining number of
    hops.
    """
    if n_nodes < 1:
        return
    if n_nodes == 1:
        if source == destination:
            yield [source]
        return

    # Hop distance to the destination, used for pruning.
    import networkx as nx

    try:
        dist_to_dest = nx.single_source_shortest_path_length(network.graph, destination)
    except Exception:  # pragma: no cover - defensive
        dist_to_dest = {}

    def extend(path: List[int], used: set) -> Iterator[List[int]]:
        remaining = n_nodes - len(path)
        last = path[-1]
        if remaining == 0:
            if last == destination:
                yield list(path)
            return
        # prune: destination must still be reachable within `remaining` hops
        d = dist_to_dest.get(last)
        if d is None or d > remaining:
            return
        for nxt in network.neighbors(last):
            if nxt in used:
                continue
            path.append(nxt)
            used.add(nxt)
            yield from extend(path, used)
            used.remove(nxt)
            path.pop()

    yield from extend([source], {source})


def exhaustive_max_frame_rate(pipeline: Pipeline, network: TransportNetwork,
                              request: EndToEndRequest, *,
                              include_link_delay: bool = True,
                              node_limit: int = 20) -> PipelineMapping:
    """Brute-force optimal maximum-frame-rate mapping without node reuse.

    Enumerates every simple source→destination path with exactly ``n`` nodes
    (the exact-n-hop widest path problem) and keeps the smallest-bottleneck
    one.  Guarded by ``node_limit``; the pruned DFS keeps moderate instances
    tractable but the worst case remains exponential.
    """
    if network.n_nodes > node_limit:
        raise SpecificationError(
            f"exhaustive_max_frame_rate limited to networks with <= {node_limit} nodes")
    request.validate(network)

    n = pipeline.n_modules
    start = time.perf_counter()
    best_bottleneck = math.inf
    best_path: Optional[List[int]] = None
    explored = 0
    for path in enumerate_exact_hop_paths(network, request.source,
                                          request.destination, n):
        explored += 1
        groups = [[j] for j in range(n)]
        bottleneck = bottleneck_time_ms(pipeline, network, groups, path,
                                        include_link_delay=include_link_delay)
        if bottleneck < best_bottleneck:
            best_bottleneck = bottleneck
            best_path = path

    if best_path is None:
        raise InfeasibleMappingError(
            f"no simple path with exactly {n} nodes exists between "
            f"{request.source} and {request.destination}",
            source=request.source, destination=request.destination, n_modules=n)

    runtime = time.perf_counter() - start
    mapping = mapping_from_assignment(
        pipeline, network, best_path,
        objective=Objective.MAX_FRAME_RATE, algorithm="exhaustive",
        runtime_s=runtime, allow_reuse=False)
    mapping.extras.update({
        "paths_explored": explored,
        "optimal_bottleneck_ms": best_bottleneck,
        "include_link_delay": include_link_delay,
    })
    return mapping
