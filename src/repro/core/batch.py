"""Batch solving API: run one solver over many problem instances.

Experiment sweeps (the Fig. 2 / Fig. 5 / Fig. 6 campaigns, the runtime-scaling
study, parameter sensitivity scans) all share the same shape: *solve every
instance of a suite with one algorithm and collect objective values, runtimes
and failures*.  :func:`solve_many` is that loop as a first-class API —
sequential by default, optionally fanned out over a process pool — and the
comparison harness (:func:`repro.analysis.comparison.run_comparison`) and the
CLI (``repro solve --batch-seeds``, ``repro bench-scaling``) are built on it.

Infeasible instances are recorded per item instead of aborting the batch, the
same policy the comparison harness has always used: one pathological case must
not kill a whole campaign.

Tensor dispatch
---------------
When the batch is solved with ``solver="elpc-tensor"`` (and no process pool),
:func:`solve_many` groups consecutive-by-network instances and hands each
group of instances sharing one :class:`TransportNetwork` *object* to the
batched tensor engine (:mod:`repro.core.tensor`) in a single call, which
advances all of the group's DP columns together.  Heterogeneous batches —
every instance on its own network — degenerate to per-instance solves through
the same code path, so results are always identical to a per-item loop; only
the throughput changes.

Multiprocessing notes
---------------------
With ``workers > 1`` every instance is pickled to a worker process, so the
solver must be given *by registry name* (a callable may not survive pickling —
:class:`~repro.exceptions.SpecificationError` is raised up front).  Worker
dispatch costs one fork + pickle round-trip per chunk; it only pays off when
individual solves are slow (large scalar DPs, exhaustive oracles).  For large
batches of small instances prefer ``workers=None`` with the ``"elpc-vec"``
solvers, which are usually faster than any amount of process parallelism over
the scalar DP.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

from ..exceptions import ReproError, SpecificationError
from ..model.network import EndToEndRequest, TransportNetwork
from ..model.pipeline import Pipeline
from ..model.serialization import ProblemInstance
from .mapping import Objective, PipelineMapping
from .registry import get_solver

__all__ = ["BatchItemResult", "BatchRunResult", "solve_many"]

#: Solver names whose batches are grouped by network and dispatched through
#: the tensor engine (one batched call per group) instead of per-item solves.
TENSOR_SOLVERS = frozenset({"elpc-tensor"})

#: Anything solve_many accepts as one problem instance.
InstanceLike = Union[ProblemInstance,
                     Tuple[Pipeline, TransportNetwork, EndToEndRequest]]


@dataclass(frozen=True)
class BatchItemResult:
    """Outcome of solving one instance of a batch.

    Attributes
    ----------
    index:
        Position of the instance in the input sequence.
    name:
        The instance's label (``ProblemInstance.name``) when it has one.
    mapping:
        The produced mapping, or ``None`` when the solve failed.
    error:
        Failure description when ``mapping`` is ``None`` (infeasibility or a
        solver error), ``None`` otherwise.
    runtime_s:
        Wall-clock time of this solve (including the failure path).
    """

    index: int
    name: Optional[str]
    mapping: Optional[PipelineMapping]
    error: Optional[str]
    runtime_s: float

    @property
    def ok(self) -> bool:
        """``True`` when the solve produced a mapping."""
        return self.mapping is not None

    def objective_value(self, objective: Objective) -> Optional[float]:
        """The mapping's objective value (delay or frame rate), ``None`` on failure."""
        if self.mapping is None:
            return None
        return (self.mapping.delay_ms if objective is Objective.MIN_DELAY
                else self.mapping.frame_rate_fps)


@dataclass
class BatchRunResult:
    """All outcomes of one :func:`solve_many` call, in input order."""

    solver: str
    objective: Objective
    items: List[BatchItemResult] = field(default_factory=list)
    wall_time_s: float = 0.0
    workers: int = 1

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self):
        return iter(self.items)

    @property
    def n_solved(self) -> int:
        """Number of instances that produced a mapping."""
        return sum(1 for item in self.items if item.ok)

    @property
    def n_failed(self) -> int:
        """Number of instances that failed (infeasible or errored)."""
        return len(self.items) - self.n_solved

    def mappings(self) -> List[Optional[PipelineMapping]]:
        """Per-instance mappings (``None`` where the solve failed), input order."""
        return [item.mapping for item in self.items]

    def values(self) -> List[Optional[float]]:
        """Per-instance objective values (``None`` where the solve failed)."""
        return [item.objective_value(self.objective) for item in self.items]

    def total_solver_time_s(self) -> float:
        """Sum of per-item solve times (≥ ``wall_time_s`` under parallelism)."""
        return sum(item.runtime_s for item in self.items)


def _coerce_instance(index: int, item: InstanceLike) -> ProblemInstance:
    if isinstance(item, ProblemInstance):
        return item
    try:
        pipeline, network, request = item
    except (TypeError, ValueError):
        raise SpecificationError(
            f"batch item {index} is neither a ProblemInstance nor a "
            "(pipeline, network, request) triple") from None
    return ProblemInstance(pipeline=pipeline, network=network, request=request)


def _solve_one(payload: Tuple[int, ProblemInstance,
                              Union[str, Callable[..., PipelineMapping]],
                              Objective, dict]) -> BatchItemResult:
    """Solve one instance; module-level so process pools can pickle it.

    ``solver`` may be a registry name (the only form that crosses process
    boundaries) or an already-resolved callable (in-process batches).
    """
    index, instance, solver, objective, solver_kwargs = payload
    if isinstance(solver, str):
        solver = get_solver(solver, objective)
    start = time.perf_counter()
    try:
        mapping = solver(instance.pipeline, instance.network, instance.request,
                         **solver_kwargs)
        return BatchItemResult(index=index, name=instance.name, mapping=mapping,
                               error=None, runtime_s=time.perf_counter() - start)
    except ReproError as exc:
        return BatchItemResult(index=index, name=instance.name, mapping=None,
                               error=str(exc), runtime_s=time.perf_counter() - start)


def _solve_tensor_groups(instances: List[ProblemInstance], objective: Objective,
                         solver_kwargs: dict) -> List[BatchItemResult]:
    """Solve a batch through the tensor engine, one call per same-network group.

    Instances are grouped by the *identity* of their network object (the
    tensor engine stacks DP columns over one shared dense view); groups keep
    their first-seen order and results are re-scattered into input order.  A
    group of one degenerates to a single-instance tensor solve, which is how
    heterogeneous batches fall back to per-solve behaviour.
    """
    from .tensor import elpc_max_frame_rate_many, elpc_min_delay_many

    many = (elpc_min_delay_many if objective is Objective.MIN_DELAY
            else elpc_max_frame_rate_many)
    groups: dict = {}
    for index, instance in enumerate(instances):
        groups.setdefault(id(instance.network), []).append(index)
    items: List[Optional[BatchItemResult]] = [None] * len(instances)
    for indices in groups.values():
        network = instances[indices[0]].network
        pipelines = [instances[i].pipeline for i in indices]
        requests = [instances[i].request for i in indices]
        start = time.perf_counter()
        try:
            entries = many(pipelines, network, requests, **solver_kwargs)
        except ReproError as exc:
            # A group-wide failure (e.g. an empty network) is recorded per
            # item, the same policy _solve_one applies to per-instance errors.
            per_item = (time.perf_counter() - start) / len(indices)
            for i in indices:
                items[i] = BatchItemResult(
                    index=i, name=instances[i].name, mapping=None,
                    error=str(exc), runtime_s=per_item)
            continue
        per_item = (time.perf_counter() - start) / len(indices)
        for i, entry in zip(indices, entries):
            if isinstance(entry, PipelineMapping):
                items[i] = BatchItemResult(
                    index=i, name=instances[i].name, mapping=entry,
                    error=None, runtime_s=per_item)
            else:
                items[i] = BatchItemResult(
                    index=i, name=instances[i].name, mapping=None,
                    error=str(entry), runtime_s=per_item)
    return items  # type: ignore[return-value]


def solve_many(instances: Iterable[InstanceLike], *,
               solver: Union[str, Callable[..., PipelineMapping]] = "elpc-vec",
               objective: Objective = Objective.MIN_DELAY,
               workers: Optional[int] = None,
               **solver_kwargs) -> BatchRunResult:
    """Solve every instance of a batch with one solver.

    Parameters
    ----------
    instances:
        :class:`ProblemInstance` objects or ``(pipeline, network, request)``
        triples.
    solver:
        Registry name (``"elpc"``, ``"elpc-vec"``, ``"elpc-tensor"``,
        ``"greedy"``, ...) or a solver callable.  Multiprocessing requires a
        registry name.  ``"elpc-tensor"`` batches are grouped by network and
        each group is solved by one call of the tensor engine (see the module
        notes); every other solver is looped per instance.
    objective:
        Which objective's solver to look up and which value
        :meth:`BatchRunResult.values` reports.
    workers:
        ``None``, 0 or 1 solves sequentially in-process; ``N > 1`` fans the
        batch out over a pool of ``N`` worker processes.
    solver_kwargs:
        Forwarded to every solve (e.g. ``include_link_delay=False``).

    Returns
    -------
    BatchRunResult
        Per-instance outcomes in input order; failures (infeasible instances,
        solver errors) are recorded as items with ``mapping=None`` rather than
        raised.
    """
    normalized = [_coerce_instance(i, item) for i, item in enumerate(instances)]
    n_workers = int(workers or 1)
    if n_workers < 0:
        raise SpecificationError(f"workers must be >= 0, got {workers!r}")

    if isinstance(solver, str):
        get_solver(solver, objective)  # fail fast on unknown names
        solver_name = solver
    else:
        if n_workers > 1:
            raise SpecificationError(
                "multiprocessing batches need the solver by registry name "
                "(callables cannot be shipped to worker processes)")
        solver_name = getattr(solver, "__name__", str(solver))

    payloads = [(i, inst, solver, objective, dict(solver_kwargs))
                for i, inst in enumerate(normalized)]
    start = time.perf_counter()
    if n_workers > 1 and len(payloads) > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=n_workers) as pool:
            items = list(pool.map(_solve_one, payloads))
    elif (isinstance(solver, str) and solver.lower() in TENSOR_SOLVERS
          and normalized):
        n_workers = 1
        items = _solve_tensor_groups(normalized, objective, dict(solver_kwargs))
    else:
        n_workers = 1
        items = [_solve_one(p) for p in payloads]
    return BatchRunResult(solver=solver_name, objective=objective, items=items,
                          wall_time_s=time.perf_counter() - start,
                          workers=n_workers)
