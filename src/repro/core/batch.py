"""Batch solving API: run one solver over many problem instances.

Experiment sweeps (the Fig. 2 / Fig. 5 / Fig. 6 campaigns, the runtime-scaling
study, parameter sensitivity scans) all share the same shape: *solve every
instance of a suite with one algorithm and collect objective values, runtimes
and failures*.  :func:`solve_many` is that loop as a first-class API —
sequential by default, optionally fanned out over a process pool — and the
comparison harness (:func:`repro.analysis.comparison.run_comparison`) and the
CLI (``repro solve --batch-seeds``, ``repro bench-scaling``) are built on it.

Failures are recorded per item instead of aborting the batch, the same policy
the comparison harness has always used: one pathological case must not kill a
whole campaign.  That covers *unexpected* exceptions too (say, a NumPy error
out of a malformed network): the item records the exception's class name,
message and formatted traceback (:attr:`BatchItemResult.traceback`) and the
rest of the batch proceeds — in pool mode this also keeps unpicklable
exception objects from tearing down the whole pool, since only strings cross
the process boundary.

Tensor dispatch and array backends
----------------------------------
When the batch is solved with ``solver="elpc-tensor"``, :func:`solve_many`
groups instances sharing one :class:`TransportNetwork` *object* and hands
each group to the batched tensor engine (:mod:`repro.core.tensor`) in a
single call, which advances all of the group's DP columns together.
Heterogeneous batches — every instance on its own network — degenerate to
per-instance solves through the same code path, so results are always
identical to a per-item loop; only the throughput changes.  The grouping
composes with ``workers > 1``: each worker chunk is dispatched through the
same group solver, so a parallel tensor batch runs ``workers`` tensor engines
side by side instead of silently falling back to per-item scalar solves.
Items solved in a batched group share a ``group_id`` and report the group's
wall time (:attr:`BatchItemResult.group_wall_s`) next to the uniformly
averaged ``runtime_s``.

``backend=`` selects the array backend the tensor engine runs its DP stages
on (:mod:`repro.core.backend`: NumPy reference, optional CuPy/JAX), validated
up front so an unusable backend fails the whole call with an actionable
:class:`~repro.exceptions.BackendUnavailableError` instead of per-item
failures; only the builtin tensor engine is backend-aware, every other
solver computes in NumPy.  See ``docs/ARCHITECTURE.md`` for the engine layer
map, the backend seam, and the engine/backend selection guide.

Multiprocessing notes
---------------------
With ``workers > 1`` the batch runs on the shared-memory runtime of
:mod:`repro.core.parallel`: every distinct network is exported **once** into
a :mod:`multiprocessing.shared_memory` block (workers re-wrap the dense-view
arrays zero-copy), and instances travel as lightweight pipeline specs in
chunks rather than one network pickle per solve.  This makes ``workers=N``
pay off even for large batches of *small* instances — the regime the old
per-item-pickling pool lost to its own serialisation costs — while results
stay bit-identical to ``workers=1`` for every solver.  The solver must still
be given *by registry name* (a callable may not survive pickling —
:class:`~repro.exceptions.SpecificationError` is raised up front).  For
repeated batches, keep one :class:`repro.core.parallel.ParallelBatchRunner`
open and pass it as ``runner=``: the worker pool and the exported networks
persist across calls.
"""

from __future__ import annotations

import os
import time
import traceback as _traceback
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..exceptions import ReproError, SpecificationError
from ..model.network import EndToEndRequest, TransportNetwork
from ..model.pipeline import Pipeline
from ..model.serialization import ProblemInstance
from .mapping import Objective, PipelineMapping
from .registry import get_solver

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .backend import BackendLike
    from .parallel import ParallelBatchRunner
    from .warm import WarmState

__all__ = ["BatchItemResult", "BatchRunResult", "SolveOptions", "solve_many",
           "place_many", "resolve_solver_backend", "uses_tensor_dispatch"]

#: Solver names whose batches are grouped by network and dispatched through
#: the tensor engine (one batched call per group) instead of per-item solves.
TENSOR_SOLVERS = frozenset({"elpc-tensor"})

#: Solver names whose batches may be warm-started (``warm_start=`` /
#: ``prior=``).  The three ELPC engines are bit-identical to each other, so
#: the warm engine (:mod:`repro.core.warm`) can substitute for any of them.
WARM_SOLVERS = frozenset({"elpc", "elpc-vec", "elpc-tensor"})

#: Anything solve_many accepts as one problem instance.
InstanceLike = Union[ProblemInstance,
                     Tuple[Pipeline, TransportNetwork, EndToEndRequest]]


@dataclass(frozen=True)
class SolveOptions:
    """One bundle for the batch-dispatch knobs that used to travel as kwargs.

    Every consumer of the six knobs — :func:`solve_many`,
    :func:`place_many`, :class:`repro.service.ServiceConfig` /
    :class:`repro.service.SolveService`, and the CLI helpers — accepts an
    ``options=SolveOptions(...)`` argument.  Every field defaults to ``None``
    meaning *unspecified*: the consumer's own default applies (``solver`` →
    ``"elpc-vec"``, ``objective`` → :attr:`Objective.MIN_DELAY`, and so on),
    exactly as if the kwarg had not been passed.

    Legacy kwargs remain accepted everywhere and are **merged** with the
    options bundle: a knob set in only one place wins; a knob set in *both*
    places must agree, otherwise :class:`SpecificationError` (a
    :class:`ValueError`) is raised — silent precedence would make the two
    call styles disagree about what actually ran.  ``solver_kwargs`` dicts
    merge key-wise under the same rule.

    The dataclass is frozen so a bundle can be built once and shared across
    calls, threads and services without defensive copying.
    """

    solver: Union[str, Callable[..., PipelineMapping], None] = None
    objective: Optional[Objective] = None
    backend: "BackendLike" = None
    workers: Optional[int] = None
    runner: Optional["ParallelBatchRunner"] = None
    chunk_size: Optional[int] = None
    solver_kwargs: Optional[Dict[str, object]] = None

    def merged_with(self, *, solver=None, objective=None, backend=None,
                    workers=None, runner=None, chunk_size=None,
                    solver_kwargs: Optional[Dict[str, object]] = None
                    ) -> "SolveOptions":
        """This bundle merged with legacy kwargs (conflict → ``ValueError``).

        Returns a new :class:`SolveOptions` in which each knob is whichever
        side specified it; a knob specified on both sides must compare equal.
        """
        def pick(name: str, mine, legacy):
            if mine is None:
                return legacy
            if legacy is None:
                return mine
            if mine == legacy:
                return mine
            raise SpecificationError(
                f"conflicting {name!r}: options={mine!r} but the legacy "
                f"keyword argument says {legacy!r} — specify it in one place "
                "(or make them agree)")

        merged_kwargs: Optional[Dict[str, object]]
        if self.solver_kwargs is None:
            merged_kwargs = dict(solver_kwargs) if solver_kwargs else None
        elif not solver_kwargs:
            merged_kwargs = dict(self.solver_kwargs)
        else:
            merged_kwargs = dict(self.solver_kwargs)
            for key, value in solver_kwargs.items():
                if key in merged_kwargs and merged_kwargs[key] != value:
                    raise SpecificationError(
                        f"conflicting solver_kwargs[{key!r}]: options say "
                        f"{merged_kwargs[key]!r} but the legacy keyword "
                        f"argument says {value!r}")
                merged_kwargs[key] = value
        return SolveOptions(
            solver=pick("solver", self.solver, solver),
            objective=pick("objective", self.objective, objective),
            backend=pick("backend", self.backend, backend),
            workers=pick("workers", self.workers, workers),
            runner=pick("runner", self.runner, runner),
            chunk_size=pick("chunk_size", self.chunk_size, chunk_size),
            solver_kwargs=merged_kwargs)


def _resolve_options(options: Optional[SolveOptions], *, solver, objective,
                     backend, workers, runner, chunk_size,
                     solver_kwargs: Dict[str, object]) -> SolveOptions:
    """Merge ``options`` with legacy kwargs (either side may be empty)."""
    base = options if options is not None else SolveOptions()
    if not isinstance(base, SolveOptions):
        raise SpecificationError(
            f"options must be a SolveOptions, got {type(base).__name__}")
    return base.merged_with(solver=solver, objective=objective,
                            backend=backend, workers=workers, runner=runner,
                            chunk_size=chunk_size, solver_kwargs=solver_kwargs)


@dataclass(frozen=True)
class BatchItemResult:
    """Outcome of solving one instance of a batch.

    Attributes
    ----------
    index:
        Position of the instance in the input sequence.
    name:
        The instance's label (``ProblemInstance.name``) when it has one.
    mapping:
        The produced mapping, or ``None`` when the solve failed.
    error:
        Failure description when ``mapping`` is ``None`` (infeasibility or a
        solver error), ``None`` otherwise.  Unexpected (non-``ReproError``)
        exceptions are recorded as ``"ClassName: message"``.
    runtime_s:
        Wall-clock time of this solve (including the failure path).  Items
        solved inside a *tensor* same-network group share one engine call, so
        for them this is the group's wall time divided by the group size;
        items of a parallel worker chunk are timed individually and
        ``runtime_s`` is their own solve time.  ``group_wall_s`` carries the
        undivided group/chunk wall time in both cases.
    traceback:
        Formatted traceback string when an *unexpected* exception was
        recorded (``None`` for clean solves and for ordinary
        infeasibility/specification failures).
    group_id:
        Identifier of the batched group (tensor same-network group, or a
        parallel worker chunk) this item was solved in; ``None`` for plain
        per-item solves.  Unique within one :class:`BatchRunResult`.
    group_size:
        Number of items solved together in this item's group (1 for per-item
        solves).
    group_wall_s:
        Wall-clock time of the whole group's solve, ``None`` for per-item
        solves (where ``runtime_s`` already is the undivided wall time).
    """

    index: int
    name: Optional[str]
    mapping: Optional[PipelineMapping]
    error: Optional[str]
    runtime_s: float
    traceback: Optional[str] = None
    group_id: Optional[int] = None
    group_size: int = 1
    group_wall_s: Optional[float] = None

    @property
    def ok(self) -> bool:
        """``True`` when the solve produced a mapping."""
        return self.mapping is not None

    def objective_value(self, objective: Objective) -> Optional[float]:
        """The mapping's objective value (delay or frame rate), ``None`` on failure."""
        if self.mapping is None:
            return None
        return (self.mapping.delay_ms if objective is Objective.MIN_DELAY
                else self.mapping.frame_rate_fps)


@dataclass
class BatchRunResult:
    """All outcomes of one :func:`solve_many` call, in input order.

    Batches run with ``warm_start=True`` (or ``prior=``) additionally carry
    ``warm_states`` — the per-instance captured DP state a follow-up
    ``solve_many(..., prior=result)`` re-solve starts from after the shared
    network drifts — plus the ``warm_reused`` / ``warm_resolved`` split of
    how the batch was actually serviced (reused verbatim because nothing
    relevant changed, vs re-solved warm or cold).
    """

    solver: str
    objective: Objective
    items: List[BatchItemResult] = field(default_factory=list)
    wall_time_s: float = 0.0
    workers: int = 1
    warm_states: Optional[List[Optional["WarmState"]]] = field(
        default=None, repr=False, compare=False)
    warm_reused: int = 0
    warm_resolved: int = 0

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self):
        return iter(self.items)

    @property
    def n_solved(self) -> int:
        """Number of instances that produced a mapping."""
        return sum(1 for item in self.items if item.ok)

    @property
    def n_failed(self) -> int:
        """Number of instances that failed (infeasible or errored)."""
        return len(self.items) - self.n_solved

    def mappings(self) -> List[Optional[PipelineMapping]]:
        """Per-instance mappings (``None`` where the solve failed), input order."""
        return [item.mapping for item in self.items]

    def values(self) -> List[Optional[float]]:
        """Per-instance objective values (``None`` where the solve failed)."""
        return [item.objective_value(self.objective) for item in self.items]

    def total_solver_time_s(self) -> float:
        """Sum of per-item solve times (≥ ``wall_time_s`` under parallelism)."""
        return sum(item.runtime_s for item in self.items)

    def group_times(self) -> Dict[int, Tuple[int, float]]:
        """Per-group wall times: ``group_id -> (group_size, wall_s)``.

        Covers items solved in batched groups — tensor same-network groups
        (where ``runtime_s`` is ``wall_s / group_size``) and parallel worker
        chunks (where items are individually timed and ``wall_s`` is the
        chunk's total).  Sequential per-item solves carry no group and are
        not listed — their undivided wall time is their own ``runtime_s``.
        """
        groups: Dict[int, Tuple[int, float]] = {}
        for item in self.items:
            if item.group_id is not None and item.group_wall_s is not None:
                groups[item.group_id] = (item.group_size, item.group_wall_s)
        return groups


def _coerce_instance(index: int, item: InstanceLike) -> ProblemInstance:
    if isinstance(item, ProblemInstance):
        return item
    try:
        pipeline, network, request = item
    except (TypeError, ValueError):
        raise SpecificationError(
            f"batch item {index} is neither a ProblemInstance nor a "
            "(pipeline, network, request) triple") from None
    return ProblemInstance(pipeline=pipeline, network=network, request=request)


def uses_tensor_dispatch(solver: Union[str, Callable[..., PipelineMapping]],
                         objective: Objective) -> bool:
    """``True`` when ``solver`` names the *builtin* tensor engine.

    This is the one dispatch-policy predicate shared by :func:`solve_many`,
    the parallel runtime (per worker chunk) and the service layer
    (:mod:`repro.service`, which uses it to decide whether coalesced requests
    can ride a same-network tensor group).  Group dispatch hands whole
    batches to :mod:`repro.core.tensor` directly, so it must only engage
    while the registry still serves the builtin under that name — a user
    override of ``"elpc-tensor"`` (which the registry guarantees always
    wins) falls back to ordinary per-item solves through the override,
    sequentially and in worker chunks alike.
    """
    if not isinstance(solver, str) or solver.lower() not in TENSOR_SOLVERS:
        return False
    from .tensor import elpc_max_frame_rate_tensor, elpc_min_delay_tensor

    builtin = (elpc_min_delay_tensor if objective is Objective.MIN_DELAY
               else elpc_max_frame_rate_tensor)
    try:
        return get_solver(solver, objective) is builtin
    except ReproError:  # pragma: no cover - unknown names fail fast earlier
        return False


#: Deprecated aliases served via module ``__getattr__`` (PEP 562) so that
#: touching one raises a :class:`DeprecationWarning` instead of silently
#: aliasing forever.
_DEPRECATED_ALIASES = {"_use_tensor_dispatch": "uses_tensor_dispatch"}


def __getattr__(name: str):
    target = _DEPRECATED_ALIASES.get(name)
    if target is not None:
        import warnings

        warnings.warn(
            f"repro.core.batch.{name} is deprecated; use "
            f"repro.core.batch.{target} instead",
            DeprecationWarning, stacklevel=2)
        return globals()[target]
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def resolve_solver_backend(solver: Union[str, Callable[..., PipelineMapping]],
                           objective: Objective,
                           backend: "BackendLike", *,
                           workers: int = 1):
    """The one backend-selection policy shared by the CLI and ``solve_many``.

    Returns the value to forward as the tensor engine's ``backend=`` kwarg,
    or ``None`` when nothing should be injected.  The rules:

    * An **explicit** selection is validated up front — an unknown or
      uninstalled backend raises
      :class:`~repro.exceptions.BackendUnavailableError` (listing the
      installed ones) before any solving, and a non-NumPy backend combined
      with a solver that is not the builtin tensor engine raises
      :class:`SpecificationError` rather than being silently ignored.
    * ``None`` falls back to the ``REPRO_BACKEND`` environment variable,
      which gets the **same fail-fast validation** when the solver is the
      backend-aware tensor engine (``REPRO_BACKEND=cupy`` without CuPy must
      fail the call, not degrade into per-item failures).  For every other
      solver the environment default is simply not applicable — it names the
      tensor engine's backend, and those solvers never read it — so it is
      ignored instead of failing unrelated batches.
    * Under ``workers > 1`` the backend must be a *name* and is validated
      with the light :func:`~repro.core.backend.validate_backend_name` check
      only: constructing a GPU backend here would initialise CUDA in a
      parent that is about to ``fork`` (which CUDA forbids) — each worker
      constructs its own instance from the shipped name.
    """
    explicit = backend is not None
    if not explicit:
        from .backend import BACKEND_ENV_VAR

        backend = os.environ.get(BACKEND_ENV_VAR) or None
        if backend is None:
            return None
    from .backend import get_backend, validate_backend_name

    tensor = uses_tensor_dispatch(solver, objective)
    if not tensor and not explicit:
        return None
    if workers > 1:
        if not isinstance(backend, str):
            raise SpecificationError(
                "multiprocessing batches need the backend by name "
                "(ArrayBackend instances cannot be shipped to worker "
                "processes)")
        name = validate_backend_name(backend)
    else:
        name = get_backend(backend).name
    if tensor:
        return backend
    if name != "numpy":
        solver_label = solver if isinstance(solver, str) else getattr(
            solver, "__name__", str(solver))
        raise SpecificationError(
            f"solver {solver_label!r} is not backend-aware; only the builtin "
            f"tensor engine ({sorted(TENSOR_SOLVERS)}) runs on backend "
            f"{name!r} — every other solver computes in NumPy")
    return None


def _describe_unexpected(exc: BaseException) -> Tuple[str, str]:
    """``(error, traceback)`` strings for a non-``ReproError`` exception.

    Only strings are recorded so the description survives any process
    boundary — exception *objects* (which may be unpicklable) never travel.
    """
    return (f"{type(exc).__name__}: {exc}", _traceback.format_exc())


def _solve_one(payload: Tuple[int, ProblemInstance,
                              Union[str, Callable[..., PipelineMapping]],
                              Objective, dict]) -> BatchItemResult:
    """Solve one instance; module-level so process pools can pickle it.

    ``solver`` may be a registry name (the only form that crosses process
    boundaries) or an already-resolved callable (in-process batches).
    Failures never propagate: expected :class:`ReproError` outcomes
    (infeasibility, bad specs) record their message, and unexpected
    exceptions record class name + message + traceback — one pathological
    item must not kill a whole campaign, sequential or pooled.
    """
    index, instance, solver, objective, solver_kwargs = payload
    if isinstance(solver, str):
        solver = get_solver(solver, objective)
    start = time.perf_counter()
    try:
        mapping = solver(instance.pipeline, instance.network, instance.request,
                         **solver_kwargs)
        return BatchItemResult(index=index, name=instance.name, mapping=mapping,
                               error=None, runtime_s=time.perf_counter() - start)
    except ReproError as exc:
        return BatchItemResult(index=index, name=instance.name, mapping=None,
                               error=str(exc), runtime_s=time.perf_counter() - start)
    except Exception as exc:
        error, tb = _describe_unexpected(exc)
        return BatchItemResult(index=index, name=instance.name, mapping=None,
                               error=error, runtime_s=time.perf_counter() - start,
                               traceback=tb)


def _solve_tensor_groups(instances: List[ProblemInstance], objective: Objective,
                         solver_kwargs: dict, *,
                         first_group_id: int = 0) -> List[BatchItemResult]:
    """Solve a batch through the tensor engine, one call per same-network group.

    Instances are grouped by the *identity* of their network object (the
    tensor engine stacks DP columns over one shared dense view); groups keep
    their first-seen order and results are re-scattered into input order.  A
    group of one degenerates to a single-instance tensor solve, which is how
    heterogeneous batches fall back to per-solve behaviour.  Each group's
    items carry the group's id (numbered from ``first_group_id``; the
    parallel runtime offsets it per chunk to keep ids unique across workers),
    size and undivided wall time next to the averaged ``runtime_s``.
    """
    from .tensor import elpc_max_frame_rate_many, elpc_min_delay_many

    many = (elpc_min_delay_many if objective is Objective.MIN_DELAY
            else elpc_max_frame_rate_many)
    groups: dict = {}
    for index, instance in enumerate(instances):
        groups.setdefault(id(instance.network), []).append(index)
    items: List[Optional[BatchItemResult]] = [None] * len(instances)
    for group_id, indices in enumerate(groups.values(), start=first_group_id):
        network = instances[indices[0]].network
        pipelines = [instances[i].pipeline for i in indices]
        requests = [instances[i].request for i in indices]
        start = time.perf_counter()
        error = tb = None
        entries: Sequence = ()
        try:
            entries = many(pipelines, network, requests, **solver_kwargs)
        except ReproError as exc:
            # A group-wide failure (e.g. an empty network) is recorded per
            # item, the same policy _solve_one applies to per-instance errors.
            error = str(exc)
        except Exception as exc:
            error, tb = _describe_unexpected(exc)
        wall = time.perf_counter() - start
        per_item = wall / len(indices)
        if error is not None:
            entries = [None] * len(indices)
        for i, entry in zip(indices, entries):
            if isinstance(entry, PipelineMapping):
                items[i] = BatchItemResult(
                    index=i, name=instances[i].name, mapping=entry,
                    error=None, runtime_s=per_item, group_id=group_id,
                    group_size=len(indices), group_wall_s=wall)
            else:
                items[i] = BatchItemResult(
                    index=i, name=instances[i].name, mapping=None,
                    error=error if entry is None else str(entry),
                    runtime_s=per_item, traceback=tb, group_id=group_id,
                    group_size=len(indices), group_wall_s=wall)
    return items  # type: ignore[return-value]


def _solve_warm(instances: List[ProblemInstance], objective: Objective,
                solver_kwargs: dict, *,
                prior: Optional[BatchRunResult]
                ) -> Tuple[List[BatchItemResult],
                           List[Optional["WarmState"]], int, int]:
    """Solve a batch through the warm engine, reusing a prior run's DP state.

    Instances are matched to ``prior`` positionally (the re-solve contract:
    the same batch, drifted networks).  Per instance the warm engine decides
    whether to reuse the prior item verbatim (its network is bit-unchanged),
    patch only the dirty DP columns (scalar drift), or cold-solve (first run,
    structural edit, journal gap) — all three produce results bit-identical
    to a cold batch on the current networks.
    """
    from .warm import elpc_max_frame_rate_warm, elpc_min_delay_warm

    solve = (elpc_min_delay_warm if objective is Objective.MIN_DELAY
             else elpc_max_frame_rate_warm)
    prior_states: Optional[List[Optional["WarmState"]]] = None
    if prior is not None:
        if prior.warm_states is None:
            raise SpecificationError(
                "prior= needs a BatchRunResult produced with warm_start=True "
                "(it carries no captured warm states)")
        if len(prior.items) != len(instances):
            raise SpecificationError(
                f"prior batch has {len(prior.items)} items but this batch "
                f"has {len(instances)} — warm re-solves match positionally")
        prior_states = prior.warm_states
    items: List[BatchItemResult] = []
    states: List[Optional["WarmState"]] = []
    reused = resolved = 0
    for index, instance in enumerate(instances):
        state = prior_states[index] if prior_states is not None else None
        start = time.perf_counter()
        try:
            mapping, new_state = solve(instance.pipeline, instance.network,
                                       instance.request, prior=state,
                                       **solver_kwargs)
        except ReproError as exc:
            items.append(BatchItemResult(
                index=index, name=instance.name, mapping=None, error=str(exc),
                runtime_s=time.perf_counter() - start))
            states.append(None)
            resolved += 1
            continue
        except Exception as exc:
            error, tb = _describe_unexpected(exc)
            items.append(BatchItemResult(
                index=index, name=instance.name, mapping=None, error=error,
                runtime_s=time.perf_counter() - start, traceback=tb))
            states.append(None)
            resolved += 1
            continue
        if state is not None and new_state is state and prior is not None:
            # Bit-unchanged network: the prior item still answers exactly.
            items.append(prior.items[index])
            reused += 1
        else:
            items.append(BatchItemResult(
                index=index, name=instance.name, mapping=mapping, error=None,
                runtime_s=time.perf_counter() - start))
            resolved += 1
        states.append(new_state)
    return items, states, reused, resolved


def solve_many(instances: Iterable[InstanceLike], *,
               solver: Union[str, Callable[..., PipelineMapping], None] = None,
               objective: Optional[Objective] = None,
               workers: Optional[int] = None,
               runner: Optional["ParallelBatchRunner"] = None,
               chunk_size: Optional[int] = None,
               backend: "BackendLike" = None,
               options: Optional[SolveOptions] = None,
               prior: Optional[BatchRunResult] = None,
               warm_start: bool = False,
               **solver_kwargs) -> BatchRunResult:
    """Solve every instance of a batch with one solver.

    Parameters
    ----------
    instances:
        :class:`ProblemInstance` objects or ``(pipeline, network, request)``
        triples.
    options:
        A :class:`SolveOptions` bundle carrying any of the knobs below.
        Knobs may come from the bundle, from the legacy keyword arguments,
        or both — a knob specified in both places must agree, otherwise
        :class:`SpecificationError` (a ``ValueError``) is raised.  Leaving
        everything unset means the documented defaults (``solver="elpc-vec"``,
        ``objective=Objective.MIN_DELAY``).
    solver:
        Registry name (``"elpc"``, ``"elpc-vec"``, ``"elpc-tensor"``,
        ``"greedy"``, ...) or a solver callable.  Multiprocessing requires a
        registry name.  ``"elpc-tensor"`` batches are grouped by network and
        each group is solved by one call of the tensor engine (see the module
        notes) — sequentially and inside every worker chunk alike; every
        other solver is looped per instance.
    objective:
        Which objective's solver to look up and which value
        :meth:`BatchRunResult.values` reports.
    workers:
        ``None``, 0 or 1 solves sequentially in-process; ``N > 1`` fans the
        batch out over the shared-memory worker runtime of
        :mod:`repro.core.parallel` (transient pool, torn down after the
        batch).  Results are bit-identical either way.
    runner:
        An open :class:`repro.core.parallel.ParallelBatchRunner` to run the
        batch on instead of spinning up a transient pool — the persistent
        form of ``workers=N`` (exported networks and worker processes are
        reused across calls).  Overrides ``workers``.
    chunk_size:
        Instances per worker chunk under parallelism (default: batch size /
        (2·workers), so every worker gets about two chunks).
    backend:
        Array backend for the tensor engine's DP stages — a
        :mod:`repro.core.backend` name (``"numpy"``, ``"cupy"``, ``"jax"``),
        an :class:`~repro.core.backend.ArrayBackend` instance (in-process
        batches only), or ``None`` for the ``REPRO_BACKEND``/NumPy default
        (an unusable ``REPRO_BACKEND`` value fails tensor batches exactly
        like an explicit one; see :func:`resolve_solver_backend`).
        Validated before any solve: an unusable backend raises
        :class:`~repro.exceptions.BackendUnavailableError` listing the
        installed ones, and a non-NumPy backend combined with a solver that
        is not the builtin tensor engine raises
        :class:`SpecificationError` (those solvers always compute in NumPy,
        so silently accepting e.g. ``backend="cupy"`` would misreport where
        the numbers came from).
    prior:
        A previous warm-started :class:`BatchRunResult` for the *same batch*
        (matched positionally) whose networks have since drifted.  Instances
        whose network is bit-unchanged reuse their prior item verbatim;
        instances on scalar-drifted networks are warm re-solved from the
        prior DP tables (only dirty columns recomputed); structural drift
        falls back to a cold solve.  All outcomes are bit-identical to a
        cold batch.  Implies ``warm_start=True``.
    warm_start:
        Capture per-instance warm state (:attr:`BatchRunResult.warm_states`)
        so this result can serve as a later call's ``prior=``.  Warm batches
        run in-process (``workers``/``runner`` are rejected) and need one of
        the ELPC engines (:data:`WARM_SOLVERS`).
    solver_kwargs:
        Forwarded to every solve (e.g. ``include_link_delay=False``).

    Returns
    -------
    BatchRunResult
        Per-instance outcomes in input order; failures (infeasible instances,
        solver errors, unexpected exceptions) are recorded as items with
        ``mapping=None`` rather than raised.
    """
    resolved = _resolve_options(options, solver=solver, objective=objective,
                                backend=backend, workers=workers,
                                runner=runner, chunk_size=chunk_size,
                                solver_kwargs=solver_kwargs)
    solver = resolved.solver if resolved.solver is not None else "elpc-vec"
    objective = (resolved.objective if resolved.objective is not None
                 else Objective.MIN_DELAY)
    workers, runner = resolved.workers, resolved.runner
    chunk_size, backend = resolved.chunk_size, resolved.backend
    solver_kwargs = dict(resolved.solver_kwargs or {})

    normalized = [_coerce_instance(i, item) for i, item in enumerate(instances)]
    n_workers = int(workers or 1)
    if n_workers < 0:
        raise SpecificationError(f"workers must be >= 0, got {workers!r}")
    if runner is not None:
        n_workers = runner.workers

    if isinstance(solver, str):
        get_solver(solver, objective)  # fail fast on unknown names
        solver_name = solver
    else:
        if n_workers > 1:
            raise SpecificationError(
                "multiprocessing batches need the solver by registry name "
                "(callables cannot be shipped to worker processes)")
        solver_name = getattr(solver, "__name__", str(solver))

    backend_value = resolve_solver_backend(solver, objective, backend,
                                           workers=n_workers)

    if warm_start or prior is not None:
        if runner is not None or n_workers > 1:
            raise SpecificationError(
                "warm-started batches run in-process — captured DP state "
                "cannot cross worker processes; drop workers=/runner=")
        if not (isinstance(solver, str) and solver in WARM_SOLVERS):
            raise SpecificationError(
                f"warm_start/prior need an ELPC engine "
                f"({', '.join(sorted(WARM_SOLVERS))}), got {solver_name!r}")
        if backend_value is not None:
            from .backend import get_backend

            if get_backend(backend_value).name != "numpy":
                raise SpecificationError(
                    "warm-started batches compute in NumPy; drop backend= "
                    "or pass backend=\"numpy\"")
        start = time.perf_counter()
        items, states, reused, resolved = _solve_warm(
            normalized, objective, dict(solver_kwargs), prior=prior)
        return BatchRunResult(solver=solver_name, objective=objective,
                              items=items,
                              wall_time_s=time.perf_counter() - start,
                              workers=1, warm_states=states,
                              warm_reused=reused, warm_resolved=resolved)

    if backend_value is not None:
        solver_kwargs["backend"] = backend_value

    start = time.perf_counter()
    if n_workers > 1 and len(normalized) > 1:
        if runner is not None:
            items = runner.solve(normalized, solver=solver_name,
                                 objective=objective, chunk_size=chunk_size,
                                 **solver_kwargs)
        else:
            from .parallel import ParallelBatchRunner

            with ParallelBatchRunner(workers=n_workers) as transient:
                items = transient.solve(normalized, solver=solver_name,
                                        objective=objective,
                                        chunk_size=chunk_size, **solver_kwargs)
    elif uses_tensor_dispatch(solver, objective) and normalized:
        n_workers = 1
        items = _solve_tensor_groups(normalized, objective, dict(solver_kwargs))
    else:
        n_workers = 1
        payloads = [(i, inst, solver, objective, dict(solver_kwargs))
                    for i, inst in enumerate(normalized)]
        items = [_solve_one(p) for p in payloads]
    return BatchRunResult(solver=solver_name, objective=objective, items=items,
                          wall_time_s=time.perf_counter() - start,
                          workers=n_workers)


def place_many(requests: Iterable, *,
               placer: str = "place-greedy",
               cluster=None,
               engine: Optional[str] = None,
               objective: Optional[Objective] = None,
               demand_fps: float = 1.0,
               node_capacity_factor: float = 1.0,
               link_capacity_factor: float = 1.0,
               options: Optional[SolveOptions] = None,
               prior=None,
               **placer_kwargs):
    """Place a batch of pipelines *jointly* on one capacity-limited cluster.

    The multi-tenant sibling of :func:`solve_many`: where ``solve_many``
    answers "what is each pipeline's best mapping on an uncontended
    network?", ``place_many`` answers "which of these pipelines fit
    *together*, and where?" — every admitted mapping is charged against the
    cluster's per-node compute and per-link bandwidth budgets and rejections
    are recorded per item, never raised.

    Parameters
    ----------
    requests:
        :class:`repro.placement.PlacementRequest` objects,
        :class:`ProblemInstance` objects, or ``(pipeline, network, request)``
        triples — all sharing one :class:`TransportNetwork` *object* (the
        cluster being contended for; :class:`SpecificationError` otherwise).
    placer:
        Registered placement strategy (``"place-greedy"`` sequential packing,
        ``"place-flow"`` joint min-cost max-flow; see
        :func:`repro.placement.available_placers`).
    cluster:
        An existing :class:`repro.placement.ClusterState` to place onto
        (it is mutated — later batches see earlier commits).  ``None`` builds
        a fresh ledger from the shared network with the two capacity factors
        below.
    engine:
        Per-pipeline solver the placer runs on the residual cluster
        (default ``"elpc-vec"``).
    objective:
        Mapping objective, default :attr:`Objective.MIN_DELAY`.
    demand_fps:
        Default steady-state frame rate for requests that do not carry their
        own (plain instances and triples).
    node_capacity_factor / link_capacity_factor:
        Budget scaling used only when ``cluster`` is ``None`` (see
        :meth:`repro.placement.ClusterState.from_network`).
    options:
        A :class:`SolveOptions` bundle: ``options.solver`` is the placement
        *engine*, ``options.objective`` the objective and
        ``options.solver_kwargs`` extra engine kwargs — merged with the
        legacy keyword arguments under the same conflict-is-an-error rule as
        :func:`solve_many`.  ``workers`` / ``runner`` / ``chunk_size`` /
        ``backend`` are not applicable to placement and raise
        :class:`SpecificationError` when set.
    prior:
        A previous :class:`repro.placement.PlacementResult` for the *same
        batch on the same cluster*, used to re-plan after the shared network
        drifts.  When the network is bit-unchanged since the prior placement
        the prior result is returned verbatim; otherwise the prior batch's
        own commitments are released, the ledger is
        :meth:`~repro.placement.ClusterState.rebase`-d onto the patched
        capacities (other tenants' commitments survive the drift), and the
        batch is re-placed on the rebased residual cluster.  Mutually
        exclusive with ``cluster=``.
    placer_kwargs:
        Forwarded to the placer (e.g. ``order="input"`` for
        ``place-greedy``).

    Returns
    -------
    repro.placement.PlacementResult
        Per-request outcomes in input order plus the final ledger.
        ``extras["network_epoch"]`` records the view epoch the placement was
        computed at (what a later ``prior=`` re-plan compares against).
    """
    from ..placement import ClusterState, PlacementRequest
    from ..placement.registry import get_placer

    resolved = _resolve_options(options, solver=engine, objective=objective,
                                backend=None, workers=None, runner=None,
                                chunk_size=None, solver_kwargs=placer_kwargs)
    for name in ("workers", "runner", "chunk_size", "backend"):
        if getattr(resolved, name) is not None:
            raise SpecificationError(
                f"SolveOptions.{name} is not applicable to place_many "
                "(placement runs in-process on one ledger)")
    engine_name = resolved.solver if resolved.solver is not None else "elpc-vec"
    if not isinstance(engine_name, str):
        raise SpecificationError(
            "place_many needs the engine by registry name (placers look it "
            "up per objective)")
    objective = (resolved.objective if resolved.objective is not None
                 else Objective.MIN_DELAY)
    kwargs = dict(resolved.solver_kwargs or {})

    coerced = [PlacementRequest.coerce(i, item, demand_fps=demand_fps)
               for i, item in enumerate(requests)]
    network = None
    for request in coerced:
        if network is None:
            network = request.instance.network
        elif request.instance.network is not network:
            raise SpecificationError(
                "place_many requests must all share one TransportNetwork "
                "object — joint placement is defined on a single cluster")
    if prior is not None:
        if cluster is not None:
            raise SpecificationError(
                "place_many got both prior= and cluster= — a re-plan always "
                "continues on the prior result's own ledger")
        if network is not None and prior.cluster.network is not network:
            raise SpecificationError(
                "prior= placement was computed on a different "
                "TransportNetwork object than these requests name")
        if network is not None and network.dense_view() is prior.cluster.view:
            # Bit-unchanged cluster: the prior placement still answers.
            return prior
        cluster = prior.cluster
        # The re-plan replaces the prior batch's placements: hand their
        # draws back (other tenants' commitments stay), then rebase the
        # budgets onto the drifted capacities before re-placing.
        live = {id(d) for d in cluster.committed}
        for item in prior.items:
            if item.demand is not None and id(item.demand) in live:
                cluster.release(item.demand)
        cluster.rebase()
    if cluster is None:
        if network is None:
            raise SpecificationError(
                "place_many needs at least one request (or an explicit "
                "cluster=) to know which cluster to place on")
        cluster = ClusterState.from_network(
            network, node_capacity_factor=node_capacity_factor,
            link_capacity_factor=link_capacity_factor)
    elif network is not None and network is not cluster.network:
        raise SpecificationError(
            "place_many requests name a different TransportNetwork object "
            "than the given cluster's")
    result = get_placer(placer)(coerced, cluster, objective=objective,
                                engine=engine_name, **kwargs)
    if network is not None:
        result.extras["network_epoch"] = network.view_epoch
        if prior is not None:
            result.extras["replanned_from_epoch"] = \
                prior.extras.get("network_epoch")
    return result
